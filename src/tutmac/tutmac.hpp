// tut::tutmac — the paper's case study (Section 4): the TUTMAC WLAN MAC
// protocol modeled with TUT-Profile and mapped onto the TUTWLAN terminal
// platform.
//
// Application (Figures 4-6): the Tutmac_Protocol <<Application>> class is
// composed of three top-level functional components (Management,
// RadioManagement, RadioChannelAccess — instantiated as the processes mng,
// rmng, rca) and two structural components (UserInterface, DataProcessing)
// that hierarchically contain further processes (msduRec, msduDel, frag,
// crc). Processes are grouped into four process groups.
//
// Platform (Figure 7): three NiosProcessor instances and one CRC hardware
// accelerator on a hierarchical HIBI bus (two segments joined by a bridge
// segment).
//
// Mapping (Figure 8): group1 and group3 on processor1, group2 on
// processor2, group4 (the hardware CRC process) on accelerator1.
//
// Workload: the original TUTMAC implementation is proprietary; the
// environment model (radio slots, received frames, user MSDUs) and the
// per-transition cycle costs are synthetic, calibrated so the profiling
// report reproduces the shape of the paper's Table 4 (group1 dominates at
// ~92% of execution, group2 ~5%, group3 ~2.5%, group4 ~0.2%).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "mapping/mapping.hpp"
#include "profile/tut_profile.hpp"
#include "sim/simulator.hpp"
#include "uml/model.hpp"

namespace tut::tutmac {

/// Design alternatives (used by the ablation benches).
enum class GroupingChoice {
  Paper,       ///< the four groups of Figure 6 / Table 4
  PerProcess,  ///< one group per process (finest grouping)
  SingleSw,    ///< all software processes in one group (coarsest)
};

enum class MappingChoice {
  Paper,         ///< Figure 8: group1+group3 on processor1, group2 on
                 ///< processor2, group4 on accelerator1
  LoadBalanced,  ///< software groups spread over processor1..3 round-robin
  SinglePe,      ///< all software groups on processor1
};

/// Build options: workload periods (ticks), per-transition cycle costs and
/// design alternatives. Defaults reproduce Table 4.
struct Options {
  sim::Time horizon = 50'000'000;  ///< 50 ms at 1 tick = 1 ns

  // Environment workload.
  sim::Time slot_period = 100'000;    ///< radio slot every 100 us
  sim::Time msdu_period = 2'000'000;  ///< user MSDU every 2 ms
  sim::Time rx_period = 1'000'000;    ///< received frame every 1 ms
  sim::Time mgmt_period = 5'000'000;  ///< management round every 5 ms
  int status_interval = 8;            ///< StatusInd every N-th slot

  // Cycle costs (on the executing component's clock).
  long c_slot = 3900;      ///< rca: per radio slot (channel access)
  long c_rx = 400;         ///< rca: per received frame
  long c_frag_queue = 100; ///< rca: queueing one fragment for tx
  long c_status = 500;     ///< rmng: per StatusInd
  long c_rmng = 500;       ///< rmng: per MgmtCmd
  long c_mng = 1000;       ///< mng: per management round
  long c_mng_rsp = 300;    ///< mng: per MgmtRsp
  long c_msdu_rec = 1500;  ///< msduRec: per user MSDU
  long c_msdu_del = 1500;  ///< msduDel: per delivered MSDU
  long c_frag = 900;       ///< frag: fragmenting one MSDU
  long c_frag_rsp = 200;   ///< frag: finishing a fragment after CRC
  long c_defrag = 400;     ///< frag: defragmenting one received frame
  long c_crc = 150;        ///< crc: one CRC-32 block

  // Design alternatives.
  GroupingChoice grouping = GroupingChoice::Paper;
  MappingChoice mapping = MappingChoice::Paper;
  /// Arbitration tag applied to every HIBI segment ("priority" or
  /// "round-robin").
  std::string arbitration = profile::tags::ArbitrationPriority;
  /// Scheduling tag applied to the NiosProcessor component ("cooperative"
  /// matches the paper's published system; "preemptive" models the RTOS the
  /// paper lists as future work).
  std::string scheduling = profile::tags::SchedulingCooperative;
  /// RTOS context-switch cost in processor cycles (preemptive only).
  long ctx_switch_cycles = 80;
};

/// A fully built TUTMAC/TUTWLAN system model plus convenient handles.
struct System {
  std::unique_ptr<uml::Model> model;
  profile::TutProfile prof;
  Options options;

  // Application.
  uml::Class* app = nullptr;             ///< Tutmac_Protocol
  uml::Class* user_interface = nullptr;  ///< structural
  uml::Class* data_processing = nullptr; ///< structural
  std::map<std::string, uml::Property*> processes;  ///< by name
  std::map<std::string, uml::Property*> groups;     ///< by name

  // Platform.
  uml::Class* platform = nullptr;
  std::map<std::string, uml::Property*> instances;  ///< by name
  std::map<std::string, uml::Property*> segments;   ///< by name

  // Signals used by the environment.
  uml::Signal* radio_slot = nullptr;
  uml::Signal* rx_frame = nullptr;
  uml::Signal* user_msdu = nullptr;

  /// Injects the environment workload (radio slots, received frames, user
  /// MSDUs) into a simulation of this system, up to `options.horizon`.
  void inject_workload(sim::Simulation& sim) const;
  /// Same, but under substitute workload knobs (horizon, periods) — campaign
  /// sweeps vary these per scenario without rebuilding the system.
  void inject_workload(sim::Simulation& sim, const Options& with) const;

  /// Builds, validates-by-construction and runs the standard flow:
  /// simulate under the options' workload and return the simulation.
  std::unique_ptr<sim::Simulation> simulate(
      const mapping::SystemView& view) const;
};

/// Builds the complete TUTMAC + TUTWLAN model per `options`.
System build(const Options& options = {});

}  // namespace tut::tutmac
