#include "tutmac/tutmac.hpp"

#include <stdexcept>

#include "appmodel/appmodel.hpp"
#include "platform/platform.hpp"

namespace tut::tutmac {

using appmodel::ApplicationBuilder;
using appmodel::Tags;
using platform::PlatformBuilder;
using uml::Action;

namespace {

std::string cycles(long n) { return std::to_string(n); }

}  // namespace

System build(const Options& options) {
  System sys;
  sys.options = options;
  sys.model = std::make_unique<uml::Model>("TUTWLAN_Terminal");
  uml::Model& m = *sys.model;
  sys.prof = profile::install(m);

  // -------------------------------------------------------------------------
  // Signals (payload sizes model the frame sizes on the HIBI bus).
  // -------------------------------------------------------------------------
  auto& pkg = m.create_package("tutmac_signals");
  auto make_signal = [&](const char* name, std::size_t bytes,
                         std::initializer_list<const char*> params) {
    uml::Signal& s = m.create_signal(name, &pkg);
    for (const char* p : params) s.add_parameter(p, "int");
    s.set_payload_bytes(bytes);
    return &s;
  };
  sys.radio_slot = make_signal("RadioSlot", 4, {});
  auto* tx_frame = make_signal("TxFrame", 64, {"len"});
  sys.rx_frame = make_signal("RxFrame", 64, {"len"});
  sys.user_msdu = make_signal("UserMsdu", 128, {"len"});
  auto* user_msdu_ind = make_signal("UserMsduInd", 128, {"len"});
  auto* msdu_to_frag = make_signal("MsduToFrag", 128, {"len"});
  auto* fragment = make_signal("Fragment", 64, {"len"});
  auto* rx_data = make_signal("RxData", 64, {"len"});
  auto* msdu_out = make_signal("MsduOut", 128, {"len"});
  auto* crc_req = make_signal("CrcReq", 64, {"len"});
  auto* crc_rsp = make_signal("CrcRsp", 8, {"ok", "len"});
  auto* status_ind = make_signal("StatusInd", 8, {"code"});
  auto* mgmt_cmd = make_signal("MgmtCmd", 16, {"op"});
  auto* mgmt_rsp = make_signal("MgmtRsp", 16, {"op"});

  // -------------------------------------------------------------------------
  // Functional components (Figure 4) and their EFSMs.
  // -------------------------------------------------------------------------
  ApplicationBuilder ab(m, sys.prof);
  sys.app = &ab.application("Tutmac_Protocol",
                            {{"RealTimeType", "hard"}, {"Priority", "1"}});

  // Management.
  auto& mng_cls = ab.component(
      "Management", {{"CodeMemory", "14336"}, {"RealTimeType", "soft"}});
  m.add_port(mng_cls, "rmng").require(*mgmt_cmd).provide(*mgmt_rsp);
  m.add_port(mng_cls, "ui");
  m.add_port(mng_cls, "dp");
  m.add_port(mng_cls, "rch");
  {
    auto& sm = *mng_cls.behavior();
    auto& boot = m.add_state(sm, "Boot", true);
    boot.on_entry(Action::set_timer("mtick", cycles(static_cast<long>(
                                                 options.mgmt_period))));
    auto& run = m.add_state(sm, "Run");
    m.add_timer_transition(sm, boot, run, "mtick")
        .add_effect(Action::compute(cycles(options.c_mng)))
        .add_effect(Action::send("rmng", *mgmt_cmd, {"1"}))
        .add_effect(Action::set_timer(
            "mtick", cycles(static_cast<long>(options.mgmt_period))));
    m.add_timer_transition(sm, run, run, "mtick")
        .add_effect(Action::compute(cycles(options.c_mng)))
        .add_effect(Action::send("rmng", *mgmt_cmd, {"1"}))
        .add_effect(Action::set_timer(
            "mtick", cycles(static_cast<long>(options.mgmt_period))));
    m.add_transition(sm, run, run, *mgmt_rsp, "rmng")
        .add_effect(Action::compute(cycles(options.c_mng_rsp)));
    // A response arriving before the first command round is a protocol
    // violation; dropped by default semantics (no transition from Boot).
  }

  // RadioManagement.
  auto& rmng_cls = ab.component(
      "RadioManagement", {{"CodeMemory", "6144"}, {"RealTimeType", "soft"}});
  m.add_port(rmng_cls, "rch").provide(*status_ind);
  m.add_port(rmng_cls, "mng").provide(*mgmt_cmd).require(*mgmt_rsp);
  m.add_port(rmng_cls, "phy");
  {
    auto& sm = *rmng_cls.behavior();
    auto& idle = m.add_state(sm, "Idle", true);
    m.add_transition(sm, idle, idle, *status_ind, "rch")
        .add_effect(Action::compute(cycles(options.c_status)));
    m.add_transition(sm, idle, idle, *mgmt_cmd, "mng")
        .add_effect(Action::compute(cycles(options.c_rmng)))
        .add_effect(Action::send("mng", *mgmt_rsp, {"op"}));
  }

  // RadioChannelAccess — the hot component (group1 dominates Table 4).
  auto& rca_cls = ab.component(
      "RadioChannelAccess", {{"CodeMemory", "20480"}, {"RealTimeType", "hard"}});
  m.add_port(rca_cls, "phy")
      .provide(*sys.radio_slot)
      .provide(*sys.rx_frame)
      .require(*tx_frame);
  m.add_port(rca_cls, "dtx").provide(*fragment);
  m.add_port(rca_cls, "drx").require(*rx_data);
  m.add_port(rca_cls, "rmng").require(*status_ind);
  m.add_port(rca_cls, "mng");
  {
    auto& sm = *rca_cls.behavior();
    sm.declare_variable("pending", 0);
    sm.declare_variable("slotcnt", 0);
    auto& idle = m.add_state(sm, "Idle", true);
    const std::string status_guard =
        "slotcnt % " + std::to_string(options.status_interval) + " == 0";
    // Declaration order is priority order: most specific guard first.
    m.add_transition(sm, idle, idle, *sys.radio_slot, "phy")
        .set_guard("pending > 0 && " + status_guard)
        .add_effect(Action::compute(cycles(options.c_slot)))
        .add_effect(Action::assign("pending", "pending - 1"))
        .add_effect(Action::send("phy", *tx_frame, {"64"}))
        .add_effect(Action::send("rmng", *status_ind, {"slotcnt"}))
        .add_effect(Action::assign("slotcnt", "slotcnt + 1"));
    m.add_transition(sm, idle, idle, *sys.radio_slot, "phy")
        .set_guard("pending > 0")
        .add_effect(Action::compute(cycles(options.c_slot)))
        .add_effect(Action::assign("pending", "pending - 1"))
        .add_effect(Action::send("phy", *tx_frame, {"64"}))
        .add_effect(Action::assign("slotcnt", "slotcnt + 1"));
    m.add_transition(sm, idle, idle, *sys.radio_slot, "phy")
        .set_guard(status_guard)
        .add_effect(Action::compute(cycles(options.c_slot)))
        .add_effect(Action::send("rmng", *status_ind, {"slotcnt"}))
        .add_effect(Action::assign("slotcnt", "slotcnt + 1"));
    m.add_transition(sm, idle, idle, *sys.radio_slot, "phy")
        .add_effect(Action::compute(cycles(options.c_slot)))
        .add_effect(Action::assign("slotcnt", "slotcnt + 1"));
    m.add_transition(sm, idle, idle, *fragment, "dtx")
        .add_effect(Action::compute(cycles(options.c_frag_queue)))
        .add_effect(Action::assign("pending", "pending + 1"));
    m.add_transition(sm, idle, idle, *sys.rx_frame, "phy")
        .add_effect(Action::compute(cycles(options.c_rx)))
        .add_effect(Action::send("drx", *rx_data, {"len"}));
  }

  // MsduReceiver / MsduDeliverer (inside UserInterface).
  auto& msdu_rec_cls = ab.component("MsduReceiver", {{"CodeMemory", "4096"}});
  m.add_port(msdu_rec_cls, "user").provide(*sys.user_msdu);
  m.add_port(msdu_rec_cls, "dp").require(*msdu_to_frag);
  {
    auto& sm = *msdu_rec_cls.behavior();
    auto& idle = m.add_state(sm, "Idle", true);
    m.add_transition(sm, idle, idle, *sys.user_msdu, "user")
        .add_effect(Action::compute(cycles(options.c_msdu_rec)))
        .add_effect(Action::send("dp", *msdu_to_frag, {"len"}));
  }
  auto& msdu_del_cls = ab.component("MsduDeliverer", {{"CodeMemory", "4096"}});
  m.add_port(msdu_del_cls, "dp").provide(*msdu_out);
  m.add_port(msdu_del_cls, "user").require(*user_msdu_ind);
  {
    auto& sm = *msdu_del_cls.behavior();
    auto& idle = m.add_state(sm, "Idle", true);
    m.add_transition(sm, idle, idle, *msdu_out, "dp")
        .add_effect(Action::compute(cycles(options.c_msdu_del)))
        .add_effect(Action::send("user", *user_msdu_ind, {"len"}));
  }

  // Fragmenter / CrcCalculator (inside DataProcessing).
  auto& frag_cls = ab.component("Fragmenter", {{"CodeMemory", "8192"}});
  m.add_port(frag_cls, "up_in").provide(*msdu_to_frag);
  m.add_port(frag_cls, "tx").require(*fragment);
  m.add_port(frag_cls, "rx").provide(*rx_data);
  m.add_port(frag_cls, "down_out").require(*msdu_out);
  m.add_port(frag_cls, "crc").require(*crc_req).provide(*crc_rsp);
  {
    auto& sm = *frag_cls.behavior();
    auto& idle = m.add_state(sm, "Idle", true);
    m.add_transition(sm, idle, idle, *msdu_to_frag, "up_in")
        .add_effect(Action::compute(cycles(options.c_frag)))
        .add_effect(Action::send("crc", *crc_req, {"len"}));
    m.add_transition(sm, idle, idle, *crc_rsp, "crc")
        .add_effect(Action::compute(cycles(options.c_frag_rsp)))
        .add_effect(Action::send("tx", *fragment, {"len"}));
    m.add_transition(sm, idle, idle, *rx_data, "rx")
        .add_effect(Action::compute(cycles(options.c_defrag)))
        .add_effect(Action::send("down_out", *msdu_out, {"len"}));
  }
  auto& crc_cls = ab.component("CrcCalculator", {{"CodeMemory", "1024"}});
  m.add_port(crc_cls, "host").provide(*crc_req).require(*crc_rsp);
  {
    auto& sm = *crc_cls.behavior();
    auto& idle = m.add_state(sm, "Idle", true);
    m.add_transition(sm, idle, idle, *crc_req, "host")
        .add_effect(Action::compute(cycles(options.c_crc)))
        .add_effect(Action::send("host", *crc_rsp, {"1", "len"}));
  }

  // -------------------------------------------------------------------------
  // Structural components and composite structure (Figure 5).
  // -------------------------------------------------------------------------
  sys.user_interface = &ab.structural("UserInterface");
  uml::Class& ui_cls = *sys.user_interface;
  m.add_port(ui_cls, "user").provide(*sys.user_msdu);
  m.add_port(ui_cls, "userout").require(*user_msdu_ind);
  m.add_port(ui_cls, "dpUp").require(*msdu_to_frag);
  m.add_port(ui_cls, "dpDown").provide(*msdu_out);
  auto& msdu_rec = ab.process_in(ui_cls, "msduRec", msdu_rec_cls,
                                 {{"Priority", "1"}, {"ProcessType", "general"}});
  auto& msdu_del = ab.process_in(ui_cls, "msduDel", msdu_del_cls,
                                 {{"Priority", "1"}, {"ProcessType", "general"}});
  m.connect_boundary(ui_cls, "user", "msduRec", "user");
  m.connect_boundary(ui_cls, "dpUp", "msduRec", "dp");
  m.connect_boundary(ui_cls, "dpDown", "msduDel", "dp");
  m.connect_boundary(ui_cls, "userout", "msduDel", "user");

  sys.data_processing = &ab.structural("DataProcessing");
  uml::Class& dp_cls = *sys.data_processing;
  m.add_port(dp_cls, "ui_up").provide(*msdu_to_frag);
  m.add_port(dp_cls, "ui_down").require(*msdu_out);
  m.add_port(dp_cls, "rch_tx").require(*fragment);
  m.add_port(dp_cls, "rch_rx").provide(*rx_data);
  auto& frag = ab.process_in(dp_cls, "frag", frag_cls,
                             {{"Priority", "2"}, {"ProcessType", "general"}});
  auto& crcp = ab.process_in(dp_cls, "crc", crc_cls,
                             {{"Priority", "1"}, {"ProcessType", "hardware"}});
  m.connect_boundary(dp_cls, "ui_up", "frag", "up_in");
  m.connect_boundary(dp_cls, "rch_tx", "frag", "tx");
  m.connect_boundary(dp_cls, "rch_rx", "frag", "rx");
  m.connect_boundary(dp_cls, "ui_down", "frag", "down_out");
  m.connect(dp_cls, "frag", "crc", "crc", "host");

  // Top-level parts and wiring.
  auto& ui_part = m.add_part(*sys.app, "ui", ui_cls);
  auto& dp_part = m.add_part(*sys.app, "dp", dp_cls);
  (void)ui_part;
  (void)dp_part;
  auto& mng = ab.process("mng", mng_cls,
                         {{"Priority", "1"}, {"ProcessType", "general"}});
  auto& rmng = ab.process("rmng", rmng_cls,
                          {{"Priority", "2"}, {"ProcessType", "general"}});
  auto& rca = ab.process("rca", rca_cls,
                         {{"Priority", "3"}, {"ProcessType", "general"}});

  m.add_port(*sys.app, "puser").provide(*sys.user_msdu);
  m.add_port(*sys.app, "puserout").require(*user_msdu_ind);
  m.add_port(*sys.app, "pphy")
      .provide(*sys.radio_slot)
      .provide(*sys.rx_frame)
      .require(*tx_frame);

  m.connect_boundary(*sys.app, "puser", "ui", "user");
  m.connect_boundary(*sys.app, "puserout", "ui", "userout");
  m.connect(*sys.app, "ui", "dpUp", "dp", "ui_up");
  m.connect(*sys.app, "dp", "ui_down", "ui", "dpDown");
  m.connect(*sys.app, "dp", "rch_tx", "rca", "dtx");
  m.connect(*sys.app, "rca", "drx", "dp", "rch_rx");
  m.connect_boundary(*sys.app, "pphy", "rca", "phy");
  m.connect(*sys.app, "rca", "rmng", "rmng", "rch");
  m.connect(*sys.app, "mng", "rmng", "rmng", "mng");

  sys.processes = {{"mng", &mng},         {"rmng", &rmng},
                   {"rca", &rca},         {"msduRec", &msdu_rec},
                   {"msduDel", &msdu_del}, {"frag", &frag},
                   {"crc", &crcp}};

  // -------------------------------------------------------------------------
  // Process grouping (Figure 6) per the chosen alternative.
  // -------------------------------------------------------------------------
  std::vector<std::pair<std::string, std::vector<uml::Property*>>> grouping;
  switch (options.grouping) {
    case GroupingChoice::Paper:
      grouping = {{"group1", {&rca, &rmng}},
                  {"group2", {&msdu_rec, &msdu_del}},
                  {"group3", {&mng, &frag}},
                  {"group4", {&crcp}}};
      break;
    case GroupingChoice::PerProcess:
      grouping = {{"g_rca", {&rca}},         {"g_rmng", {&rmng}},
                  {"g_msduRec", {&msdu_rec}}, {"g_msduDel", {&msdu_del}},
                  {"g_mng", {&mng}},         {"g_frag", {&frag}},
                  {"group4", {&crcp}}};
      break;
    case GroupingChoice::SingleSw:
      grouping = {{"group_sw",
                   {&rca, &rmng, &msdu_rec, &msdu_del, &mng, &frag}},
                  {"group4", {&crcp}}};
      break;
  }
  for (auto& [name, members] : grouping) {
    const bool hw = members.size() == 1 && members[0] == &crcp;
    auto& group = ab.group(
        name, {{"ProcessType", hw ? "hardware" : "general"},
               {"Fixed", hw ? "true" : "false"}});
    sys.groups[name] = &group;
    for (uml::Property* member : members) ab.assign(*member, group);
  }

  // -------------------------------------------------------------------------
  // TUTWLAN platform (Figure 7).
  // -------------------------------------------------------------------------
  PlatformBuilder pb(m, sys.prof);
  sys.platform = &pb.platform("TUTWLAN_Platform");
  auto& cpu_type = pb.component_type(
      "NiosProcessor",
      {{"Type", "general"},
       {"Frequency", "50"},
       {"Area", "6000.0"},
       {"Power", "120.5"},
       {"Scheduling", options.scheduling},
       {"ContextSwitchCycles", std::to_string(options.ctx_switch_cycles)}});
  auto& acc_type = pb.component_type(
      "CrcAccelerator", {{"Type", "hw_accelerator"},
                         {"Frequency", "100"},
                         {"Area", "850.0"},
                         {"Power", "15.0"}});
  auto& p1 = pb.instance("processor1", cpu_type,
                         {{"Priority", "1"}, {"IntMemory", "65536"}});
  auto& p2 = pb.instance("processor2", cpu_type,
                         {{"Priority", "1"}, {"IntMemory", "65536"}});
  auto& p3 = pb.instance("processor3", cpu_type,
                         {{"Priority", "1"}, {"IntMemory", "65536"}});
  auto& acc = pb.instance("accelerator1", acc_type, {{"IntMemory", "2048"}});

  const Tags seg_tags = {{"DataWidth", "32"},
                         {"Frequency", "100"},
                         {"Arbitration", options.arbitration},
                         {"BurstLength", "16"}};
  auto& seg1 = pb.segment("hibisegment1", seg_tags);
  auto& seg2 = pb.segment("hibisegment2", seg_tags);
  Tags bridge_tags = seg_tags;
  bridge_tags["DataWidth"] = "32";
  auto& bridge = pb.segment("bridge", bridge_tags);

  pb.wrapper(p1, seg1, {{"BufferSize", "128"}, {"MaxTime", "32"}});
  pb.wrapper(p2, seg1, {{"BufferSize", "128"}, {"MaxTime", "32"}});
  pb.wrapper(p3, seg2, {{"BufferSize", "128"}, {"MaxTime", "32"}});
  pb.wrapper(acc, seg2, {{"BufferSize", "64"}, {"MaxTime", "16"}});
  pb.bridge_link(seg1, bridge);
  pb.bridge_link(bridge, seg2);

  sys.instances = {{"processor1", &p1},
                   {"processor2", &p2},
                   {"processor3", &p3},
                   {"accelerator1", &acc}};
  sys.segments = {{"hibisegment1", &seg1},
                  {"hibisegment2", &seg2},
                  {"bridge", &bridge}};

  // -------------------------------------------------------------------------
  // Mapping (Figure 8) per the chosen alternative.
  // -------------------------------------------------------------------------
  mapping::MappingBuilder mb(m, sys.prof);
  std::vector<uml::Property*> sw_targets = {&p1, &p2, &p3};
  std::size_t rr = 0;
  for (auto& [name, group] : sys.groups) {
    const bool hw = group->tagged_value("ProcessType") ==
                    profile::tags::ProcessHardware;
    if (hw) {
      mb.map(*group, acc, /*fixed=*/true);
      continue;
    }
    switch (options.mapping) {
      case MappingChoice::Paper:
        if (name == "group2") {
          mb.map(*group, p2);
        } else {
          mb.map(*group, p1, name == "group1");
        }
        break;
      case MappingChoice::LoadBalanced:
        mb.map(*group, *sw_targets[rr++ % sw_targets.size()]);
        break;
      case MappingChoice::SinglePe:
        mb.map(*group, p1);
        break;
    }
  }

  return sys;
}

void System::inject_workload(sim::Simulation& sim) const {
  inject_workload(sim, options);
}

void System::inject_workload(sim::Simulation& sim, const Options& with) const {
  const Options& o = with;
  auto count_of = [&](sim::Time start, sim::Time period) {
    return start >= o.horizon ? 0u
                              : static_cast<std::size_t>(
                                    (o.horizon - start) / period);
  };
  // Radio slots drive the MAC; offsets desynchronize the streams.
  sim.inject_periodic(o.slot_period, o.slot_period,
                      count_of(o.slot_period, o.slot_period), "pphy",
                      *radio_slot);
  sim.inject_periodic(o.rx_period + 7'777, o.rx_period,
                      count_of(o.rx_period + 7'777, o.rx_period), "pphy",
                      *rx_frame, {256});
  sim.inject_periodic(o.msdu_period + 3'333, o.msdu_period,
                      count_of(o.msdu_period + 3'333, o.msdu_period), "puser",
                      *user_msdu, {512});
}

std::unique_ptr<sim::Simulation> System::simulate(
    const mapping::SystemView& view) const {
  sim::Config cfg;
  cfg.horizon = options.horizon;
  auto simulation = std::make_unique<sim::Simulation>(view, cfg);
  inject_workload(*simulation);
  simulation->run();
  return simulation;
}

}  // namespace tut::tutmac
