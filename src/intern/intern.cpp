#include "intern/intern.hpp"

#include <stdexcept>

namespace tut::intern {

Id Table::intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

Id Table::find(std::string_view name) const noexcept {
  auto it = index_.find(name);
  return it != index_.end() ? it->second : kNoId;
}

const std::string& Table::name(Id id) const {
  if (id >= names_.size()) {
    throw std::out_of_range("intern::Table: invalid id " + std::to_string(id));
  }
  return names_[id];
}

}  // namespace tut::intern
