// tut::intern — string interning for the simulate→profile→explore hot paths.
//
// Process, signal and component names recur millions of times across a
// simulation log and its downstream analyses. Interning maps each distinct
// name to a dense uint32 id once; the hot paths then key flat vectors and
// integer-keyed hash maps instead of std::map<std::string, ...>. The
// string-based public APIs stay; they translate at the boundary.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tut::intern {

/// Dense interned-name id. Ids are assigned 0, 1, 2, ... in first-seen
/// order, so a Table with n names supports vector<...>(n) side tables.
using Id = std::uint32_t;

/// Sentinel for "no name" (e.g. the peer field of a Run log record).
inline constexpr Id kNoId = 0xffffffffu;

/// Name <-> id table. Not thread-safe while mutating; safe to share across
/// threads once fully built (all members are const-qualified reads).
class Table {
 public:
  /// Id of `name`, interning it on first sight.
  Id intern(std::string_view name);

  /// Id of `name`, or kNoId when it was never interned.
  Id find(std::string_view name) const noexcept;

  /// The name behind an id. Throws std::out_of_range for invalid ids.
  const std::string& name(Id id) const;

  /// Number of distinct names interned (== one past the largest id).
  std::size_t size() const noexcept { return names_.size(); }

 private:
  struct Hash {
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  // The deque owns the strings; deque push_back never relocates existing
  // elements, so the map's string_view keys stay valid.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Id, Hash> index_;
};

}  // namespace tut::intern
