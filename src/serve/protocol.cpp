#include "serve/protocol.hpp"

namespace tut::serve {

namespace wire {

std::string frame(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw ProtocolError("serve.frame.truncated",
                        "payload ends after " + std::to_string(bytes_.size()) +
                            " bytes, " + std::to_string(n) +
                            " more needed at offset " + std::to_string(pos_));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string_view Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  const std::string_view s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

}  // namespace wire

using wire::put_i64;
using wire::put_str;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

void encode_workload(std::string& out, const std::vector<WorkloadEntry>& w) {
  put_u32(out, static_cast<std::uint32_t>(w.size()));
  for (const WorkloadEntry& e : w) {
    put_str(out, e.port);
    put_str(out, e.signal);
    put_str(out, e.param);
    put_u64(out, e.period);
    put_u64(out, e.first_offset);
    put_u32(out, static_cast<std::uint32_t>(e.args.size()));
    for (const std::int64_t a : e.args) put_i64(out, a);
  }
}

std::vector<WorkloadEntry> decode_workload(wire::Reader& r) {
  std::vector<WorkloadEntry> w(r.u32());
  for (WorkloadEntry& e : w) {
    e.port = std::string(r.str());
    e.signal = std::string(r.str());
    e.param = std::string(r.str());
    e.period = r.u64();
    e.first_offset = r.u64();
    e.args.resize(r.u32());
    for (std::int64_t& a : e.args) a = r.i64();
  }
  return w;
}

// -- simulate ---------------------------------------------------------------

std::string SimulateRequest::encode() const {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Simulate));
  put_str(out, model_xml);
  put_u32(out, static_cast<std::uint32_t>(backend));
  put_u64(out, horizon);
  put_u8(out, has_seed ? 1 : 0);
  put_u64(out, seed);
  put_str(out, faults_xml);
  put_u8(out, want_log ? 1 : 0);
  encode_workload(out, workload);
  return out;
}

SimulateRequest SimulateRequest::decode(wire::Reader& r) {
  SimulateRequest q;
  q.model_xml = std::string(r.str());
  q.backend = static_cast<BackendChoice>(r.u32());
  q.horizon = r.u64();
  q.has_seed = r.u8() != 0;
  q.seed = r.u64();
  q.faults_xml = std::string(r.str());
  q.want_log = r.u8() != 0;
  q.workload = decode_workload(r);
  return q;
}

std::string SimulateResponse::encode() const {
  std::string out;
  put_u8(out, warm ? 1 : 0);
  put_str(out, backend_name);
  put_u64(out, image_hash);
  put_u64(out, events);
  put_u64(out, records);
  put_u64(out, end_time);
  put_u64(out, digest);
  put_str(out, log_text);
  return out;
}

SimulateResponse SimulateResponse::decode(wire::Reader& r) {
  SimulateResponse p;
  p.warm = r.u8() != 0;
  p.backend_name = std::string(r.str());
  p.image_hash = r.u64();
  p.events = r.u64();
  p.records = r.u64();
  p.end_time = r.u64();
  p.digest = r.u64();
  p.log_text = std::string(r.str());
  return p;
}

// -- batch ------------------------------------------------------------------

std::string BatchRequest::encode() const {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Batch));
  put_str(out, model_xml);
  put_u32(out, static_cast<std::uint32_t>(backend));
  put_u64(out, horizon);
  put_u64(out, seed);
  put_u32(out, count);
  put_u32(out, threads);
  put_str(out, faults_xml);
  encode_workload(out, workload);
  return out;
}

BatchRequest BatchRequest::decode(wire::Reader& r) {
  BatchRequest q;
  q.model_xml = std::string(r.str());
  q.backend = static_cast<BackendChoice>(r.u32());
  q.horizon = r.u64();
  q.seed = r.u64();
  q.count = r.u32();
  q.threads = r.u32();
  q.faults_xml = std::string(r.str());
  q.workload = decode_workload(r);
  return q;
}

std::string BatchResponse::encode() const {
  std::string out;
  put_u8(out, warm ? 1 : 0);
  put_str(out, backend_name);
  put_u64(out, image_hash);
  put_u32(out, static_cast<std::uint32_t>(rows.size()));
  for (const Row& row : rows) {
    put_u64(out, row.seed);
    put_u64(out, row.events);
    put_u64(out, row.records);
    put_u64(out, row.end_time);
    put_u64(out, row.hash);
    put_str(out, row.error);
  }
  return out;
}

BatchResponse BatchResponse::decode(wire::Reader& r) {
  BatchResponse p;
  p.warm = r.u8() != 0;
  p.backend_name = std::string(r.str());
  p.image_hash = r.u64();
  p.rows.resize(r.u32());
  for (Row& row : p.rows) {
    row.seed = r.u64();
    row.events = r.u64();
    row.records = r.u64();
    row.end_time = r.u64();
    row.hash = r.u64();
    row.error = std::string(r.str());
  }
  return p;
}

// -- lint -------------------------------------------------------------------

std::string LintRequest::encode() const {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Lint));
  put_str(out, model_xml);
  put_u8(out, json ? 1 : 0);
  put_u8(out, werror ? 1 : 0);
  return out;
}

LintRequest LintRequest::decode(wire::Reader& r) {
  LintRequest q;
  q.model_xml = std::string(r.str());
  q.json = r.u8() != 0;
  q.werror = r.u8() != 0;
  return q;
}

std::string LintResponse::encode() const {
  std::string out;
  put_u8(out, warm ? 1 : 0);
  put_u8(out, ok ? 1 : 0);
  put_str(out, text);
  return out;
}

LintResponse LintResponse::decode(wire::Reader& r) {
  LintResponse p;
  p.warm = r.u8() != 0;
  p.ok = r.u8() != 0;
  p.text = std::string(r.str());
  return p;
}

// -- campaign ---------------------------------------------------------------

std::string CampaignRequest::encode() const {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Campaign));
  put_str(out, campaign_xml);
  put_u32(out, static_cast<std::uint32_t>(backend));
  put_u32(out, threads);
  put_u32(out, static_cast<std::uint32_t>(images.size()));
  for (const auto& [name, xml] : images) {
    put_str(out, name);
    put_str(out, xml);
  }
  put_u32(out, static_cast<std::uint32_t>(files.size()));
  for (const auto& [path, content] : files) {
    put_str(out, path);
    put_str(out, content);
  }
  encode_workload(out, workload);
  return out;
}

CampaignRequest CampaignRequest::decode(wire::Reader& r) {
  CampaignRequest q;
  q.campaign_xml = std::string(r.str());
  q.backend = static_cast<BackendChoice>(r.u32());
  q.threads = r.u32();
  q.images.resize(r.u32());
  for (auto& [name, xml] : q.images) {
    name = std::string(r.str());
    xml = std::string(r.str());
  }
  q.files.resize(r.u32());
  for (auto& [path, content] : q.files) {
    path = std::string(r.str());
    content = std::string(r.str());
  }
  q.workload = decode_workload(r);
  return q;
}

std::string CampaignResponse::encode() const {
  std::string out;
  put_u32(out, warm_images);
  put_str(out, backend_name);
  put_u64(out, digest);
  put_u64(out, scenarios);
  put_u8(out, completed ? 1 : 0);
  put_str(out, text);
  return out;
}

CampaignResponse CampaignResponse::decode(wire::Reader& r) {
  CampaignResponse p;
  p.warm_images = r.u32();
  p.backend_name = std::string(r.str());
  p.digest = r.u64();
  p.scenarios = r.u64();
  p.completed = r.u8() != 0;
  p.text = std::string(r.str());
  return p;
}

// -- admin ------------------------------------------------------------------

std::string StatsResponse::encode() const {
  std::string out;
  put_u64(out, entries);
  put_u64(out, bytes);
  put_u64(out, capacity);
  put_u64(out, hits);
  put_u64(out, misses);
  put_u64(out, builds);
  put_u64(out, evictions);
  put_u64(out, inflight_waits);
  put_u64(out, contexts);
  return out;
}

StatsResponse StatsResponse::decode(wire::Reader& r) {
  StatsResponse p;
  p.entries = r.u64();
  p.bytes = r.u64();
  p.capacity = r.u64();
  p.hits = r.u64();
  p.misses = r.u64();
  p.builds = r.u64();
  p.evictions = r.u64();
  p.inflight_waits = r.u64();
  p.contexts = r.u64();
  return p;
}

std::string StatsResponse::to_text() const {
  std::string out = "[serve.stats] cache " + std::to_string(entries) +
                    " entries, " + std::to_string(bytes) + " bytes (cap ";
  out += capacity == 0 ? "unbounded" : std::to_string(capacity);
  out += "), " + std::to_string(hits) + " hits, " + std::to_string(misses) +
         " misses, " + std::to_string(builds) + " builds, " +
         std::to_string(evictions) + " evictions, " +
         std::to_string(inflight_waits) + " single-flight waits, " +
         std::to_string(contexts) + " pooled contexts\n";
  return out;
}

std::string EvictRequest::encode() const {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Evict));
  put_u8(out, all ? 1 : 0);
  put_u64(out, key);
  return out;
}

EvictRequest EvictRequest::decode(wire::Reader& r) {
  EvictRequest q;
  q.all = r.u8() != 0;
  q.key = r.u64();
  return q;
}

std::string EvictResponse::encode() const {
  std::string out;
  put_u64(out, evicted);
  put_u64(out, bytes_freed);
  return out;
}

EvictResponse EvictResponse::decode(wire::Reader& r) {
  EvictResponse p;
  p.evicted = r.u64();
  p.bytes_freed = r.u64();
  return p;
}

std::string EvictResponse::to_text() const {
  return "[serve.evict] evicted " + std::to_string(evicted) + " entries, " +
         std::to_string(bytes_freed) + " bytes freed\n";
}

std::string ShutdownResponse::encode() const {
  std::string out;
  put_u64(out, entries_dropped);
  return out;
}

ShutdownResponse ShutdownResponse::decode(wire::Reader& r) {
  ShutdownResponse p;
  p.entries_dropped = r.u64();
  return p;
}

std::string ShutdownResponse::to_text() const {
  return "[serve.shutdown] dropping " + std::to_string(entries_dropped) +
         " cache entries, bye\n";
}

std::string encode_stats_request() {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Stats));
  return out;
}

std::string encode_shutdown_request() {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(RequestKind::Shutdown));
  return out;
}

// -- response envelope ------------------------------------------------------

std::string ok_response(std::string_view body) {
  std::string out;
  out.reserve(4 + body.size());
  put_u32(out, 0);
  out.append(body);
  return out;
}

std::string error_response(std::string_view tag, std::string_view message) {
  std::string out;
  put_u32(out, 1);
  put_str(out, tag);
  put_str(out, message);
  return out;
}

std::string_view decode_response(std::string_view payload) {
  wire::Reader r(payload);
  const std::uint32_t status = r.u32();
  if (status == 0) return payload.substr(4);
  const std::string tag(r.str());
  const std::string message(r.str());
  throw std::runtime_error("serve: [" + tag + "] " + message);
}

}  // namespace tut::serve
