// tut::serve — the simulation service: Engine (request handling) and
// Server (TCP transport).
//
// The split is deliberate: Engine maps one request payload to one response
// payload with no sockets anywhere in sight, so tests and benches drive the
// exact production request path in-process (serve::Engine::handle is what
// bench_serve measures). Server owns the listening socket, the accept loop
// and a worker pool bounded by the profile's concurrency cap; each worker
// speaks the frame protocol of serve/protocol.hpp over one connection at a
// time.
//
// Warm-request fast path: Engine resolves the model through ModelCache
// (content-hash lookup), pops a pooled Simulation context, resets it under
// the request's config, injects the declared workload and runs — no XML
// parse, no lowering, no behaviour compilation. Byte-identity of warm and
// cold responses is inherited from the Simulation::reset contract and
// pinned by tests/test_serve.cpp and the serve-smoke CI job.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "sim/resource.hpp"

namespace tut::serve {

/// The socket-free request processor: one instance per daemon, shared by
/// every connection worker. Thread-safe — all mutable state lives in the
/// ModelCache, which synchronizes itself.
class Engine {
 public:
  explicit Engine(const sim::ResourceProfile& profile);

  /// Handles one request payload (everything after the frame header) and
  /// returns the response payload. Never throws: every failure — malformed
  /// payload, unknown kind, model defect, envelope miss — becomes a
  /// status-1 error response carrying the failure's rule tag. Sets
  /// `*shutdown` when the request was a shutdown (the transport should stop
  /// accepting after sending the response).
  std::string handle(std::string_view payload, bool* shutdown = nullptr);

  ModelCache& cache() noexcept { return cache_; }
  const sim::ResourceProfile& profile() const noexcept { return profile_; }

 private:
  std::string do_simulate(wire::Reader& r);
  std::string do_batch(wire::Reader& r);
  std::string do_lint(wire::Reader& r);
  std::string do_campaign(wire::Reader& r);
  std::string do_stats();
  std::string do_evict(wire::Reader& r);
  std::string do_shutdown();

  /// Cache acquire with the CLI's native-backend fallback: a [native.*]
  /// build failure (typically no C++ compiler) retries as interpreter
  /// instead of failing the request. Results are byte-identical either way.
  ModelCache::Acquired acquire(std::string_view model_xml,
                               BackendChoice backend) const;

  sim::ResourceProfile profile_;
  mutable ModelCache cache_;
};

/// The TCP transport: accepts connections on 127.0.0.1 and feeds their
/// frames through a shared Engine. `threads` workers serve one connection
/// each (clamped by the profile's concurrency cap); a shutdown request
/// stops the accept loop after its response is written.
class Server {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port —
  /// read it back with port()). Throws std::runtime_error when the bind
  /// fails (port in use, no permission).
  Server(Engine& engine, std::uint16_t port, std::size_t threads = 0);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  std::size_t threads() const noexcept { return threads_; }

  /// Runs the accept loop until stop() or a shutdown request. Connections
  /// are queued to the worker pool; run() joins every worker before
  /// returning, so the caller owns a quiescent server afterwards.
  void run();
  /// Stops the accept loop from another thread (idempotent).
  void stop();

 private:
  void worker();
  void serve_connection(int fd);

  Engine& engine_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t threads_ = 1;
  std::atomic<bool> stopping_{false};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;
  bool closed_ = false;  ///< no more connections will be queued
};

/// The thin client: one connection, blocking call/response. Throws
/// std::runtime_error on connect/transport failures and rethrows server-side
/// errors as the "serve: [tag] message" the error response carries.
class Client {
 public:
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one framed request payload and returns the response *body*
  /// (status stripped; a status-1 response throws instead).
  std::string call(std::string_view request_payload);

 private:
  std::string read_frame();
  int fd_ = -1;
};

}  // namespace tut::serve
