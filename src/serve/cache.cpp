#include "serve/cache.hpp"

#include <cstring>
#include <utility>

#include "codegen/native.hpp"
#include "serve/protocol.hpp"
#include "uml/serialize.hpp"

namespace tut::serve {

namespace {

// FNV-1a 64 mixing, delimited per field (same constants as the log
// digests), processed four 64-bit lanes at a time. The byte-serial FNV
// loop is a single multiply-latency dependency chain (~3 cycles/byte) —
// over a 30 KB model XML that alone costs ~45 us, dominating a warm
// request. Four independent lanes (seeded with distinct rotations of the
// offset basis, folded together length-salted at the end) run in the
// multiplier pipeline concurrently, cutting the hash to well under a tenth
// of that while keeping the key deterministic, order-sensitive and
// 64-bit-distributed. Keys are in-memory only (never persisted), so the
// lane layout can evolve freely.
struct Fnv {
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = kOffset;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    if (n >= 64) {
      std::uint64_t lane[4] = {h, h ^ 0x9e3779b97f4a7c15ull,
                               h ^ 0xc2b2ae3d27d4eb4full,
                               h ^ 0x165667b19e3779f9ull};
      while (n >= 32) {
        std::uint64_t w[4];
        std::memcpy(w, p, 32);
        for (int i = 0; i < 4; ++i) lane[i] = (lane[i] ^ w[i]) * kPrime;
        p += 32;
        n -= 32;
      }
      h = lane[0];
      for (int i = 1; i < 4; ++i) h = (h ^ lane[i]) * kPrime;
    }
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
  }
  void str(std::string_view s) {
    bytes(s.data(), s.size());
    u64(s.size());  // length-salt: lane folding must not erase boundaries
    const unsigned char delim = 0xff;
    bytes(&delim, 1);
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
};

}  // namespace

ModelCache::ModelCache(const sim::ResourceProfile& profile)
    : profile_(profile) {}

std::uint64_t ModelCache::key_of(std::string_view model_xml,
                                 sim::Backend backend) const {
  Fnv fnv;
  fnv.str(model_xml);
  fnv.u64(backend == sim::Backend::Native ? 1 : 0);
  // Profile caps: entries lowered under different envelopes never collide
  // (the daemon has one profile, so in practice this salts the key space).
  fnv.u64(profile_.log_records);
  fnv.u64(profile_.event_queue);
  fnv.u64(profile_.arena_bytes);
  fnv.u64(profile_.cache_bytes);
  return fnv.h;
}

ModelCache::EntryPtr ModelCache::build_entry(std::uint64_t key,
                                             std::string_view model_xml,
                                             sim::Backend backend) const {
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->xml = std::string(model_xml);
  // The parse reads straight from the request bytes through xml::Cursor; the
  // arena lives under the profile's existing ceiling.
  entry->model = uml::from_xml_text(
      entry->xml, static_cast<std::size_t>(profile_.arena_bytes));
  entry->view = std::make_unique<mapping::SystemView>(*entry->model);
  entry->compiled = sim::CompiledModel::build(*entry->view);
  if (backend == sim::Backend::Native) {
    entry->backend = codegen::NativeImage::build(entry->compiled);
  }
  // Footprint estimate for the byte ceiling: the XML copy plus a per-element
  // charge for the parsed model + lowered tables, plus a flat base (route
  // tables, name maps) and a native-image surcharge (dlopen'ed .so + host
  // tables). Deliberately coarse — eviction needs monotonicity in model
  // size, not accounting precision.
  entry->bytes = 4096 + entry->xml.size() + 256 * entry->model->size() +
                 (entry->backend != nullptr ? 65536 : 0);
  return entry;
}

ModelCache::Acquired ModelCache::acquire(std::string_view model_xml,
                                         sim::Backend backend) {
  const std::uint64_t key = key_of(model_xml, backend);
  Shard& shard = shard_of(key);

  std::shared_ptr<Inflight> flight;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
      it->second->stamp.store(++clock_, std::memory_order_relaxed);
      ++hits_;
      return {it->second, true};
    }
    if (const auto it = shard.building.find(key);
        it != shard.building.end()) {
      flight = it->second;
      ++inflight_waits_;
    } else {
      flight = std::make_shared<Inflight>();
      shard.building.emplace(key, flight);
      builder = true;
      ++misses_;
    }
  }

  if (!builder) {
    // Single-flight wait: the one builder finishes (or fails) for everyone.
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
    if (flight->error != nullptr) std::rethrow_exception(flight->error);
    ++hits_;
    return {flight->result, true};
  }

  EntryPtr entry;
  try {
    entry = build_entry(key, model_xml, backend);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mu);
      shard.building.erase(key);
    }
    {
      const std::lock_guard<std::mutex> lock(flight->mu);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }

  entry->stamp.store(++clock_, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.emplace(key, entry);
    shard.building.erase(key);
  }
  ++builds_;
  ++entries_;
  bytes_ += entry->bytes;
  {
    const std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = entry;
    flight->done = true;
  }
  flight->cv.notify_all();
  maybe_evict();
  return {entry, false};
}

void ModelCache::maybe_evict() {
  const std::uint64_t cap = profile_.cache_bytes;
  if (cap == 0) return;
  // One evictor at a time; shard locks are taken one by one below it (the
  // reverse order never happens, so this cannot deadlock).
  const std::lock_guard<std::mutex> evict_lock(evict_mu_);
  while (bytes_.load() > cap) {
    Shard* victim_shard = nullptr;
    std::uint64_t victim_key = 0;
    std::uint64_t victim_stamp = ~std::uint64_t{0};
    bool found = false;
    for (Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [key, entry] : shard.entries) {
        const std::uint64_t stamp =
            entry->stamp.load(std::memory_order_relaxed);
        if (!found || stamp < victim_stamp) {
          found = true;
          victim_shard = &shard;
          victim_key = key;
          victim_stamp = stamp;
        }
      }
    }
    if (!found) break;
    const std::lock_guard<std::mutex> lock(victim_shard->mu);
    const auto it = victim_shard->entries.find(victim_key);
    if (it == victim_shard->entries.end()) continue;
    // A hit may have refreshed the stamp since the scan; the entry is then
    // no longer the LRU victim — rescan instead of evicting hot data.
    if (it->second->stamp.load(std::memory_order_relaxed) != victim_stamp) {
      continue;
    }
    contexts_ -= [&] {
      const std::lock_guard<std::mutex> ctx_lock(it->second->ctx_mu);
      return static_cast<std::uint64_t>(it->second->pool.size());
    }();
    bytes_ -= it->second->bytes;
    --entries_;
    ++evictions_;
    victim_shard->entries.erase(it);
  }
}

std::unique_ptr<sim::Simulation> ModelCache::acquire_context(
    const EntryPtr& entry, const sim::Config& config) {
  {
    const std::lock_guard<std::mutex> lock(entry->ctx_mu);
    if (!entry->pool.empty()) {
      std::unique_ptr<sim::Simulation> sim = std::move(entry->pool.back());
      entry->pool.pop_back();
      --contexts_;
      sim->reset(config);
      return sim;
    }
  }
  return entry->backend != nullptr
             ? std::make_unique<sim::Simulation>(entry->backend, config)
             : std::make_unique<sim::Simulation>(entry->compiled, config);
}

void ModelCache::release_context(const EntryPtr& entry,
                                 std::unique_ptr<sim::Simulation> sim) {
  const std::lock_guard<std::mutex> lock(entry->ctx_mu);
  if (entry->pool.size() >= kPoolPerEntry) return;  // surplus: drop
  entry->pool.push_back(std::move(sim));
  ++contexts_;
}

bool ModelCache::evict(std::uint64_t key) {
  Shard& shard = shard_of(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  {
    const std::lock_guard<std::mutex> ctx_lock(it->second->ctx_mu);
    contexts_ -= static_cast<std::uint64_t>(it->second->pool.size());
  }
  bytes_ -= it->second->bytes;
  --entries_;
  ++evictions_;
  shard.entries.erase(it);
  return true;
}

std::pair<std::uint64_t, std::uint64_t> ModelCache::evict_all() {
  std::uint64_t count = 0;
  std::uint64_t freed = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      {
        const std::lock_guard<std::mutex> ctx_lock(entry->ctx_mu);
        contexts_ -= static_cast<std::uint64_t>(entry->pool.size());
      }
      freed += entry->bytes;
      ++count;
      bytes_ -= entry->bytes;
      --entries_;
      ++evictions_;
    }
    shard.entries.clear();
  }
  return {count, freed};
}

CacheStats ModelCache::stats() const {
  CacheStats s;
  s.entries = entries_.load();
  s.bytes = bytes_.load();
  s.capacity = profile_.cache_bytes;
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.builds = builds_.load();
  s.evictions = evictions_.load();
  s.inflight_waits = inflight_waits_.load();
  s.contexts = contexts_.load();
  return s;
}

}  // namespace tut::serve
