// tut::serve — the wire protocol of the simulation service.
//
// `tut serve` keeps compiled models hot in a long-lived daemon; this module
// defines the length-prefixed binary frames the daemon and the thin client
// exchange over a local TCP connection:
//
//   frame    := magic "TUTS" | u32 payload-length | payload
//   request  := u32 kind | kind-specific body
//   response := u32 status | body          (status 0)
//             | u32 status | tag | message (status != 0)
//
// All integers are little-endian; strings are u32 length + bytes. The
// payload layer is deliberately independent of sockets: Engine (server.hpp)
// consumes and produces payloads as strings, so tests and benches drive the
// full request path in-process without a network in the loop.
//
// Every malformed-input path is a classified ProtocolError with a stable
// "[serve.*]" rule tag, mirroring the [campaign.*]/[profile.*]/[native.*]
// conventions: [serve.frame.truncated] for short reads (a connection that
// dies mid-frame is an expected event, not a raw exception),
// [serve.frame.magic] for garbage bytes, [serve.frame.oversize] for frames
// above the hard ceiling, [serve.request.unknown] for an unknown kind.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tut::serve {

/// A classified protocol defect. The message embeds the rule tag
/// ("serve: [serve.frame.truncated] ..."), so client-side greps and server
/// logs stay attributable.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string tag, const std::string& what)
      : std::runtime_error("serve: [" + tag + "] " + what),
        tag_(std::move(tag)) {}

  /// The rule tag without brackets, e.g. "serve.frame.truncated".
  const std::string& tag() const noexcept { return tag_; }

 private:
  std::string tag_;
};

namespace wire {

/// Frame magic: the four raw bytes 'T' 'U' 'T' 'S'.
inline constexpr char kMagic[4] = {'T', 'U', 'T', 'S'};
/// Hard frame ceiling (magic + length excluded). A length above this is a
/// [serve.frame.oversize] error, never an allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

// -- little-endian primitive writers ---------------------------------------
inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
inline void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Wraps a payload into one frame (magic + length + payload).
std::string frame(std::string_view payload);

/// Bounds-checked little-endian reader over one payload. Every overrun
/// throws ProtocolError("serve.frame.truncated") — a frame that decodes
/// short is indistinguishable from a connection cut mid-write, and both get
/// the same classified answer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  /// A length-prefixed string view into the payload (zero-copy: the view
  /// aliases the request buffer, which outlives the request).
  std::string_view str();

  bool done() const noexcept { return pos_ == bytes_.size(); }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace wire

/// Request kinds (the first u32 of every request payload).
enum class RequestKind : std::uint32_t {
  Simulate = 1,
  Batch = 2,
  Lint = 3,
  Campaign = 4,
  Stats = 5,
  Evict = 6,
  Shutdown = 7,
};

/// Behaviour backend selector carried in requests. Mirrors sim::Backend.
enum class BackendChoice : std::uint32_t { Interpreter = 0, Native = 1 };

/// One periodic environment-injection stream: the server injects
/// `signal` through boundary port `port` at first = period + first_offset,
/// then every `period` ticks until the horizon ((horizon - first) / period
/// occurrences — exactly tutmac::System::inject_workload's arithmetic, so a
/// served TUTMAC run is byte-identical to a single-shot CLI run). When
/// `param` is non-empty, a campaign scenario's free axis of that name
/// overrides `period`.
struct WorkloadEntry {
  std::string port;
  std::string signal;
  std::string param;
  std::uint64_t period = 0;
  std::uint64_t first_offset = 0;
  std::vector<std::int64_t> args;
};

void encode_workload(std::string& out, const std::vector<WorkloadEntry>& w);
std::vector<WorkloadEntry> decode_workload(wire::Reader& r);

// -- simulate ---------------------------------------------------------------

struct SimulateRequest {
  std::string model_xml;
  BackendChoice backend = BackendChoice::Interpreter;
  std::uint64_t horizon = 0;
  bool has_seed = false;
  std::uint64_t seed = 0;
  std::string faults_xml;
  bool want_log = false;
  std::vector<WorkloadEntry> workload;

  std::string encode() const;
  static SimulateRequest decode(wire::Reader& r);
};

struct SimulateResponse {
  bool warm = false;  ///< compiled image came from the cache
  std::string backend_name;
  std::uint64_t image_hash = 0;
  std::uint64_t events = 0;
  std::uint64_t records = 0;
  std::uint64_t end_time = 0;
  std::uint64_t digest = 0;  ///< sim::log_digest of the rendered log
  std::string log_text;      ///< empty unless want_log

  std::string encode() const;
  static SimulateResponse decode(wire::Reader& r);
};

// -- batch ------------------------------------------------------------------

struct BatchRequest {
  std::string model_xml;
  BackendChoice backend = BackendChoice::Interpreter;
  std::uint64_t horizon = 0;
  std::uint64_t seed = 0;  ///< scenario i runs fault seed `seed + i`
  std::uint32_t count = 1;
  std::uint32_t threads = 0;
  std::string faults_xml;
  std::vector<WorkloadEntry> workload;

  std::string encode() const;
  static BatchRequest decode(wire::Reader& r);
};

struct BatchResponse {
  struct Row {
    std::uint64_t seed = 0;
    std::uint64_t events = 0;
    std::uint64_t records = 0;
    std::uint64_t end_time = 0;
    std::uint64_t hash = 0;
    std::string error;
  };
  bool warm = false;
  std::string backend_name;
  std::uint64_t image_hash = 0;
  std::vector<Row> rows;

  std::string encode() const;
  static BatchResponse decode(wire::Reader& r);
};

// -- lint -------------------------------------------------------------------

struct LintRequest {
  std::string model_xml;
  bool json = false;
  bool werror = false;

  std::string encode() const;
  static LintRequest decode(wire::Reader& r);
};

struct LintResponse {
  bool warm = false;  ///< report came from the cache
  bool ok = false;    ///< report.ok(werror)
  std::string text;   ///< rendered report (text or JSON per request)

  std::string encode() const;
  static LintResponse decode(wire::Reader& r);
};

// -- campaign ---------------------------------------------------------------

struct CampaignRequest {
  std::string campaign_xml;
  BackendChoice backend = BackendChoice::Interpreter;
  std::uint32_t threads = 0;
  /// One serialized model per mapping-axis name, in spec.mapping_names
  /// order ("paper" alone when the sweep names none).
  std::vector<std::pair<std::string, std::string>> images;
  /// Client-side files the campaign references (fault plans): path as the
  /// campaign names it → content. The server never reads client disks.
  std::vector<std::pair<std::string, std::string>> files;
  std::vector<WorkloadEntry> workload;

  std::string encode() const;
  static CampaignRequest decode(wire::Reader& r);
};

struct CampaignResponse {
  std::uint32_t warm_images = 0;  ///< how many images were cache hits
  std::string backend_name;
  std::uint64_t digest = 0;
  std::uint64_t scenarios = 0;
  bool completed = true;
  std::string text;  ///< CampaignAggregate::to_text block

  std::string encode() const;
  static CampaignResponse decode(wire::Reader& r);
};

// -- admin ------------------------------------------------------------------

struct StatsResponse {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t capacity = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t builds = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inflight_waits = 0;
  std::uint64_t contexts = 0;

  std::string encode() const;
  static StatsResponse decode(wire::Reader& r);
  /// One "[serve.stats] ..." line per the admin-output tag convention.
  std::string to_text() const;
};

struct EvictRequest {
  bool all = false;
  std::uint64_t key = 0;  ///< content-hash key when !all

  std::string encode() const;
  static EvictRequest decode(wire::Reader& r);
};

struct EvictResponse {
  std::uint64_t evicted = 0;
  std::uint64_t bytes_freed = 0;

  std::string encode() const;
  static EvictResponse decode(wire::Reader& r);
  /// One "[serve.evict] ..." line.
  std::string to_text() const;
};

struct ShutdownResponse {
  std::uint64_t entries_dropped = 0;

  std::string encode() const;
  static ShutdownResponse decode(wire::Reader& r);
  /// One "[serve.shutdown] ..." line.
  std::string to_text() const;
};

/// Plain requests that carry no body beyond their kind.
std::string encode_stats_request();
std::string encode_shutdown_request();

// -- response envelope ------------------------------------------------------

/// Wraps a response body as status 0.
std::string ok_response(std::string_view body);
/// Builds an error response (status 1, tag + message).
std::string error_response(std::string_view tag, std::string_view message);
/// Splits a response payload: returns the body on status 0, throws
/// std::runtime_error carrying the server's "[tag] message" otherwise.
std::string_view decode_response(std::string_view payload);

}  // namespace tut::serve
