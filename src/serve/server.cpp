#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iostream>
#include <map>
#include <utility>

#include "analysis/analyzer.hpp"
#include "sim/batch.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"
#include "uml/serialize.hpp"

namespace tut::serve {

namespace {

/// Splits an exception message into (rule tag, bare message). Every layer
/// below the engine embeds its tag as "[family.rule.name]"; anything
/// without one classifies as serve.request.failed.
std::pair<std::string, std::string> classify_error(std::string_view what) {
  const std::size_t open = what.find('[');
  const std::size_t close =
      open == std::string_view::npos ? open : what.find(']', open);
  if (open != std::string_view::npos && close != std::string_view::npos &&
      close > open + 1) {
    std::string tag(what.substr(open + 1, close - open - 1));
    if (tag.find('.') != std::string::npos &&
        tag.find(' ') == std::string::npos) {
      std::string message(what.substr(close + 1));
      if (!message.empty() && message.front() == ' ') message.erase(0, 1);
      return {std::move(tag), std::move(message)};
    }
  }
  return {"serve.request.failed", std::string(what)};
}

/// Injects the request's declared workload into a (reset) simulation:
/// first = period + first_offset, then every `period` ticks to the horizon —
/// tutmac::System::inject_workload's arithmetic exactly, which is what makes
/// a served TUTMAC run byte-identical to a single-shot CLI run. A campaign
/// scenario's free axis named by `param` overrides the period.
void inject_entries(sim::Simulation& simulation,
                    const ModelCache::Entry& entry,
                    const std::vector<WorkloadEntry>& workload,
                    const sim::Scenario* scenario) {
  const sim::Time horizon = simulation.config().horizon;
  for (const WorkloadEntry& w : workload) {
    const uml::Signal* signal = entry.model->find_signal(w.signal);
    if (signal == nullptr) {
      throw ProtocolError("serve.workload.signal",
                          "model has no signal '" + w.signal + "'");
    }
    std::uint64_t period = w.period;
    if (scenario != nullptr && !w.param.empty()) {
      period = static_cast<std::uint64_t>(
          scenario->param(w.param, static_cast<long>(period)));
    }
    if (period == 0) {
      throw ProtocolError("serve.workload.period",
                          "zero period for signal '" + w.signal + "'");
    }
    const sim::Time first = period + w.first_offset;
    const std::size_t count =
        first >= horizon ? 0
                         : static_cast<std::size_t>((horizon - first) / period);
    simulation.inject_periodic(first, period, count, w.port, *signal,
                               std::vector<long>(w.args.begin(),
                                                 w.args.end()));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(const sim::ResourceProfile& profile)
    : profile_(profile), cache_(profile) {
  // Workers must never share one spill file; the per-request config below
  // inherits this profile, so clear the single-run-only path once here.
  profile_.log_spill_path.clear();
}

ModelCache::Acquired Engine::acquire(std::string_view model_xml,
                                     BackendChoice backend) const {
  if (backend == BackendChoice::Native) {
    try {
      return cache_.acquire(model_xml, sim::Backend::Native);
    } catch (const std::exception& e) {
      if (std::string_view(e.what()).find("[native.") ==
          std::string_view::npos) {
        throw;  // a model defect, not a missing compiler
      }
      std::cerr << "tut-serve: " << e.what()
                << "\ntut-serve: falling back to the interpreter backend\n";
    }
  }
  return cache_.acquire(model_xml, sim::Backend::Interpreter);
}

std::string Engine::handle(std::string_view payload, bool* shutdown) {
  try {
    wire::Reader r(payload);
    const std::uint32_t kind = r.u32();
    switch (static_cast<RequestKind>(kind)) {
      case RequestKind::Simulate:
        return do_simulate(r);
      case RequestKind::Batch:
        return do_batch(r);
      case RequestKind::Lint:
        return do_lint(r);
      case RequestKind::Campaign:
        return do_campaign(r);
      case RequestKind::Stats:
        return do_stats();
      case RequestKind::Evict:
        return do_evict(r);
      case RequestKind::Shutdown:
        if (shutdown != nullptr) *shutdown = true;
        return do_shutdown();
    }
    throw ProtocolError("serve.request.unknown",
                        "unknown request kind " + std::to_string(kind));
  } catch (const std::exception& e) {
    const auto [tag, message] = classify_error(e.what());
    return error_response(tag, message);
  }
}

std::string Engine::do_simulate(wire::Reader& r) {
  const SimulateRequest q = SimulateRequest::decode(r);
  const ModelCache::Acquired acq = acquire(q.model_xml, q.backend);

  sim::Config config;
  config.horizon = q.horizon;
  config.envelope = profile_;
  if (!q.faults_xml.empty()) {
    config.faults = sim::FaultPlan::from_xml_text(q.faults_xml);
  }
  if (q.has_seed) config.faults.seed = q.seed;

  // Warm fast path: a pooled context resets in place — no parse, no
  // lowering, no construction. Cold path constructed one over the just-built
  // image; either way the run below is the whole remaining cost.
  std::unique_ptr<sim::Simulation> simulation =
      cache_.acquire_context(acq.entry, config);
  inject_entries(*simulation, *acq.entry, q.workload, nullptr);
  simulation->run();

  SimulateResponse p;
  p.warm = acq.warm;
  p.backend_name = acq.entry->backend != nullptr ? "native" : "interpreter";
  p.image_hash =
      acq.entry->backend != nullptr ? acq.entry->backend->content_hash() : 0;
  p.events = simulation->events_dispatched();
  p.records = simulation->log().size();
  p.end_time = simulation->now();
  p.digest = sim::log_digest(simulation->log());
  if (q.want_log) p.log_text = simulation->log().to_text();
  cache_.release_context(acq.entry, std::move(simulation));
  return ok_response(p.encode());
}

std::string Engine::do_batch(wire::Reader& r) {
  const BatchRequest q = BatchRequest::decode(r);
  const ModelCache::Acquired acq = acquire(q.model_xml, q.backend);
  const ModelCache::EntryPtr& entry = acq.entry;

  sim::Config base;
  base.horizon = q.horizon;
  base.envelope = profile_;
  if (!q.faults_xml.empty()) {
    base.faults = sim::FaultPlan::from_xml_text(q.faults_xml);
  }

  std::vector<sim::BatchScenario> scenarios;
  scenarios.reserve(q.count);
  for (std::uint32_t i = 0; i < q.count; ++i) {
    sim::BatchScenario s;
    s.name = "seed-" + std::to_string(q.seed + i);
    s.config = base;
    s.config.faults.seed = q.seed + i;
    s.setup = [&entry, &q](sim::Simulation& simulation) {
      inject_entries(simulation, *entry, q.workload, nullptr);
    };
    scenarios.push_back(std::move(s));
  }

  sim::BatchOptions options;
  options.threads = q.threads;
  options.profile = profile_;
  const sim::BatchRunner runner =
      entry->backend != nullptr ? sim::BatchRunner(entry->backend, options)
                                : sim::BatchRunner(entry->compiled, options);
  const std::vector<sim::BatchResult> results = runner.run(scenarios);

  BatchResponse p;
  p.warm = acq.warm;
  p.backend_name = entry->backend != nullptr ? "native" : "interpreter";
  p.image_hash =
      entry->backend != nullptr ? entry->backend->content_hash() : 0;
  p.rows.reserve(results.size());
  for (std::uint32_t i = 0; i < results.size(); ++i) {
    BatchResponse::Row row;
    row.seed = q.seed + i;
    row.events = results[i].events;
    row.records = results[i].records;
    row.end_time = results[i].end_time;
    row.hash = results[i].log_hash;
    row.error = results[i].error;
    p.rows.push_back(std::move(row));
  }
  return ok_response(p.encode());
}

std::string Engine::do_lint(wire::Reader& r) {
  const LintRequest q = LintRequest::decode(r);
  LintResponse p;

  // Lint shares the interpreter cache entry with simulate requests, so a
  // model that already simulated lints warm (and vice versa). The cache
  // pipeline requires an *executable* model, though, and lint is exactly
  // the command one points at defective models — those fall through to an
  // uncached parse + analyze, which is total.
  ModelCache::EntryPtr entry;
  try {
    entry = acquire(q.model_xml, BackendChoice::Interpreter).entry;
  } catch (const std::exception&) {
    entry = nullptr;
  }

  if (entry != nullptr) {
    const std::lock_guard<std::mutex> lock(entry->lint_mu);
    if (!entry->lint_done) {
      analysis::Options options;
      options.xml_text = entry->xml;
      const analysis::Report report = analysis::analyze(*entry->model, options);
      entry->lint_errors = report.error_count() != 0;
      entry->lint_warnings = report.warning_count() != 0;
      entry->lint_text = report.to_text();
      entry->lint_json = report.to_json() + "\n";
      entry->lint_done = true;
    } else {
      p.warm = true;
    }
    p.ok = !entry->lint_errors && (!q.werror || !entry->lint_warnings);
    p.text = q.json ? entry->lint_json : entry->lint_text;
    return ok_response(p.encode());
  }

  const std::unique_ptr<uml::Model> model = uml::from_xml_text(
      q.model_xml, static_cast<std::size_t>(profile_.arena_bytes));
  analysis::Options options;
  options.xml_text = q.model_xml;
  const analysis::Report report = analysis::analyze(*model, options);
  p.ok = report.ok(q.werror);
  p.text = q.json ? report.to_json() + "\n" : report.to_text();
  return ok_response(p.encode());
}

std::string Engine::do_campaign(wire::Reader& r) {
  const CampaignRequest q = CampaignRequest::decode(r);

  // The campaign's fault-plan references resolve against the request's
  // inline file set — the daemon never reads client disks.
  std::map<std::string, const std::string*> files;
  for (const auto& [path, content] : q.files) files[path] = &content;
  const sim::CampaignSpec spec = sim::CampaignSpec::from_xml_text(
      q.campaign_xml,
      [&files](const std::string& file) {
        const auto it = files.find(file);
        if (it == files.end()) {
          throw ProtocolError("serve.campaign.file",
                              "campaign references '" + file +
                                  "' but the request carries no such file");
        }
        return *it->second;
      },
      static_cast<std::size_t>(profile_.arena_bytes));

  std::vector<std::string> mapping_names = spec.mapping_names;
  if (mapping_names.empty()) mapping_names.push_back("paper");

  std::map<std::string, const std::string*> images;
  for (const auto& [name, xml] : q.images) images[name] = &xml;

  const auto acquire_all = [&](BackendChoice choice) {
    std::vector<ModelCache::Acquired> out;
    out.reserve(mapping_names.size());
    for (const std::string& name : mapping_names) {
      const auto it = images.find(name);
      if (it == images.end()) {
        throw ProtocolError("serve.campaign.image",
                            "campaign sweeps mapping '" + name +
                                "' but the request carries no such image");
      }
      out.push_back(acquire(*it->second, choice));
    }
    return out;
  };

  // All images fall back together (a half-native campaign would make the
  // provenance ambiguous): when the native acquire of any image fell back,
  // re-acquire the lot as interpreter — warm hits, not rebuilds.
  std::vector<ModelCache::Acquired> acquired = acquire_all(q.backend);
  bool native = q.backend == BackendChoice::Native;
  if (native) {
    for (const ModelCache::Acquired& a : acquired) {
      if (a.entry->backend == nullptr) native = false;
    }
    if (!native) acquired = acquire_all(BackendChoice::Interpreter);
  }

  std::vector<ModelCache::EntryPtr> entries;
  std::vector<std::shared_ptr<const sim::CompiledModel>> compiled;
  std::vector<std::shared_ptr<const sim::BackendImage>> backends;
  for (const ModelCache::Acquired& a : acquired) {
    entries.push_back(a.entry);
    compiled.push_back(a.entry->compiled);
    if (native) backends.push_back(a.entry->backend);
  }

  const std::vector<WorkloadEntry>& workload = q.workload;
  const auto setup = [entries, &workload](sim::Simulation& simulation,
                                          const sim::Scenario& scenario) {
    inject_entries(simulation, *entries[scenario.image], workload, &scenario);
  };
  const sim::CampaignRunner runner =
      native ? sim::CampaignRunner(std::move(backends), setup)
             : sim::CampaignRunner(std::move(compiled), setup);

  sim::CampaignOptions options;
  options.threads = q.threads;
  options.profile = profile_;
  const sim::CampaignResult result = runner.run(spec, options);

  CampaignResponse p;
  for (const ModelCache::Acquired& a : acquired) {
    if (a.warm) ++p.warm_images;
  }
  p.backend_name = native ? "native" : "interpreter";
  p.digest = result.aggregate.digest;
  p.scenarios = result.aggregate.scenarios;
  p.completed = result.completed;
  for (const std::string& note : result.notes) {
    p.text += "note: " + note + "\n";
  }
  p.text += result.aggregate.to_text();
  return ok_response(p.encode());
}

std::string Engine::do_stats() {
  const CacheStats s = cache_.stats();
  StatsResponse p;
  p.entries = s.entries;
  p.bytes = s.bytes;
  p.capacity = s.capacity;
  p.hits = s.hits;
  p.misses = s.misses;
  p.builds = s.builds;
  p.evictions = s.evictions;
  p.inflight_waits = s.inflight_waits;
  p.contexts = s.contexts;
  return ok_response(p.encode());
}

std::string Engine::do_evict(wire::Reader& r) {
  const EvictRequest q = EvictRequest::decode(r);
  EvictResponse p;
  if (q.all) {
    const auto [count, freed] = cache_.evict_all();
    p.evicted = count;
    p.bytes_freed = freed;
  } else {
    const std::uint64_t before = cache_.stats().bytes;
    if (cache_.evict(q.key)) {
      p.evicted = 1;
      p.bytes_freed = before - cache_.stats().bytes;
    }
  }
  return ok_response(p.encode());
}

std::string Engine::do_shutdown() {
  ShutdownResponse p;
  p.entries_dropped = cache_.evict_all().first;
  return ok_response(p.encode());
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

namespace {

bool send_all(int fd, std::string_view buf) {
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `n` bytes. Returns n on success, 0 on a clean EOF before
/// the first byte, -1 on a mid-read cut or error.
ssize_t recv_exact(int fd, char* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, dst + got, n - got, 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

Server::Server(Engine& engine, std::uint16_t port, std::size_t threads)
    : engine_(engine) {
  threads_ = threads != 0 ? threads
                          : std::max(1u, std::thread::hardware_concurrency());
  const std::uint64_t cap = engine_.profile().concurrency;
  if (cap != 0 && threads_ > cap) threads_ = static_cast<std::size_t>(cap);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: cannot create socket: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot listen on 127.0.0.1:" +
                             std::to_string(port) + ": " + reason);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::stop() {
  stopping_.store(true);
  // Breaks the blocking accept; the run loop then drains and joins.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::run() {
  std::vector<std::thread> workers;
  workers.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers.emplace_back([this] { worker(); });
  }
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // stop() shut the listener down (or it genuinely died)
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    closed_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers) t.join();
}

void Server::worker() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return;  // closed_ and drained
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd);
  }
}

void Server::serve_connection(int fd) {
  for (;;) {
    char header[8];
    const ssize_t got = recv_exact(fd, header, sizeof header);
    if (got == 0) break;  // clean close between frames
    if (got < 0) {
      // A connection cut mid-frame is an expected event, not an exception.
      std::cerr << "tut-serve: [serve.frame.truncated] connection closed "
                   "mid-frame\n";
      break;
    }
    if (std::memcmp(header, wire::kMagic, sizeof wire::kMagic) != 0) {
      send_all(fd, wire::frame(error_response(
                       "serve.frame.magic", "frame does not start with TUTS")));
      break;
    }
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(
                    static_cast<unsigned char>(header[4 + i]))
                << (8 * i);
    }
    if (length > wire::kMaxFrameBytes) {
      send_all(fd, wire::frame(error_response(
                       "serve.frame.oversize",
                       "frame of " + std::to_string(length) +
                           " bytes exceeds the " +
                           std::to_string(wire::kMaxFrameBytes) +
                           "-byte ceiling")));
      break;
    }
    std::string payload(length, '\0');
    if (length != 0 && recv_exact(fd, payload.data(), length) <= 0) {
      std::cerr << "tut-serve: [serve.frame.truncated] connection closed "
                   "mid-frame\n";
      break;
    }
    bool shutdown = false;
    const std::string response = engine_.handle(payload, &shutdown);
    if (!send_all(fd, wire::frame(response))) break;
    if (shutdown) {
      stop();
      break;
    }
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("serve: cannot create socket: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve: cannot connect to " + node + ":" +
                             std::to_string(port) + ": " + reason);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::read_frame() {
  char header[8];
  if (recv_exact(fd_, header, sizeof header) <= 0) {
    throw ProtocolError("serve.frame.truncated",
                        "server closed the connection mid-response");
  }
  if (std::memcmp(header, wire::kMagic, sizeof wire::kMagic) != 0) {
    throw ProtocolError("serve.frame.magic",
                        "response frame does not start with TUTS");
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(header[4 + i]))
              << (8 * i);
  }
  if (length > wire::kMaxFrameBytes) {
    throw ProtocolError("serve.frame.oversize",
                        "response frame of " + std::to_string(length) +
                            " bytes exceeds the ceiling");
  }
  std::string payload(length, '\0');
  if (length != 0 && recv_exact(fd_, payload.data(), length) <= 0) {
    throw ProtocolError("serve.frame.truncated",
                        "server closed the connection mid-response");
  }
  return payload;
}

std::string Client::call(std::string_view request_payload) {
  if (!send_all(fd_, wire::frame(request_payload))) {
    throw std::runtime_error("serve: cannot write to the server: " +
                             std::string(std::strerror(errno)));
  }
  const std::string payload = read_frame();
  return std::string(decode_response(payload));
}

}  // namespace tut::serve
