// serve::ModelCache — the content-hash compiled-model cache behind the
// `tut serve` daemon.
//
// Every single-shot `tut` invocation pays the full pipeline — XML parse,
// UML lowering, sim::CompiledModel::build, and for the native backend a
// compiler shell-out — before the first event fires. The cache amortizes
// that across requests: the key is an FNV-1a content hash over (model XML
// bytes, backend choice, profile caps) — mapping and platform live inside
// the XML, so a remapped model is a different key by construction — and the
// value owns the whole lowered chain (parsed uml::Model, mapping::SystemView,
// shared CompiledModel, optional native BackendImage) plus the cached lint
// report and a pool of reusable Simulation contexts, so a warm request
// skips straight to Simulation::reset + run.
//
// Concurrency contract:
//  - lookups take one of kShards sharded mutexes (key-hashed), never a
//    global lock;
//  - builds are single-flight: concurrent requests for the same missing key
//    wait on the one in-flight build (counted in stats as inflight_waits)
//    instead of lowering the same model N times;
//  - eviction is LRU under the profile's cache_bytes ceiling (0 =
//    unbounded): entries carry a logical-clock stamp touched on every hit,
//    and inserting past the ceiling evicts oldest-stamped entries until the
//    cache fits. Capacity decisions only — an evicted model rebuilds to a
//    byte-identical image (same digests) on its next request, and in-flight
//    users of an evicted entry keep it alive through their shared_ptr.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mapping/mapping.hpp"
#include "sim/backend.hpp"
#include "sim/compiled.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "uml/model.hpp"

namespace tut::serve {

/// Monotonic counters plus the current footprint. All counters are
/// process-lifetime; entries/bytes reflect the instant of the call.
struct CacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t capacity = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t builds = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inflight_waits = 0;
  std::uint64_t contexts = 0;  ///< pooled Simulation contexts, all entries
};

class ModelCache {
 public:
  /// One cached compiled model: the ownership chain XML → Model →
  /// SystemView → CompiledModel (→ BackendImage), immutable after build.
  /// The lint report and the context pool are the only mutable members,
  /// each behind its own mutex.
  struct Entry {
    std::uint64_t key = 0;
    std::string xml;  ///< owned copy; everything below borrows from it
    std::unique_ptr<uml::Model> model;
    std::unique_ptr<mapping::SystemView> view;
    std::shared_ptr<const sim::CompiledModel> compiled;
    std::shared_ptr<const sim::BackendImage> backend;  ///< null = interpreter
    std::size_t bytes = 0;  ///< footprint estimate used for the byte ceiling
    std::atomic<std::uint64_t> stamp{0};  ///< LRU logical clock

    // Cached lint renderings (filled lazily by Engine under lint_mu).
    std::mutex lint_mu;
    bool lint_done = false;
    bool lint_errors = false;
    bool lint_warnings = false;
    std::string lint_text;
    std::string lint_json;

    // Reusable Simulation contexts over this entry's image.
    std::mutex ctx_mu;
    std::vector<std::unique_ptr<sim::Simulation>> pool;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  struct Acquired {
    EntryPtr entry;
    bool warm = false;  ///< true: cache hit (including single-flight waits)
  };

  /// `profile` supplies the two caps the cache consumes: cache_bytes (the
  /// eviction ceiling) and arena_bytes (the per-request parse arena limit).
  /// Its caps are also folded into every key, so one daemon never mixes
  /// entries across envelopes.
  explicit ModelCache(const sim::ResourceProfile& profile);

  ModelCache(const ModelCache&) = delete;
  ModelCache& operator=(const ModelCache&) = delete;

  /// The content-hash key of one request: FNV-1a over the model XML bytes,
  /// the backend word and the profile caps.
  std::uint64_t key_of(std::string_view model_xml,
                       sim::Backend backend) const;

  /// Looks up or builds the entry for `model_xml` under `backend`.
  /// Zero-copy ingest: `model_xml` may alias the request buffer — the cache
  /// copies it into the entry only on a miss, and the parse arena lives
  /// under the profile's arena_bytes ceiling. Throws whatever the pipeline
  /// throws (xml::ParseError, "model is not executable", [native.*]) after
  /// unblocking any single-flight waiters with the same error.
  Acquired acquire(std::string_view model_xml, sim::Backend backend);

  /// Pops a pooled Simulation context (resetting it under `config`) or
  /// constructs a fresh one over the entry's image. Byte-identity of the
  /// two paths is the Simulation::reset contract.
  std::unique_ptr<sim::Simulation> acquire_context(const EntryPtr& entry,
                                                   const sim::Config& config);
  /// Returns a context to the entry's pool (bounded; surplus is dropped).
  void release_context(const EntryPtr& entry,
                       std::unique_ptr<sim::Simulation> sim);

  /// Removes one entry by key. Returns true when it was present.
  bool evict(std::uint64_t key);
  /// Empties the cache; returns (entries, bytes) removed.
  std::pair<std::uint64_t, std::uint64_t> evict_all();

  CacheStats stats() const;

 private:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kPoolPerEntry = 8;

  /// Single-flight rendezvous for one in-progress build.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    EntryPtr result;
    std::exception_ptr error;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::uint64_t, EntryPtr> entries;
    std::map<std::uint64_t, std::shared_ptr<Inflight>> building;
  };

  Shard& shard_of(std::uint64_t key) { return shards_[key % kShards]; }
  EntryPtr build_entry(std::uint64_t key, std::string_view model_xml,
                       sim::Backend backend) const;
  void maybe_evict();

  sim::ResourceProfile profile_;
  Shard shards_[kShards];
  std::mutex evict_mu_;  ///< serializes evictors; never held under a shard mu
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> builds_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> inflight_waits_{0};
  std::atomic<std::uint64_t> contexts_{0};
};

}  // namespace tut::serve
