// tut::synth — deterministic synthetic system generator.
//
// The paper's outlook ("The profile will also be evaluated for
// multiprocessor System-on-Chip co-design environment") needs systems larger
// than the 7-process TUTMAC case. This module generates complete,
// well-formed TUT-Profile systems of configurable size and topology:
// applications (components, processes, connectors, behaviours), platforms
// (PEs across bridged segments) and mappings. Generation is seeded and fully
// deterministic, which makes the generator usable from property tests
// (every generated system must validate, simulate, round-trip, ...) and
// scalability benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapping/mapping.hpp"
#include "profile/tut_profile.hpp"
#include "sim/simulator.hpp"
#include "uml/model.hpp"

namespace tut::synth {

enum class Topology {
  Pipeline,  ///< env -> p0 -> p1 -> ... -> pN-1 -> env
  Star,      ///< env -> hub -> spokes (round-robin) -> env
  RandomDag, ///< env -> p0; every process forwards to a random later one
};

const char* to_string(Topology t) noexcept;

struct SynthOptions {
  std::size_t processes = 8;      ///< >= 2
  std::size_t pes = 3;            ///< >= 1 processing elements
  std::size_t segments = 2;       ///< >= 1, chained through bridge links
  Topology topology = Topology::Pipeline;
  std::uint32_t seed = 1;         ///< drives costs and the random topology
  long compute_min = 50;          ///< per-message cycles, uniform range
  long compute_max = 500;
  long pe_freq_mhz = 100;
  std::string arbitration = profile::tags::ArbitrationPriority;
  std::string scheduling = profile::tags::SchedulingCooperative;
  long ctx_switch_cycles = 0;
};

/// A generated system plus the handles tests need.
struct SynthSystem {
  std::unique_ptr<uml::Model> model;
  profile::TutProfile prof;
  SynthOptions options;

  uml::Class* app = nullptr;
  uml::Signal* msg = nullptr;                ///< the traffic signal
  std::vector<uml::Property*> processes;     ///< p0..pN-1
  std::vector<uml::Property*> groups;        ///< one group per process
  std::vector<uml::Property*> instances;     ///< pe0..peM-1
  std::string input_port;                    ///< boundary port feeding p0

  /// Injects `count` messages, `period` ticks apart, starting at `first`.
  void inject_workload(sim::Simulation& sim, sim::Time first, sim::Time period,
                       std::size_t count) const;
};

/// Generates a complete system. Throws std::invalid_argument on degenerate
/// options (processes < 2, pes < 1, segments < 1).
SynthSystem build(const SynthOptions& options = {});

/// The deterministic PRNG used by the generator (xorshift32), exposed so
/// tests can predict generated values if they need to.
class Rng {
public:
  explicit Rng(std::uint32_t seed) : state_(seed != 0 ? seed : 0x9e3779b9u) {}

  std::uint32_t next() noexcept {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }

  /// Uniform value in [lo, hi].
  long range(long lo, long hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<long>(next() %
                                  static_cast<std::uint32_t>(hi - lo + 1));
  }

private:
  std::uint32_t state_;
};

}  // namespace tut::synth
