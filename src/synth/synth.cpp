#include "synth/synth.hpp"

#include <stdexcept>

#include "appmodel/appmodel.hpp"
#include "platform/platform.hpp"

namespace tut::synth {

const char* to_string(Topology t) noexcept {
  switch (t) {
    case Topology::Pipeline: return "pipeline";
    case Topology::Star: return "star";
    case Topology::RandomDag: return "random_dag";
  }
  return "?";
}

namespace {

/// Successor lists per process index; empty = terminal (sends to the
/// environment through an unconnected port).
std::vector<std::vector<std::size_t>> make_edges(const SynthOptions& opt,
                                                 Rng& rng) {
  std::vector<std::vector<std::size_t>> edges(opt.processes);
  switch (opt.topology) {
    case Topology::Pipeline:
      for (std::size_t i = 0; i + 1 < opt.processes; ++i) {
        edges[i] = {i + 1};
      }
      break;
    case Topology::Star:
      for (std::size_t i = 1; i < opt.processes; ++i) {
        edges[0].push_back(i);
      }
      break;
    case Topology::RandomDag:
      for (std::size_t i = 0; i + 1 < opt.processes; ++i) {
        edges[i] = {static_cast<std::size_t>(
            rng.range(static_cast<long>(i) + 1,
                      static_cast<long>(opt.processes) - 1))};
      }
      break;
  }
  return edges;
}

}  // namespace

void SynthSystem::inject_workload(sim::Simulation& sim, sim::Time first,
                                  sim::Time period, std::size_t count) const {
  sim.inject_periodic(first, period, count, input_port, *msg, {64});
}

SynthSystem build(const SynthOptions& options) {
  if (options.processes < 2) {
    throw std::invalid_argument("synth systems need at least 2 processes");
  }
  if (options.pes < 1 || options.segments < 1) {
    throw std::invalid_argument("synth systems need at least 1 PE and segment");
  }

  SynthSystem sys;
  sys.options = options;
  sys.model = std::make_unique<uml::Model>(
      "synth_" + std::string(to_string(options.topology)) + "_" +
      std::to_string(options.processes) + "p" + std::to_string(options.pes) +
      "pe_s" + std::to_string(options.seed));
  uml::Model& m = *sys.model;
  sys.prof = profile::install(m);
  Rng rng(options.seed);

  sys.msg = &m.create_signal("Msg");
  sys.msg->add_parameter("len", "int");
  sys.msg->set_payload_bytes(64);

  appmodel::ApplicationBuilder ab(m, sys.prof);
  sys.app = &ab.application("SynthApp");

  const auto edges = make_edges(options, rng);

  // One component class per process (distinct compute costs / fan-out).
  std::vector<uml::Class*> classes(options.processes);
  for (std::size_t i = 0; i < options.processes; ++i) {
    auto& cls = ab.component("Comp" + std::to_string(i));
    classes[i] = &cls;
    m.add_port(cls, "in").provide(*sys.msg);
    for (std::size_t k = 0; k < edges[i].size(); ++k) {
      m.add_port(cls, "out" + std::to_string(k)).require(*sys.msg);
    }
    if (edges[i].empty()) {
      m.add_port(cls, "out0").require(*sys.msg);  // terminal: to environment
    }

    auto& sm = *cls.behavior();
    auto& idle = m.add_state(sm, "Idle", true);
    const long cycles = rng.range(options.compute_min, options.compute_max);
    if (edges[i].size() > 1) {
      // Fan-out (star hub): route message j to output j % fanout.
      sm.declare_variable("cnt", 0);
      const std::size_t fanout = edges[i].size();
      for (std::size_t k = 0; k < fanout; ++k) {
        m.add_transition(sm, idle, idle, *sys.msg, "in")
            .set_guard("cnt % " + std::to_string(fanout) +
                       " == " + std::to_string(k))
            .add_effect(uml::Action::compute(std::to_string(cycles)))
            .add_effect(uml::Action::assign("cnt", "cnt + 1"))
            .add_effect(uml::Action::send("out" + std::to_string(k), *sys.msg,
                                          {"len"}));
      }
    } else {
      m.add_transition(sm, idle, idle, *sys.msg, "in")
          .add_effect(uml::Action::compute(std::to_string(cycles)))
          .add_effect(uml::Action::send("out0", *sys.msg, {"len"}));
    }
  }

  // Processes and connectors.
  for (std::size_t i = 0; i < options.processes; ++i) {
    sys.processes.push_back(&ab.process(
        "p" + std::to_string(i), *classes[i],
        {{"Priority", std::to_string(rng.range(1, 5))},
         {"ProcessType", "general"}}));
  }
  for (std::size_t i = 0; i < options.processes; ++i) {
    for (std::size_t k = 0; k < edges[i].size(); ++k) {
      m.connect(*sys.app, "p" + std::to_string(i), "out" + std::to_string(k),
                "p" + std::to_string(edges[i][k]), "in");
    }
  }
  sys.input_port = "pin";
  m.add_port(*sys.app, "pin").provide(*sys.msg);
  m.connect_boundary(*sys.app, "pin", "p0", "in");

  // Platform: PEs spread over a chain of bridged segments.
  platform::PlatformBuilder pb(m, sys.prof);
  pb.platform("SynthPlatform");
  auto& cpu = pb.component_type(
      "SynthCpu",
      {{"Type", "general"},
       {"Frequency", std::to_string(options.pe_freq_mhz)},
       {"Scheduling", options.scheduling},
       {"ContextSwitchCycles", std::to_string(options.ctx_switch_cycles)}});
  std::vector<uml::Property*> segs;
  for (std::size_t s = 0; s < options.segments; ++s) {
    segs.push_back(&pb.segment("seg" + std::to_string(s),
                               {{"DataWidth", "32"},
                                {"Frequency", "100"},
                                {"Arbitration", options.arbitration}}));
    if (s > 0) pb.bridge_link(*segs[s - 1], *segs[s]);
  }
  for (std::size_t j = 0; j < options.pes; ++j) {
    auto& pe = pb.instance("pe" + std::to_string(j), cpu);
    pb.wrapper(pe, *segs[j % options.segments]);
    sys.instances.push_back(&pe);
  }

  // Grouping and mapping: one group per process, round-robin over PEs.
  mapping::MappingBuilder mb(m, sys.prof);
  for (std::size_t i = 0; i < options.processes; ++i) {
    auto& g = ab.group("g" + std::to_string(i), {{"ProcessType", "general"}});
    sys.groups.push_back(&g);
    ab.assign(*sys.processes[i], g);
    mb.map(g, *sys.instances[i % options.pes]);
  }
  return sys;
}

}  // namespace tut::synth
