// tut::diagram — renders the paper's UML diagrams from a model.
//
// The paper presents its models as UML 2.0 diagrams (Figures 3-8). This
// module regenerates them as Graphviz DOT (for the class, composite
// structure, grouping, platform and mapping diagrams) and as plain text (the
// profile hierarchy of Figure 3 and the stereotype/tag tables 1-3).
#pragma once

#include <string>

#include "profile/tut_profile.hpp"
#include "uml/model.hpp"

namespace tut::diagram {

/// Class diagram (Figure 4): classes with their stereotypes, composition
/// edges for parts, generalization edges.
std::string class_diagram_dot(const uml::Model& model);

/// Composite structure diagram of one structured class (Figures 5-7):
/// parts as nodes (with stereotypes), connectors as edges labelled with the
/// connected ports, boundary ports as diamond nodes.
std::string composite_structure_dot(const uml::Class& cls);

/// Process grouping diagram (Figure 6): processes clustered by group.
std::string grouping_dot(const uml::Model& model);

/// Platform diagram (Figure 7): component instances and segments, wrapper
/// connectors labelled with their addresses, bridge links.
std::string platform_dot(const uml::Model& model);

/// Mapping diagram (Figure 8): process groups with <<Mapping>> edges to
/// component instances.
std::string mapping_dot(const uml::Model& model);

/// Profile hierarchy and stereotype summary (Figure 3 + Table 1): one line
/// per stereotype with extended metaclass and generalization.
std::string profile_hierarchy_text(const profile::TutProfile& profile);

/// Tagged-value table of one stereotype (one row per tag: name, type,
/// description — the layout of Tables 2 and 3).
std::string stereotype_table_text(const uml::Stereotype& stereotype);

}  // namespace tut::diagram
