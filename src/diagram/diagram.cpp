#include "diagram/diagram.hpp"

#include <sstream>

#include "appmodel/appmodel.hpp"
#include "mapping/mapping.hpp"
#include "platform/platform.hpp"

namespace tut::diagram {

namespace {

/// Escapes a string for a DOT double-quoted id/label.
std::string esc(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// «Stereotype» prefix line for a label, if any stereotypes are applied.
std::string stereo_label(const uml::Element& e) {
  std::string out;
  for (const auto& app : e.applications()) {
    if (app.stereotype == nullptr) continue;
    if (!out.empty()) out += "\\n";
    out += "\xC2\xAB" + esc(app.stereotype->name()) + "\xC2\xBB";
  }
  return out;
}

std::string node_id(const uml::Element& e) { return "n" + e.id(); }

std::string part_label(const uml::Property& part) {
  std::string label = stereo_label(part);
  if (!label.empty()) label += "\\n";
  label += esc(part.name());
  if (part.part_type() != nullptr) {
    label += " : " + esc(part.part_type()->name());
  }
  return label;
}

}  // namespace

std::string class_diagram_dot(const uml::Model& model) {
  std::ostringstream os;
  os << "digraph class_diagram {\n"
     << "  graph [label=\"" << esc(model.name())
     << " class diagram\", rankdir=BT];\n"
     << "  node [shape=record, fontsize=10];\n";
  for (uml::Element* e : model.elements_of_kind(uml::ElementKind::Class)) {
    const auto* cls = static_cast<const uml::Class*>(e);
    std::string title = stereo_label(*cls);
    if (!title.empty()) title += "\\n";
    title += esc(cls->name());
    if (cls->is_active()) title += "\\n(active)";
    os << "  " << node_id(*cls) << " [label=\"{" << title << "}\"];\n";
  }
  for (uml::Element* e : model.elements_of_kind(uml::ElementKind::Class)) {
    const auto* cls = static_cast<const uml::Class*>(e);
    if (cls->general() != nullptr) {
      os << "  " << node_id(*cls) << " -> " << node_id(*cls->general())
         << " [arrowhead=onormal];\n";
    }
    for (const uml::Property* part : cls->parts()) {
      if (part->part_type() == nullptr) continue;
      os << "  " << node_id(*part->part_type()) << " -> " << node_id(*cls)
         << " [arrowhead=diamond, label=\"" << esc(part->name()) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string composite_structure_dot(const uml::Class& cls) {
  std::ostringstream os;
  os << "digraph composite_structure {\n"
     << "  graph [label=\"" << esc(cls.name())
     << " composite structure\", rankdir=LR];\n"
     << "  node [shape=box, fontsize=10];\n";
  for (const uml::Property* part : cls.parts()) {
    os << "  " << node_id(*part) << " [label=\"" << part_label(*part)
       << "\"];\n";
  }
  for (const uml::Port* port : cls.ports()) {
    os << "  " << node_id(*port) << " [shape=diamond, label=\""
       << esc(port->name()) << "\"];\n";
  }
  for (const uml::Connector* conn : cls.connectors()) {
    const uml::ConnectorEnd ends[2] = {conn->end0(), conn->end1()};
    std::string ids[2];
    std::string labels[2];
    for (int i = 0; i < 2; ++i) {
      ids[i] = ends[i].part != nullptr ? node_id(*ends[i].part)
                                       : node_id(*ends[i].port);
      labels[i] =
          ends[i].port != nullptr && ends[i].part != nullptr
              ? esc(ends[i].port->name())
              : "";
    }
    os << "  " << ids[0] << " -> " << ids[1] << " [dir=none";
    if (!labels[0].empty()) os << ", taillabel=\"" << labels[0] << "\"";
    if (!labels[1].empty()) os << ", headlabel=\"" << labels[1] << "\"";
    const std::string stereo = stereo_label(*conn);
    if (!stereo.empty()) os << ", label=\"" << stereo << "\"";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string grouping_dot(const uml::Model& model) {
  appmodel::ApplicationView view(model);
  std::ostringstream os;
  os << "digraph process_grouping {\n"
     << "  graph [label=\"process grouping\", compound=true];\n"
     << "  node [shape=box, fontsize=10];\n";
  std::size_t idx = 0;
  for (const uml::Property* group : view.groups()) {
    os << "  subgraph cluster_" << idx++ << " {\n"
       << "    label=\"" << esc(group->name());
    const std::string pt = group->tagged_value("ProcessType");
    if (!pt.empty()) os << " (" << esc(pt) << ")";
    os << "\";\n";
    for (const uml::Property* proc : view.members(*group)) {
      os << "    " << node_id(*proc) << " [label=\"" << part_label(*proc)
         << "\"];\n";
    }
    os << "  }\n";
  }
  // Ungrouped processes float outside clusters.
  for (const uml::Property* proc : view.processes()) {
    if (view.group_of(*proc) == nullptr) {
      os << "  " << node_id(*proc) << " [label=\"" << part_label(*proc)
         << "\", style=dashed];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string platform_dot(const uml::Model& model) {
  platform::PlatformView view(model);
  std::ostringstream os;
  os << "digraph platform {\n"
     << "  graph [label=\"platform\", rankdir=TB];\n"
     << "  node [fontsize=10];\n";
  for (const uml::Property* inst : view.instances()) {
    os << "  " << node_id(*inst) << " [shape=box3d, label=\""
       << part_label(*inst) << "\\nID=" << esc(inst->tagged_value("ID"))
       << "\"];\n";
  }
  for (const uml::Property* seg : view.segments()) {
    os << "  " << node_id(*seg) << " [shape=box, style=filled, "
       << "fillcolor=lightgrey, label=\"" << part_label(*seg);
    const std::string width = seg->tagged_value("DataWidth");
    const std::string arb = seg->tagged_value("Arbitration");
    if (!width.empty()) os << "\\n" << esc(width) << " bit";
    if (!arb.empty()) os << ", " << esc(arb);
    os << "\"];\n";
  }
  for (const uml::Property* inst : view.instances()) {
    for (const uml::Connector* w : view.wrappers_of(*inst)) {
      const uml::Property* seg =
          w->end0().part == inst ? w->end1().part : w->end0().part;
      if (seg == nullptr) continue;
      os << "  " << node_id(*inst) << " -> " << node_id(*seg)
         << " [dir=none, label=\"" << stereo_label(*w)
         << "\\naddr=" << esc(w->tagged_value("Address")) << "\"];\n";
    }
  }
  for (const uml::Property* seg : view.segments()) {
    for (const uml::Property* next : view.neighbors(*seg)) {
      if (seg->id() < next->id()) {  // each bridge link once
        os << "  " << node_id(*seg) << " -> " << node_id(*next)
           << " [dir=none, style=bold];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string mapping_dot(const uml::Model& model) {
  mapping::SystemView view(model);
  std::ostringstream os;
  os << "digraph mapping {\n"
     << "  graph [label=\"mapping\", rankdir=LR];\n"
     << "  node [shape=box, fontsize=10];\n";
  for (const uml::Property* group : view.app().groups()) {
    os << "  " << node_id(*group) << " [label=\"" << part_label(*group)
       << "\"];\n";
  }
  for (const uml::Property* inst : view.plat().instances()) {
    os << "  " << node_id(*inst) << " [shape=box3d, label=\""
       << part_label(*inst) << "\"];\n";
  }
  for (const uml::Property* group : view.app().groups()) {
    const uml::Dependency* dep = view.mapping_of(*group);
    const uml::Property* inst = view.instance_for_group(*group);
    if (dep == nullptr || inst == nullptr) continue;
    os << "  " << node_id(*group) << " -> " << node_id(*inst)
       << " [style=dashed, label=\"" << stereo_label(*dep);
    if (dep->tagged_value("Fixed") == "true") os << "\\n(fixed)";
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string profile_hierarchy_text(const profile::TutProfile& profile) {
  std::ostringstream os;
  os << "Profile " << profile.profile->name() << "\n";
  for (const uml::Stereotype* s : profile.profile->stereotypes()) {
    os << "  <<" << s->name() << ">> extends "
       << uml::to_string(s->extended_metaclass());
    if (s->general() != nullptr) {
      os << " (specializes <<" << s->general()->name() << ">>)";
    }
    os << ", " << s->all_tags().size() << " tagged values\n";
  }
  return os.str();
}

std::string stereotype_table_text(const uml::Stereotype& stereotype) {
  std::ostringstream os;
  os << "Stereotype <<" << stereotype.name() << ">>\n";
  for (const uml::TagDefinition* tag : stereotype.all_tags()) {
    os << "  " << tag->name << " : " << uml::to_string(tag->type);
    if (!tag->enumerators.empty()) {
      os << " {";
      for (std::size_t i = 0; i < tag->enumerators.size(); ++i) {
        if (i != 0) os << "/";
        os << tag->enumerators[i];
      }
      os << "}";
    }
    if (tag->required) os << " [required]";
    os << " - " << tag->description << "\n";
  }
  return os.str();
}

}  // namespace tut::diagram
