// tut::mapping — the third part of a TUT-Profile system description.
//
// Section 3.3 of the paper: once an application and a platform are defined,
// each process group is mapped to a platform component instance via a
// <<Mapping>> dependency; fixed mappings may not be changed by profiling
// tools. SystemView combines the application, platform and mapping views and
// exposes the combined performance parameterization that the co-simulator
// consumes.
#pragma once

#include "appmodel/appmodel.hpp"
#include "platform/platform.hpp"

namespace tut::mapping {

/// Creates <<Mapping>> dependencies.
class MappingBuilder {
public:
  MappingBuilder(uml::Model& model, const profile::TutProfile& profile)
      : model_(model), profile_(profile) {}

  /// Maps a process group to a component instance. `fixed` mappings are
  /// skipped by the automatic exploration tools.
  uml::Dependency& map(uml::Property& group, uml::Property& instance,
                       bool fixed = false);

private:
  uml::Model& model_;
  const profile::TutProfile& profile_;
};

/// Degraded-mode remapping policy: when a processing element fails
/// mid-simulation, decides which surviving PE inherits its processes. The
/// co-simulator calls it with the compatible survivors and their observed
/// loads; the exploration cost model mirrors the same rule when scoring
/// fault scenarios. Deterministic: ties break on the candidate name.
class FailoverPolicy {
public:
  struct Candidate {
    std::string name;
    double load = 0.0;  ///< accumulated busy time (or estimated load)
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Index of the least-loaded candidate (ties to the lexicographically
  /// smallest name), or npos when `candidates` is empty.
  static std::size_t least_loaded(const std::vector<Candidate>& candidates);

  /// The policy choice — currently always least_loaded().
  std::size_t choose(const std::vector<Candidate>& candidates) const {
    return least_loaded(candidates);
  }
};

/// Combined view over application + platform + mapping. This is what the
/// rest of the tool flow (simulation, profiling, exploration) consumes.
class SystemView {
public:
  explicit SystemView(const uml::Model& model)
      : model_(&model), app_(model), plat_(model) {
    index_mappings(model);
  }

  const uml::Model& model() const noexcept { return *model_; }
  const appmodel::ApplicationView& app() const noexcept { return app_; }
  const platform::PlatformView& plat() const noexcept { return plat_; }

  /// The component instance a group is mapped to, or nullptr.
  const uml::Property* instance_for_group(const uml::Property& group) const;
  /// The component instance a process executes on (through its group).
  const uml::Property* instance_for_process(const uml::Property& process) const;
  /// Processes mapped (through their groups) onto an instance.
  std::vector<const uml::Property*> processes_on(
      const uml::Property& instance) const;
  /// Groups mapped onto an instance.
  std::vector<const uml::Property*> groups_on(
      const uml::Property& instance) const;
  /// The mapping dependency of a group, or nullptr.
  const uml::Dependency* mapping_of(const uml::Property& group) const;
  bool mapping_fixed(const uml::Property& group) const;

  // -- combined performance parameterization --------------------------------
  /// Execution priority of a process: process tag, else component class tag,
  /// else the target component instance's Priority, else 0 (higher wins).
  long process_priority(const uml::Property& process) const;
  /// Clock frequency (MHz) of the component an instance instantiates
  /// (default 50 MHz when unparameterized).
  long instance_frequency_mhz(const uml::Property& instance) const;

private:
  void index_mappings(const uml::Model& model);

  const uml::Model* model_;
  appmodel::ApplicationView app_;
  platform::PlatformView plat_;
  std::map<const uml::Property*, const uml::Dependency*> mapping_;
};

}  // namespace tut::mapping
