#include "mapping/mapping.hpp"

namespace tut::mapping {

using uml::ElementKind;

uml::Dependency& MappingBuilder::map(uml::Property& group,
                                     uml::Property& instance, bool fixed) {
  auto& dep = model_.create_dependency(
      group.name() + "_on_" + instance.name(), group, instance);
  dep.apply(*profile_.mapping, {{"Fixed", fixed ? "true" : "false"}});
  return dep;
}

void SystemView::index_mappings(const uml::Model& model) {
  for (const uml::Element* e : model.stereotyped(profile::names::Mapping)) {
    if (e->kind() != ElementKind::Dependency) continue;
    const auto* dep = static_cast<const uml::Dependency*>(e);
    if (dep->client() != nullptr &&
        dep->client()->kind() == ElementKind::Property) {
      mapping_[static_cast<const uml::Property*>(dep->client())] = dep;
    }
  }
}

const uml::Property* SystemView::instance_for_group(
    const uml::Property& group) const {
  const uml::Dependency* dep = mapping_of(group);
  if (dep == nullptr || dep->supplier() == nullptr ||
      dep->supplier()->kind() != ElementKind::Property) {
    return nullptr;
  }
  return static_cast<const uml::Property*>(dep->supplier());
}

const uml::Property* SystemView::instance_for_process(
    const uml::Property& process) const {
  const uml::Property* group = app_.group_of(process);
  return group != nullptr ? instance_for_group(*group) : nullptr;
}

std::vector<const uml::Property*> SystemView::processes_on(
    const uml::Property& instance) const {
  std::vector<const uml::Property*> out;
  for (const uml::Property* p : app_.processes()) {
    if (instance_for_process(*p) == &instance) out.push_back(p);
  }
  return out;
}

std::vector<const uml::Property*> SystemView::groups_on(
    const uml::Property& instance) const {
  std::vector<const uml::Property*> out;
  for (const uml::Property* g : app_.groups()) {
    if (instance_for_group(*g) == &instance) out.push_back(g);
  }
  return out;
}

const uml::Dependency* SystemView::mapping_of(
    const uml::Property& group) const {
  auto it = mapping_.find(&group);
  return it != mapping_.end() ? it->second : nullptr;
}

bool SystemView::mapping_fixed(const uml::Property& group) const {
  const uml::Dependency* dep = mapping_of(group);
  return dep != nullptr && dep->tagged_value("Fixed") == "true";
}

long SystemView::process_priority(const uml::Property& process) const {
  if (process.has_tagged_value("Priority")) {
    return appmodel::tag_long(process, "Priority", 0);
  }
  const uml::Class* comp = process.part_type();
  if (comp != nullptr && comp->has_tagged_value("Priority")) {
    return appmodel::tag_long(*comp, "Priority", 0);
  }
  const uml::Property* instance = instance_for_process(process);
  if (instance != nullptr && instance->has_tagged_value("Priority")) {
    return appmodel::tag_long(*instance, "Priority", 0);
  }
  return 0;
}

long SystemView::instance_frequency_mhz(const uml::Property& instance) const {
  const uml::Class* comp = instance.part_type();
  if (comp != nullptr && comp->has_tagged_value("Frequency")) {
    return appmodel::tag_long(*comp, "Frequency", 50);
  }
  return 50;
}

std::size_t FailoverPolicy::least_loaded(
    const std::vector<Candidate>& candidates) {
  std::size_t best = npos;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (best == npos || candidates[i].load < candidates[best].load ||
        (candidates[i].load == candidates[best].load &&
         candidates[i].name < candidates[best].name)) {
      best = i;
    }
  }
  return best;
}

}  // namespace tut::mapping
