#include "xml/cursor.hpp"

#include <algorithm>
#include <array>
#include <charconv>

namespace tut::xml {

namespace {

constexpr std::array<bool, 256> make_name_table() {
  std::array<bool, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[static_cast<std::size_t>(c)] = true;
  for (int c = 'a'; c <= 'z'; ++c) t[static_cast<std::size_t>(c)] = true;
  for (int c = 'A'; c <= 'Z'; ++c) t[static_cast<std::size_t>(c)] = true;
  t[static_cast<std::size_t>('_')] = true;
  t[static_cast<std::size_t>('-')] = true;
  t[static_cast<std::size_t>('.')] = true;
  t[static_cast<std::size_t>(':')] = true;
  return t;
}

constexpr std::array<bool, 256> kNameChar = make_name_table();

inline bool is_name_char(char c) noexcept {
  return kNameChar[static_cast<unsigned char>(c)];
}

inline bool is_ws(char c) noexcept {
  switch (c) {
    case ' ':
    case '\t':
    case '\n':
    case '\r':
    case '\v':
    case '\f':
      return true;
    default:
      return false;
  }
}

inline std::size_t encode_utf8(unsigned long u, char* out) noexcept {
  if (u < 0x80) {
    out[0] = static_cast<char>(u);
    return 1;
  }
  if (u < 0x800) {
    out[0] = static_cast<char>(0xC0 | (u >> 6));
    out[1] = static_cast<char>(0x80 | (u & 0x3F));
    return 2;
  }
  if (u < 0x10000) {
    out[0] = static_cast<char>(0xE0 | (u >> 12));
    out[1] = static_cast<char>(0x80 | ((u >> 6) & 0x3F));
    out[2] = static_cast<char>(0x80 | (u & 0x3F));
    return 3;
  }
  out[0] = static_cast<char>(0xF0 | (u >> 18));
  out[1] = static_cast<char>(0x80 | ((u >> 12) & 0x3F));
  out[2] = static_cast<char>(0x80 | ((u >> 6) & 0x3F));
  out[3] = static_cast<char>(0x80 | (u & 0x3F));
  return 4;
}

}  // namespace

void Cursor::fail_at(const std::string& msg, std::size_t offset) const {
  // Line numbers are derived lazily — errors are cold, the hot scan loop
  // never counts newlines.
  const std::size_t n = std::min(offset, text_.size());
  const auto line = 1 + static_cast<std::size_t>(
                            std::count(text_.begin(), text_.begin() + n, '\n'));
  throw ParseError(msg, n, line);
}

void Cursor::skip_ws() noexcept {
  while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
}

void Cursor::skip_comment() {
  const auto end = text_.find("-->", pos_ + 4);
  if (end == std::string_view::npos) {
    fail_at("unterminated comment", text_.size());
  }
  pos_ = end + 3;
}

void Cursor::skip_misc() {
  for (;;) {
    skip_ws();
    if (starts_with("<!--")) {
      skip_comment();
    } else if (starts_with("<?")) {
      const auto end = text_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) {
        fail_at("unterminated processing instruction", text_.size());
      }
      pos_ = end + 2;
    } else {
      return;
    }
  }
}

void Cursor::skip_prolog() {
  skip_misc();
  if (starts_with("<!DOCTYPE")) {
    pos_ += 9;
    // Skip to the matching '>', tolerating an internal subset in brackets.
    int depth = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '<') ++depth;
      if (c == '>') {
        if (depth == 0) break;
        --depth;
      }
    }
    skip_misc();
  }
}

std::string_view Cursor::parse_name() {
  const std::size_t start = pos_;
  while (pos_ < text_.size() && is_name_char(text_[pos_])) ++pos_;
  if (pos_ == start) fail("expected a name");
  return text_.substr(start, pos_ - start);
}

std::size_t Cursor::decode_entity(char* out, std::size_t limit) {
  const std::size_t amp = pos_;
  const auto semi = text_.find(';', pos_ + 1);
  if (semi == std::string_view::npos || semi >= limit) {
    fail_at("unterminated entity (expected ';')", amp);
  }
  const std::string_view ent = text_.substr(pos_ + 1, semi - pos_ - 1);
  pos_ = semi + 1;
  if (ent == "amp") { *out = '&'; return 1; }
  if (ent == "lt") { *out = '<'; return 1; }
  if (ent == "gt") { *out = '>'; return 1; }
  if (ent == "quot") { *out = '"'; return 1; }
  if (ent == "apos") { *out = '\''; return 1; }
  if (!ent.empty() && ent[0] == '#') {
    int base = 10;
    std::size_t digits = 1;
    if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
      base = 16;
      digits = 2;
    }
    const char* first = ent.data() + digits;
    const char* last = ent.data() + ent.size();
    unsigned long code = 0;
    const auto [ptr, ec] = std::from_chars(first, last, code, base);
    if (ec == std::errc::result_out_of_range || (ec == std::errc() && code > 0x10FFFF)) {
      fail_at("character reference out of range '&" + std::string(ent) + ";'", amp);
    }
    if (ec != std::errc() || ptr != last || first == last) {
      fail_at("malformed character reference '&" + std::string(ent) + ";'", amp);
    }
    return encode_utf8(code, out);
  }
  fail_at("unknown entity '&" + std::string(ent) + ";'", amp);
}

std::string_view Cursor::parse_attr_value() {
  if (pos_ >= text_.size()) fail("expected quoted attribute value");
  const char quote = text_[pos_];
  if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
  ++pos_;
  const std::size_t start = pos_;
  const auto end = text_.find(quote, start);
  if (end == std::string_view::npos) {
    fail_at("unterminated attribute value", text_.size());
  }
  const std::string_view raw = text_.substr(start, end - start);
  const auto lt = raw.find('<');
  if (lt != std::string_view::npos) {
    fail_at("'<' in attribute value", start + lt);
  }
  if (raw.find('&') == std::string_view::npos) {
    pos_ = end + 1;
    return raw;  // zero-copy: view into the input buffer
  }
  char* buf = arena_->allocate_bytes(raw.size());
  std::size_t out = 0;
  while (pos_ < end) {
    if (text_[pos_] == '&') {
      out += decode_entity(buf + out, end);
    } else {
      buf[out++] = text_[pos_++];
    }
  }
  arena_->shrink_last(buf, raw.size(), out);
  pos_ = end + 1;
  return {buf, out};
}

Cursor::Event Cursor::parse_start_tag() {
  ++pos_;  // consume '<'
  name_ = parse_name();
  attrs_.clear();
  for (;;) {
    skip_ws();
    if (pos_ >= text_.size()) fail_at("unterminated start tag", text_.size());
    const char c = text_[pos_];
    if (c == '/') {
      if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') fail("expected '/>'");
      pos_ += 2;
      pending_end_ = true;
      stack_.push_back(name_);
      return event_ = Event::StartElement;
    }
    if (c == '>') {
      ++pos_;
      stack_.push_back(name_);
      return event_ = Event::StartElement;
    }
    const std::string_view key = parse_name();
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '=') fail("expected '='");
    ++pos_;
    skip_ws();
    attrs_.push_back(RawAttr{key, parse_attr_value()});
  }
}

Cursor::Event Cursor::parse_end_tag() {
  pos_ += 2;  // consume '</'
  const std::size_t name_off = pos_;
  const std::string_view close = parse_name();
  const std::string_view open_name = stack_.back();
  if (close != open_name) {
    fail_at("mismatched close tag '" + std::string(close) + "' for '" +
                std::string(open_name) + "'",
            name_off);
  }
  skip_ws();
  if (pos_ >= text_.size() || text_[pos_] != '>') fail("expected '>'");
  ++pos_;
  stack_.pop_back();
  name_ = close;
  return event_ = Event::EndElement;
}

Cursor::Event Cursor::parse_text() {
  const std::size_t start = pos_;
  const auto lt = text_.find('<', pos_);
  const std::size_t end = (lt == std::string_view::npos) ? text_.size() : lt;
  const std::string_view raw = text_.substr(start, end - start);
  if (raw.find('&') == std::string_view::npos) {
    pos_ = end;
    text_run_ = raw;  // zero-copy: view into the input buffer
    return event_ = Event::Text;
  }
  // Decoded output is never longer than the encoded run (every entity
  // encoding is at least as long as its decoded bytes), so one reservation
  // suffices and the unused tail is returned to the arena.
  char* buf = arena_->allocate_bytes(raw.size());
  std::size_t out = 0;
  while (pos_ < end) {
    if (text_[pos_] == '&') {
      out += decode_entity(buf + out, end);
    } else {
      buf[out++] = text_[pos_++];
    }
  }
  arena_->shrink_last(buf, raw.size(), out);
  text_run_ = {buf, out};
  return event_ = Event::Text;
}

Cursor::Event Cursor::next() {
  if (pending_end_) {
    pending_end_ = false;
    name_ = stack_.back();
    stack_.pop_back();
    return event_ = Event::EndElement;
  }
  if (!started_) {
    started_ = true;
    skip_prolog();
    if (pos_ >= text_.size() || text_[pos_] != '<') fail("expected '<'");
    return parse_start_tag();
  }
  for (;;) {
    if (stack_.empty()) {
      if (!done_) {
        skip_misc();
        if (pos_ != text_.size()) fail("trailing content after root element");
        done_ = true;
      }
      return event_ = Event::End;
    }
    if (pos_ >= text_.size()) {
      fail_at("unterminated element '" + std::string(stack_.back()) + "'",
              text_.size());
    }
    if (text_[pos_] == '<') {
      if (starts_with("</")) return parse_end_tag();
      if (starts_with("<!--")) {
        skip_comment();
        continue;
      }
      if (starts_with("<![CDATA[")) {
        const std::size_t start = pos_ + 9;
        const auto end = text_.find("]]>", start);
        if (end == std::string_view::npos) {
          fail_at("unterminated CDATA section", text_.size());
        }
        text_run_ = text_.substr(start, end - start);
        pos_ = end + 3;
        if (text_run_.empty()) continue;
        return event_ = Event::Text;
      }
      return parse_start_tag();
    }
    return parse_text();
  }
}

}  // namespace tut::xml
