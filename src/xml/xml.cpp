#include "xml/xml.hpp"

#include <cctype>
#include <sstream>

namespace tut::xml {

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

bool Element::has_attr(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

std::optional<std::string> Element::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Element::attr_or(std::string_view key, std::string_view fallback) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

Element& Element::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child(Element child) {
  children_.push_back(std::make_unique<Element>(std::move(child)));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view name) noexcept {
  for (auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::size_t Element::subtree_size() const noexcept {
  std::size_t n = 1;
  for (const auto& c : children_) n += c->subtree_size();
  return n;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

void write_elem(std::ostringstream& os, const Element& e, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  os << pad << '<' << e.name();
  for (const auto& [k, v] : e.attrs()) {
    os << ' ' << k << "=\"" << escape(v) << '"';
  }
  if (e.children().empty() && e.text().empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (!e.text().empty()) os << escape(e.text());
  if (e.children().empty()) {
    os << "</" << e.name() << ">\n";
    return;
  }
  os << '\n';
  for (const auto& c : e.children()) write_elem(os, *c, depth + 1);
  os << pad << "</" << e.name() << ">\n";
}

}  // namespace

std::string write(const Document& doc) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_elem(os, doc.root(), 0);
  return os.str();
}

std::string write(const Element& elem, int indent) {
  std::ostringstream os;
  write_elem(os, elem, indent);
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Document run() {
    skip_prolog();
    Document doc;
    Element root = parse_element();
    doc.root() = std::move(root);
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return doc;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, pos_, line_);
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char get() {
    if (eof()) fail("unexpected end of input");
    char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool starts_with(std::string_view s) const noexcept {
    return text_.substr(pos_, s.size()) == s;
  }

  void expect(std::string_view s) {
    if (!starts_with(s)) fail("expected '" + std::string(s) + "'");
    for (std::size_t i = 0; i < s.size(); ++i) get();
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) get();
  }

  void skip_comment() {
    expect("<!--");
    while (!starts_with("-->")) {
      if (eof()) fail("unterminated comment");
      get();
    }
    expect("-->");
  }

  // Skips whitespace, comments and processing instructions.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<?")) {
        while (!starts_with("?>")) {
          if (eof()) fail("unterminated processing instruction");
          get();
        }
        expect("?>");
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_misc();
    if (starts_with("<!DOCTYPE")) {
      expect("<!DOCTYPE");
      // Skip to the matching '>', tolerating an internal subset in brackets.
      int depth = 0;
      while (!eof()) {
        char c = get();
        if (c == '<') ++depth;
        if (c == '>') {
          if (depth == 0) break;
          --depth;
        }
      }
      skip_misc();
    }
  }

  static bool is_name_char(char c) noexcept {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
           c == '.' || c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!eof() && is_name_char(peek())) name += get();
    if (name.empty()) fail("expected a name");
    return name;
  }

  std::string decode_entity() {
    expect("&");
    std::string ent;
    while (!eof() && peek() != ';') ent += get();
    expect(";");
    if (ent == "amp") return "&";
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      std::size_t start = 1;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        base = 16;
        start = 2;
      }
      try {
        const long code = std::stol(ent.substr(start), nullptr, base);
        if (code < 0 || code > 0x10FFFF) fail("character reference out of range");
        // Encode as UTF-8.
        std::string out;
        const auto u = static_cast<unsigned long>(code);
        if (u < 0x80) {
          out += static_cast<char>(u);
        } else if (u < 0x800) {
          out += static_cast<char>(0xC0 | (u >> 6));
          out += static_cast<char>(0x80 | (u & 0x3F));
        } else if (u < 0x10000) {
          out += static_cast<char>(0xE0 | (u >> 12));
          out += static_cast<char>(0x80 | ((u >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (u & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (u >> 18));
          out += static_cast<char>(0x80 | ((u >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((u >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (u & 0x3F));
        }
        return out;
      } catch (const std::invalid_argument&) {
        fail("malformed character reference '&" + ent + ";'");
      } catch (const std::out_of_range&) {
        fail("character reference out of range '&" + ent + ";'");
      }
    }
    fail("unknown entity '&" + ent + ";'");
  }

  std::string parse_attr_value() {
    const char quote = get();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    std::string value;
    while (!eof() && peek() != quote) {
      if (peek() == '&') {
        value += decode_entity();
      } else if (peek() == '<') {
        fail("'<' in attribute value");
      } else {
        value += get();
      }
    }
    if (eof()) fail("unterminated attribute value");
    get();  // closing quote
    return value;
  }

  Element parse_element() {
    expect("<");
    Element elem(parse_name());
    // Attributes.
    for (;;) {
      skip_ws();
      if (eof()) fail("unterminated start tag");
      if (starts_with("/>")) {
        expect("/>");
        return elem;
      }
      if (peek() == '>') {
        get();
        break;
      }
      std::string key = parse_name();
      skip_ws();
      expect("=");
      skip_ws();
      elem.set_attr(std::move(key), parse_attr_value());
    }
    // Content.
    std::string text;
    for (;;) {
      if (eof()) fail("unterminated element '" + elem.name() + "'");
      if (starts_with("</")) {
        expect("</");
        const std::string close = parse_name();
        if (close != elem.name()) {
          fail("mismatched close tag '" + close + "' for '" + elem.name() + "'");
        }
        skip_ws();
        expect(">");
        break;
      }
      if (starts_with("<!--")) {
        skip_comment();
      } else if (starts_with("<![CDATA[")) {
        expect("<![CDATA[");
        while (!starts_with("]]>")) {
          if (eof()) fail("unterminated CDATA section");
          text += get();
        }
        expect("]]>");
      } else if (peek() == '<') {
        elem.add_child(parse_element());
      } else if (peek() == '&') {
        text += decode_entity();
      } else {
        text += get();
      }
    }
    // Trim pure-whitespace text (indentation between children).
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      text.clear();
    } else {
      const auto last = text.find_last_not_of(" \t\r\n");
      text = text.substr(first, last - first + 1);
    }
    elem.set_text(std::move(text));
    return elem;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Document parse(std::string_view text) { return Parser(text).run(); }

}  // namespace tut::xml
