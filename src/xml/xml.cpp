#include "xml/xml.hpp"

#include <array>
#include <cstdint>

#include "xml/arena.hpp"
#include "xml/cursor.hpp"

namespace tut::xml {

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

bool Element::has_attr(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

std::optional<std::string> Element::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::string_view> Element::attr_view(std::string_view key) const noexcept {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::string Element::attr_or(std::string_view key, std::string_view fallback) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

Element& Element::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::add_child(Element child) {
  children_.push_back(std::make_unique<Element>(std::move(child)));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const noexcept {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view name) noexcept {
  for (auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::size_t Element::subtree_size() const noexcept {
  std::size_t n = 1;
  for (const auto& c : children_) n += c->subtree_size();
  return n;
}

// ---------------------------------------------------------------------------
// Escaping
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kEscapable = "&<>\"'";

constexpr std::array<bool, 256> make_escapable_table() {
  std::array<bool, 256> t{};
  for (char c : kEscapable) t[static_cast<unsigned char>(c)] = true;
  return t;
}

constexpr std::array<bool, 256> kNeedsEscape = make_escapable_table();

}  // namespace

void escape_to(std::string& out, std::string_view raw) {
  std::size_t clean = 0;  // start of the pending run of unescapable bytes
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (!kNeedsEscape[static_cast<unsigned char>(c)]) continue;
    if (i != clean) out.append(raw.data() + clean, i - clean);
    // Literal appends keep the replacement lengths compile-time constants.
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
    }
    clean = i + 1;
  }
  if (raw.size() != clean) out.append(raw.data() + clean, raw.size() - clean);
}

std::string_view escape_view(std::string_view raw, std::string& scratch) {
  if (raw.find_first_of(kEscapable) == std::string_view::npos) return raw;
  scratch.clear();
  escape_to(scratch, raw);
  return scratch;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  escape_to(out, raw);
  return out;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

Writer::Writer(std::size_t reserve_bytes, int base_indent)
    : base_indent_(base_indent) {
  out_.reserve(reserve_bytes);
}

void Writer::pad(std::size_t depth) {
  out_.append(2 * (static_cast<std::size_t>(base_indent_) + depth), ' ');
}

void Writer::declaration() {
  out_.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
}

void Writer::open(std::string_view name) {
  if (!stack_.empty()) {
    Frame& parent = stack_.back();
    if (parent.tag_open) {
      out_ += '>';
      parent.tag_open = false;
    }
    if (!parent.has_children) out_ += '\n';
    parent.has_children = true;
  }
  pad(stack_.size());
  out_ += '<';
  out_.append(name);
  const auto name_pos = static_cast<std::uint32_t>(names_.size());
  names_.append(name);
  stack_.push_back(Frame{name_pos, static_cast<std::uint32_t>(name.size()),
                         /*tag_open=*/true, /*has_children=*/false});
}

void Writer::attr(std::string_view key, std::string_view value) {
  out_ += ' ';
  out_.append(key);
  out_.append("=\"");
  escape_to(out_, value);
  out_ += '"';
}

void Writer::text(std::string_view t) {
  if (t.empty()) return;
  Frame& top = stack_.back();
  if (top.tag_open) {
    out_ += '>';
    top.tag_open = false;
  }
  escape_to(out_, t);
}

void Writer::close() {
  const Frame top = stack_.back();
  stack_.pop_back();
  if (top.tag_open) {
    out_.append("/>\n");
  } else {
    if (top.has_children) pad(stack_.size());
    out_.append("</");
    out_.append(names_.data() + top.name_pos, top.name_len);
    out_.append(">\n");
  }
  names_.resize(top.name_pos);
}

void Writer::close_to(std::size_t depth) {
  while (stack_.size() > depth) close();
}

std::string Writer::take() {
  close_to(0);
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// DOM writer (on the streaming Writer; no stringstream)
// ---------------------------------------------------------------------------

namespace {

void emit(Writer& w, const Element& e) {
  w.open(e.name());
  for (const auto& [k, v] : e.attrs()) w.attr(k, v);
  w.text(e.text());
  for (const auto& c : e.children()) emit(w, *c);
  w.close();
}

}  // namespace

std::string write(const Document& doc) {
  Writer w(64 * doc.root().subtree_size() + 64);
  w.declaration();
  emit(w, doc.root());
  return w.take();
}

std::string write(const Element& elem, int indent) {
  Writer w(64 * elem.subtree_size() + 64, indent);
  emit(w, elem);
  return w.take();
}

// ---------------------------------------------------------------------------
// DOM parser (on the pull Cursor; one tokenizer for both representations)
// ---------------------------------------------------------------------------

namespace {

// The trim set the dialect uses for inter-element indentation.
constexpr std::string_view kTrim = " \t\r\n";

}  // namespace

Document parse(std::string_view text) {
  Arena arena(4 * 1024);
  Cursor cur(text, arena);
  Document doc;
  std::vector<Element*> stack;
  std::vector<std::string> texts;
  for (;;) {
    switch (cur.next()) {
      case Cursor::Event::StartElement: {
        Element* e;
        if (stack.empty()) {
          doc.root().set_name(std::string(cur.name()));
          e = &doc.root();
        } else {
          e = &stack.back()->add_child(std::string(cur.name()));
        }
        for (std::size_t i = 0; i < cur.attr_count(); ++i) {
          e->set_attr(std::string(cur.attr_key(i)), std::string(cur.attr_value(i)));
        }
        stack.push_back(e);
        texts.emplace_back();
        break;
      }
      case Cursor::Event::Text:
        texts.back().append(cur.text());
        break;
      case Cursor::Event::EndElement: {
        std::string& t = texts.back();
        const auto first = t.find_first_not_of(kTrim);
        if (first == std::string::npos) {
          t.clear();
        } else {
          const auto last = t.find_last_not_of(kTrim);
          t = t.substr(first, last - first + 1);
        }
        stack.back()->set_text(std::move(t));
        stack.pop_back();
        texts.pop_back();
        break;
      }
      case Cursor::Event::End:
        return doc;
    }
  }
}

}  // namespace tut::xml
