// ParseError: the single error type thrown by every tut::xml parse path
// (the pull Cursor, the arena Tree builder and the DOM parser all report
// malformed input through it). Carries the exact byte offset of the
// offending construct and the 1-based line number derived from it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace tut::xml {

/// Error thrown by the parser on malformed input. Carries a byte offset and
/// 1-based line number of the failure point. Offsets are exact: they point
/// at the first byte of the offending construct (the '&' of a bad entity,
/// the name of a mismatched close tag, the stray '<' in an attribute
/// value), or at end-of-input for unterminated constructs.
class ParseError : public std::runtime_error {
public:
  ParseError(const std::string& what, std::size_t offset, std::size_t line)
      : std::runtime_error(what + " (line " + std::to_string(line) + ")"),
        offset_(offset),
        line_(line) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t line() const noexcept { return line_; }

private:
  std::size_t offset_;
  std::size_t line_;
};

}  // namespace tut::xml
