// xml::Tree — arena-backed, read-only document built by the pull Cursor.
//
// This is the zero-copy counterpart of the mutable xml::Document DOM: nodes,
// attribute arrays and decoded strings live in one bump arena, names and
// attribute values are string_views into the source buffer (or into the
// arena when entity decoding forced a copy), teardown is a handful of chunk
// frees, and traversal chases pointers through memory laid out in document
// order.
//
// Lifetime rules (see DESIGN.md §interchange):
//   - Tree::parse(text) aliases `text`; the caller's buffer must outlive the
//     Tree and every view read from it.
//   - Everything else (nodes, decoded runs) lives in the Tree's arena and
//     dies with the Tree.
// Semantics match the DOM parser byte-for-byte: per-element text is the
// concatenation of its text/CDATA runs with leading/trailing " \t\r\n"
// trimmed, duplicate attribute keys keep first position / last value.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "xml/arena.hpp"
#include "xml/cursor.hpp"

namespace tut::xml {

struct Attr {
  std::string_view key;
  std::string_view value;
};

/// One parsed element. Mirrors the read API of xml::Element, but every
/// accessor returns views; nothing allocates except children_named().
class Node {
public:
  std::string_view name() const noexcept { return name_; }
  std::string_view text() const noexcept { return text_; }

  // -- attributes ----------------------------------------------------------
  const Attr* attrs_begin() const noexcept { return attrs_; }
  const Attr* attrs_end() const noexcept { return attrs_ + nattrs_; }
  std::size_t attr_count() const noexcept { return nattrs_; }

  bool has_attr(std::string_view key) const noexcept {
    return attr_view(key).has_value();
  }
  std::optional<std::string_view> attr_view(std::string_view key) const noexcept {
    for (const Attr* a = attrs_; a != attrs_ + nattrs_; ++a) {
      if (a->key == key) return a->value;
    }
    return std::nullopt;
  }
  /// Same as attr_view (the name xml::Element uses for its copying lookup).
  std::optional<std::string_view> attr(std::string_view key) const noexcept {
    return attr_view(key);
  }
  /// Returns the attribute value or `fallback`. The returned view aliases
  /// `fallback` when the key is absent — pass a literal or an outliving
  /// buffer.
  std::string_view attr_or(std::string_view key, std::string_view fallback) const noexcept {
    const auto v = attr_view(key);
    return v ? *v : fallback;
  }

  // -- children ------------------------------------------------------------
  class ChildRange;
  ChildRange children() const noexcept;

  const Node* child(std::string_view name) const noexcept {
    for (const Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      if (c->name_ == name) return c;
    }
    return nullptr;
  }
  std::vector<const Node*> children_named(std::string_view name) const {
    std::vector<const Node*> out;
    for (const Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      if (c->name_ == name) out.push_back(c);
    }
    return out;
  }

  /// Total number of elements in this subtree (including this node).
  std::size_t subtree_size() const noexcept {
    std::size_t n = 1;
    for (const Node* c = first_child_; c != nullptr; c = c->next_sibling_) {
      n += c->subtree_size();
    }
    return n;
  }

private:
  friend class Tree;

  std::string_view name_;
  std::string_view text_;
  const Attr* attrs_ = nullptr;
  std::uint32_t nattrs_ = 0;
  Node* first_child_ = nullptr;
  Node* next_sibling_ = nullptr;
};

class Node::ChildRange {
public:
  class iterator {
  public:
    explicit iterator(const Node* n) : n_(n) {}
    const Node& operator*() const noexcept { return *n_; }
    const Node* operator->() const noexcept { return n_; }
    iterator& operator++() noexcept {
      n_ = n_->next_sibling_;
      return *this;
    }
    bool operator!=(const iterator& o) const noexcept { return n_ != o.n_; }
    bool operator==(const iterator& o) const noexcept { return n_ == o.n_; }

  private:
    const Node* n_;
  };

  explicit ChildRange(const Node* first) : first_(first) {}
  iterator begin() const noexcept { return iterator(first_); }
  iterator end() const noexcept { return iterator(nullptr); }

private:
  const Node* first_;
};

inline Node::ChildRange Node::children() const noexcept {
  return ChildRange(first_child_);
}

/// A parsed document: one arena, one root node.
class Tree {
public:
  /// Parses `text` into an arena-backed tree. Views in the tree alias
  /// `text` — the buffer must outlive the Tree. Throws ParseError.
  /// `arena_limit` caps the tree arena's reserved bytes (0 = unbounded); a
  /// document that overflows it throws ArenaLimitError tagged
  /// [envelope.arena.exhausted], exactly like the cursor-level parsers.
  static Tree parse(std::string_view text, std::size_t arena_limit = 0);

  Tree(Tree&&) noexcept = default;
  Tree& operator=(Tree&&) noexcept = default;
  Tree(const Tree&) = delete;
  Tree& operator=(const Tree&) = delete;

  const Node& root() const noexcept { return *root_; }
  const Arena& arena() const noexcept { return arena_; }

private:
  Tree() = default;

  Arena arena_;
  Node* root_ = nullptr;
};

}  // namespace tut::xml
