// tut::xml — minimal XML document model, writer and parser.
//
// This is the serialization substrate for the UML model interchange format
// (an XMI-like dialect) and for the profiling tool's log/report files. It is
// deliberately small: elements, attributes, text content, comments. No
// namespaces resolution (prefixes are kept verbatim in names), no DTDs.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tut::xml {

/// Error thrown by the parser on malformed input. Carries a byte offset and
/// 1-based line number of the failure point.
class ParseError : public std::runtime_error {
public:
  ParseError(const std::string& what, std::size_t offset, std::size_t line)
      : std::runtime_error(what + " (line " + std::to_string(line) + ")"),
        offset_(offset),
        line_(line) {}

  std::size_t offset() const noexcept { return offset_; }
  std::size_t line() const noexcept { return line_; }

private:
  std::size_t offset_;
  std::size_t line_;
};

/// One XML element. Attributes preserve insertion order (stable output);
/// children preserve document order. Text content is stored per-element as
/// the concatenation of its text nodes (mixed content keeps text before the
/// children when re-serialized, which is sufficient for our data dialects).
class Element {
public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- attributes ----------------------------------------------------------
  bool has_attr(std::string_view key) const noexcept;
  /// Returns the attribute value or std::nullopt.
  std::optional<std::string> attr(std::string_view key) const;
  /// Returns the attribute value or `fallback`.
  std::string attr_or(std::string_view key, std::string_view fallback) const;
  /// Sets (or replaces) an attribute; returns *this for chaining.
  Element& set_attr(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attrs() const noexcept {
    return attrs_;
  }

  // -- text content --------------------------------------------------------
  const std::string& text() const noexcept { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // -- children ------------------------------------------------------------
  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string name);
  Element& add_child(Element child);
  const std::vector<std::unique_ptr<Element>>& children() const noexcept {
    return children_;
  }
  std::vector<std::unique_ptr<Element>>& children() noexcept { return children_; }

  /// First child with the given element name, or nullptr.
  const Element* child(std::string_view name) const noexcept;
  Element* child(std::string_view name) noexcept;
  /// All children with the given element name, in document order.
  std::vector<const Element*> children_named(std::string_view name) const;

  /// Total number of elements in this subtree (including this element).
  std::size_t subtree_size() const noexcept;

private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed or constructed document: exactly one root element.
class Document {
public:
  Document() : root_(std::make_unique<Element>("root")) {}
  explicit Document(std::string root_name)
      : root_(std::make_unique<Element>(std::move(root_name))) {}

  Element& root() noexcept { return *root_; }
  const Element& root() const noexcept { return *root_; }

private:
  std::unique_ptr<Element> root_;
};

/// Escapes the five predefined XML entities in attribute/text context.
std::string escape(std::string_view raw);

/// Serializes a document with 2-space indentation and an XML declaration.
std::string write(const Document& doc);
/// Serializes a single element subtree (no declaration).
std::string write(const Element& elem, int indent = 0);

/// Parses a document from text. Throws ParseError on malformed input.
/// Accepts XML declarations, comments, CDATA sections and character
/// references (decimal, hex, and the five named entities).
Document parse(std::string_view text);

}  // namespace tut::xml
