// tut::xml — minimal XML document model, writer and parser.
//
// This is the serialization substrate for the UML model interchange format
// (an XMI-like dialect) and for the profiling tool's log/report files. It is
// deliberately small: elements, attributes, text content, comments. No
// namespaces resolution (prefixes are kept verbatim in names), no DTDs.
//
// The module has two parse representations sharing one tokenizer
// (xml::Cursor, cursor.hpp):
//   - xml::Document / xml::Element (this header): the mutable DOM used to
//     build documents programmatically — the reference implementation.
//   - xml::Tree / xml::Node (tree.hpp): an arena-backed, read-only tree
//     with string_view accessors — the zero-copy load path.
// Both decode entities identically and re-serialize byte-identically.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "xml/error.hpp"

namespace tut::xml {

/// One XML element. Attributes preserve insertion order (stable output);
/// children preserve document order. Text content is stored per-element as
/// the concatenation of its text nodes (mixed content keeps text before the
/// children when re-serialized, which is sufficient for our data dialects).
class Element {
public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- attributes ----------------------------------------------------------
  bool has_attr(std::string_view key) const noexcept;
  /// Returns a copy of the attribute value or std::nullopt.
  std::optional<std::string> attr(std::string_view key) const;
  /// Returns a view of the attribute value or std::nullopt. The view is
  /// valid until the attribute is replaced or the element destroyed; this
  /// is the allocation-free lookup the load path uses.
  std::optional<std::string_view> attr_view(std::string_view key) const noexcept;
  /// Returns the attribute value or `fallback`.
  std::string attr_or(std::string_view key, std::string_view fallback) const;
  /// Sets (or replaces) an attribute; returns *this for chaining.
  Element& set_attr(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attrs() const noexcept {
    return attrs_;
  }

  // -- text content --------------------------------------------------------
  const std::string& text() const noexcept { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // -- children ------------------------------------------------------------
  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string name);
  Element& add_child(Element child);
  const std::vector<std::unique_ptr<Element>>& children() const noexcept {
    return children_;
  }
  std::vector<std::unique_ptr<Element>>& children() noexcept { return children_; }

  /// First child with the given element name, or nullptr.
  const Element* child(std::string_view name) const noexcept;
  Element* child(std::string_view name) noexcept;
  /// All children with the given element name, in document order.
  std::vector<const Element*> children_named(std::string_view name) const;

  /// Total number of elements in this subtree (including this element).
  std::size_t subtree_size() const noexcept;

private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed or constructed document: exactly one root element.
class Document {
public:
  Document() : root_(std::make_unique<Element>("root")) {}
  explicit Document(std::string root_name)
      : root_(std::make_unique<Element>(std::move(root_name))) {}

  Element& root() noexcept { return *root_; }
  const Element& root() const noexcept { return *root_; }

private:
  std::unique_ptr<Element> root_;
};

// -- escaping ---------------------------------------------------------------

/// Appends `raw` to `out` with the five predefined XML entities escaped.
/// Fast path: a run with no escapable byte is appended in one memcpy.
void escape_to(std::string& out, std::string_view raw);

/// Returns `raw` untouched when it contains no escapable byte; otherwise
/// escapes into `scratch` and returns a view of it.
std::string_view escape_view(std::string_view raw, std::string& scratch);

/// Escapes the five predefined XML entities in attribute/text context.
std::string escape(std::string_view raw);

// -- streaming writer -------------------------------------------------------

/// Streaming serializer: appends into one reserved std::string (no
/// stringstream, no intermediate tree). Produces byte-identical output to
/// xml::write() of an equivalent Document: 2-space indentation, attributes
/// in call order, self-closing empty elements, text before children.
///
/// Usage: open()/attr()/text()/close() in document order; attr() is only
/// valid while its element's start tag is open (before any text or child).
class Writer {
public:
  explicit Writer(std::size_t reserve_bytes = 1024, int base_indent = 0);

  /// Emits the XML declaration line.
  void declaration();
  void open(std::string_view name);
  void attr(std::string_view key, std::string_view value);
  void text(std::string_view t);
  void close();
  /// Closes elements until the open depth is `depth`.
  void close_to(std::size_t depth);

  std::size_t depth() const noexcept { return stack_.size(); }
  const std::string& str() const noexcept { return out_; }
  /// Closes all open elements and moves the buffer out.
  std::string take();

private:
  void pad(std::size_t depth);

  struct Frame {
    std::uint32_t name_pos;  // offset into names_
    std::uint32_t name_len;
    bool tag_open;      // '>' not yet emitted, attrs still allowed
    bool has_children;  // a child element was emitted
  };

  std::string out_;
  std::string names_;  // stack of open-element names (no per-open allocation)
  std::vector<Frame> stack_;
  int base_indent_;
};

/// Serializes a document with 2-space indentation and an XML declaration.
std::string write(const Document& doc);
/// Serializes a single element subtree (no declaration).
std::string write(const Element& elem, int indent = 0);

/// Parses a document from text into the mutable DOM. Throws ParseError on
/// malformed input. Accepts XML declarations, comments, CDATA sections and
/// character references (decimal, hex, and the five named entities).
/// Implemented on xml::Cursor; for the allocation-free representation use
/// xml::Tree::parse (tree.hpp).
Document parse(std::string_view text);

}  // namespace tut::xml
