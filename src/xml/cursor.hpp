// xml::Cursor — zero-copy pull tokenizer.
//
// The cursor walks an XML byte buffer and yields events (start tag, end
// tag, text run) whose names, attribute keys/values and text are
// string_views directly into the input buffer. Entity references force a
// copy, but only of the affected run, and only into the supplied Arena —
// the common case (no '&' in the run) allocates nothing.
//
// Lifetime rule: every view returned by the cursor aliases either the input
// buffer or the arena; both must outlive any use of the views. Views
// returned for one event stay valid across subsequent events (they are
// never overwritten), so a tree builder may retain them.
//
// Dialect: matches the DOM parser exactly — XML declarations, comments,
// DOCTYPE and processing instructions in the prolog are skipped; comments
// and CDATA are handled in content; the five named entities plus decimal
// and hex character references are decoded. No namespace resolution.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/arena.hpp"
#include "xml/error.hpp"

namespace tut::xml {

class Cursor {
public:
  enum class Event : unsigned char {
    StartElement,  // name() + attr_*(); self_closing() tells if EndElement follows
    EndElement,    // name()
    Text,          // text(): one decoded, non-empty text or CDATA run (untrimmed)
    End,           // document finished; repeated calls keep returning End
  };

  /// The cursor reads `text` in place; `arena` receives decoded entity runs.
  Cursor(std::string_view text, Arena& arena) : text_(text), arena_(&arena) {}

  /// Advances to the next event. Throws ParseError on malformed input.
  Event next();

  Event event() const noexcept { return event_; }
  /// Element name for StartElement/EndElement events.
  std::string_view name() const noexcept { return name_; }
  /// Decoded text run for Text events. Whitespace-only runs are reported;
  /// DOM-compatible consumers concatenate runs per element and trim the ends.
  std::string_view text() const noexcept { return text_run_; }
  /// True if the current StartElement came from `<tag/>`; the next event is
  /// its EndElement.
  bool self_closing() const noexcept { return pending_end_; }

  std::size_t attr_count() const noexcept { return attrs_.size(); }
  std::string_view attr_key(std::size_t i) const noexcept { return attrs_[i].key; }
  std::string_view attr_value(std::size_t i) const noexcept { return attrs_[i].value; }
  /// Linear scan for `key`; attribute lists in the dialect are short.
  std::optional<std::string_view> attr(std::string_view key) const noexcept {
    for (const auto& a : attrs_) {
      if (a.key == key) return a.value;
    }
    return std::nullopt;
  }

  /// Open-element depth after the current event.
  std::size_t depth() const noexcept { return stack_.size(); }
  /// Current byte offset into the input.
  std::size_t offset() const noexcept { return pos_; }

private:
  struct RawAttr {
    std::string_view key;
    std::string_view value;
  };

  [[noreturn]] void fail(const std::string& msg) const { fail_at(msg, pos_); }
  [[noreturn]] void fail_at(const std::string& msg, std::size_t offset) const;

  bool starts_with(std::string_view s) const noexcept {
    return text_.substr(pos_, s.size()) == s;
  }

  void skip_ws() noexcept;
  void skip_comment();
  void skip_misc();
  void skip_prolog();

  std::string_view parse_name();
  Event parse_start_tag();
  Event parse_end_tag();
  Event parse_text();
  std::string_view parse_attr_value();
  /// Decodes the entity at pos_ (must be '&') into `out`; the terminating
  /// ';' must appear before byte offset `limit`. Returns bytes written.
  std::size_t decode_entity(char* out, std::size_t limit);

  std::string_view text_;
  Arena* arena_;
  std::size_t pos_ = 0;
  bool started_ = false;
  bool done_ = false;
  bool pending_end_ = false;
  Event event_ = Event::End;
  std::string_view name_;
  std::string_view text_run_;
  std::vector<RawAttr> attrs_;
  std::vector<std::string_view> stack_;  // open element names
};

}  // namespace tut::xml
