// Bump arena for the zero-copy interchange layer.
//
// Parsing a document allocates every node, attribute array and unescaped
// string run from one of these: allocation is a pointer bump, teardown frees
// a handful of large chunks instead of one heap object per node, and
// allocation order equals document order, so traversal chases pointers
// through contiguous memory.
//
// Lifetime rule: everything handed out by an Arena lives exactly as long as
// the Arena. Only trivially-destructible types may be placed in it —
// destructors are never run.
//
// Resource envelope: set_limit() caps the bytes the arena may reserve from
// the system. A growth that would exceed the limit throws ArenaLimitError
// (message tagged "[envelope.arena.exhausted]") *before* reserving, leaving
// every prior allocation valid — parsing under a sim::ResourceProfile either
// completes or reports exactly which ceiling it hit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace tut::xml {

/// Arena byte-ceiling miss. Derives from std::length_error so callers that
/// only know std::exception still see the tagged message; the xml layer
/// cannot depend on sim::EnvelopeError (sim links xml, not the reverse).
class ArenaLimitError : public std::length_error {
public:
  explicit ArenaLimitError(const std::string& what)
      : std::length_error(what) {}
};

class Arena {
public:
  /// `limit_bytes` caps bytes_reserved(); 0 = unbounded.
  explicit Arena(std::size_t first_chunk_bytes = 16 * 1024,
                 std::size_t limit_bytes = 0)
      : next_chunk_bytes_(first_chunk_bytes), limit_(limit_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` with the given alignment (power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    auto p = reinterpret_cast<std::uintptr_t>(cur_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~std::uintptr_t(align - 1);
    if (aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      grow(bytes + align);
      return allocate(bytes, align);
    }
    cur_ = reinterpret_cast<char*>(aligned + bytes);
    used_ += bytes + (aligned - p);
    return reinterpret_cast<void*>(aligned);
  }

  char* allocate_bytes(std::size_t n) {
    return static_cast<char*>(allocate(n, 1));
  }

  /// Returns the unused tail of the most recent allocation to the arena.
  /// `p` must be the pointer returned by the latest allocate() call with
  /// `reserved` bytes, of which only the first `used` are kept.
  void shrink_last(void* p, std::size_t reserved, std::size_t used) {
    char* base = static_cast<char*>(p);
    if (base + reserved == cur_) {
      cur_ = base + used;
      used_ -= reserved - used;
    }
  }

  /// Copies `s` into the arena and returns a view of the copy.
  std::string_view store(std::string_view s) {
    if (s.empty()) return {};
    char* p = allocate_bytes(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Constructs a T in the arena. T must be trivially destructible: the
  /// arena never runs destructors.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Bytes handed out to callers (excluding chunk slack).
  std::size_t bytes_used() const noexcept { return used_; }
  /// Bytes reserved from the system across all chunks.
  std::size_t bytes_reserved() const noexcept {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += c.size;
    return n;
  }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

  /// (Re)arms the reserved-byte ceiling; 0 disarms it. Already-reserved
  /// chunks are never reclaimed — the limit gates future growth only.
  void set_limit(std::size_t limit_bytes) noexcept { limit_ = limit_bytes; }
  std::size_t limit() const noexcept { return limit_; }

  /// Drops every allocation but keeps the reserved chunks for reuse.
  void reset() noexcept {
    if (chunks_.size() > 1) {
      // Keep only the largest (last) chunk; steady-state reuse needs one.
      chunks_.erase(chunks_.begin(), chunks_.end() - 1);
    }
    if (!chunks_.empty()) {
      cur_ = chunks_.back().data.get();
      end_ = cur_ + chunks_.back().size;
    }
    used_ = 0;
  }

private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size;
  };

  void grow(std::size_t at_least) {
    std::size_t size = next_chunk_bytes_;
    if (size < at_least) size = at_least;
    if (limit_ != 0) {
      const std::size_t reserved = bytes_reserved();
      const std::size_t remaining = limit_ > reserved ? limit_ - reserved : 0;
      if (remaining < at_least) {
        throw ArenaLimitError(
            "xml: [envelope.arena.exhausted] arena envelope of " +
            std::to_string(limit_) + " bytes exhausted (" +
            std::to_string(reserved) + " reserved, " +
            std::to_string(at_least) + " more needed)");
      }
      if (size > remaining) size = remaining;
    }
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    cur_ = chunks_.back().data.get();
    end_ = cur_ + size;
    if (next_chunk_bytes_ < (std::size_t(1) << 20)) next_chunk_bytes_ *= 2;
  }

  std::vector<Chunk> chunks_;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  std::size_t used_ = 0;
  std::size_t next_chunk_bytes_;
  std::size_t limit_ = 0;  ///< reserved-byte ceiling; 0 = unbounded
};

}  // namespace tut::xml
