// Bump arena for the zero-copy interchange layer.
//
// Parsing a document allocates every node, attribute array and unescaped
// string run from one of these: allocation is a pointer bump, teardown frees
// a handful of large chunks instead of one heap object per node, and
// allocation order equals document order, so traversal chases pointers
// through contiguous memory.
//
// Lifetime rule: everything handed out by an Arena lives exactly as long as
// the Arena. Only trivially-destructible types may be placed in it —
// destructors are never run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace tut::xml {

class Arena {
public:
  explicit Arena(std::size_t first_chunk_bytes = 16 * 1024)
      : next_chunk_bytes_(first_chunk_bytes) {}

  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` with the given alignment (power of two).
  void* allocate(std::size_t bytes, std::size_t align) {
    auto p = reinterpret_cast<std::uintptr_t>(cur_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~std::uintptr_t(align - 1);
    if (aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      grow(bytes + align);
      return allocate(bytes, align);
    }
    cur_ = reinterpret_cast<char*>(aligned + bytes);
    used_ += bytes + (aligned - p);
    return reinterpret_cast<void*>(aligned);
  }

  char* allocate_bytes(std::size_t n) {
    return static_cast<char*>(allocate(n, 1));
  }

  /// Returns the unused tail of the most recent allocation to the arena.
  /// `p` must be the pointer returned by the latest allocate() call with
  /// `reserved` bytes, of which only the first `used` are kept.
  void shrink_last(void* p, std::size_t reserved, std::size_t used) {
    char* base = static_cast<char*>(p);
    if (base + reserved == cur_) {
      cur_ = base + used;
      used_ -= reserved - used;
    }
  }

  /// Copies `s` into the arena and returns a view of the copy.
  std::string_view store(std::string_view s) {
    if (s.empty()) return {};
    char* p = allocate_bytes(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Constructs a T in the arena. T must be trivially destructible: the
  /// arena never runs destructors.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Bytes handed out to callers (excluding chunk slack).
  std::size_t bytes_used() const noexcept { return used_; }
  /// Bytes reserved from the system across all chunks.
  std::size_t bytes_reserved() const noexcept {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += c.size;
    return n;
  }
  std::size_t chunk_count() const noexcept { return chunks_.size(); }

  /// Drops every allocation but keeps the reserved chunks for reuse.
  void reset() noexcept {
    if (chunks_.size() > 1) {
      // Keep only the largest (last) chunk; steady-state reuse needs one.
      chunks_.erase(chunks_.begin(), chunks_.end() - 1);
    }
    if (!chunks_.empty()) {
      cur_ = chunks_.back().data.get();
      end_ = cur_ + chunks_.back().size;
    }
    used_ = 0;
  }

private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size;
  };

  void grow(std::size_t at_least) {
    std::size_t size = next_chunk_bytes_;
    if (size < at_least) size = at_least;
    chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    cur_ = chunks_.back().data.get();
    end_ = cur_ + size;
    if (next_chunk_bytes_ < (std::size_t(1) << 20)) next_chunk_bytes_ *= 2;
  }

  std::vector<Chunk> chunks_;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  std::size_t used_ = 0;
  std::size_t next_chunk_bytes_;
};

}  // namespace tut::xml
