#include "xml/tree.hpp"

#include <cstring>

namespace tut::xml {

namespace {

// The DOM parser trims exactly this set from concatenated element text.
constexpr std::string_view kTrim = " \t\r\n";

std::string_view trim(std::string_view s) noexcept {
  const auto first = s.find_first_not_of(kTrim);
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(kTrim);
  return s.substr(first, last - first + 1);
}

}  // namespace

Tree Tree::parse(std::string_view text, std::size_t arena_limit) {
  Tree tree;
  tree.arena_.set_limit(arena_limit);
  Cursor cur(text, tree.arena_);

  struct Frame {
    Node* node;
    Node* last_child;
    std::uint32_t first_run;  // index into `runs` where this element's text starts
  };
  std::vector<Frame> stack;
  std::vector<std::string_view> runs;
  std::vector<Attr> scratch;

  for (;;) {
    switch (cur.next()) {
      case Cursor::Event::StartElement: {
        Node* n = tree.arena_.create<Node>();
        n->name_ = cur.name();
        // Duplicate keys keep first position, last value — the DOM
        // set_attr() replacement semantics.
        scratch.clear();
        for (std::size_t i = 0; i < cur.attr_count(); ++i) {
          const auto key = cur.attr_key(i);
          bool replaced = false;
          for (auto& a : scratch) {
            if (a.key == key) {
              a.value = cur.attr_value(i);
              replaced = true;
              break;
            }
          }
          if (!replaced) scratch.push_back(Attr{key, cur.attr_value(i)});
        }
        if (!scratch.empty()) {
          auto* arr = static_cast<Attr*>(
              tree.arena_.allocate(sizeof(Attr) * scratch.size(), alignof(Attr)));
          std::memcpy(arr, scratch.data(), sizeof(Attr) * scratch.size());
          n->attrs_ = arr;
          n->nattrs_ = static_cast<std::uint32_t>(scratch.size());
        }
        if (stack.empty()) {
          tree.root_ = n;
        } else {
          Frame& p = stack.back();
          if (p.last_child != nullptr) {
            p.last_child->next_sibling_ = n;
          } else {
            p.node->first_child_ = n;
          }
          p.last_child = n;
        }
        stack.push_back(Frame{n, nullptr, static_cast<std::uint32_t>(runs.size())});
        break;
      }
      case Cursor::Event::Text:
        runs.push_back(cur.text());
        break;
      case Cursor::Event::EndElement: {
        const Frame f = stack.back();
        stack.pop_back();
        const std::size_t nruns = runs.size() - f.first_run;
        if (nruns == 1) {
          // Single run: trim the view in place, no copy.
          f.node->text_ = trim(runs.back());
        } else if (nruns > 1) {
          std::size_t total = 0;
          for (std::size_t i = f.first_run; i < runs.size(); ++i) {
            total += runs[i].size();
          }
          char* buf = tree.arena_.allocate_bytes(total);
          std::size_t off = 0;
          for (std::size_t i = f.first_run; i < runs.size(); ++i) {
            std::memcpy(buf + off, runs[i].data(), runs[i].size());
            off += runs[i].size();
          }
          f.node->text_ = trim({buf, total});
        }
        runs.resize(f.first_run);
        break;
      }
      case Cursor::Event::End:
        return tree;
    }
  }
}

}  // namespace tut::xml
