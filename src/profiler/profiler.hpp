// tut::profiler — the profiling tool of Section 4.4.
//
// The paper's tool has three stages (there TCL scripts, here a library):
//   1. Model parsing: "the XML presentation of the UML 2.0 model is parsed
//      to gather process group information" — ProcessGroupInfo::from_xml.
//   2. Instrumentation: the generated application code is complemented with
//      logging functions — in this repo the co-simulator (or generated code
//      built with -DTUT_PROFILING) emits the simulation log-file.
//   3. Analysis: "the profiling data in the simulation log-file and the
//      process group information are combined and analyzed. The results are
//      gathered to a profiling report" — analyze() producing the per-group
//      execution times (Table 4a), the inter-group signal matrix (Table 4b)
//      and per-process transfer details.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/log.hpp"
#include "uml/model.hpp"

namespace tut::profiler {

/// Display name of the environment row/column in reports (the paper's
/// Table 4 uses "Environment").
inline constexpr const char* kEnvironmentParty = "Environment";

/// Stage 1 output: which process belongs to which group.
struct ProcessGroupInfo {
  /// Group names in model order.
  std::vector<std::string> groups;
  /// process name -> group name (only grouped processes appear).
  std::map<std::string, std::string> group_of;

  /// Group of a process; kEnvironmentParty for "env" or unknown processes
  /// (anything outside the application is the environment).
  const std::string& party_of(const std::string& process) const;

  /// Extracts grouping from an in-memory model.
  static ProcessGroupInfo from_model(const uml::Model& model);
  /// Stage 1 proper: parses the model's XML interchange form.
  static ProcessGroupInfo from_xml(const std::string& xml_text);
};

/// One row of Table 4(a).
struct GroupExecution {
  std::string group;
  long cycles = 0;
  sim::Time busy_time = 0;   ///< summed wall duration of the group's runs
  double proportion = 0.0;   ///< share of total cycles, in percent
};

/// Per-component fault exposure in a degraded-mode run.
struct ComponentReliability {
  std::string component;     ///< PE instance, segment or process name
  std::uint64_t faults = 0;  ///< fault windows opened
  sim::Time downtime = 0;    ///< total time spent faulted
};

/// Reliability view of a fault-injected run. `present` stays false for
/// fault-free logs, and the report renders its section (c) only when set,
/// so ordinary profiling output is unchanged by the fault subsystem.
struct ReliabilityReport {
  bool present = false;
  /// Components that faulted at least once, ordered by name. A fault still
  /// open at the last log record counts downtime up to that record.
  std::vector<ComponentReliability> components;
  std::uint64_t delivered = 0;  ///< signals received by a process
  std::uint64_t dropped = 0;    ///< signals dropped (unhandled or faulted)
  std::uint64_t retries = 0;    ///< transfer retry attempts
  std::uint64_t watchdog_resets = 0;
  std::uint64_t migrations = 0;
  /// Worst observed time from a process migration to its next executed
  /// transition (0 when runs are not logged).
  sim::Time worst_recovery_latency = 0;
};

/// The profiling report (Table 4 plus per-process details).
struct ProfilingReport {
  /// Table 4(a): groups in ProcessGroupInfo order, then the environment.
  std::vector<GroupExecution> execution;
  /// Parties indexing the signal matrix: groups, then kEnvironmentParty.
  std::vector<std::string> parties;
  /// Table 4(b): signals[i][j] = number of signals sent from parties[i]
  /// to parties[j].
  std::vector<std::vector<std::uint64_t>> signals;

  /// Per-process execution cycles ("other metrics ... are also available").
  std::map<std::string, long> process_cycles;
  /// Per process-pair signal counts ("transfers between individual
  /// application processes").
  std::map<std::pair<std::string, std::string>, std::uint64_t> process_signals;
  /// Dropped (unhandled) signals per process.
  std::map<std::string, std::uint64_t> drops;
  /// Section (c): fault exposure and degraded-mode behaviour.
  ReliabilityReport reliability;

  std::uint64_t total_signals() const;
  long total_cycles() const;
  /// Signals crossing group boundaries (off-diagonal, environment included).
  std::uint64_t inter_group_signals() const;

  /// Index of a party in `parties`, or npos.
  std::size_t party_index(const std::string& party) const;

  /// Renders the report in the layout of the paper's Table 4.
  std::string to_text() const;
};

/// Stage 3: combines process-group information with the simulation log.
ProfilingReport analyze(const ProcessGroupInfo& info,
                        const sim::SimulationLog& log);

/// End-to-end delivery latency of one signal stream (sender, receiver,
/// signal), send and receive records matched FIFO. Used to check the
/// real-time requirements the RealTimeType tags declare.
struct LatencyStats {
  std::string from;
  std::string to;
  std::string signal;
  std::size_t samples = 0;
  sim::Time min = 0;
  sim::Time max = 0;
  double mean = 0.0;
};

/// Latency statistics for every (from, to, signal) stream that has at least
/// one matched send/receive pair, ordered by stream key.
std::vector<LatencyStats> latency_report(const sim::SimulationLog& log);

/// Renders a latency report as an aligned text table.
std::string latency_to_text(const std::vector<LatencyStats>& report);

}  // namespace tut::profiler
