#include "profiler/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <tuple>
#include <sstream>

#include "appmodel/appmodel.hpp"
#include "uml/serialize.hpp"

namespace tut::profiler {

namespace {

const std::string kEnvString = kEnvironmentParty;

}  // namespace

const std::string& ProcessGroupInfo::party_of(
    const std::string& process) const {
  auto it = group_of.find(process);
  return it != group_of.end() ? it->second : kEnvString;
}

ProcessGroupInfo ProcessGroupInfo::from_model(const uml::Model& model) {
  ProcessGroupInfo info;
  appmodel::ApplicationView view(model);
  for (const uml::Property* g : view.groups()) {
    info.groups.push_back(g->name());
  }
  for (const uml::Property* p : view.processes()) {
    const uml::Property* g = view.group_of(*p);
    if (g != nullptr) info.group_of[p->name()] = g->name();
  }
  return info;
}

ProcessGroupInfo ProcessGroupInfo::from_xml(const std::string& xml_text) {
  const auto model = uml::from_xml_string(xml_text);
  return from_model(*model);
}

std::uint64_t ProfilingReport::total_signals() const {
  std::uint64_t n = 0;
  for (const auto& row : signals) {
    for (std::uint64_t v : row) n += v;
  }
  return n;
}

long ProfilingReport::total_cycles() const {
  long n = 0;
  for (const auto& row : execution) n += row.cycles;
  return n;
}

std::uint64_t ProfilingReport::inter_group_signals() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    for (std::size_t j = 0; j < signals[i].size(); ++j) {
      if (i != j) n += signals[i][j];
    }
  }
  return n;
}

std::size_t ProfilingReport::party_index(const std::string& party) const {
  for (std::size_t i = 0; i < parties.size(); ++i) {
    if (parties[i] == party) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::string ProfilingReport::to_text() const {
  std::ostringstream os;
  os << "(a) Process group execution\n";
  std::size_t width = 17;  // "Sender/Receiver" + margin
  for (const auto& row : execution) width = std::max(width, row.group.size() + 2);
  os << std::left << std::setw(static_cast<int>(width)) << "Process group"
     << std::right << std::setw(20) << "Total execution time" << std::setw(12)
     << "Proportion" << '\n';
  for (const auto& row : execution) {
    std::ostringstream cycles;
    cycles << row.cycles << " cycles";
    os << std::left << std::setw(static_cast<int>(width)) << row.group
       << std::right << std::setw(20) << cycles.str() << std::setw(10)
       << std::fixed << std::setprecision(1) << row.proportion << " %\n";
  }
  os << "\n(b) Number of signals between groups\n";
  os << std::left << std::setw(static_cast<int>(width)) << "Sender/Receiver";
  for (const auto& p : parties) {
    os << std::right << std::setw(static_cast<int>(std::max<std::size_t>(
                             p.size() + 2, 8))) << p;
  }
  os << '\n';
  for (std::size_t i = 0; i < parties.size(); ++i) {
    os << std::left << std::setw(static_cast<int>(width)) << parties[i];
    for (std::size_t j = 0; j < parties.size(); ++j) {
      os << std::right << std::setw(static_cast<int>(std::max<std::size_t>(
                               parties[j].size() + 2, 8))) << signals[i][j];
    }
    os << '\n';
  }
  return os.str();
}

ProfilingReport analyze(const ProcessGroupInfo& info,
                        const sim::SimulationLog& log) {
  ProfilingReport report;
  report.parties = info.groups;
  report.parties.push_back(kEnvironmentParty);
  const std::size_t n = report.parties.size();
  report.signals.assign(n, std::vector<std::uint64_t>(n, 0));

  std::map<std::string, GroupExecution> per_group;
  for (const auto& g : info.groups) per_group[g] = GroupExecution{g, 0, 0, 0.0};
  GroupExecution env{kEnvironmentParty, 0, 0, 0.0};

  auto index_of = [&](const std::string& party) {
    return report.party_index(party);
  };

  for (const sim::LogRecord& r : log.records()) {
    switch (r.kind) {
      case sim::LogRecord::Kind::Run: {
        report.process_cycles[r.process] += r.cycles;
        const std::string& party = info.party_of(r.process);
        if (party == kEnvironmentParty) {
          env.cycles += r.cycles;
          env.busy_time += r.duration;
        } else {
          auto& row = per_group[party];
          row.cycles += r.cycles;
          row.busy_time += r.duration;
        }
        break;
      }
      case sim::LogRecord::Kind::Send: {
        const std::string from_party =
            r.process == sim::kEnvironment ? kEnvString
                                           : info.party_of(r.process);
        const std::string to_party =
            r.peer == sim::kEnvironment ? kEnvString : info.party_of(r.peer);
        const std::size_t i = index_of(from_party);
        const std::size_t j = index_of(to_party);
        if (i < n && j < n) ++report.signals[i][j];
        ++report.process_signals[{r.process, r.peer}];
        break;
      }
      case sim::LogRecord::Kind::Receive:
        break;  // sends already counted; receives would double-count
      case sim::LogRecord::Kind::Drop:
        ++report.drops[r.process];
        break;
    }
  }

  long total = env.cycles;
  for (const auto& g : info.groups) total += per_group[g].cycles;
  for (const auto& g : info.groups) {
    auto row = per_group[g];
    row.proportion = total > 0 ? 100.0 * static_cast<double>(row.cycles) /
                                     static_cast<double>(total)
                               : 0.0;
    report.execution.push_back(std::move(row));
  }
  env.proportion = total > 0 ? 100.0 * static_cast<double>(env.cycles) /
                                   static_cast<double>(total)
                             : 0.0;
  report.execution.push_back(std::move(env));
  return report;
}

std::vector<LatencyStats> latency_report(const sim::SimulationLog& log) {
  // Stream key: (from, to, signal). Sends queue up; receives match FIFO.
  using Key = std::tuple<std::string, std::string, std::string>;
  std::map<Key, std::vector<sim::Time>> pending;  // unmatched send times
  std::map<Key, std::size_t> cursor;              // next unmatched index
  std::map<Key, LatencyStats> stats;

  for (const sim::LogRecord& r : log.records()) {
    if (r.kind == sim::LogRecord::Kind::Send) {
      pending[{r.process, r.peer, r.signal}].push_back(r.time);
    } else if (r.kind == sim::LogRecord::Kind::Receive) {
      const Key key{r.peer, r.process, r.signal};
      auto it = pending.find(key);
      if (it == pending.end()) continue;
      std::size_t& next = cursor[key];
      if (next >= it->second.size()) continue;  // receive without send
      const sim::Time sent = it->second[next++];
      const sim::Time latency = r.time >= sent ? r.time - sent : 0;
      LatencyStats& s = stats[key];
      if (s.samples == 0) {
        s.from = r.peer;
        s.to = r.process;
        s.signal = r.signal;
        s.min = latency;
        s.max = latency;
      } else {
        s.min = std::min(s.min, latency);
        s.max = std::max(s.max, latency);
      }
      // Streaming mean.
      s.mean += (static_cast<double>(latency) - s.mean) /
                static_cast<double>(s.samples + 1);
      ++s.samples;
    }
  }
  std::vector<LatencyStats> out;
  out.reserve(stats.size());
  for (auto& [key, s] : stats) out.push_back(std::move(s));
  return out;
}

std::string latency_to_text(const std::vector<LatencyStats>& report) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "from" << std::setw(14) << "to"
     << std::setw(16) << "signal" << std::right << std::setw(9) << "samples"
     << std::setw(12) << "min" << std::setw(12) << "mean" << std::setw(12)
     << "max" << '\n';
  for (const LatencyStats& s : report) {
    os << std::left << std::setw(14) << s.from << std::setw(14) << s.to
       << std::setw(16) << s.signal << std::right << std::setw(9) << s.samples
       << std::setw(12) << s.min << std::setw(12) << std::fixed
       << std::setprecision(1) << s.mean << std::setw(12) << s.max << '\n';
  }
  return os.str();
}

}  // namespace tut::profiler
