#include "profiler/profiler.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <tuple>
#include <unordered_map>

#include "appmodel/appmodel.hpp"
#include "uml/serialize.hpp"

namespace tut::profiler {

namespace {

const std::string kEnvString = kEnvironmentParty;

constexpr std::size_t kNoParty = static_cast<std::size_t>(-1);

/// Packs a directed (from, to) id pair into one hash key.
constexpr std::uint64_t pair_key(intern::Id from, intern::Id to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

const std::string& ProcessGroupInfo::party_of(
    const std::string& process) const {
  auto it = group_of.find(process);
  return it != group_of.end() ? it->second : kEnvString;
}

ProcessGroupInfo ProcessGroupInfo::from_model(const uml::Model& model) {
  ProcessGroupInfo info;
  appmodel::ApplicationView view(model);
  for (const uml::Property* g : view.groups()) {
    info.groups.push_back(g->name());
  }
  for (const uml::Property* p : view.processes()) {
    const uml::Property* g = view.group_of(*p);
    if (g != nullptr) info.group_of[p->name()] = g->name();
  }
  return info;
}

ProcessGroupInfo ProcessGroupInfo::from_xml(const std::string& xml_text) {
  const auto model = uml::from_xml_string(xml_text);
  return from_model(*model);
}

std::uint64_t ProfilingReport::total_signals() const {
  std::uint64_t n = 0;
  for (const auto& row : signals) {
    for (std::uint64_t v : row) n += v;
  }
  return n;
}

long ProfilingReport::total_cycles() const {
  long n = 0;
  for (const auto& row : execution) n += row.cycles;
  return n;
}

std::uint64_t ProfilingReport::inter_group_signals() const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    for (std::size_t j = 0; j < signals[i].size(); ++j) {
      if (i != j) n += signals[i][j];
    }
  }
  return n;
}

std::size_t ProfilingReport::party_index(const std::string& party) const {
  for (std::size_t i = 0; i < parties.size(); ++i) {
    if (parties[i] == party) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::string ProfilingReport::to_text() const {
  std::ostringstream os;
  os << "(a) Process group execution\n";
  std::size_t width = 17;  // "Sender/Receiver" + margin
  for (const auto& row : execution) width = std::max(width, row.group.size() + 2);
  os << std::left << std::setw(static_cast<int>(width)) << "Process group"
     << std::right << std::setw(20) << "Total execution time" << std::setw(12)
     << "Proportion" << '\n';
  for (const auto& row : execution) {
    std::ostringstream cycles;
    cycles << row.cycles << " cycles";
    os << std::left << std::setw(static_cast<int>(width)) << row.group
       << std::right << std::setw(20) << cycles.str() << std::setw(10)
       << std::fixed << std::setprecision(1) << row.proportion << " %\n";
  }
  os << "\n(b) Number of signals between groups\n";
  os << std::left << std::setw(static_cast<int>(width)) << "Sender/Receiver";
  for (const auto& p : parties) {
    os << std::right << std::setw(static_cast<int>(std::max<std::size_t>(
                             p.size() + 2, 8))) << p;
  }
  os << '\n';
  for (std::size_t i = 0; i < parties.size(); ++i) {
    os << std::left << std::setw(static_cast<int>(width)) << parties[i];
    for (std::size_t j = 0; j < parties.size(); ++j) {
      os << std::right << std::setw(static_cast<int>(std::max<std::size_t>(
                               parties[j].size() + 2, 8))) << signals[i][j];
    }
    os << '\n';
  }
  if (reliability.present) {
    std::size_t cwidth = 11;  // "Component" + margin
    for (const auto& c : reliability.components) {
      cwidth = std::max(cwidth, c.component.size() + 2);
    }
    os << "\n(c) Reliability\n";
    os << std::left << std::setw(static_cast<int>(cwidth)) << "Component"
       << std::right << std::setw(8) << "Faults" << std::setw(16)
       << "Downtime" << '\n';
    for (const auto& c : reliability.components) {
      std::ostringstream down;
      down << c.downtime << " ticks";
      os << std::left << std::setw(static_cast<int>(cwidth)) << c.component
         << std::right << std::setw(8) << c.faults << std::setw(16)
         << down.str() << '\n';
    }
    os << "Signals delivered: " << reliability.delivered
       << "  dropped: " << reliability.dropped
       << "  transfer retries: " << reliability.retries << '\n';
    os << "Watchdog resets: " << reliability.watchdog_resets
       << "  migrations: " << reliability.migrations
       << "  worst recovery latency: " << reliability.worst_recovery_latency
       << " ticks\n";
  }
  return os.str();
}

ProfilingReport analyze(const ProcessGroupInfo& info,
                        const sim::SimulationLog& log) {
  ProfilingReport report;
  report.parties = info.groups;
  report.parties.push_back(kEnvironmentParty);
  const std::size_t n = report.parties.size();
  report.signals.assign(n, std::vector<std::uint64_t>(n, 0));
  const std::size_t env_party = n - 1;

  // Resolve every interned log name to its party index once; the record loop
  // then runs entirely on dense ids. Two tables because Run records resolve
  // through party_of() alone while Send records special-case the literal
  // environment name first (see the string-based originals below).
  const intern::Table& names = log.names();
  const std::size_t name_count = names.size();
  std::vector<std::size_t> run_party(name_count, kNoParty);
  std::vector<std::size_t> msg_party(name_count, kNoParty);
  for (intern::Id id = 0; id < name_count; ++id) {
    const std::string& process = names.name(id);
    // Run: info.party_of(process), mapped into parties (or discarded).
    const std::string& run_p = info.party_of(process);
    run_party[id] = report.party_index(run_p);
    // Send: kEnvironment short-circuits to the environment column.
    msg_party[id] = process == sim::kEnvironment
                        ? env_party
                        : report.party_index(info.party_of(process));
  }

  // Dense accumulators, translated into the string-keyed report at the end.
  std::vector<long> party_cycles(n, 0);
  std::vector<sim::Time> party_busy(n, 0);
  std::vector<long> cycles_by_id(name_count, 0);
  std::vector<std::uint64_t> drops_by_id(name_count, 0);
  std::vector<bool> ran(name_count, false);
  std::unordered_map<std::uint64_t, std::uint64_t> pair_signals;

  // Reliability accumulators (all stay zero for a fault-free log).
  constexpr sim::Time kNoTime = static_cast<sim::Time>(-1);
  ReliabilityReport& rel = report.reliability;
  std::vector<sim::Time> fault_open(name_count, kNoTime);
  std::vector<std::uint64_t> fault_count(name_count, 0);
  std::vector<sim::Time> fault_down(name_count, 0);
  std::vector<sim::Time> migrated_at(name_count, kNoTime);
  sim::Time last_time = 0;

  for (const sim::SimulationLog::Compact& r : log.compact_records()) {
    last_time = r.time;
    switch (r.kind) {
      case sim::LogRecord::Kind::Run: {
        cycles_by_id[r.process] += r.cycles;
        ran[r.process] = true;
        const std::size_t party = run_party[r.process];
        if (party < n) {
          party_cycles[party] += r.cycles;
          party_busy[party] += r.duration;
        }
        if (migrated_at[r.process] != kNoTime) {
          rel.worst_recovery_latency = std::max(
              rel.worst_recovery_latency, r.time - migrated_at[r.process]);
          migrated_at[r.process] = kNoTime;
        }
        break;
      }
      case sim::LogRecord::Kind::Send: {
        const std::size_t i = msg_party[r.process];
        const std::size_t j = msg_party[r.peer];
        if (i < n && j < n) ++report.signals[i][j];
        ++pair_signals[pair_key(r.process, r.peer)];
        break;
      }
      case sim::LogRecord::Kind::Receive:
        // Sends already fill the matrix; receives would double-count there,
        // but they are the delivery count the reliability section reports.
        ++rel.delivered;
        break;
      case sim::LogRecord::Kind::Drop:
        ++drops_by_id[r.process];
        ++rel.dropped;
        break;
      case sim::LogRecord::Kind::Fault:
        rel.present = true;
        ++fault_count[r.process];
        if (fault_open[r.process] == kNoTime) fault_open[r.process] = r.time;
        break;
      case sim::LogRecord::Kind::Clear:
        rel.present = true;
        if (fault_open[r.process] != kNoTime) {
          fault_down[r.process] += r.time - fault_open[r.process];
          fault_open[r.process] = kNoTime;
        }
        break;
      case sim::LogRecord::Kind::Retry:
        rel.present = true;
        ++rel.retries;
        break;
      case sim::LogRecord::Kind::Watchdog:
        rel.present = true;
        ++rel.watchdog_resets;
        break;
      case sim::LogRecord::Kind::Migrate:
        rel.present = true;
        ++rel.migrations;
        // Keep the earliest open migration: latency measures how long the
        // process sat without execution after being moved.
        if (migrated_at[r.process] == kNoTime) migrated_at[r.process] = r.time;
        break;
    }
  }

  // Faults never cleared accrue downtime up to the last log record.
  for (intern::Id id = 0; id < name_count; ++id) {
    if (fault_open[id] != kNoTime && last_time > fault_open[id]) {
      fault_down[id] += last_time - fault_open[id];
    }
    if (fault_count[id] > 0) {
      rel.components.push_back(
          {names.name(id), fault_count[id], fault_down[id]});
    }
  }
  std::sort(rel.components.begin(), rel.components.end(),
            [](const ComponentReliability& a, const ComponentReliability& b) {
              return a.component < b.component;
            });

  for (intern::Id id = 0; id < name_count; ++id) {
    if (ran[id]) report.process_cycles[names.name(id)] += cycles_by_id[id];
    if (drops_by_id[id] > 0) report.drops[names.name(id)] += drops_by_id[id];
  }
  for (const auto& [key, count] : pair_signals) {
    report.process_signals[{names.name(static_cast<intern::Id>(key >> 32)),
                            names.name(static_cast<intern::Id>(key))}] +=
        count;
  }

  long total = 0;
  for (std::size_t p = 0; p < n; ++p) total += party_cycles[p];
  for (std::size_t p = 0; p < n; ++p) {
    GroupExecution row;
    row.group = report.parties[p];
    row.cycles = party_cycles[p];
    row.busy_time = party_busy[p];
    row.proportion = total > 0 ? 100.0 * static_cast<double>(row.cycles) /
                                     static_cast<double>(total)
                               : 0.0;
    report.execution.push_back(std::move(row));
  }
  return report;
}

std::vector<LatencyStats> latency_report(const sim::SimulationLog& log) {
  // Stream key: (from, to, signal) as interned ids. Sends queue up; receives
  // match FIFO.
  struct Stream {
    std::vector<sim::Time> pending;  // unmatched send times
    std::size_t cursor = 0;          // next unmatched index
    LatencyStats stats;
  };
  struct KeyHash {
    std::size_t operator()(const std::tuple<intern::Id, intern::Id,
                                            intern::Id>& k) const noexcept {
      const auto [a, b, c] = k;
      std::uint64_t h = (static_cast<std::uint64_t>(a) << 32) | b;
      h ^= 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(c) + (h << 6) +
           (h >> 2);
      return static_cast<std::size_t>(std::hash<std::uint64_t>{}(h));
    }
  };
  std::unordered_map<std::tuple<intern::Id, intern::Id, intern::Id>, Stream,
                     KeyHash>
      streams;

  for (const sim::SimulationLog::Compact& r : log.compact_records()) {
    if (r.kind == sim::LogRecord::Kind::Send) {
      streams[{r.process, r.peer, r.signal}].pending.push_back(r.time);
    } else if (r.kind == sim::LogRecord::Kind::Receive) {
      auto it = streams.find({r.peer, r.process, r.signal});
      if (it == streams.end()) continue;
      Stream& stream = it->second;
      if (stream.cursor >= stream.pending.size()) continue;  // recv w/o send
      const sim::Time sent = stream.pending[stream.cursor++];
      const sim::Time latency = r.time >= sent ? r.time - sent : 0;
      LatencyStats& s = stream.stats;
      if (s.samples == 0) {
        s.min = latency;
        s.max = latency;
      } else {
        s.min = std::min(s.min, latency);
        s.max = std::max(s.max, latency);
      }
      // Streaming mean.
      s.mean += (static_cast<double>(latency) - s.mean) /
                static_cast<double>(s.samples + 1);
      ++s.samples;
    }
  }
  std::vector<LatencyStats> out;
  out.reserve(streams.size());
  const intern::Table& names = log.names();
  for (auto& [key, stream] : streams) {
    if (stream.stats.samples == 0) continue;  // sends never matched
    LatencyStats s = std::move(stream.stats);
    s.from = names.name(std::get<0>(key));
    s.to = names.name(std::get<1>(key));
    s.signal = names.name(std::get<2>(key));
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const LatencyStats& a, const LatencyStats& b) {
              return std::tie(a.from, a.to, a.signal) <
                     std::tie(b.from, b.to, b.signal);
            });
  return out;
}

std::string latency_to_text(const std::vector<LatencyStats>& report) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "from" << std::setw(14) << "to"
     << std::setw(16) << "signal" << std::right << std::setw(9) << "samples"
     << std::setw(12) << "min" << std::setw(12) << "mean" << std::setw(12)
     << "max" << '\n';
  for (const LatencyStats& s : report) {
    os << std::left << std::setw(14) << s.from << std::setw(14) << s.to
       << std::setw(16) << s.signal << std::right << std::setw(9) << s.samples
       << std::setw(12) << s.min << std::setw(12) << std::fixed
       << std::setprecision(1) << s.mean << std::setw(12) << s.max << '\n';
  }
  return os.str();
}

}  // namespace tut::profiler
