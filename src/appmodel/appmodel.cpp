#include "appmodel/appmodel.hpp"

#include <stdexcept>

namespace tut::appmodel {

using uml::ElementKind;

long tag_long(const uml::Element& element, const std::string& tag,
              long fallback) {
  const std::string v = element.tagged_value(tag);
  if (v.empty()) return fallback;
  try {
    return std::stol(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

// ---------------------------------------------------------------------------
// ApplicationBuilder
// ---------------------------------------------------------------------------

ApplicationBuilder::ApplicationBuilder(uml::Model& model,
                                       const profile::TutProfile& profile)
    : model_(model), profile_(profile) {}

uml::Class& ApplicationBuilder::application(const std::string& name,
                                            const Tags& tags) {
  if (app_ != nullptr) {
    throw std::logic_error("application() must be called exactly once");
  }
  app_ = &model_.create_class(name);
  app_->apply(*profile_.application, Tags(tags));
  return *app_;
}

uml::Class& ApplicationBuilder::component(const std::string& name,
                                          const Tags& tags) {
  auto& cls = model_.create_class(name, nullptr, /*active=*/true);
  cls.apply(*profile_.application_component, Tags(tags));
  model_.create_behavior(cls);
  return cls;
}

uml::Class& ApplicationBuilder::structural(const std::string& name) {
  return model_.create_class(name);
}

uml::Property& ApplicationBuilder::process(const std::string& name,
                                           uml::Class& component,
                                           const Tags& tags) {
  if (app_ == nullptr) {
    throw std::logic_error("application() must be called before process()");
  }
  auto& part = model_.add_part(*app_, name, component);
  part.apply(*profile_.application_process, Tags(tags));
  return part;
}

uml::Property& ApplicationBuilder::process_in(uml::Class& parent,
                                              const std::string& name,
                                              uml::Class& component,
                                              const Tags& tags) {
  auto& part = model_.add_part(parent, name, component);
  part.apply(*profile_.application_process, Tags(tags));
  return part;
}

uml::Property& ApplicationBuilder::group(const std::string& name,
                                         const Tags& tags) {
  if (group_classifier_ == nullptr) {
    // Single generic classifier for group instances, plus a grouping context
    // class that owns the group parts (the composite structure diagram of
    // Figure 6).
    group_classifier_ = &model_.create_class("ProcessGroup");
    const std::string ctx = app_ != nullptr
                                ? app_->name() + "_Grouping"
                                : std::string("Grouping");
    grouping_context_ = &model_.create_class(ctx);
  }
  auto& part = model_.add_part(*grouping_context_, name, *group_classifier_);
  part.apply(*profile_.process_group, Tags(tags));
  return part;
}

uml::Dependency& ApplicationBuilder::assign(uml::Property& process,
                                            uml::Property& group, bool fixed) {
  auto& dep = model_.create_dependency(
      process.name() + "_in_" + group.name(), process, group);
  dep.apply(*profile_.process_grouping,
            {{"Fixed", fixed ? "true" : "false"}});
  return dep;
}

// ---------------------------------------------------------------------------
// ApplicationView
// ---------------------------------------------------------------------------

ApplicationView::ApplicationView(const uml::Model& model) {
  for (const uml::Element* e : model.stereotyped(profile::names::Application)) {
    if (e->kind() == ElementKind::Class) {
      app_ = static_cast<const uml::Class*>(e);
      break;
    }
  }
  for (const uml::Element* e :
       model.stereotyped(profile::names::ApplicationProcess)) {
    if (e->kind() == ElementKind::Property) {
      processes_.push_back(static_cast<const uml::Property*>(e));
    }
  }
  for (const uml::Element* e : model.stereotyped(profile::names::ProcessGroup)) {
    if (e->kind() == ElementKind::Property) {
      groups_.push_back(static_cast<const uml::Property*>(e));
    }
  }
  for (const uml::Element* e :
       model.stereotyped(profile::names::ProcessGrouping)) {
    if (e->kind() != ElementKind::Dependency) continue;
    const auto* dep = static_cast<const uml::Dependency*>(e);
    if (dep->client() != nullptr &&
        dep->client()->kind() == ElementKind::Property) {
      grouping_[static_cast<const uml::Property*>(dep->client())] = dep;
    }
  }
}

const uml::Property* ApplicationView::group_of(
    const uml::Property& process) const noexcept {
  const uml::Dependency* dep = grouping_of(process);
  if (dep == nullptr || dep->supplier() == nullptr ||
      dep->supplier()->kind() != ElementKind::Property) {
    return nullptr;
  }
  return static_cast<const uml::Property*>(dep->supplier());
}

const uml::Dependency* ApplicationView::grouping_of(
    const uml::Property& process) const noexcept {
  auto it = grouping_.find(&process);
  return it != grouping_.end() ? it->second : nullptr;
}

std::vector<const uml::Property*> ApplicationView::members(
    const uml::Property& group) const {
  std::vector<const uml::Property*> out;
  for (const uml::Property* p : processes_) {
    if (group_of(*p) == &group) out.push_back(p);
  }
  return out;
}

const uml::Property* ApplicationView::process_named(
    const std::string& name) const noexcept {
  for (const uml::Property* p : processes_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

const uml::Property* ApplicationView::group_named(
    const std::string& name) const noexcept {
  for (const uml::Property* g : groups_) {
    if (g->name() == name) return g;
  }
  return nullptr;
}

long ApplicationView::effective_int(const uml::Property& process,
                                    const std::string& tag,
                                    long fallback) const {
  if (process.has_tagged_value(tag)) return tag_long(process, tag, fallback);
  const uml::Class* comp = process.part_type();
  if (comp != nullptr && comp->has_tagged_value(tag)) {
    return tag_long(*comp, tag, fallback);
  }
  if (app_ != nullptr && app_->has_tagged_value(tag)) {
    return tag_long(*app_, tag, fallback);
  }
  return fallback;
}

}  // namespace tut::appmodel
