// tut::appmodel — typed application layer over uml + TUT-Profile.
//
// Section 3.1 of the paper: an application is a top-level <<Application>>
// class whose active classes (<<ApplicationComponent>>) are instantiated as
// parts stereotyped <<ApplicationProcess>>; processes are grouped into
// <<ProcessGroup>>s through <<ProcessGrouping>> dependencies. This module
// provides a builder that applies the stereotypes consistently and a view
// that answers the structural queries the rest of the tool flow needs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "profile/tut_profile.hpp"
#include "uml/model.hpp"

namespace tut::appmodel {

/// Tagged-value shorthand used by the builders.
using Tags = std::map<std::string, std::string>;

/// Builds an application description. All created elements live in the
/// underlying uml::Model; the builder only adds consistency (stereotypes,
/// process-group bookkeeping).
class ApplicationBuilder {
public:
  ApplicationBuilder(uml::Model& model, const profile::TutProfile& profile);

  /// Creates the top-level <<Application>> class (passive, owns the process
  /// parts). Must be called exactly once, before process().
  uml::Class& application(const std::string& name, const Tags& tags = {});

  /// Creates an active <<ApplicationComponent>> class with a behaviour
  /// attached (the caller populates states/transitions through the model).
  uml::Class& component(const std::string& name, const Tags& tags = {});

  /// Creates a passive structural class (not stereotyped — per Section 4.1
  /// structural components carry no TUT-Profile stereotype).
  uml::Class& structural(const std::string& name);

  /// Instantiates `component` as a part of the application class and
  /// stereotypes it <<ApplicationProcess>>.
  uml::Property& process(const std::string& name, uml::Class& component,
                         const Tags& tags = {});

  /// Instantiates `component` as a process nested inside a structural
  /// component class (Section 4.1: "structural components are hierarchically
  /// modeled ... until the behavior of the functional components can be
  /// expressed").
  uml::Property& process_in(uml::Class& parent, const std::string& name,
                            uml::Class& component, const Tags& tags = {});

  /// Creates a <<ProcessGroup>> part in the grouping structure.
  uml::Property& group(const std::string& name, const Tags& tags = {});

  /// Adds a <<ProcessGrouping>> dependency process -> group.
  uml::Dependency& assign(uml::Property& process, uml::Property& group,
                          bool fixed = false);

  uml::Model& model() noexcept { return model_; }
  uml::Class* application_class() const noexcept { return app_; }

private:
  uml::Model& model_;
  const profile::TutProfile& profile_;
  uml::Class* app_ = nullptr;
  uml::Class* group_classifier_ = nullptr;
  uml::Class* grouping_context_ = nullptr;
};

/// Read-only structural queries over an application model. Built once from a
/// model (programmatically constructed or deserialized); pointers remain
/// valid while the model lives.
class ApplicationView {
public:
  explicit ApplicationView(const uml::Model& model);

  const uml::Class* application() const noexcept { return app_; }
  const std::vector<const uml::Property*>& processes() const noexcept {
    return processes_;
  }
  const std::vector<const uml::Property*>& groups() const noexcept {
    return groups_;
  }

  /// Group of a process, or nullptr if ungrouped.
  const uml::Property* group_of(const uml::Property& process) const noexcept;
  /// Processes assigned to `group`, in model order.
  std::vector<const uml::Property*> members(const uml::Property& group) const;
  /// The grouping dependency for a process, or nullptr.
  const uml::Dependency* grouping_of(const uml::Property& process) const noexcept;

  const uml::Property* process_named(const std::string& name) const noexcept;
  const uml::Property* group_named(const std::string& name) const noexcept;

  /// Effective integer tagged value for a process, falling back to its
  /// component class and then the application class ("the performance
  /// related parameterizations ... are combined").
  long effective_int(const uml::Property& process, const std::string& tag,
                     long fallback) const;

private:
  const uml::Class* app_ = nullptr;
  std::vector<const uml::Property*> processes_;
  std::vector<const uml::Property*> groups_;
  std::map<const uml::Property*, const uml::Dependency*> grouping_;
};

/// Parses a long out of a tagged value; returns `fallback` when empty or
/// malformed (validation reports malformed values separately).
long tag_long(const uml::Element& element, const std::string& tag, long fallback);

}  // namespace tut::appmodel
