// tut::profile — the TUT-Profile itself (the paper's primary contribution).
//
// Defines the eleven stereotypes of Table 1 with the tagged values of
// Tables 2 and 3, the HIBI specializations of Section 4.2 (<<HIBIWrapper>>
// from <<CommunicationWrapper>>, <<HIBISegment>> from <<CommunicationSegment>>),
// and the profile's design rules ("various stereotypes and strict rules how
// to use them") as executable validation checks.
//
// Metaclass choices (the paper's Table 1 lists the extended metaclass for
// dependencies only; for the rest we follow the diagrams):
//  - Application, ApplicationComponent, Platform, Component extend Class
//    (they classify classes in the class hierarchy, Figures 3-4).
//  - ApplicationProcess, ProcessGroup, ComponentInstance and
//    CommunicationSegment extend Property: they are applied to *parts*
//    (class instances) in composite structure diagrams (Figures 5-8).
//  - ProcessGrouping and Mapping extend Dependency (per Table 1).
//  - CommunicationWrapper extends Connector: the paper says wrappers "are
//    used to connect processing elements to communication segments", which
//    in UML 2.0 composite structures is exactly a connector.
#pragma once

#include <string>

#include "uml/model.hpp"
#include "uml/validation.hpp"

namespace tut::profile {

/// Canonical stereotype names. Use these instead of string literals.
namespace names {
inline constexpr const char* Application = "Application";
inline constexpr const char* ApplicationComponent = "ApplicationComponent";
inline constexpr const char* ApplicationProcess = "ApplicationProcess";
inline constexpr const char* ProcessGroup = "ProcessGroup";
inline constexpr const char* ProcessGrouping = "ProcessGrouping";
inline constexpr const char* Platform = "Platform";
inline constexpr const char* Component = "Component";
inline constexpr const char* ComponentInstance = "ComponentInstance";
inline constexpr const char* CommunicationWrapper = "CommunicationWrapper";
inline constexpr const char* CommunicationSegment = "CommunicationSegment";
inline constexpr const char* Mapping = "Mapping";
// HIBI library specializations.
inline constexpr const char* HIBIWrapper = "HIBIWrapper";
inline constexpr const char* HIBISegment = "HIBISegment";
}  // namespace names

/// Enumerator literals used by tagged values.
namespace tags {
inline constexpr const char* RealTimeHard = "hard";
inline constexpr const char* RealTimeSoft = "soft";
inline constexpr const char* RealTimeNone = "none";
inline constexpr const char* ProcessGeneral = "general";
inline constexpr const char* ProcessDsp = "dsp";
inline constexpr const char* ProcessHardware = "hardware";
inline constexpr const char* ComponentGeneral = "general";
inline constexpr const char* ComponentDsp = "dsp";
inline constexpr const char* ComponentHwAccelerator = "hw_accelerator";
inline constexpr const char* ArbitrationPriority = "priority";
inline constexpr const char* ArbitrationRoundRobin = "round-robin";
inline constexpr const char* SchedulingCooperative = "cooperative";
inline constexpr const char* SchedulingPreemptive = "preemptive";
}  // namespace tags

/// Handle to an installed TUT-Profile: the uml::Profile plus direct pointers
/// to every stereotype. All pointers live as long as the owning model.
struct TutProfile {
  uml::Profile* profile = nullptr;

  // Application description (Table 2).
  uml::Stereotype* application = nullptr;
  uml::Stereotype* application_component = nullptr;
  uml::Stereotype* application_process = nullptr;
  uml::Stereotype* process_group = nullptr;
  uml::Stereotype* process_grouping = nullptr;

  // Platform description (Table 3).
  uml::Stereotype* platform = nullptr;
  uml::Stereotype* component = nullptr;
  uml::Stereotype* component_instance = nullptr;
  uml::Stereotype* communication_wrapper = nullptr;
  uml::Stereotype* communication_segment = nullptr;

  // Mapping (Section 3.3).
  uml::Stereotype* mapping = nullptr;

  // HIBI specializations (Section 4.2).
  uml::Stereotype* hibi_wrapper = nullptr;
  uml::Stereotype* hibi_segment = nullptr;

  /// All stereotypes in Table 1 order followed by the HIBI specializations.
  std::vector<const uml::Stereotype*> all() const;
};

/// Creates the TUT-Profile inside `model` and returns the handle.
TutProfile install(uml::Model& model);

/// Locates an already-installed TUT-Profile (e.g. after deserialization).
/// Throws std::runtime_error if the model contains no profile named
/// "TUT-Profile" or if a stereotype is missing.
TutProfile find(const uml::Model& model);

/// Returns a validator with the UML core rules plus the TUT-Profile design
/// rules:
///  - tut.application.unique   : exactly one <<Application>> top-level class
///  - tut.application.passive  : the <<Application>> class is structural
///  - tut.component.active     : <<ApplicationComponent>> classes are active
///                               classes with behaviour
///  - tut.process.type         : <<ApplicationProcess>> parts instantiate
///                               <<ApplicationComponent>> classes
///  - tut.grouping.ends        : <<ProcessGrouping>> runs from a process to a
///                               group
///  - tut.grouping.unique      : every process is in at most one group
///                               (warning when ungrouped)
///  - tut.group.homogeneous    : group ProcessType matches member ProcessType
///  - tut.platform.unique      : exactly one <<Platform>> top-level class
///  - tut.instance.type        : <<ComponentInstance>> parts instantiate
///                               <<Component>> classes
///  - tut.instance.id          : ComponentInstance IDs are unique
///  - tut.wrapper.ends         : <<CommunicationWrapper>> connectors join a
///                               component instance to a communication segment
///  - tut.wrapper.address      : wrapper addresses are unique per segment
///  - tut.mapping.ends         : <<Mapping>> runs from a group to a component
///                               instance
///  - tut.mapping.total        : every group is mapped exactly once
///  - tut.mapping.type         : group ProcessType is compatible with the
///                               target component Type (hardware groups need a
///                               hw_accelerator; dsp on general is a warning)
uml::Validator make_validator();

/// Registers only the TUT design rules on an existing validator.
void add_design_rules(uml::Validator& validator);

}  // namespace tut::profile
