#include "profile/tut_profile.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace tut::profile {

using uml::ElementKind;
using uml::Model;
using uml::Severity;
using uml::Stereotype;
using uml::TagType;
using uml::ValidationResult;
using uml::Validator;

std::vector<const Stereotype*> TutProfile::all() const {
  return {application,      application_component, application_process,
          process_group,    process_grouping,      platform,
          component,        component_instance,    communication_wrapper,
          communication_segment, mapping,          hibi_wrapper,
          hibi_segment};
}

TutProfile install(Model& model) {
  TutProfile p;
  p.profile = &model.create_profile("TUT-Profile");
  auto& prof = *p.profile;

  // -- application description (Table 2) -------------------------------------
  p.application = &model.create_stereotype(prof, names::Application,
                                           ElementKind::Class);
  p.application->define_tag("Priority", TagType::Integer,
                            "Execution priority of an application");
  p.application->define_tag("CodeMemory", TagType::Integer,
                            "Required memory for application code");
  p.application->define_tag("DataMemory", TagType::Integer,
                            "Required memory for application data");
  p.application->define_tag(
      "RealTimeType", TagType::Enum,
      "Type of real-time requirements (hard/soft/none)",
      {tags::RealTimeHard, tags::RealTimeSoft, tags::RealTimeNone});

  p.application_component = &model.create_stereotype(
      prof, names::ApplicationComponent, ElementKind::Class);
  p.application_component->define_tag(
      "CodeMemory", TagType::Integer,
      "Required memory for application component code");
  p.application_component->define_tag(
      "DataMemory", TagType::Integer,
      "Required memory for application component data");
  p.application_component->define_tag(
      "RealTimeType", TagType::Enum,
      "Type of real-time requirements (hard/soft/none)",
      {tags::RealTimeHard, tags::RealTimeSoft, tags::RealTimeNone});

  p.application_process = &model.create_stereotype(
      prof, names::ApplicationProcess, ElementKind::Property);
  p.application_process->define_tag("Priority", TagType::Integer,
                                    "Execution priority of application process");
  p.application_process->define_tag(
      "CodeMemory", TagType::Integer,
      "Required memory for application process code");
  p.application_process->define_tag(
      "DataMemory", TagType::Integer,
      "Required memory for application process data");
  p.application_process->define_tag(
      "RealTimeType", TagType::Enum,
      "Type of real-time requirements (hard/soft/none)",
      {tags::RealTimeHard, tags::RealTimeSoft, tags::RealTimeNone});
  p.application_process->define_tag(
      "ProcessType", TagType::Enum, "Type of process (general/dsp/hardware)",
      {tags::ProcessGeneral, tags::ProcessDsp, tags::ProcessHardware});

  p.process_group = &model.create_stereotype(prof, names::ProcessGroup,
                                             ElementKind::Property);
  p.process_group->define_tag("Fixed", TagType::Boolean,
                              "Defines if the group is fixed (true/false)");
  p.process_group->define_tag(
      "ProcessType", TagType::Enum,
      "Type of processes in a group (general/dsp/hardware)",
      {tags::ProcessGeneral, tags::ProcessDsp, tags::ProcessHardware});

  p.process_grouping = &model.create_stereotype(prof, names::ProcessGrouping,
                                                ElementKind::Dependency);
  p.process_grouping->define_tag(
      "Fixed", TagType::Boolean,
      "Defines if the grouping is fixed (true/false)");

  // -- platform description (Table 3) -----------------------------------------
  p.platform =
      &model.create_stereotype(prof, names::Platform, ElementKind::Class);

  p.component =
      &model.create_stereotype(prof, names::Component, ElementKind::Class);
  p.component->define_tag(
      "Type", TagType::Enum, "Type of a component (general/dsp/hw accelerator)",
      {tags::ComponentGeneral, tags::ComponentDsp, tags::ComponentHwAccelerator});
  p.component->define_tag("Area", TagType::Real, "Area of a component");
  p.component->define_tag("Power", TagType::Real,
                          "Power consumption of a component");
  // Performance parameterization used by the high-level co-simulation: how
  // many computation cycles the component retires per microsecond.
  p.component->define_tag("Frequency", TagType::Integer,
                          "Clock frequency of a component (MHz)");
  // RTOS parameterization (the paper's future work: "real-time operating
  // system will be used in system processors, which will also be accounted
  // in the TUT-Profile").
  p.component->define_tag(
      "Scheduling", TagType::Enum,
      "Process scheduling on the component (cooperative/preemptive)",
      {tags::SchedulingCooperative, tags::SchedulingPreemptive});
  p.component->define_tag("ContextSwitchCycles", TagType::Integer,
                          "RTOS context switch cost in component cycles");

  p.component_instance = &model.create_stereotype(
      prof, names::ComponentInstance, ElementKind::Property);
  p.component_instance->define_tag("Priority", TagType::Integer,
                                   "Execution priority of a component instance");
  p.component_instance->define_tag("ID", TagType::Integer,
                                   "Unique ID of a component instance", {},
                                   /*required=*/true);
  p.component_instance->define_tag("IntMemory", TagType::Integer,
                                   "Amount of internal memory");

  p.communication_segment = &model.create_stereotype(
      prof, names::CommunicationSegment, ElementKind::Property);
  p.communication_segment->define_tag(
      "DataWidth", TagType::Integer,
      "Data width (in bits) of a communication segment");
  p.communication_segment->define_tag(
      "Frequency", TagType::Integer,
      "Clock frequency of a communication segment (MHz)");
  p.communication_segment->define_tag(
      "Arbitration", TagType::Enum, "Arbitration scheme",
      {tags::ArbitrationPriority, tags::ArbitrationRoundRobin});

  p.communication_wrapper = &model.create_stereotype(
      prof, names::CommunicationWrapper, ElementKind::Connector);
  p.communication_wrapper->define_tag("Address", TagType::Integer,
                                      "Address of a wrapper");
  p.communication_wrapper->define_tag("BufferSize", TagType::Integer,
                                      "Buffer size of a wrapper (bytes)");
  p.communication_wrapper->define_tag(
      "MaxTime", TagType::Integer,
      "Maximum time a wrapper can reserve the segment");

  // -- mapping (Section 3.3) ----------------------------------------------------
  p.mapping =
      &model.create_stereotype(prof, names::Mapping, ElementKind::Dependency);
  p.mapping->define_tag("Fixed", TagType::Boolean,
                        "Fixed mappings are not changed by profiling tools");

  // -- HIBI library specializations (Section 4.2) --------------------------------
  p.hibi_segment = &model.create_stereotype(prof, names::HIBISegment,
                                            ElementKind::Property,
                                            p.communication_segment);
  p.hibi_segment->define_tag("BurstLength", TagType::Integer,
                             "Maximum HIBI burst length (words)");
  p.hibi_segment->define_tag("CounterWidth", TagType::Integer,
                             "Width of the HIBI time-slot counters");

  p.hibi_wrapper = &model.create_stereotype(prof, names::HIBIWrapper,
                                            ElementKind::Connector,
                                            p.communication_wrapper);
  p.hibi_wrapper->define_tag("TxFifoDepth", TagType::Integer,
                             "Transmit FIFO depth (words)");
  p.hibi_wrapper->define_tag("RxFifoDepth", TagType::Integer,
                             "Receive FIFO depth (words)");

  return p;
}

TutProfile find(const Model& model) {
  const uml::Profile* profile = nullptr;
  for (uml::Element* e : model.elements_of_kind(ElementKind::Profile)) {
    if (e->name() == "TUT-Profile") {
      profile = static_cast<const uml::Profile*>(e);
      break;
    }
  }
  if (profile == nullptr) {
    throw std::runtime_error("model does not contain the TUT-Profile");
  }
  TutProfile p;
  p.profile = const_cast<uml::Profile*>(profile);
  auto need = [&](const char* name) {
    Stereotype* s = profile->stereotype(name);
    if (s == nullptr) {
      throw std::runtime_error(std::string("TUT-Profile is missing <<") + name +
                               ">>");
    }
    return s;
  };
  p.application = need(names::Application);
  p.application_component = need(names::ApplicationComponent);
  p.application_process = need(names::ApplicationProcess);
  p.process_group = need(names::ProcessGroup);
  p.process_grouping = need(names::ProcessGrouping);
  p.platform = need(names::Platform);
  p.component = need(names::Component);
  p.component_instance = need(names::ComponentInstance);
  p.communication_wrapper = need(names::CommunicationWrapper);
  p.communication_segment = need(names::CommunicationSegment);
  p.mapping = need(names::Mapping);
  p.hibi_wrapper = need(names::HIBIWrapper);
  p.hibi_segment = need(names::HIBISegment);
  return p;
}

// ---------------------------------------------------------------------------
// Design rules
// ---------------------------------------------------------------------------

namespace {

std::vector<const uml::Property*> parts_with(const Model& model,
                                             const char* stereotype) {
  std::vector<const uml::Property*> out;
  for (uml::Element* e : model.stereotyped(stereotype)) {
    if (e->kind() == ElementKind::Property) {
      out.push_back(static_cast<const uml::Property*>(e));
    }
  }
  return out;
}

std::vector<const uml::Dependency*> deps_with(const Model& model,
                                              const char* stereotype) {
  std::vector<const uml::Dependency*> out;
  for (uml::Element* e : model.stereotyped(stereotype)) {
    if (e->kind() == ElementKind::Dependency) {
      out.push_back(static_cast<const uml::Dependency*>(e));
    }
  }
  return out;
}

void rule_application_unique(const Model& model, ValidationResult& res) {
  const auto apps = model.stereotyped(names::Application);
  if (apps.size() != 1) {
    res.add(apps.empty() ? Severity::Warning : Severity::Error,
            "tut.application.unique", model,
            "expected exactly one <<Application>> class, found " +
                std::to_string(apps.size()));
  }
  for (const uml::Element* e : apps) {
    if (e->kind() != ElementKind::Class) continue;
    const auto* cls = static_cast<const uml::Class*>(e);
    if (cls->is_active()) {
      res.add(Severity::Error, "tut.application.passive", *cls,
              "the <<Application>> top-level class must be a structural "
              "(passive) class");
    }
  }
}

void rule_component_active(const Model& model, ValidationResult& res) {
  for (const uml::Element* e : model.stereotyped(names::ApplicationComponent)) {
    if (e->kind() != ElementKind::Class) continue;
    const auto* cls = static_cast<const uml::Class*>(e);
    if (!cls->is_active()) {
      res.add(Severity::Error, "tut.component.active", *cls,
              "<<ApplicationComponent>> classifies functional components: the "
              "class must be active");
    } else if (cls->behavior() == nullptr) {
      res.add(Severity::Warning, "tut.component.active", *cls,
              "functional component has no behaviour (state machine)");
    }
  }
}

void rule_process_type(const Model& model, ValidationResult& res) {
  for (const uml::Property* part :
       parts_with(model, names::ApplicationProcess)) {
    const uml::Class* type = part->part_type();
    if (type == nullptr || !type->has_stereotype(names::ApplicationComponent)) {
      res.add(Severity::Error, "tut.process.type", *part,
              "<<ApplicationProcess>> parts must instantiate an "
              "<<ApplicationComponent>> class");
    }
  }
}

void rule_grouping(const Model& model, ValidationResult& res) {
  std::map<const uml::Element*, int> memberships;
  for (const uml::Dependency* dep : deps_with(model, names::ProcessGrouping)) {
    const uml::Element* client = dep->client();
    const uml::Element* supplier = dep->supplier();
    if (client == nullptr || !client->has_stereotype(names::ApplicationProcess)) {
      res.add(Severity::Error, "tut.grouping.ends", *dep,
              "<<ProcessGrouping>> client must be an <<ApplicationProcess>>");
    } else {
      ++memberships[client];
    }
    if (supplier == nullptr || !supplier->has_stereotype(names::ProcessGroup)) {
      res.add(Severity::Error, "tut.grouping.ends", *dep,
              "<<ProcessGrouping>> supplier must be a <<ProcessGroup>>");
    }
    // Group homogeneity: member ProcessType must match the group ProcessType.
    if (client != nullptr && supplier != nullptr) {
      const std::string group_pt = supplier->tagged_value("ProcessType");
      const std::string proc_pt = client->tagged_value("ProcessType");
      if (!group_pt.empty() && !proc_pt.empty() && group_pt != proc_pt) {
        res.add(Severity::Error, "tut.group.homogeneous", *dep,
                "process of type '" + proc_pt +
                    "' grouped into a group of type '" + group_pt + "'");
      }
    }
  }
  for (const uml::Property* part :
       parts_with(model, names::ApplicationProcess)) {
    const auto it = memberships.find(part);
    if (it == memberships.end()) {
      res.add(Severity::Warning, "tut.grouping.unique", *part,
              "application process is not assigned to any process group");
    } else if (it->second > 1) {
      res.add(Severity::Error, "tut.grouping.unique", *part,
              "application process belongs to " + std::to_string(it->second) +
                  " process groups");
    }
  }
}

void rule_platform_unique(const Model& model, ValidationResult& res) {
  const auto platforms = model.stereotyped(names::Platform);
  if (platforms.size() != 1) {
    res.add(platforms.empty() ? Severity::Warning : Severity::Error,
            "tut.platform.unique", model,
            "expected exactly one <<Platform>> class, found " +
                std::to_string(platforms.size()));
  }
}

void rule_instances(const Model& model, ValidationResult& res) {
  std::map<std::string, const uml::Property*> ids;
  for (const uml::Property* part : parts_with(model, names::ComponentInstance)) {
    const uml::Class* type = part->part_type();
    if (type == nullptr || !type->has_stereotype(names::Component)) {
      res.add(Severity::Error, "tut.instance.type", *part,
              "<<ComponentInstance>> parts must instantiate a <<Component>> "
              "class from the platform library");
    }
    const std::string id = part->tagged_value("ID");
    if (!id.empty()) {
      auto [it, inserted] = ids.emplace(id, part);
      if (!inserted) {
        res.add(Severity::Error, "tut.instance.id", *part,
                "component instance ID '" + id + "' is also used by '" +
                    it->second->qualified_name() + "'");
      }
    }
  }
}

void rule_wrappers(const Model& model, ValidationResult& res) {
  // Address uniqueness is per segment: map segment part -> set of addresses.
  std::map<const uml::Property*, std::map<std::string, const uml::Element*>>
      addresses;
  for (uml::Element* e : model.stereotyped(names::CommunicationWrapper)) {
    if (e->kind() != ElementKind::Connector) continue;
    const auto* conn = static_cast<const uml::Connector*>(e);
    const uml::Property* ends[2] = {conn->end0().part, conn->end1().part};
    const uml::Property* instance = nullptr;
    const uml::Property* segment = nullptr;
    for (const uml::Property* p : ends) {
      if (p == nullptr) continue;
      if (p->has_stereotype(names::ComponentInstance)) instance = p;
      if (p->has_stereotype(names::CommunicationSegment)) segment = p;
    }
    if (instance == nullptr || segment == nullptr) {
      res.add(Severity::Error, "tut.wrapper.ends", *conn,
              "<<CommunicationWrapper>> must connect a <<ComponentInstance>> "
              "to a <<CommunicationSegment>>");
      continue;
    }
    const std::string addr = conn->tagged_value("Address");
    if (!addr.empty()) {
      auto [it, inserted] = addresses[segment].emplace(addr, conn);
      if (!inserted) {
        res.add(Severity::Error, "tut.wrapper.address", *conn,
                "wrapper address '" + addr + "' is already used on segment '" +
                    segment->qualified_name() + "'");
      }
    }
  }
}

void rule_mapping(const Model& model, ValidationResult& res) {
  std::map<const uml::Element*, int> mapped;
  for (const uml::Dependency* dep : deps_with(model, names::Mapping)) {
    const uml::Element* group = dep->client();
    const uml::Element* target = dep->supplier();
    if (group == nullptr || !group->has_stereotype(names::ProcessGroup)) {
      res.add(Severity::Error, "tut.mapping.ends", *dep,
              "<<Mapping>> client must be a <<ProcessGroup>>");
      group = nullptr;
    }
    if (target == nullptr || !target->has_stereotype(names::ComponentInstance)) {
      res.add(Severity::Error, "tut.mapping.ends", *dep,
              "<<Mapping>> supplier must be a <<ComponentInstance>>");
      target = nullptr;
    }
    if (group == nullptr || target == nullptr) continue;
    ++mapped[group];

    // ProcessType vs component Type compatibility.
    const std::string pt = group->tagged_value("ProcessType");
    const auto* target_part = static_cast<const uml::Property*>(target);
    const uml::Class* comp = target_part->part_type();
    const std::string ct = comp != nullptr ? comp->tagged_value("Type") : "";
    if (pt.empty() || ct.empty()) continue;
    const bool hw_group = pt == tags::ProcessHardware;
    const bool hw_comp = ct == tags::ComponentHwAccelerator;
    if (hw_group != hw_comp) {
      res.add(Severity::Error, "tut.mapping.type", *dep,
              "process group of type '" + pt +
                  "' mapped to component of type '" + ct + "'");
    } else if (pt == tags::ProcessDsp && ct == tags::ComponentGeneral) {
      res.add(Severity::Warning, "tut.mapping.type", *dep,
              "dsp process group mapped to a general-purpose component");
    }
  }
  for (const uml::Property* group : parts_with(model, names::ProcessGroup)) {
    const auto it = mapped.find(group);
    if (it == mapped.end()) {
      res.add(Severity::Error, "tut.mapping.total", *group,
              "process group is not mapped to any platform component instance");
    } else if (it->second > 1) {
      res.add(Severity::Error, "tut.mapping.total", *group,
              "process group is mapped " + std::to_string(it->second) +
                  " times");
    }
  }
}

}  // namespace

void add_design_rules(Validator& validator) {
  validator.add_rule({"tut.application", "application top level",
                      rule_application_unique});
  validator.add_rule({"tut.component", "functional components are active",
                      rule_component_active});
  validator.add_rule({"tut.process", "processes instantiate components",
                      rule_process_type});
  validator.add_rule({"tut.grouping", "process grouping is well-formed",
                      rule_grouping});
  validator.add_rule({"tut.platform", "platform top level",
                      rule_platform_unique});
  validator.add_rule({"tut.instance", "component instances are well-formed",
                      rule_instances});
  validator.add_rule({"tut.wrapper", "communication wrappers are well-formed",
                      rule_wrappers});
  validator.add_rule({"tut.mapping", "mapping is total and type-compatible",
                      rule_mapping});
}

Validator make_validator() {
  Validator v = Validator::uml_core();
  add_design_rules(v);
  return v;
}

}  // namespace tut::profile
