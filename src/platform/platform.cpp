#include "platform/platform.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace tut::platform {

using uml::ElementKind;

// ---------------------------------------------------------------------------
// PlatformBuilder
// ---------------------------------------------------------------------------

PlatformBuilder::PlatformBuilder(uml::Model& model,
                                 const profile::TutProfile& profile)
    : model_(model), profile_(profile) {}

uml::Class& PlatformBuilder::platform(const std::string& name) {
  if (platform_ != nullptr) {
    throw std::logic_error("platform() must be called exactly once");
  }
  platform_ = &model_.create_class(name);
  platform_->apply(*profile_.platform);
  return *platform_;
}

uml::Port& PlatformBuilder::ensure_port(uml::Class& cls,
                                        const std::string& name) {
  uml::Port* p = cls.port(name);
  return p != nullptr ? *p : model_.add_port(cls, name);
}

uml::Class& PlatformBuilder::component_type(const std::string& name,
                                            const Tags& tags) {
  auto& cls = model_.create_class(name);
  cls.apply(*profile_.component, Tags(tags));
  ensure_port(cls, "bus");
  return cls;
}

uml::Property& PlatformBuilder::instance(const std::string& name,
                                         uml::Class& type, const Tags& tags) {
  if (platform_ == nullptr) {
    throw std::logic_error("platform() must be called before instance()");
  }
  auto& part = model_.add_part(*platform_, name, type);
  Tags values(tags);
  if (values.count("ID") == 0) {
    values["ID"] = std::to_string(next_instance_id_++);
  }
  part.apply(*profile_.component_instance, std::move(values));
  return part;
}

uml::Property& PlatformBuilder::segment(const std::string& name,
                                        const Tags& tags, bool hibi) {
  if (platform_ == nullptr) {
    throw std::logic_error("platform() must be called before segment()");
  }
  if (segment_classifier_ == nullptr) {
    segment_classifier_ = &model_.create_class("CommunicationSegmentType");
    ensure_port(*segment_classifier_, "conn");
  }
  auto& part = model_.add_part(*platform_, name, *segment_classifier_);
  part.apply(hibi ? *profile_.hibi_segment : *profile_.communication_segment,
             Tags(tags));
  return part;
}

uml::Connector& PlatformBuilder::wrapper(uml::Property& instance,
                                         uml::Property& segment,
                                         const Tags& tags, bool hibi) {
  auto& conn = model_.connect(*platform_, instance.name(), "bus",
                              segment.name(), "conn");
  Tags values(tags);
  if (values.count("Address") == 0) {
    values["Address"] = std::to_string(next_address_[&segment]++);
  }
  conn.apply(hibi ? *profile_.hibi_wrapper : *profile_.communication_wrapper,
             std::move(values));
  return conn;
}

uml::Connector& PlatformBuilder::bridge_link(uml::Property& seg_a,
                                             uml::Property& seg_b) {
  return model_.connect(*platform_, seg_a.name(), "conn", seg_b.name(), "conn");
}

// ---------------------------------------------------------------------------
// PlatformView
// ---------------------------------------------------------------------------

PlatformView::PlatformView(const uml::Model& model) {
  for (const uml::Element* e : model.stereotyped(profile::names::Platform)) {
    if (e->kind() == ElementKind::Class) {
      platform_ = static_cast<const uml::Class*>(e);
      break;
    }
  }
  for (const uml::Element* e :
       model.stereotyped(profile::names::ComponentInstance)) {
    if (e->kind() == ElementKind::Property) {
      instances_.push_back(static_cast<const uml::Property*>(e));
    }
  }
  for (const uml::Element* e :
       model.stereotyped(profile::names::CommunicationSegment)) {
    if (e->kind() == ElementKind::Property) {
      segments_.push_back(static_cast<const uml::Property*>(e));
    }
  }
  // Wrappers are stereotyped connectors; bridges are unstereotyped connectors
  // between two segments inside the platform class.
  const std::set<const uml::Property*> segment_set(segments_.begin(),
                                                   segments_.end());
  for (const uml::Element* e : model.elements_of_kind(ElementKind::Connector)) {
    const auto* conn = static_cast<const uml::Connector*>(e);
    if (conn->has_stereotype(profile::names::CommunicationWrapper)) {
      wrappers_.push_back(conn);
    } else if (segment_set.count(conn->end0().part) != 0 &&
               segment_set.count(conn->end1().part) != 0) {
      bridges_.push_back(conn);
    }
  }
}

const uml::Property* PlatformView::instance_named(
    const std::string& name) const noexcept {
  for (const uml::Property* i : instances_) {
    if (i->name() == name) return i;
  }
  return nullptr;
}

const uml::Property* PlatformView::segment_named(
    const std::string& name) const noexcept {
  for (const uml::Property* s : segments_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

std::vector<const uml::Connector*> PlatformView::wrappers_of(
    const uml::Property& instance) const {
  std::vector<const uml::Connector*> out;
  for (const uml::Connector* w : wrappers_) {
    if (w->end0().part == &instance || w->end1().part == &instance) {
      out.push_back(w);
    }
  }
  return out;
}

const uml::Property* PlatformView::segment_of(
    const uml::Property& instance) const noexcept {
  for (const uml::Connector* w : wrappers_) {
    if (w->end0().part == &instance) return w->end1().part;
    if (w->end1().part == &instance) return w->end0().part;
  }
  return nullptr;
}

std::vector<const uml::Property*> PlatformView::instances_on(
    const uml::Property& segment) const {
  std::vector<const uml::Property*> out;
  for (const uml::Property* i : instances_) {
    if (segment_of(*i) == &segment) out.push_back(i);
  }
  return out;
}

std::vector<const uml::Property*> PlatformView::neighbors(
    const uml::Property& segment) const {
  std::vector<const uml::Property*> out;
  for (const uml::Connector* b : bridges_) {
    if (b->end0().part == &segment) out.push_back(b->end1().part);
    if (b->end1().part == &segment) out.push_back(b->end0().part);
  }
  return out;
}

std::vector<const uml::Property*> PlatformView::route(
    const uml::Property& from, const uml::Property& to) const {
  const uml::Property* start = segment_of(from);
  const uml::Property* goal = segment_of(to);
  if (start == nullptr || goal == nullptr) return {};
  if (start == goal) return {start};

  // Breadth-first search over the bridge graph.
  std::map<const uml::Property*, const uml::Property*> parent;
  std::deque<const uml::Property*> queue{start};
  parent[start] = nullptr;
  while (!queue.empty()) {
    const uml::Property* seg = queue.front();
    queue.pop_front();
    if (seg == goal) break;
    for (const uml::Property* next : neighbors(*seg)) {
      if (parent.count(next) == 0) {
        parent[next] = seg;
        queue.push_back(next);
      }
    }
  }
  if (parent.count(goal) == 0) return {};
  std::vector<const uml::Property*> path;
  for (const uml::Property* seg = goal; seg != nullptr; seg = parent[seg]) {
    path.push_back(seg);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace tut::platform
