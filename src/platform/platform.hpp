// tut::platform — typed platform layer over uml + TUT-Profile.
//
// Section 3.2 of the paper: the platform is a library of parameterized
// components. A <<Platform>> class is composed of <<ComponentInstance>>
// parts (processing elements) and <<CommunicationSegment>> parts, connected
// through <<CommunicationWrapper>> connectors. Segments may be joined into a
// hierarchical bus by bridge links (Figure 7's bridge segment). This module
// provides the builder that applies the stereotypes consistently and a view
// with the topology queries (including routing) that the co-simulator needs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "profile/tut_profile.hpp"
#include "uml/model.hpp"

namespace tut::platform {

using Tags = std::map<std::string, std::string>;

/// Builds a platform description. Component instances get unique IDs and
/// wrappers get unique per-segment addresses automatically when the caller
/// does not provide them.
class PlatformBuilder {
public:
  PlatformBuilder(uml::Model& model, const profile::TutProfile& profile);

  /// Creates the top-level <<Platform>> class. Call once, first.
  uml::Class& platform(const std::string& name);

  /// Creates a <<Component>> library class (a processing element type).
  /// Recognized tags: Type, Area, Power, Frequency (MHz).
  uml::Class& component_type(const std::string& name, const Tags& tags = {});

  /// Instantiates a component as a <<ComponentInstance>> part.
  uml::Property& instance(const std::string& name, uml::Class& type,
                          const Tags& tags = {});

  /// Creates a communication segment part. With `hibi` (default) the part is
  /// stereotyped <<HIBISegment>>, otherwise plain <<CommunicationSegment>>.
  uml::Property& segment(const std::string& name, const Tags& tags = {},
                         bool hibi = true);

  /// Connects a component instance to a segment with a wrapper connector
  /// (<<HIBIWrapper>> when `hibi`, else <<CommunicationWrapper>>).
  uml::Connector& wrapper(uml::Property& instance, uml::Property& segment,
                          const Tags& tags = {}, bool hibi = true);

  /// Joins two segments with an (unstereotyped) bridge link, building the
  /// hierarchical bus of Figure 7.
  uml::Connector& bridge_link(uml::Property& seg_a, uml::Property& seg_b);

  uml::Model& model() noexcept { return model_; }
  uml::Class* platform_class() const noexcept { return platform_; }

private:
  uml::Port& ensure_port(uml::Class& cls, const std::string& name);

  uml::Model& model_;
  const profile::TutProfile& profile_;
  uml::Class* platform_ = nullptr;
  uml::Class* segment_classifier_ = nullptr;
  int next_instance_id_ = 1;
  std::map<const uml::Property*, int> next_address_;
};

/// Read-only topology queries over a platform model.
class PlatformView {
public:
  explicit PlatformView(const uml::Model& model);

  const uml::Class* platform() const noexcept { return platform_; }
  const std::vector<const uml::Property*>& instances() const noexcept {
    return instances_;
  }
  const std::vector<const uml::Property*>& segments() const noexcept {
    return segments_;
  }

  const uml::Property* instance_named(const std::string& name) const noexcept;
  const uml::Property* segment_named(const std::string& name) const noexcept;

  /// Wrapper connectors attached to an instance (usually one).
  std::vector<const uml::Connector*> wrappers_of(
      const uml::Property& instance) const;
  /// The segment an instance's wrapper attaches it to (first wrapper), or
  /// nullptr for an unattached instance.
  const uml::Property* segment_of(const uml::Property& instance) const noexcept;
  /// Instances attached to a segment.
  std::vector<const uml::Property*> instances_on(
      const uml::Property& segment) const;
  /// Segments joined to `segment` by bridge links.
  std::vector<const uml::Property*> neighbors(
      const uml::Property& segment) const;

  /// Shortest segment path between the segments of two instances (inclusive
  /// of both endpoints). Empty when either instance is unattached or no path
  /// exists. A same-segment pair yields a single-element path.
  std::vector<const uml::Property*> route(const uml::Property& from,
                                          const uml::Property& to) const;

  /// Component class of an instance (its part type).
  static const uml::Class* component_of(const uml::Property& instance) noexcept {
    return instance.part_type();
  }

private:
  const uml::Class* platform_ = nullptr;
  std::vector<const uml::Property*> instances_;
  std::vector<const uml::Property*> segments_;
  std::vector<const uml::Connector*> wrappers_;
  std::vector<const uml::Connector*> bridges_;
};

}  // namespace tut::platform
