// Proof-backed lint rules over the absint fixpoint: findings that hold for
// every reachable variable valuation, not just for constant-folded
// expressions. Each rule reports with "(value-range analysis)" in the
// message so a reader can tell a range proof from a syntactic one, and the
// guard rules deliberately skip variable-free guards — those are already
// covered (or intentionally silent) under the const-fold rules, so the two
// families never double-report.
#include <string>

#include "analysis/absint.hpp"
#include "analysis/internal.hpp"

namespace tut::analysis::detail {

namespace {

using absint::Interval;
using absint::MachineSummary;
using absint::ProgramFacts;
using efsm::CompiledMachine;
using efsm::Program;

/// Does the program read any variable slot? Variable-free programs are the
/// const-fold family's territory.
bool reads_slot(const Program& p) {
  for (const Program::Instr& in : p.code()) {
    if (in.op == Program::Op::Slot) return true;
  }
  return false;
}

/// Constant-folded guard truth (mirrors the const-fold rule's helper): the
/// range-refined shadowing rule must not re-report transitions the
/// syntactic rule already covers.
bool guard_const_true(const CompiledMachine::Transition& t) {
  if (!t.has_guard) return true;
  if (reads_slot(t.guard)) return false;
  for (const Program::Instr& in : t.guard.code()) {
    if (in.op == Program::Op::Missing) return false;
  }
  try {
    std::vector<long> regs(t.guard.reg_count());
    return t.guard.run(Program::Slots{}, regs.data()) != 0;
  } catch (const efsm::EvalError&) {
    return false;
  }
}

/// Same trigger-coverage predicate as the syntactic shadowing rule.
bool trigger_covers(const CompiledMachine::Transition& a,
                    const CompiledMachine::Transition& b) {
  if (a.completion || b.completion) return a.completion && b.completion;
  if (!a.trigger_timer.empty() || !b.trigger_timer.empty()) {
    return a.trigger_timer == b.trigger_timer;
  }
  if (a.trigger_signal != b.trigger_signal) return false;
  return a.trigger_port.empty() || a.trigger_port == b.trigger_port;
}

std::string range_str(Interval iv) {
  const auto bound = [](long v) {
    if (v == Interval::kMin) return std::string("-inf");
    if (v == Interval::kMax) return std::string("+inf");
    return std::to_string(v);
  };
  return "[" + bound(iv.lo) + ", " + bound(iv.hi) + "]";
}

struct AbsintRules {
  const Context& ctx;
  const uml::StateMachine& sm;
  const CompiledMachine& cm;
  const MachineSummary& summary;
  /// Graph-level reachability from the syntactic pass: those states are
  /// already reported, the range-refined rule covers only the refinement.
  const std::vector<bool>& graph_reachable;

  const ProgramFacts* facts_of(const Program& p) const {
    const auto it = summary.facts.find(&p);
    return it == summary.facts.end() ? nullptr : &it->second;
  }

  /// Divide-by-zero and overflow findings for one evaluated program.
  void check_program(const Program& p, const uml::Element& at,
                     const std::string& where) const {
    const ProgramFacts* f = facts_of(p);
    if (f == nullptr) return;
    if (!f->divzero.empty()) {
      ctx.diag(Severity::Warning, "efsm.expr.divzero.possible", at,
               where + " may divide by zero: the divisor's value range "
                       "includes 0 (value-range analysis)");
    }
    if (!f->overflow.empty()) {
      ctx.diag(Severity::Warning, "efsm.var.overflow.possible", at,
               where + " may overflow: the operand ranges allow a result "
                       "outside the representable integer range "
                       "(value-range analysis)");
    }
  }

  void check_action(const CompiledMachine::Action& a, const uml::Element& at,
                    const char* context) const {
    if (a.kind == uml::Action::Kind::Send) {
      for (const Program& arg : a.args) {
        check_program(arg, at, std::string(context) + " send argument");
      }
      return;
    }
    if (a.expr.size() == 0) return;
    check_program(a.expr, at, std::string(context) + " expression");
    if (a.kind == uml::Action::Kind::SetTimer) {
      const ProgramFacts* f = facts_of(a.expr);
      if (f != nullptr && f->completes && f->result.hi <= 0) {
        ctx.diag(Severity::Warning, "efsm.timer.nonpositive", at,
                 "timer '" + a.name + "' is armed with a provably "
                     "non-positive delay " + range_str(f->result) +
                     "; it fires immediately (value-range analysis)");
      }
    }
  }

  void run() const {
    // Range-refined reachability: graph-reachable states every path to
    // which is cut by a range-false guard or an always-throwing expression.
    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      if (summary.reachable[s]) continue;
      if (s < graph_reachable.size() && !graph_reachable[s]) continue;
      ctx.diag(Severity::Warning, "efsm.state.unreachable", *sm.states()[s],
               "state '" + cm.states()[s].name +
                   "' is unreachable: no reachable variable valuation "
                   "enables a path into it (value-range analysis)");
    }

    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      if (!summary.reachable[s]) continue;  // reported above
      const std::vector<std::uint32_t>& out = cm.states()[s].outgoing;
      for (std::size_t j = 0; j < out.size(); ++j) {
        const CompiledMachine::Transition& tr = cm.transitions()[out[j]];
        const uml::Element& at = *sm.transitions()[out[j]];
        const std::string guard_text =
            tr.has_guard ? sm.transitions()[out[j]]->guard() : std::string();

        if (tr.has_guard && reads_slot(tr.guard)) {
          if (const ProgramFacts* f = facts_of(tr.guard)) {
            if (f->proven_false()) {
              ctx.diag(Severity::Warning, "efsm.guard.dead.range", at,
                       "guard [" + guard_text +
                           "] is false for every reachable variable "
                           "valuation; the transition can never fire "
                           "(value-range analysis)");
            } else if (f->proven_true()) {
              ctx.diag(Severity::Info, "efsm.guard.tautology.range", at,
                       "guard [" + guard_text +
                           "] is true for every reachable variable "
                           "valuation; it never blocks (value-range "
                           "analysis)");
            }
          }
        }
        if (tr.has_guard) {
          check_program(tr.guard, at, "guard [" + guard_text + "]");
        }
        for (const CompiledMachine::Action& a : tr.effects) {
          check_action(a, at, "effect");
        }

        // Range-refined shadowing: an earlier trigger-covering transition
        // whose guard is range-proven true takes every matching event. The
        // syntactic rule handles unguarded/const-true earlier transitions.
        for (std::size_t i = 0; i < j; ++i) {
          const CompiledMachine::Transition& earlier =
              cm.transitions()[out[i]];
          if (!trigger_covers(earlier, tr)) continue;
          if (guard_const_true(earlier)) break;  // syntactic rule territory
          if (!earlier.has_guard || !reads_slot(earlier.guard)) continue;
          const ProgramFacts* f = facts_of(earlier.guard);
          if (f != nullptr && f->proven_true()) {
            ctx.diag(
                Severity::Warning, "efsm.transition.dead", at,
                "transition can never fire: an earlier transition from '" +
                    cm.states()[s].name + "' has guard [" +
                    sm.transitions()[out[i]]->guard() +
                    "], true for every reachable valuation, and takes "
                    "every matching event (value-range analysis)");
            break;
          }
        }
      }
      for (const CompiledMachine::Action& a : cm.states()[s].entry) {
        check_action(a, *sm.states()[s], "entry action");
      }
    }
  }
};

}  // namespace

void run_absint_rules(const Context& ctx, const uml::StateMachine& sm,
                      const efsm::CompiledMachine& cm,
                      const std::vector<bool>& graph_reachable) {
  const MachineSummary summary = absint::analyze(cm);
  if (!summary.analyzed) return;
  AbsintRules{ctx, sm, cm, summary, graph_reachable}.run();
}

}  // namespace tut::analysis::detail
