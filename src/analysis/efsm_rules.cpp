// EFSM bytecode analysis: reachability, shadowed transitions, constant
// guards, definite-assignment dataflow and machine-level signal accounting,
// all over the efsm::Program / efsm::CompiledMachine images the compiled
// simulation core executes — what the analyzer proves holds for exactly the
// artifact the simulator runs.
#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "analysis/internal.hpp"
#include "efsm/program.hpp"

namespace tut::analysis::detail {

namespace {

using efsm::CompiledMachine;
using efsm::Program;

/// Constant value of a Program that touches no variable slot; nullopt when
/// the program reads state or faults while folding (division by zero).
std::optional<long> const_value(const Program& p) {
  for (const Program::Instr& in : p.code()) {
    if (in.op == Program::Op::Slot || in.op == Program::Op::Missing) {
      return std::nullopt;
    }
  }
  try {
    std::vector<long> regs(p.reg_count());
    return p.run(Program::Slots{}, regs.data());
  } catch (const efsm::EvalError&) {
    return std::nullopt;
  }
}

/// True when `guard` cannot block: absent, or constant non-zero.
bool guard_always_true(const CompiledMachine::Transition& t) {
  if (!t.has_guard) return true;
  const auto v = const_value(t.guard);
  return v.has_value() && *v != 0;
}

/// Does an earlier transition on trigger key `a` receive every event that
/// would match `b`? (Same kind; an empty trigger port matches any port.)
bool trigger_covers(const CompiledMachine::Transition& a,
                    const CompiledMachine::Transition& b) {
  if (a.completion || b.completion) return a.completion && b.completion;
  if (!a.trigger_timer.empty() || !b.trigger_timer.empty()) {
    return a.trigger_timer == b.trigger_timer;
  }
  if (a.trigger_signal != b.trigger_signal) return false;
  return a.trigger_port.empty() || a.trigger_port == b.trigger_port;
}

/// Slot universe as a plain bit vector (machines have few slots).
using Bits = std::vector<bool>;

Bits all_set(std::size_t n) { return Bits(n, true); }

bool intersect_into(Bits& dst, const Bits& src) {
  bool changed = false;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i] && !src[i]) {
      dst[i] = false;
      changed = true;
    }
  }
  return changed;
}

/// Collects the slots a program reads.
void reads_of(const Program& p, std::vector<std::uint16_t>& out) {
  for (const Program::Instr& in : p.code()) {
    if (in.op == Program::Op::Slot) out.push_back(in.a);
  }
}

/// One machine's analysis state.
struct MachineAnalysis {
  const Context& ctx;
  const uml::StateMachine& sm;
  const CompiledMachine& cm;

  // Reported (element, rule-key) pairs, to dedupe across dataflow passes.
  std::set<std::pair<const uml::Element*, std::string>> reported;

  void report_once(Severity sev, const char* rule, const uml::Element& el,
                   std::string key, std::string msg) {
    if (reported.emplace(&el, rule + ('\0' + key)).second) {
      ctx.diag(sev, rule, el, std::move(msg));
    }
  }

  const uml::Element& transition_element(std::uint32_t index) const {
    return *sm.transitions()[index];
  }
  const uml::Element& state_element(std::uint32_t index) const {
    return *sm.states()[index];
  }

  /// Missing-op names: identifiers that are not slots of this machine at
  /// all — every evaluation would throw EvalError.
  void check_missing(const Program& p, const uml::Element& at,
                     const char* where) {
    for (const Program::Instr& in : p.code()) {
      if (in.op != Program::Op::Missing) continue;
      const std::string& name = p.missing_names()[in.a];
      report_once(Severity::Error, "efsm.var.undefined", at, name,
                  std::string(where) + " reads '" + name +
                      "', which no declaration, assignment or trigger "
                      "parameter defines");
    }
  }

  void check_missing_in_action(const CompiledMachine::Action& a,
                               const uml::Element& at, const char* where) {
    check_missing(a.expr, at, where);
    for (const Program& arg : a.args) check_missing(arg, at, where);
  }

  // -- reachability ---------------------------------------------------------

  std::vector<bool> reachable;

  void compute_reachability() {
    reachable.assign(cm.states().size(), false);
    if (cm.initial_state() == CompiledMachine::kNoState) {
      // Core rule uml.sm.wellformed already errors; nothing to anchor on.
      reachable.assign(cm.states().size(), true);
      return;
    }
    std::vector<std::uint32_t> work{cm.initial_state()};
    reachable[cm.initial_state()] = true;
    while (!work.empty()) {
      const std::uint32_t s = work.back();
      work.pop_back();
      for (const std::uint32_t t : cm.states()[s].outgoing) {
        const std::uint32_t dst = cm.transitions()[t].target;
        if (!reachable[dst]) {
          reachable[dst] = true;
          work.push_back(dst);
        }
      }
    }
    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      if (!reachable[s]) {
        ctx.diag(Severity::Warning, "efsm.state.unreachable",
                 state_element(s),
                 "state '" + cm.states()[s].name +
                     "' is unreachable from the initial state");
      }
    }
  }

  // -- shadowing / overlap --------------------------------------------------

  void check_shadowing() {
    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      if (!reachable[s]) continue;  // already reported as unreachable
      const auto& out = cm.states()[s].outgoing;
      for (std::size_t j = 1; j < out.size(); ++j) {
        const auto& later = cm.transitions()[out[j]];
        for (std::size_t i = 0; i < j; ++i) {
          const auto& earlier = cm.transitions()[out[i]];
          if (!trigger_covers(earlier, later)) continue;
          if (guard_always_true(earlier)) {
            ctx.diag(Severity::Warning, "efsm.transition.dead",
                     transition_element(out[j]),
                     "transition can never fire: an earlier transition from "
                     "'" + cm.states()[s].name +
                         "' takes every matching event (declaration order "
                         "is dispatch priority)");
            break;
          }
          const uml::Transition& e = *sm.transitions()[out[i]];
          const uml::Transition& l = *sm.transitions()[out[j]];
          if (!l.guard().empty() && e.guard() == l.guard()) {
            ctx.diag(Severity::Warning, "efsm.trigger.overlap",
                     transition_element(out[j]),
                     "transition repeats the trigger and guard [" +
                         l.guard() + "] of an earlier transition from '" +
                         cm.states()[s].name + "'; only the first can fire");
            break;
          }
        }
      }
    }
  }

  // -- constant guards ------------------------------------------------------

  void check_constant_guards() {
    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      if (!reachable[s]) continue;
      for (const std::uint32_t t : cm.states()[s].outgoing) {
        const auto& tr = cm.transitions()[t];
        if (!tr.has_guard) continue;
        const auto v = const_value(tr.guard);
        if (v.has_value() && *v == 0) {
          ctx.diag(Severity::Warning, "efsm.guard.false",
                   transition_element(t),
                   "guard [" + sm.transitions()[t]->guard() +
                       "] folds to a constant false; the transition is dead");
        }
      }
    }
  }

  // -- slot definition universe ---------------------------------------------

  // Slots that SOME program point defines: declared variables, Assign
  // targets, trigger parameters. A read of any other slot throws on every
  // evaluation (the machine image has no write for it at all) — that is
  // efsm.var.undefined, not a dataflow may-read.
  Bits ever_defined;

  void compute_ever_defined() {
    ever_defined.assign(cm.slot_count(), false);
    for (const auto& [slot, value] : cm.initial_values()) {
      (void)value;
      ever_defined[slot] = true;
    }
    const auto mark = [this](const std::vector<CompiledMachine::Action>& acts) {
      for (const CompiledMachine::Action& a : acts) {
        if (a.slot != efsm::kNoSlot && a.kind == uml::Action::Kind::Assign) {
          ever_defined[a.slot] = true;
        }
      }
    };
    for (const auto& st : cm.states()) mark(st.entry);
    for (const auto& tr : cm.transitions()) {
      mark(tr.effects);
      if (const auto* params = cm.param_slots(tr.trigger_signal)) {
        for (const std::uint16_t s : *params) ever_defined[s] = true;
      }
    }
  }

  // -- definite assignment --------------------------------------------------

  // IN[s]: slots definitely assigned on every path into state s. Seeded
  // with the declared variables at the initial state, refined to the
  // greatest fixpoint by intersection over incoming transitions (a
  // transition defines its trigger's parameter slots for the duration of
  // the step only — CompiledInstance restores the overlay afterwards unless
  // the step itself assigned the slot).
  std::vector<Bits> in_sets;

  void effects_transfer(const std::vector<CompiledMachine::Action>& actions,
                        Bits& defined, Bits* assigned) const {
    for (const CompiledMachine::Action& a : actions) {
      if (a.slot != efsm::kNoSlot && a.kind == uml::Action::Kind::Assign) {
        defined[a.slot] = true;
        if (assigned != nullptr) (*assigned)[a.slot] = true;
      }
    }
  }

  Bits transition_out(std::uint32_t t, const Bits& in) const {
    const auto& tr = cm.transitions()[t];
    Bits defined = in;
    if (const auto* params = cm.param_slots(tr.trigger_signal)) {
      for (const std::uint16_t s : *params) defined[s] = true;
    }
    Bits assigned(defined.size(), false);
    effects_transfer(tr.effects, defined, &assigned);
    effects_transfer(cm.states()[tr.target].entry, defined, &assigned);
    // The parameter overlay is restored after the step: a parameter slot
    // stays defined only if the step assigned it.
    if (const auto* params = cm.param_slots(tr.trigger_signal)) {
      for (const std::uint16_t s : *params) {
        if (!assigned[s] && !in[s]) defined[s] = false;
      }
    }
    return defined;
  }

  void compute_definite_assignment() {
    const std::size_t n_slots = cm.slot_count();
    in_sets.assign(cm.states().size(), all_set(n_slots));
    if (cm.initial_state() == CompiledMachine::kNoState) return;

    Bits initial(n_slots, false);
    for (const auto& [slot, value] : cm.initial_values()) {
      (void)value;
      initial[slot] = true;
    }
    // Entry actions of the initial state run at start().
    effects_transfer(cm.states()[cm.initial_state()].entry, initial, nullptr);
    in_sets[cm.initial_state()] = initial;

    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
        if (!reachable[s]) continue;
        for (const std::uint32_t t : cm.states()[s].outgoing) {
          const Bits out = transition_out(t, in_sets[s]);
          changed |= intersect_into(in_sets[cm.transitions()[t].target], out);
        }
      }
    }
  }

  void report_read(const Program& p, const Bits& defined,
                   const uml::Element& at, const char* where) {
    std::vector<std::uint16_t> reads;
    reads_of(p, reads);
    for (const std::uint16_t slot : reads) {
      if (defined[slot]) continue;
      const std::string& name = cm.slot_names()[slot];
      if (!ever_defined[slot]) {
        report_once(Severity::Error, "efsm.var.undefined", at, name,
                    std::string(where) + " reads '" + name +
                        "', which no declaration, assignment or trigger "
                        "parameter defines");
      } else {
        report_once(Severity::Warning, "efsm.var.read_before_write", at, name,
                    std::string(where) + " may read '" + name +
                        "' before any path assigns it");
      }
    }
  }

  void report_action_reads(const std::vector<CompiledMachine::Action>& acts,
                           Bits& defined, const uml::Element& at,
                           const char* where) {
    for (const CompiledMachine::Action& a : acts) {
      report_read(a.expr, defined, at, where);
      for (const Program& arg : a.args) report_read(arg, defined, at, where);
      if (a.slot != efsm::kNoSlot && a.kind == uml::Action::Kind::Assign) {
        defined[a.slot] = true;
      }
    }
  }

  void check_reads() {
    if (cm.initial_state() == CompiledMachine::kNoState) return;
    // Entry actions of the initial state read against declared vars only.
    {
      Bits defined(cm.slot_count(), false);
      for (const auto& [slot, value] : cm.initial_values()) {
        (void)value;
        defined[slot] = true;
      }
      report_action_reads(cm.states()[cm.initial_state()].entry, defined,
                          state_element(cm.initial_state()), "entry action");
    }
    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      if (!reachable[s]) continue;
      for (const std::uint32_t t : cm.states()[s].outgoing) {
        const auto& tr = cm.transitions()[t];
        Bits defined = in_sets[s];
        if (const auto* params = cm.param_slots(tr.trigger_signal)) {
          for (const std::uint16_t ps : *params) defined[ps] = true;
        }
        const uml::Element& at = transition_element(t);
        if (tr.has_guard) report_read(tr.guard, defined, at, "guard");
        report_action_reads(tr.effects, defined, at, "effect");
        report_action_reads(cm.states()[tr.target].entry, defined,
                            at, "entry action after this transition");
      }
    }
  }

  // -- undefined identifiers ------------------------------------------------

  void check_undefined() {
    for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
      for (const CompiledMachine::Action& a : cm.states()[s].entry) {
        check_missing_in_action(a, state_element(s), "entry action");
      }
    }
    for (std::uint32_t t = 0; t < cm.transitions().size(); ++t) {
      const auto& tr = cm.transitions()[t];
      const uml::Element& at = transition_element(t);
      if (tr.has_guard) check_missing(tr.guard, at, "guard");
      for (const CompiledMachine::Action& a : tr.effects) {
        check_missing_in_action(a, at, "effect");
      }
    }
  }

  void run() {
    compute_reachability();
    check_shadowing();
    check_constant_guards();
    check_undefined();
    compute_ever_defined();
    compute_definite_assignment();
    check_reads();
  }
};

/// Signals a machine's transitions consume.
void trigger_signals(const uml::StateMachine& sm,
                     std::set<const uml::Signal*>& out) {
  for (const uml::Transition* t : sm.transitions()) {
    if (t->trigger_signal() != nullptr) out.insert(t->trigger_signal());
  }
}

/// Signals a machine's actions send.
void sent_signals(const uml::StateMachine& sm,
                  std::set<const uml::Signal*>& out) {
  const auto scan = [&out](const std::vector<uml::Action>& actions) {
    for (const uml::Action& a : actions) {
      if (a.kind == uml::Action::Kind::Send && a.signal != nullptr) {
        out.insert(a.signal);
      }
    }
  };
  for (const uml::State* s : sm.states()) scan(s->entry_actions());
  for (const uml::Transition* t : sm.transitions()) scan(t->effects());
}

}  // namespace

void run_efsm_rules(const Context& ctx) {
  const auto machines = ctx.model.elements_of_kind(uml::ElementKind::StateMachine);

  // Model-wide send set: what any machine sends, plus what the environment
  // can inject through the application class's boundary ports.
  std::set<const uml::Signal*> ever_sent;
  for (uml::Element* e : machines) {
    sent_signals(*static_cast<const uml::StateMachine*>(e), ever_sent);
  }
  const uml::Class* app =
      ctx.app() != nullptr ? ctx.app()->application() : nullptr;
  if (app != nullptr) {
    for (const uml::Port* p : app->ports()) {
      for (const uml::Signal* s : p->provided()) ever_sent.insert(s);
    }
  }

  for (uml::Element* e : machines) {
    const auto& sm = *static_cast<const uml::StateMachine*>(e);

    std::set<const uml::Signal*> consumed;
    trigger_signals(sm, consumed);
    for (const uml::Signal* sig : consumed) {
      if (ever_sent.count(sig) == 0) {
        ctx.diag(Severity::Warning, "efsm.signal.never_sent", sm,
                 "signal '" + sig->name() +
                     "' triggers transitions here but no process sends it "
                     "and the environment cannot inject it");
      }
    }

    try {
      const efsm::CompiledMachine cm(sm);
      MachineAnalysis ma{ctx, sm, cm, {}, {}, {}, {}};
      ma.run();
      if (ctx.absint) run_absint_rules(ctx, sm, cm, ma.reachable);
    } catch (const efsm::ExprError& err) {
      ctx.diag(Severity::Error, "efsm.expr.malformed", sm, err.what());
    }
  }
}

}  // namespace tut::analysis::detail
