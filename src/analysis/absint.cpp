// Abstract interpretation over EFSM bytecode: the interval domain, abstract
// program execution, the per-machine fixpoint, and the distilled fact table
// the native code generator consumes. See absint.hpp for the domain and the
// execution-order contract with CompiledInstance::deliver.
//
// The domain is the mathematical-integer interval lattice saturated at the
// long sentinels: arithmetic on widened (sentinel) bounds keeps the finite
// side exact instead of collapsing to top. Facts are therefore proofs about
// overflow-free executions — the only ones the interpreter defines at all
// (signed overflow is UB there, and efsm.var.overflow.possible flags every
// site where finite ranges can leave the representable range).
#include "analysis/absint.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

namespace tut::analysis::absint {

namespace {

using efsm::CompiledMachine;
using efsm::Program;

constexpr __int128 kInf128 = static_cast<__int128>(1) << 100;

__int128 xlo(Interval a) {
  return a.lo == Interval::kMin ? -kInf128 : static_cast<__int128>(a.lo);
}
__int128 xhi(Interval a) {
  return a.hi == Interval::kMax ? kInf128 : static_cast<__int128>(a.hi);
}
bool inf128(__int128 v) { return v <= -kInf128 || v >= kInf128; }

long sat(__int128 v) {
  if (v <= static_cast<__int128>(Interval::kMin)) return Interval::kMin;
  if (v >= static_cast<__int128>(Interval::kMax)) return Interval::kMax;
  return static_cast<long>(v);
}

Interval from128(__int128 lo, __int128 hi) { return {sat(lo), sat(hi)}; }

/// A bound usable for a *definite* comparison verdict: sentinel bounds mean
/// "precision lost toward that extreme", never a provable extreme value.
bool usable(long bound) {
  return bound != Interval::kMin && bound != Interval::kMax;
}

}  // namespace

Interval join(Interval a, Interval b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval meet(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const Interval m{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return m.is_empty() ? Interval::empty() : m;
}

Interval widen(Interval prev, Interval next) {
  if (prev.is_empty()) return next;
  if (next.is_empty()) return prev;
  return {next.lo < prev.lo ? Interval::kMin : prev.lo,
          next.hi > prev.hi ? Interval::kMax : prev.hi};
}

Interval exclude_zero(Interval a) {
  if (a.is_empty() || !a.contains(0)) return a;
  if (a.lo == 0 && a.hi == 0) return Interval::empty();
  if (a.lo == 0) return {1, a.hi};
  if (a.hi == 0) return {a.lo, -1};
  return a;  // interior zero: not representable as one interval
}

Interval abs_neg(Interval a) {
  if (a.is_empty()) return a;
  return from128(-xhi(a), -xlo(a));
}

Interval abs_add(Interval a, Interval b, bool* overflow) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if (overflow != nullptr && a.is_finite() && b.is_finite()) {
    const __int128 lo = static_cast<__int128>(a.lo) + b.lo;
    const __int128 hi = static_cast<__int128>(a.hi) + b.hi;
    if (lo < Interval::kMin || hi > Interval::kMax) *overflow = true;
  }
  return from128(xlo(a) + xlo(b), xhi(a) + xhi(b));
}

Interval abs_sub(Interval a, Interval b, bool* overflow) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if (overflow != nullptr && a.is_finite() && b.is_finite()) {
    const __int128 lo = static_cast<__int128>(a.lo) - b.hi;
    const __int128 hi = static_cast<__int128>(a.hi) - b.lo;
    if (lo < Interval::kMin || hi > Interval::kMax) *overflow = true;
  }
  return from128(xlo(a) - xhi(b), xhi(a) - xlo(b));
}

Interval abs_mul(Interval a, Interval b, bool* overflow) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const auto prod = [](__int128 x, __int128 y) -> __int128 {
    if (x == 0 || y == 0) return 0;
    if (inf128(x) || inf128(y)) return ((x > 0) == (y > 0)) ? kInf128 : -kInf128;
    return x * y;
  };
  __int128 lo = kInf128 * 2;
  __int128 hi = -kInf128 * 2;
  for (const __int128 x : {xlo(a), xhi(a)}) {
    for (const __int128 y : {xlo(b), xhi(b)}) {
      const __int128 p = prod(x, y);
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  if (overflow != nullptr && a.is_finite() && b.is_finite() &&
      (lo < Interval::kMin || hi > Interval::kMax)) {
    *overflow = true;
  }
  return from128(lo, hi);
}

Interval abs_div(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  Interval res = Interval::empty();
  // Quotient endpoints over one constant-sign divisor part: a/b is monotone
  // in the dividend and piecewise monotone in the divisor, so the extremes
  // sit on endpoint combinations.
  const auto part = [&res, a](Interval d) {
    if (d.is_empty()) return;
    __int128 lo = kInf128 * 2;
    __int128 hi = -kInf128 * 2;
    for (const __int128 x : {xlo(a), xhi(a)}) {
      for (const __int128 y : {xlo(d), xhi(d)}) {
        __int128 q;
        if (inf128(x)) {
          q = ((x > 0) == (y > 0)) ? kInf128 : -kInf128;
        } else if (inf128(y)) {
          q = 0;  // finite / huge truncates to 0
        } else {
          q = x / y;
        }
        lo = std::min(lo, q);
        hi = std::max(hi, q);
      }
    }
    res = join(res, from128(lo, hi));
  };
  part({b.lo, std::min(b.hi, -1L)});  // negative divisors
  part({std::max(b.lo, 1L), b.hi});   // positive divisors
  return res;  // empty iff b was [0, 0] (runtime ChkDiv throws first)
}

Interval abs_mod(Interval a, Interval b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const Interval neg{b.lo, std::min(b.hi, -1L)};
  const Interval pos{std::max(b.lo, 1L), b.hi};
  if (neg.is_empty() && pos.is_empty()) return Interval::empty();
  __int128 min_abs = kInf128;
  __int128 max_abs = 0;
  if (!neg.is_empty()) {
    min_abs = std::min(min_abs, -xhi(neg));
    max_abs = std::max(max_abs, -xlo(neg));
  }
  if (!pos.is_empty()) {
    min_abs = std::min(min_abs, xlo(pos));
    max_abs = std::max(max_abs, xhi(pos));
  }
  // Dividend provably below every divisor magnitude: a % b == a exactly.
  if (xlo(a) >= 0 && xhi(a) < min_abs) return a;
  // Otherwise |r| < max|b| and |r| <= |a|, with the sign following the
  // dividend (C truncated division).
  const __int128 bound = max_abs - 1;
  __int128 lo = 0;
  __int128 hi = 0;
  if (xhi(a) > 0) hi = std::min(bound, xhi(a));
  if (xlo(a) < 0) lo = -std::min(bound, -xlo(a));
  return from128(lo, hi);
}

namespace {

Interval abs_cmp(Program::Op op, Interval a, Interval b) {
  const auto verdict = [](bool definite_true, bool definite_false) {
    if (definite_true) return Interval::constant(1);
    if (definite_false) return Interval::constant(0);
    return Interval::range(0, 1);
  };
  const bool lt_true = usable(a.hi) && usable(b.lo) && a.hi < b.lo;
  const bool le_true = usable(a.hi) && usable(b.lo) && a.hi <= b.lo;
  const bool gt_true = usable(a.lo) && usable(b.hi) && a.lo > b.hi;
  const bool ge_true = usable(a.lo) && usable(b.hi) && a.lo >= b.hi;
  const bool disjoint = lt_true || gt_true;
  switch (op) {
    case Program::Op::Lt:
      return verdict(lt_true, ge_true);
    case Program::Op::Le:
      return verdict(le_true, gt_true);
    case Program::Op::Gt:
      return verdict(gt_true, le_true);
    case Program::Op::Ge:
      return verdict(ge_true, lt_true);
    case Program::Op::Eq:
      return verdict(a.is_constant() && b.is_constant() && a.lo == b.lo &&
                         usable(a.lo) && usable(b.lo),
                     disjoint);
    case Program::Op::Ne:
      return verdict(disjoint, a.is_constant() && b.is_constant() &&
                                   a.lo == b.lo && usable(a.lo) &&
                                   usable(b.lo));
    default:
      return Interval::range(0, 1);
  }
}

Interval abs_truth(Interval a) {  // Bool: a != 0
  if (a == Interval::constant(0)) return Interval::constant(0);
  if (!a.contains(0)) return Interval::constant(1);
  return Interval::range(0, 1);
}

/// "register truthy <=> slot OP k" — tracked so a Jz can refine the slot's
/// working interval on each branch (short-circuit guards like
/// "n != 0 && 10 / n" then prove the division safe). slot < 0 means no
/// predicate.
struct Pred {
  int slot = -1;
  Program::Op op = Program::Op::Ne;
  long k = 0;

  bool operator==(const Pred&) const = default;
};

Program::Op flip_cmp(Program::Op op) {  // k OP slot  ->  slot OP' k
  switch (op) {
    case Program::Op::Lt: return Program::Op::Gt;
    case Program::Op::Le: return Program::Op::Ge;
    case Program::Op::Gt: return Program::Op::Lt;
    case Program::Op::Ge: return Program::Op::Le;
    default: return op;  // Eq / Ne are symmetric
  }
}

Program::Op negate_cmp(Program::Op op) {
  switch (op) {
    case Program::Op::Lt: return Program::Op::Ge;
    case Program::Op::Le: return Program::Op::Gt;
    case Program::Op::Gt: return Program::Op::Le;
    case Program::Op::Ge: return Program::Op::Lt;
    case Program::Op::Eq: return Program::Op::Ne;
    default: return Program::Op::Eq;  // Ne
  }
}

/// Clamps `iv` under "value OP k". A meet that would empty the interval is
/// left alone (the branch is infeasible; keeping the old interval is sound).
void apply_cmp(Interval& iv, Program::Op op, long k) {
  Interval c = Interval::top();
  switch (op) {
    case Program::Op::Lt: c = from128(-kInf128, static_cast<__int128>(k) - 1); break;
    case Program::Op::Le: c = Interval::range(Interval::kMin, k); break;
    case Program::Op::Gt: c = from128(static_cast<__int128>(k) + 1, kInf128); break;
    case Program::Op::Ge: c = Interval::range(k, Interval::kMax); break;
    case Program::Op::Eq: c = Interval::constant(k); break;
    case Program::Op::Ne:
      if (iv.lo == k && iv.lo < iv.hi) {
        iv.lo = sat(static_cast<__int128>(k) + 1);
      } else if (iv.hi == k && iv.lo < iv.hi) {
        iv.hi = sat(static_cast<__int128>(k) - 1);
      }
      return;
    default: return;
  }
  const Interval m = meet(iv, c);
  if (!m.is_empty()) iv = m;
}

}  // namespace

ProgramFacts eval_program(const Program& p, const Env& env) {
  ProgramFacts f;
  const std::vector<Program::Instr>& code = p.code();
  const std::size_t n = code.size();

  struct RegState {
    std::vector<Interval> regs;
    std::vector<Interval> slots;  ///< working copy, refinable per branch
    std::vector<int> origin;      ///< reg mirrors this slot's value (-1: none)
    std::vector<Pred> preds;      ///< reg-truthiness predicate per register
    bool live = false;
  };
  const auto merge = [](RegState& dst, const RegState& src) {
    if (!src.live) return;
    if (!dst.live) {
      dst = src;
      return;
    }
    for (std::size_t i = 0; i < dst.regs.size(); ++i) {
      dst.regs[i] = join(dst.regs[i], src.regs[i]);
      if (dst.origin[i] != src.origin[i]) dst.origin[i] = -1;
      if (!(dst.preds[i] == src.preds[i])) dst.preds[i] = Pred{};
    }
    for (std::size_t i = 0; i < dst.slots.size(); ++i) {
      dst.slots[i] = join(dst.slots[i], src.slots[i]);
    }
  };

  // Jumps are forward-only (short-circuit lowering), so one pass in pc
  // order with per-target pending joins reaches the abstract fixpoint.
  std::vector<RegState> pending(n + 1);
  RegState cur;
  cur.regs.assign(p.reg_count(), Interval::top());
  cur.slots.reserve(env.size());
  for (const SlotState& s : env) cur.slots.push_back(s.iv);
  cur.origin.assign(p.reg_count(), -1);
  cur.preds.assign(p.reg_count(), Pred{});
  cur.live = true;
  bool total = true;
  // Every write to a register invalidates its slot/predicate tracking
  // unless the op re-establishes it below.
  const auto clobber = [&cur](std::uint16_t dst) {
    cur.origin[dst] = -1;
    cur.preds[dst] = Pred{};
  };

  for (std::size_t pc = 0; pc < n; ++pc) {
    merge(cur, pending[pc]);
    pending[pc].live = false;
    if (!cur.live) continue;
    const Program::Instr& in = code[pc];
    switch (in.op) {
      case Program::Op::Const:
        cur.regs[in.dst] = Interval::constant(p.consts()[in.a]);
        clobber(in.dst);
        break;
      case Program::Op::Slot: {
        if (env[in.a].maybe_undef) total = false;
        const Interval iv = cur.slots[in.a];
        if (iv.is_empty()) {
          cur.live = false;  // every read throws: the path ends here
          break;
        }
        cur.regs[in.dst] = iv;
        cur.origin[in.dst] = in.a;
        // A bare slot as a condition means "slot != 0" on the true branch.
        cur.preds[in.dst] = Pred{static_cast<int>(in.a), Program::Op::Ne, 0};
        break;
      }
      case Program::Op::Missing:
        total = false;
        cur.live = false;
        break;
      case Program::Op::Neg:
        cur.regs[in.dst] = abs_neg(cur.regs[in.a]);
        clobber(in.dst);
        break;
      case Program::Op::Not: {
        const Pred inner = cur.preds[in.a];
        cur.regs[in.dst] = abs_truth(cur.regs[in.a]) == Interval::constant(0)
                               ? Interval::constant(1)
                           : abs_truth(cur.regs[in.a]) == Interval::constant(1)
                               ? Interval::constant(0)
                               : Interval::range(0, 1);
        clobber(in.dst);
        if (inner.slot >= 0) {
          cur.preds[in.dst] = Pred{inner.slot, negate_cmp(inner.op), inner.k};
        }
        break;
      }
      case Program::Op::Add: {
        bool ov = false;
        cur.regs[in.dst] = abs_add(cur.regs[in.a], cur.regs[in.b], &ov);
        if (ov) f.overflow.push_back(static_cast<std::uint32_t>(pc));
        clobber(in.dst);
        break;
      }
      case Program::Op::Sub: {
        bool ov = false;
        cur.regs[in.dst] = abs_sub(cur.regs[in.a], cur.regs[in.b], &ov);
        if (ov) f.overflow.push_back(static_cast<std::uint32_t>(pc));
        clobber(in.dst);
        break;
      }
      case Program::Op::Mul: {
        bool ov = false;
        cur.regs[in.dst] = abs_mul(cur.regs[in.a], cur.regs[in.b], &ov);
        if (ov) f.overflow.push_back(static_cast<std::uint32_t>(pc));
        clobber(in.dst);
        break;
      }
      case Program::Op::Div:
        cur.regs[in.dst] = abs_div(cur.regs[in.a], cur.regs[in.b]);
        clobber(in.dst);
        break;
      case Program::Op::Mod:
        cur.regs[in.dst] = abs_mod(cur.regs[in.a], cur.regs[in.b]);
        clobber(in.dst);
        break;
      case Program::Op::ChkDiv:
      case Program::Op::ChkMod: {
        const Interval d = cur.regs[in.a];
        if (d.contains(0)) {
          total = false;
          f.divzero.push_back(static_cast<std::uint32_t>(pc));
          const Interval refined = exclude_zero(d);
          if (refined.is_empty()) {
            cur.live = false;  // divisor provably 0: always throws
            break;
          }
          cur.regs[in.a] = refined;
          if (cur.origin[in.a] >= 0) cur.slots[cur.origin[in.a]] = refined;
        } else {
          f.safe_checks.push_back(static_cast<std::uint32_t>(pc));
        }
        break;
      }
      case Program::Op::Eq:
      case Program::Op::Ne:
      case Program::Op::Lt:
      case Program::Op::Le:
      case Program::Op::Gt:
      case Program::Op::Ge: {
        Pred pred;  // slot-vs-constant comparisons become branch predicates
        if (cur.origin[in.a] >= 0 && cur.regs[in.b].is_constant() &&
            usable(cur.regs[in.b].lo)) {
          pred = Pred{cur.origin[in.a], in.op, cur.regs[in.b].lo};
        } else if (cur.origin[in.b] >= 0 && cur.regs[in.a].is_constant() &&
                   usable(cur.regs[in.a].lo)) {
          pred = Pred{cur.origin[in.b], flip_cmp(in.op), cur.regs[in.a].lo};
        }
        cur.regs[in.dst] = abs_cmp(in.op, cur.regs[in.a], cur.regs[in.b]);
        clobber(in.dst);
        cur.preds[in.dst] = pred;
        break;
      }
      case Program::Op::Bool: {
        const Pred inner = cur.preds[in.a];
        cur.regs[in.dst] = abs_truth(cur.regs[in.a]);
        clobber(in.dst);
        cur.preds[in.dst] = inner;  // truthiness-preserving
        break;
      }
      case Program::Op::LoadOne:
        cur.regs[in.dst] = Interval::constant(1);
        clobber(in.dst);
        break;
      case Program::Op::Jz: {
        const Interval c = cur.regs[in.a];
        const Pred pred = cur.preds[in.a];
        if (c.contains(0)) {
          RegState taken = cur;
          taken.regs[in.a] = meet(c, Interval::constant(0));
          if (pred.slot >= 0) {
            apply_cmp(taken.slots[pred.slot], negate_cmp(pred.op), pred.k);
          }
          merge(pending[in.b], taken);
        }
        const Interval nz = exclude_zero(c);
        if (nz.is_empty()) {
          cur.live = false;
        } else {
          cur.regs[in.a] = nz;
          if (pred.slot >= 0) {
            apply_cmp(cur.slots[pred.slot], pred.op, pred.k);
          }
        }
        break;
      }
      case Program::Op::Jmp:
        merge(pending[in.b], cur);
        cur.live = false;
        break;
    }
  }
  merge(cur, pending[n]);
  f.total = total;
  if (cur.live) {
    f.completes = true;
    f.result = cur.regs.empty() ? Interval::top() : cur.regs[0];
  }
  return f;
}

namespace {

constexpr int kWidenDelay = 3;
constexpr int kMaxSweeps = 1000;

/// Joins `src` into `dst` slot-wise; widens bounds when `do_widen`.
bool env_join_into(Env& dst, const Env& src, bool do_widen) {
  bool changed = false;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    Interval j = join(dst[i].iv, src[i].iv);
    if (do_widen) j = widen(dst[i].iv, j);
    const bool undef = dst[i].maybe_undef || src[i].maybe_undef;
    if (j != dst[i].iv || undef != dst[i].maybe_undef) {
      dst[i].iv = j;
      dst[i].maybe_undef = undef;
      changed = true;
    }
  }
  return changed;
}

using FactMap = std::map<const Program*, ProgramFacts>;

/// Abstract-executes an action list in order. Returns false when execution
/// provably cannot complete (an expression on the only path always throws);
/// partially updated `env` must then be discarded by the caller. `facts`,
/// when set, records every evaluated program (final reporting sweep).
bool exec_actions(const std::vector<CompiledMachine::Action>& actions,
                  Env& env, std::vector<bool>* assigned, FactMap* facts) {
  const auto eval = [&env, facts](const Program& p) {
    ProgramFacts f = eval_program(p, env);
    const bool ok = f.completes;
    if (facts != nullptr) (*facts)[&p] = std::move(f);
    return ok;
  };
  for (const CompiledMachine::Action& a : actions) {
    switch (a.kind) {
      case uml::Action::Kind::Assign: {
        ProgramFacts f = eval_program(a.expr, env);
        const bool ok = f.completes;
        const Interval value = f.result;
        if (facts != nullptr) (*facts)[&a.expr] = std::move(f);
        if (!ok) return false;
        env[a.slot] = SlotState{value, false};
        if (assigned != nullptr) (*assigned)[a.slot] = true;
        break;
      }
      case uml::Action::Kind::Send:
        for (const Program& arg : a.args) {
          if (!eval(arg)) return false;
        }
        break;
      default:  // Compute / SetTimer (ResetTimer has no expression)
        if (a.expr.size() != 0 && !eval(a.expr)) return false;
        break;
    }
  }
  return true;
}

/// Refines `env` under "this guard evaluated nonzero" for the simple
/// comparison shapes the lowering produces for `x OP k` / `k OP x` / `x`.
/// Sound no-op for anything more complex.
void refine_guard(const Program& p, Env& env) {
  const auto& c = p.code();
  const auto clamp = [&env](std::uint16_t slot, Interval k) {
    SlotState& s = env[slot];
    const Interval m = meet(s.iv, k);
    if (!m.is_empty()) s.iv = m;
  };
  if (c.size() == 1 && c[0].op == Program::Op::Slot) {
    SlotState& s = env[c[0].a];
    const Interval nz = exclude_zero(s.iv);
    if (!nz.is_empty()) s.iv = nz;
    return;
  }
  if (c.size() != 3) return;
  std::uint16_t slot = 0;
  long k = 0;
  bool slot_left = false;
  if (c[0].op == Program::Op::Slot && c[1].op == Program::Op::Const) {
    slot = c[0].a;
    k = p.consts()[c[1].a];
    slot_left = true;
  } else if (c[0].op == Program::Op::Const && c[1].op == Program::Op::Slot) {
    slot = c[1].a;
    k = p.consts()[c[0].a];
  } else {
    return;
  }
  Program::Op op = c[2].op;
  if (!slot_left) {  // k OP slot  ==  slot OP' k with the comparison flipped
    switch (op) {
      case Program::Op::Lt: op = Program::Op::Gt; break;
      case Program::Op::Le: op = Program::Op::Ge; break;
      case Program::Op::Gt: op = Program::Op::Lt; break;
      case Program::Op::Ge: op = Program::Op::Le; break;
      default: break;  // Eq / Ne are symmetric
    }
  }
  switch (op) {
    case Program::Op::Lt:
      clamp(slot, from128(-kInf128, static_cast<__int128>(k) - 1));
      break;
    case Program::Op::Le:
      clamp(slot, Interval::range(Interval::kMin, k));
      break;
    case Program::Op::Gt:
      clamp(slot, from128(static_cast<__int128>(k) + 1, kInf128));
      break;
    case Program::Op::Ge:
      clamp(slot, Interval::range(k, Interval::kMax));
      break;
    case Program::Op::Eq:
      clamp(slot, Interval::constant(k));
      break;
    case Program::Op::Ne: {
      SlotState& s = env[slot];
      if (s.iv.lo == k && s.iv.lo < s.iv.hi) {
        s.iv.lo = sat(static_cast<__int128>(k) + 1);
      } else if (s.iv.hi == k && s.iv.lo < s.iv.hi) {
        s.iv.hi = sat(static_cast<__int128>(k) - 1);
      }
      break;
    }
    default:
      break;
  }
}

/// One transition step from resting environment `at`: parameter overlay,
/// guard, effects, overlay restore — exactly CompiledInstance::deliver up to
/// (but excluding) the target's entry actions. Returns the pre-entry
/// environment, or nullopt when the step cannot complete. `fired` reports
/// whether the guard can pass at all.
std::optional<Env> step_transition(const CompiledMachine& cm,
                                   std::uint32_t t_idx, const Env& at,
                                   FactMap* facts, bool* fired) {
  const CompiledMachine::Transition& tr = cm.transitions()[t_idx];
  Env env = at;
  const std::vector<std::uint16_t>* params =
      tr.trigger_signal != nullptr ? cm.param_slots(tr.trigger_signal)
                                   : nullptr;
  if (params != nullptr) {
    for (const std::uint16_t s : *params) {
      env[s] = SlotState{Interval::top(), false};
    }
  }
  *fired = true;
  if (tr.has_guard) {
    ProgramFacts f = eval_program(tr.guard, env);
    const bool feasible =
        f.completes && !(f.result == Interval::constant(0));
    if (facts != nullptr) (*facts)[&tr.guard] = std::move(f);
    if (!feasible) {
      *fired = false;
      return std::nullopt;
    }
    refine_guard(tr.guard, env);
  }
  std::vector<bool> assigned(env.size(), false);
  if (!exec_actions(tr.effects, env, &assigned, facts)) return std::nullopt;
  // The runtime restores the parameter overlay after the effects and before
  // entering the target, skipping slots the effects assigned.
  if (params != nullptr) {
    for (const std::uint16_t s : *params) {
      if (!assigned[s]) env[s] = at[s];
    }
  }
  return env;
}

}  // namespace

MachineSummary analyze(const CompiledMachine& cm) {
  MachineSummary out;
  const std::vector<CompiledMachine::State>& states = cm.states();
  const std::size_t n = states.size();
  out.at_state.assign(n, Env{});
  out.reachable.assign(n, false);
  out.feasible.assign(n, {});
  for (std::size_t s = 0; s < n; ++s) {
    out.feasible[s].assign(states[s].outgoing.size(), false);
  }
  if (cm.initial_state() == CompiledMachine::kNoState) return out;
  const std::uint32_t init_idx = cm.initial_state();

  Env declared(cm.slot_count(), SlotState{});
  for (const auto& [slot, value] : cm.initial_values()) {
    declared[slot] = SlotState{Interval::constant(value), false};
  }

  Env init = declared;
  if (!exec_actions(states[init_idx].entry, init, nullptr, nullptr)) {
    return out;  // start() always throws; nothing meaningful to report on
  }
  out.at_state[init_idx] = std::move(init);
  out.reachable[init_idx] = true;

  std::vector<int> joins(n, 0);
  bool converged = false;
  for (int sweep = 0; sweep < kMaxSweeps && !converged; ++sweep) {
    bool changed = false;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!out.reachable[s]) continue;
      const Env at = out.at_state[s];  // copy: self-loops join into source
      for (const std::uint32_t t : states[s].outgoing) {
        bool fired = false;
        std::optional<Env> post = step_transition(cm, t, at, nullptr, &fired);
        if (!post) continue;
        const std::uint32_t dst = cm.transitions()[t].target;
        Env entered = std::move(*post);
        if (!exec_actions(states[dst].entry, entered, nullptr, nullptr)) {
          continue;
        }
        if (!out.reachable[dst]) {
          out.reachable[dst] = true;
          out.at_state[dst] = std::move(entered);
          changed = true;
        } else if (env_join_into(out.at_state[dst], entered,
                                 joins[dst] >= kWidenDelay)) {
          ++joins[dst];
          changed = true;
        }
      }
    }
    converged = !changed;
  }
  if (!converged) return out;  // backstop: callers see analyzed == false
  out.analyzed = true;

  // Final reporting sweep under the stabilized invariants: per-program
  // facts, transition feasibility, and the joined pre-entry environments
  // the entry-action programs are judged under.
  std::vector<Env> before_entry(n);
  std::vector<bool> has_before(n, false);
  before_entry[init_idx] = declared;
  has_before[init_idx] = true;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!out.reachable[s]) continue;
    const Env& at = out.at_state[s];
    const std::vector<std::uint32_t>& outgoing = states[s].outgoing;
    for (std::size_t j = 0; j < outgoing.size(); ++j) {
      bool fired = false;
      std::optional<Env> post =
          step_transition(cm, outgoing[j], at, &out.facts, &fired);
      out.feasible[s][j] = fired;
      if (!post) continue;
      const std::uint32_t dst = cm.transitions()[outgoing[j]].target;
      if (!has_before[dst]) {
        before_entry[dst] = std::move(*post);
        has_before[dst] = true;
      } else {
        env_join_into(before_entry[dst], *post, false);
      }
    }
  }
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!out.reachable[s] || !has_before[s]) continue;
    Env env = before_entry[s];
    exec_actions(states[s].entry, env, nullptr, &out.facts);
  }
  return out;
}

namespace {

std::string bound_str(long v, bool low) {
  if (v == Interval::kMin) return "-inf";
  if (v == Interval::kMax) return "+inf";
  (void)low;
  return std::to_string(v);
}

}  // namespace

std::string invariants_text(const CompiledMachine& cm,
                            const MachineSummary& summary) {
  std::ostringstream os;
  os << "machine " << cm.source().name() << " value ranges:\n";
  if (!summary.analyzed) {
    os << "  (not analyzed: no initial state or the fixpoint did not "
          "converge)\n";
    return os.str();
  }
  const std::vector<std::string>& names = cm.slot_names();
  for (std::size_t s = 0; s < cm.states().size(); ++s) {
    os << "  state [" << s << "] " << cm.states()[s].name << ":";
    if (!summary.reachable[s]) {
      os << " unreachable\n";
      continue;
    }
    os << "\n";
    const Env& env = summary.at_state[s];
    for (std::size_t k = 0; k < env.size(); ++k) {
      if (env[k].iv.is_empty()) continue;  // never defined at this state
      os << "    " << names[k] << " ";
      if (env[k].iv.is_constant() && usable(env[k].iv.lo)) {
        os << "= " << env[k].iv.lo;
      } else {
        os << "in [" << bound_str(env[k].iv.lo, true) << ", "
           << bound_str(env[k].iv.hi, false) << "]";
      }
      if (env[k].maybe_undef) os << " (maybe undefined)";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace tut::analysis::absint

namespace tut::analysis {

Facts make_facts(const efsm::CompiledMachine& cm,
                 const absint::MachineSummary& summary) {
  Facts out;
  if (!summary.analyzed) return out;
  for (const auto& [prog, f] : summary.facts) {
    if (!f.safe_checks.empty()) out.elidable_checks[prog] = f.safe_checks;
  }
  for (std::uint32_t s = 0; s < cm.states().size(); ++s) {
    for (const std::uint32_t t : cm.states()[s].outgoing) {
      const efsm::CompiledMachine::Transition& tr = cm.transitions()[t];
      if (!tr.has_guard) continue;
      if (!summary.reachable[s]) {
        // Never evaluated at runtime; folding it false prunes the branch.
        out.guard_const[&tr.guard] = 0;
        continue;
      }
      const auto it = summary.facts.find(&tr.guard);
      if (it == summary.facts.end()) continue;
      if (it->second.proven_false()) {
        out.guard_const[&tr.guard] = 0;
      } else if (it->second.proven_true()) {
        out.guard_const[&tr.guard] = 1;
      }
    }
  }
  return out;
}

}  // namespace tut::analysis
