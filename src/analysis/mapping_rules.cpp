// Mapping and platform analysis: every process group must land on a
// compatible, sufficiently provisioned processing element; every pair of
// communicating PEs needs a segment route; and a supplied fault plan must
// name real components and leave failover somewhere to go. Tag semantics
// (ProcessType "hardware" vs Component Type "hw_accelerator", IntMemory vs
// Code/DataMemory) mirror sim::CompiledModel so the analyzer and the
// co-simulator never disagree about what a model means.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/internal.hpp"
#include "sim/fault.hpp"

namespace tut::analysis::detail {

namespace {

bool is_hw_accel(const uml::Property& instance) {
  const uml::Class* comp = platform::PlatformView::component_of(instance);
  return comp != nullptr && comp->tagged_value("Type") == "hw_accelerator";
}

/// Group-level ProcessType: the group's own tag, else the tag of any member
/// process (the builders only set it on processes).
std::string group_process_type(const appmodel::ApplicationView& app,
                               const uml::Property& group) {
  std::string pt = group.tagged_value("ProcessType");
  if (!pt.empty()) return pt;
  for (const uml::Property* p : app.members(group)) {
    pt = p->tagged_value("ProcessType");
    if (!pt.empty()) return pt;
  }
  return pt;
}

}  // namespace

void run_mapping_rules(const Context& ctx, const sim::FaultPlan* faults) {
  if (ctx.sys == nullptr) return;  // analysis.view.failed already reported
  const mapping::SystemView& sys = *ctx.sys;
  const appmodel::ApplicationView& app = sys.app();
  const platform::PlatformView& plat = sys.plat();

  // -- per-group mapping checks ---------------------------------------------
  for (const uml::Property* group : app.groups()) {
    const uml::Property* target = sys.instance_for_group(*group);
    if (target == nullptr) {
      ctx.diag(Severity::Error, "map.group.unmapped", *group,
               "process group '" + group->name() +
                   "' has no <<Mapping>> dependency to a component instance");
      continue;
    }

    const std::string pt = group_process_type(app, *group);
    const bool wants_hw = pt == "hardware";
    if (!pt.empty() && wants_hw != is_hw_accel(*target)) {
      const uml::Class* comp = platform::PlatformView::component_of(*target);
      ctx.diag(Severity::Error, "map.pe.incompatible", *group,
               "group '" + group->name() + "' (ProcessType '" + pt +
                   "') is mapped to '" + target->name() + "' (" +
                   (comp != nullptr ? "Type '" + comp->tagged_value("Type") +
                                          "'"
                                    : "untyped") +
                   "); hardware processes need a hw_accelerator and "
                   "software processes a programmable PE");
    }
  }

  // -- per-instance capacity checks -----------------------------------------
  for (const uml::Property* pe : plat.instances()) {
    const long budget = appmodel::tag_long(*pe, "IntMemory", 0);
    if (budget <= 0) continue;  // unparameterized: nothing to check
    long used = 0;
    for (const uml::Property* proc : sys.processes_on(*pe)) {
      used += app.effective_int(*proc, "CodeMemory", 0);
      used += app.effective_int(*proc, "DataMemory", 0);
    }
    if (used > budget) {
      ctx.diag(Severity::Warning, "map.pe.overcommitted", *pe,
               "instance '" + pe->name() + "' holds " + std::to_string(used) +
                   " bytes of mapped Code+DataMemory but its IntMemory is " +
                   std::to_string(budget));
    }
  }

  // -- platform topology ----------------------------------------------------
  for (const uml::Property* seg : plat.segments()) {
    if (plat.instances_on(*seg).empty() && plat.neighbors(*seg).empty()) {
      ctx.diag(Severity::Warning, "plat.segment.unattached", *seg,
               "segment '" + seg->name() +
                   "' has neither wrappers nor bridge links; no transfer "
                   "can use it");
    }
  }

  // Route feasibility between every pair of PEs that actually host
  // processes (the pairs a transfer could occur between).
  std::vector<const uml::Property*> hosting;
  for (const uml::Property* pe : plat.instances()) {
    if (!sys.processes_on(*pe).empty()) hosting.push_back(pe);
  }
  for (std::size_t i = 0; i < hosting.size(); ++i) {
    for (std::size_t j = i + 1; j < hosting.size(); ++j) {
      if (plat.route(*hosting[i], *hosting[j]).empty()) {
        ctx.diag(Severity::Error, "plat.route.missing", *hosting[i],
                 "no segment path between '" + hosting[i]->name() + "' and '" +
                     hosting[j]->name() +
                     "'; signals between their processes cannot be "
                     "delivered");
      }
    }
  }

  // -- failover feasibility -------------------------------------------------
  // A PE hosting processes whose kind (hardware/software) no other PE can
  // execute is a single point of failure. Informational on a healthy
  // platform; an error when a supplied fault plan actually fails that PE.
  std::set<std::string> planned_failures;
  if (faults != nullptr) {
    for (const sim::FaultWindow& w : faults->pe_faults) {
      planned_failures.insert(w.component);
    }
  }
  for (const uml::Property* pe : hosting) {
    const bool accel = is_hw_accel(*pe);
    bool hosts_matching = false;
    for (const uml::Property* proc : sys.processes_on(*pe)) {
      if ((proc->tagged_value("ProcessType") == "hardware") == accel) {
        hosts_matching = true;
        break;
      }
    }
    if (!hosts_matching) continue;
    bool survivor = false;
    for (const uml::Property* other : plat.instances()) {
      if (other != pe && is_hw_accel(*other) == accel) {
        survivor = true;
        break;
      }
    }
    if (survivor) continue;
    const bool planned = planned_failures.count(pe->name()) != 0;
    ctx.diag(planned ? Severity::Error : Severity::Info,
             "map.failover.infeasible", *pe,
             "instance '" + pe->name() + "' is the only " +
                 (accel ? "hardware accelerator" : "programmable PE") +
                 "; its processes have no migration target if it fails" +
                 (planned ? " — and the fault plan fails it" : ""));
  }

  // -- fault-plan cross-checks ----------------------------------------------
  if (faults == nullptr) return;
  std::set<std::string> pe_names, seg_names, proc_names;
  for (const uml::Property* pe : plat.instances()) pe_names.insert(pe->name());
  for (const uml::Property* s : plat.segments()) seg_names.insert(s->name());
  for (const uml::Property* p : app.processes()) proc_names.insert(p->name());

  const auto unknown = [&ctx](const std::string& kind,
                              const std::string& name) {
    ctx.diag_model(Severity::Error, "fault.component.unknown",
                   "fault plan names " + kind + " '" + name +
                       "', which the model does not define");
  };
  std::set<std::string> seen;
  for (const sim::FaultWindow& w : faults->pe_faults) {
    if (pe_names.count(w.component) == 0 && seen.insert(w.component).second) {
      unknown("component instance", w.component);
    }
  }
  for (const sim::FaultWindow& w : faults->segment_faults) {
    if (seg_names.count(w.component) == 0 && seen.insert(w.component).second) {
      unknown("segment", w.component);
    }
  }
  for (const sim::BitErrorSpec& b : faults->bit_errors) {
    if (seg_names.count(b.segment) == 0 && seen.insert(b.segment).second) {
      unknown("segment", b.segment);
    }
  }
  for (const sim::SignalFault& s : faults->signal_faults) {
    if (proc_names.count(s.process) == 0 && seen.insert(s.process).second) {
      unknown("process", s.process);
    }
  }
}

}  // namespace tut::analysis::detail
