// analysis::absint — abstract interpretation over EFSM bytecode.
//
// A per-machine fixpoint over the state/transition graph computes, for every
// state, an interval invariant per variable slot: the range of values the
// slot can hold whenever the machine rests in that state. The domain is
// intervals over `long` with LONG_MIN/LONG_MAX as the -inf/+inf sentinels
// (constants are the width-0 case), joined at states and widened after a few
// unstable joins so loops with unbounded counters converge.
//
// The transfer function mirrors CompiledInstance::deliver exactly: overlay
// the trigger's parameter slots, evaluate the guard (refining the overlaid
// environment for simple comparison shapes), run the effects, restore the
// overlay for parameter slots the effects did not assign, then run the
// target's entry actions — in that order, because that is the order the
// interpreter and the native backend execute. Completion and timer
// transitions fall out of the same sweep: a state's post-entry environment
// equals its resting environment (entry actions are the last thing a step
// runs), so one invariant per state covers both delivery and completion
// guards.
//
// Everything downstream hangs off the computed summary:
//  - proof-backed lint rules (efsm.guard.dead.range, efsm.guard.
//    tautology.range, efsm.expr.divzero.possible, efsm.var.overflow.
//    possible, efsm.timer.nonpositive, range-refined reachability) in
//    absint_rules.cpp;
//  - an analysis::Facts table the native code generator consumes to elide
//    division checks and fold proven guards (codegen/native_emit.cpp);
//  - per-state invariant text for `tut efsm dump`.
//
// Iteration is in state-index / declaration order throughout, so summaries,
// reports and generated code are byte-stable across runs.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "efsm/program.hpp"

namespace tut::analysis::absint {

/// Closed interval [lo, hi] over long. lo == kMin means -inf, hi == kMax
/// means +inf (the two extreme longs are absorbed into the sentinels — a
/// sound, one-value loss of precision). lo > hi encodes the empty interval.
struct Interval {
  static constexpr long kMin = std::numeric_limits<long>::min();
  static constexpr long kMax = std::numeric_limits<long>::max();

  long lo = kMin;
  long hi = kMax;

  static Interval top() { return {}; }
  static Interval constant(long v) { return {v, v}; }
  static Interval range(long lo, long hi) { return {lo, hi}; }
  static Interval empty() { return {1, 0}; }

  bool is_empty() const { return lo > hi; }
  bool is_top() const { return lo == kMin && hi == kMax; }
  bool is_constant() const { return lo == hi; }
  bool contains(long v) const { return lo <= v && v <= hi; }
  /// Both bounds are actual values, not sentinels (and not empty).
  bool is_finite() const { return !is_empty() && lo != kMin && hi != kMax; }

  bool operator==(const Interval&) const = default;
};

/// Lattice operations. Empty is the identity of join and the zero of meet.
Interval join(Interval a, Interval b);
Interval meet(Interval a, Interval b);
/// Classic interval widening: a bound that moved since `prev` jumps to its
/// sentinel, so chains like n, n+1, n+2, ... stabilize at [n, +inf].
Interval widen(Interval prev, Interval next);
/// Removes 0 when it sits on a boundary ([0,0] becomes empty; an interior 0
/// cannot be removed from an interval).
Interval exclude_zero(Interval a);

/// Abstract arithmetic, computed in 128 bits and saturated to the
/// sentinels. For add/sub/mul, `*overflow` (when non-null) is set when both
/// operands are finite yet the exact result range leaves the long range —
/// the case where the interpreter's native arithmetic would overflow
/// (undefined behaviour), as opposed to widened bounds that merely lost
/// precision.
Interval abs_neg(Interval a);
Interval abs_add(Interval a, Interval b, bool* overflow = nullptr);
Interval abs_sub(Interval a, Interval b, bool* overflow = nullptr);
Interval abs_mul(Interval a, Interval b, bool* overflow = nullptr);
/// Quotient/remainder ranges for divisors already known nonzero; a divisor
/// interval containing 0 is split around it (the runtime ChkDiv/ChkMod
/// throw filters the 0 out before Div/Mod executes).
Interval abs_div(Interval a, Interval b);
Interval abs_mod(Interval a, Interval b);

/// Abstract value of one variable slot at a program point.
struct SlotState {
  Interval iv = Interval::empty();  ///< join of every value written
  bool maybe_undef = true;          ///< a read may throw "unknown identifier"

  bool operator==(const SlotState&) const = default;
};

/// One slot file's worth of abstract values, indexed by slot.
using Env = std::vector<SlotState>;

/// What abstract execution proved about one efsm::Program evaluated under a
/// state's invariant environment.
struct ProgramFacts {
  Interval result = Interval::empty();  ///< r0 over normally-completing paths
  bool completes = false;  ///< some path reaches the end without throwing
  bool total = false;      ///< no reachable instruction can throw
  /// ChkDiv/ChkMod pcs whose divisor interval contains 0 (may throw).
  std::vector<std::uint32_t> divzero;
  /// ChkDiv/ChkMod pcs whose divisor interval provably excludes 0 — the
  /// native backend elides these checks.
  std::vector<std::uint32_t> safe_checks;
  /// Add/Sub/Mul/Neg pcs with finite operand ranges whose exact result
  /// leaves the long range (possible signed overflow at runtime).
  std::vector<std::uint32_t> overflow;

  /// Guard verdicts: sound only because `total` rules out the throwing
  /// paths the interpreter would surface as run errors.
  bool proven_true() const {
    return total && completes && !result.contains(0);
  }
  bool proven_false() const {
    return total && completes && result == Interval::constant(0);
  }
};

/// Evaluates one program under `env`. Exposed for tests; analyze() calls it
/// for every program of the machine under the fixpoint invariants.
ProgramFacts eval_program(const efsm::Program& p, const Env& env);

/// Whole-machine summary: the fixpoint invariants plus per-program facts.
struct MachineSummary {
  /// False when the machine has no initial state, its initial entry actions
  /// can never complete, or the fixpoint failed to converge — consumers
  /// must treat the rest of the summary as absent.
  bool analyzed = false;
  /// Post-entry invariant environment per state index (empty Env for
  /// range-unreachable states).
  std::vector<Env> at_state;
  /// Range-level reachability (refines graph reachability: a state all of
  /// whose incoming guards are range-false is graph-reachable but never
  /// entered).
  std::vector<bool> reachable;
  /// Per state, per outgoing-transition position: can the transition fire
  /// under the invariant (source reachable, guard completes and may be
  /// nonzero)?
  std::vector<std::vector<bool>> feasible;
  /// Facts for every program abstract execution reached, keyed by the
  /// program's address inside the CompiledMachine (each guard/effect/entry
  /// program object is a distinct value member, so the key is unambiguous).
  std::map<const efsm::Program*, ProgramFacts> facts;
};

/// Runs the fixpoint. Deterministic: state-index sweeps, declaration-order
/// transitions, widening after a fixed number of unstable joins.
MachineSummary analyze(const efsm::CompiledMachine& cm);

/// Renders the per-state invariants ("state [1] Active: n in [0, +inf]"),
/// appended by `tut efsm dump` after the disassembly.
std::string invariants_text(const efsm::CompiledMachine& cm,
                            const MachineSummary& summary);

}  // namespace tut::analysis::absint

namespace tut::analysis {

/// Proven per-site facts the native code generator consumes. Keyed by
/// Program address within one CompiledMachine image; the emitter must be
/// driven by the same image the facts were computed from.
struct Facts {
  /// Guards with a proven constant outcome, safe to fold: 1 = taken
  /// unconditionally, 0 = never taken (proven false under every reachable
  /// valuation, or belonging to a range-unreachable state — either way the
  /// interpreter never observes the guard evaluate any other way).
  std::map<const efsm::Program*, long> guard_const;
  /// ChkDiv/ChkMod pcs per program whose zero check can be elided.
  std::map<const efsm::Program*, std::vector<std::uint32_t>> elidable_checks;

  bool empty() const { return guard_const.empty() && elidable_checks.empty(); }
};

/// Distills a machine summary into the table codegen::native consumes.
Facts make_facts(const efsm::CompiledMachine& cm,
                 const absint::MachineSummary& summary);

}  // namespace tut::analysis
