// Shared context for the analysis rule families. Internal to src/analysis.
#pragma once

#include "analysis/analyzer.hpp"
#include "analysis/source_map.hpp"
#include "appmodel/appmodel.hpp"
#include "efsm/router.hpp"
#include "mapping/mapping.hpp"

namespace tut::efsm {
class CompiledMachine;
}

namespace tut::analysis::detail {

struct Context {
  const uml::Model& model;
  const mapping::SystemView* sys = nullptr;  ///< null when construction failed
  const efsm::Router* router = nullptr;      ///< null when unavailable
  const SourceMap* smap = nullptr;           ///< null without source XML
  Report* report = nullptr;
  bool absint = true;  ///< run the value-range (abstract interpretation) pass

  const appmodel::ApplicationView* app() const {
    return sys != nullptr ? &sys->app() : nullptr;
  }

  void diag(Severity sev, std::string rule, const uml::Element& element,
            std::string message) const {
    report->add(sev, std::move(rule), element.qualified_name(),
                std::move(message),
                smap != nullptr ? smap->offset_of(element.id()) : -1);
  }
  void diag_model(Severity sev, std::string rule, std::string message) const {
    report->add(sev, std::move(rule), std::string(), std::move(message));
  }
};

void run_efsm_rules(const Context& ctx);
void run_flow_rules(const Context& ctx);
void run_mapping_rules(const Context& ctx, const sim::FaultPlan* faults);
/// Value-range rules for one machine (called from run_efsm_rules with the
/// machine image and the syntactic pass's graph reachability).
void run_absint_rules(const Context& ctx, const uml::StateMachine& sm,
                      const efsm::CompiledMachine& cm,
                      const std::vector<bool>& graph_reachable);

}  // namespace tut::analysis::detail
