#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <cstdio>

namespace tut::analysis {

std::string Diagnostic::to_text() const {
  std::string out = uml::to_string(severity);
  out += " [" + rule + "]";
  if (!element.empty()) out += " " + element;
  if (offset >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, " @%ld", offset);
    out += buf;
  }
  out += ": " + message;
  if (suppressed) out += " (baseline)";
  return out;
}

Baseline Baseline::parse(std::string_view text) {
  Baseline b;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      // Bare rule id: suppress the rule everywhere.
      b.entries_.emplace(std::string(line), std::string());
    } else {
      b.entries_.emplace(std::string(line.substr(0, tab)),
                         std::string(line.substr(tab + 1)));
    }
  }
  return b;
}

std::string Baseline::from_diagnostics(const std::vector<Diagnostic>& diags) {
  std::set<std::pair<std::string, std::string>> entries;
  for (const Diagnostic& d : diags) entries.emplace(d.rule, d.element);
  std::string out =
      "# tut lint baseline: one \"rule<TAB>element\" per line. Diagnostics\n"
      "# matching an entry are reported but do not affect the exit code.\n";
  for (const auto& [rule, element] : entries) {
    out += rule;
    out += '\t';
    out += element;
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Baseline::stale_against(
    const std::vector<Diagnostic>& diags) const {
  std::set<std::pair<std::string, std::string>> present;
  std::set<std::string> rules_present;
  for (const Diagnostic& d : diags) {
    present.emplace(d.rule, d.element);
    rules_present.insert(d.rule);
  }
  std::vector<std::pair<std::string, std::string>> stale;
  for (const auto& entry : entries_) {
    const bool live = entry.second.empty()
                          ? rules_present.count(entry.first) != 0
                          : present.count(entry) != 0;
    if (!live) stale.push_back(entry);
  }
  return stale;
}

void Report::add(Severity severity, std::string rule, std::string element,
                 std::string message, long offset) {
  diags_.push_back(Diagnostic{severity, std::move(rule), std::move(element),
                              std::move(message), offset, false});
}

void Report::merge(const uml::ValidationResult& result,
                   const std::function<long(const std::string&)>& resolve) {
  for (const uml::Diagnostic& d : result.diagnostics()) {
    add(d.severity, d.rule, d.element, d.message,
        resolve ? resolve(d.element) : -1);
  }
}

void Report::apply_baseline(const Baseline& baseline) {
  for (Diagnostic& d : diags_) {
    if (baseline.matches(d)) d.suppressed = true;
    // A bare-rule entry matches any element of that rule.
    if (!d.suppressed &&
        baseline.matches(Diagnostic{d.severity, d.rule, "", "", -1, false})) {
      d.suppressed = true;
    }
  }
}

void Report::filter_rules(
    const std::function<bool(const std::string&)>& keep) {
  diags_.erase(std::remove_if(diags_.begin(), diags_.end(),
                              [&keep](const Diagnostic& d) {
                                return !keep(d.rule);
                              }),
               diags_.end());
}

void Report::sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     const unsigned long ao =
                         a.offset < 0 ? ~0ul : static_cast<unsigned long>(a.offset);
                     const unsigned long bo =
                         b.offset < 0 ? ~0ul : static_cast<unsigned long>(b.offset);
                     if (ao != bo) return ao < bo;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.element < b.element;
                   });
}

namespace {

std::size_t count(const std::vector<Diagnostic>& diags, Severity sev) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (!d.suppressed && d.severity == sev) ++n;
  }
  return n;
}

}  // namespace

std::size_t Report::error_count() const noexcept {
  return count(diags_, Severity::Error);
}
std::size_t Report::warning_count() const noexcept {
  return count(diags_, Severity::Warning);
}
std::size_t Report::info_count() const noexcept {
  return count(diags_, Severity::Info);
}
std::size_t Report::suppressed_count() const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) n += d.suppressed ? 1 : 0;
  return n;
}

std::string Report::to_text() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.to_text();
    out += '\n';
  }
  out += std::to_string(error_count()) + " errors, " +
         std::to_string(warning_count()) + " warnings";
  if (info_count() != 0) {
    out += ", " + std::to_string(info_count()) + " infos";
  }
  if (suppressed_count() != 0) {
    out += ", " + std::to_string(suppressed_count()) + " baseline-suppressed";
  }
  out += '\n';
  return out;
}

void json_escape(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Report::to_json() const {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : diags_) {
    if (!first) out += ',';
    first = false;
    out += "{\"severity\":";
    json_escape(out, uml::to_string(d.severity));
    out += ",\"rule\":";
    json_escape(out, d.rule);
    out += ",\"element\":";
    json_escape(out, d.element);
    if (d.offset >= 0) {
      out += ",\"offset\":" + std::to_string(d.offset);
    }
    out += ",\"message\":";
    json_escape(out, d.message);
    if (d.suppressed) out += ",\"suppressed\":true";
    out += '}';
  }
  out += "],\"errors\":" + std::to_string(error_count()) +
         ",\"warnings\":" + std::to_string(warning_count()) +
         ",\"infos\":" + std::to_string(info_count()) +
         ",\"suppressed\":" + std::to_string(suppressed_count()) + "}\n";
  return out;
}

}  // namespace tut::analysis
