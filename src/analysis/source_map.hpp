// analysis::SourceMap — element id → byte offset in the source XML.
//
// The interchange dialect (uml/serialize) writes every element with an `id`
// attribute. One zero-copy pass with xml::Cursor records where each
// element's start tag begins, so diagnostics produced over the in-memory
// model can point back into the file the user actually edits.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "xml/arena.hpp"

namespace tut::analysis {

class SourceMap {
 public:
  SourceMap() = default;

  /// Tokenizes `text` and records the start-tag byte offset of every
  /// element carrying an `id` attribute (first occurrence wins). Swallows
  /// xml::ParseError — a malformed tail simply yields fewer offsets; the
  /// model parser is the authority on well-formedness.
  static SourceMap build(std::string_view text);

  /// Offset of the element with this id, or -1.
  long offset_of(std::string_view id) const noexcept {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? -1 : it->second;
  }

  std::size_t size() const noexcept { return by_id_.size(); }

 private:
  std::map<std::string, long, std::less<>> by_id_;
};

}  // namespace tut::analysis
