#include "analysis/source_map.hpp"

#include "xml/cursor.hpp"
#include "xml/error.hpp"

namespace tut::analysis {

namespace {

// The cursor reports the offset *after* each event; the bytes between the
// end of the previous event and a start tag are the tag itself, possibly
// preceded by skipped prolog/comment constructs. Scan forward from `from`
// to the '<' that actually opens the element.
long tag_start(std::string_view text, std::size_t from, std::size_t limit) {
  std::size_t p = from;
  while (p < limit) {
    p = text.find('<', p);
    if (p == std::string_view::npos || p >= limit) break;
    if (text.compare(p, 4, "<!--") == 0) {
      const std::size_t end = text.find("-->", p + 4);
      if (end == std::string_view::npos) break;
      p = end + 3;
      continue;
    }
    if (p + 1 < text.size() && (text[p + 1] == '?' || text[p + 1] == '!')) {
      const std::size_t end = text.find('>', p + 1);
      if (end == std::string_view::npos) break;
      p = end + 1;
      continue;
    }
    return static_cast<long>(p);
  }
  return -1;
}

}  // namespace

SourceMap SourceMap::build(std::string_view text) {
  SourceMap map;
  xml::Arena arena;
  xml::Cursor cur(text, arena);
  std::size_t prev = 0;
  try {
    for (auto ev = cur.next(); ev != xml::Cursor::Event::End;
         ev = cur.next()) {
      if (ev == xml::Cursor::Event::StartElement) {
        if (const auto id = cur.attr("id"); id && !id->empty()) {
          const long at = tag_start(text, prev, cur.offset());
          map.by_id_.emplace(std::string(*id), at);
        }
      }
      prev = cur.offset();
    }
  } catch (const xml::ParseError&) {
    // Partial maps are fine: offsets are best-effort decoration.
  }
  return map;
}

}  // namespace tut::analysis
