// Signal-flow analysis: every Send action of every process is resolved
// through the flattening efsm::Router and checked end to end — does the
// signal arrive anywhere, does the receiving port admit it, does the
// receiving machine consume it — plus whole-system activation analysis
// (starvation and wait-for cycles among processes).
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/internal.hpp"

namespace tut::analysis::detail {

namespace {

/// One distinct (port, signal) a machine sends through.
struct SendUse {
  std::string port;
  const uml::Signal* signal = nullptr;

  bool operator<(const SendUse& o) const {
    if (port != o.port) return port < o.port;
    return signal < o.signal;
  }
};

void collect_sends(const uml::StateMachine& sm, std::set<SendUse>& out) {
  const auto scan = [&out](const std::vector<uml::Action>& actions) {
    for (const uml::Action& a : actions) {
      if (a.kind == uml::Action::Kind::Send && a.signal != nullptr) {
        out.insert(SendUse{a.port, a.signal});
      }
    }
  };
  for (const uml::State* s : sm.states()) scan(s->entry_actions());
  for (const uml::Transition* t : sm.transitions()) scan(t->effects());
}

/// Does `sm` have a transition consuming `signal` when it arrives through
/// `port_name`? (An empty trigger port matches any providing port.)
bool consumes(const uml::StateMachine& sm, const uml::Signal& signal,
              const std::string& port_name) {
  for (const uml::Transition* t : sm.transitions()) {
    if (t->trigger_signal() != &signal) continue;
    if (t->trigger_port().empty() || t->trigger_port() == port_name) {
      return true;
    }
  }
  return false;
}

/// A process is spontaneous when it can act without receiving a signal
/// from another process: timer or completion transitions, timers armed or
/// signals sent from entry actions, or signals injectable from the
/// environment reaching it.
bool machine_spontaneous(const uml::StateMachine& sm) {
  for (const uml::Transition* t : sm.transitions()) {
    if (!t->trigger_timer().empty() || t->is_completion()) return true;
  }
  for (const uml::State* s : sm.states()) {
    for (const uml::Action& a : s->entry_actions()) {
      if (a.kind == uml::Action::Kind::Send ||
          a.kind == uml::Action::Kind::SetTimer) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void run_flow_rules(const Context& ctx) {
  if (ctx.router == nullptr || ctx.app() == nullptr ||
      ctx.app()->application() == nullptr) {
    return;  // nothing to route (or the router already reported)
  }
  const efsm::Router& router = *ctx.router;
  const uml::Class& app = *ctx.app()->application();

  const auto& parts = router.active_parts();
  std::map<const uml::Property*, std::size_t> part_index;
  for (std::size_t i = 0; i < parts.size(); ++i) part_index[parts[i]] = i;

  // Process-level send graph (edges_ [sender] -> receivers) built while
  // checking each resolved route.
  std::vector<std::set<std::size_t>> edges(parts.size());
  std::vector<bool> env_fed(parts.size(), false);

  // Environment injection: every connected boundary port feeds its target.
  for (const uml::Port* bp : app.ports()) {
    const efsm::Endpoint in = router.boundary_destination(bp->name());
    if (in.part == nullptr) {
      if (in.port == nullptr) {
        ctx.diag(Severity::Warning, "flow.boundary.unbound", *bp,
                 "boundary port '" + bp->name() +
                     "' of '" + app.name() +
                     "' is connected to no part; injected signals go "
                     "nowhere");
      }
      continue;
    }
    const auto it = part_index.find(in.part);
    if (it != part_index.end()) env_fed[it->second] = true;
  }

  for (std::size_t i = 0; i < parts.size(); ++i) {
    const uml::Property& part = *parts[i];
    const uml::Class* type = part.part_type();
    const uml::StateMachine* sm =
        type != nullptr ? type->behavior() : nullptr;
    if (sm == nullptr) continue;  // tut.component.active reports this

    std::set<SendUse> sends;
    collect_sends(*sm, sends);
    for (const SendUse& send : sends) {
      const efsm::Endpoint dest = router.destination(part, send.port);
      if (dest.is_environment()) {
        if (dest.port == nullptr) {
          ctx.diag(Severity::Warning, "flow.port.unbound", part,
                   "process '" + part.name() + "' sends '" +
                       send.signal->name() + "' through port '" + send.port +
                       "' of '" + type->name() +
                       "', which routes nowhere; the signal is dropped");
        }
        continue;  // delivery to the environment is a legitimate sink
      }

      if (!dest.port->provides(*send.signal)) {
        ctx.diag(Severity::Error, "flow.connector.type", part,
                 "signal '" + send.signal->name() + "' from '" + part.name() +
                     "." + send.port + "' arrives at '" + dest.part->name() +
                     "." + dest.port->name() +
                     "', which does not provide it");
      }

      const uml::Class* dest_type = dest.part->part_type();
      const uml::StateMachine* dest_sm =
          dest_type != nullptr ? dest_type->behavior() : nullptr;
      if (dest_sm != nullptr &&
          !consumes(*dest_sm, *send.signal, dest.port->name())) {
        ctx.diag(Severity::Warning, "flow.signal.ignored", *dest.part,
                 "signal '" + send.signal->name() + "' from '" + part.name() +
                     "." + send.port + "' arrives at '" + dest.part->name() +
                     "." + dest.port->name() + "' but '" + dest_type->name() +
                     "' has no transition consuming it");
      }

      const auto it = part_index.find(dest.part);
      if (it != part_index.end()) edges[i].insert(it->second);
    }
  }

  // Activation closure: spontaneous processes (timers, completions,
  // initial sends, environment input) activate whatever they send to.
  std::vector<bool> activated(parts.size(), false);
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const uml::Class* type = parts[i]->part_type();
    const uml::StateMachine* sm = type != nullptr ? type->behavior() : nullptr;
    if (env_fed[i] || (sm != nullptr && machine_spontaneous(*sm))) {
      activated[i] = true;
      work.push_back(i);
    }
  }
  while (!work.empty()) {
    const std::size_t i = work.back();
    work.pop_back();
    for (const std::size_t j : edges[i]) {
      if (!activated[j]) {
        activated[j] = true;
        work.push_back(j);
      }
    }
  }

  // Unactivated processes: those on a cycle of mutual waiting are a
  // potential deadlock; the rest simply starve.
  const auto reaches = [&edges](std::size_t from, std::size_t to,
                                const std::vector<bool>& activated_) {
    std::vector<std::size_t> stack{from};
    std::set<std::size_t> seen{from};
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      for (const std::size_t j : edges[i]) {
        if (activated_[j]) continue;
        if (j == to) return true;
        if (seen.insert(j).second) stack.push_back(j);
      }
    }
    return false;
  };

  std::set<std::size_t> in_reported_cycle;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (activated[i] || in_reported_cycle.count(i) != 0) continue;
    if (reaches(i, i, activated)) {
      // Gather the cycle members (mutually reachable, unactivated).
      std::string members = "'" + parts[i]->name() + "'";
      in_reported_cycle.insert(i);
      for (std::size_t j = i + 1; j < parts.size(); ++j) {
        if (activated[j] || in_reported_cycle.count(j) != 0) continue;
        if (reaches(i, j, activated) && reaches(j, i, activated)) {
          members += ", '" + parts[j]->name() + "'";
          in_reported_cycle.insert(j);
        }
      }
      ctx.diag(Severity::Warning, "flow.cycle.deadlock", *parts[i],
               "wait-for cycle: " + members +
                   " only ever activate each other; none has a timer, "
                   "completion transition or environment input");
    }
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (activated[i] || in_reported_cycle.count(i) != 0) continue;
    ctx.diag(Severity::Warning, "flow.process.starved", *parts[i],
             "process '" + parts[i]->name() +
                 "' can never be activated: no timer or completion "
                 "transition, and no active process or environment input "
                 "routes a signal to it");
  }
}

}  // namespace tut::analysis::detail
