// analysis::analyze — whole-design static analysis over a TUT-Profile
// model ("tut lint").
//
// Three rule families on top of the core uml/profile validation rules:
//
//  EFSM bytecode analysis (per state machine, over efsm::CompiledMachine /
//  efsm::Program images):
//   - efsm.expr.malformed       expression text fails to lower to bytecode
//   - efsm.state.unreachable    state unreachable from the initial state
//   - efsm.transition.dead      transition shadowed by an earlier
//                               unconditional transition on the same trigger
//   - efsm.trigger.overlap      two transitions share a trigger and an
//                               identical guard (the later can never fire)
//   - efsm.guard.false          constant-folded guard is always false
//   - efsm.var.undefined        expression reads a name that is neither a
//                               declared variable, an assigned variable nor
//                               a trigger parameter (throws at runtime)
//   - efsm.var.read_before_write variable may be read before any path
//                               assigns it (definite-assignment dataflow)
//   - efsm.signal.never_sent    trigger signal no process sends and the
//                               environment cannot inject
//
//  Signal-flow analysis (composite structure + efsm::Router):
//   - flow.hierarchy.ambiguous  the flattening router rejected the model
//   - flow.port.unbound         a send port routes nowhere (signal dropped)
//   - flow.connector.type       routed signal not provided by the
//                               destination port
//   - flow.signal.ignored       routed signal reaches a process whose
//                               machine never consumes it
//   - flow.boundary.unbound     root boundary port connected to no part
//   - flow.process.starved      process has no spontaneous trigger and no
//                               active sender can ever reach it
//   - flow.cycle.deadlock       wait-for cycle: processes that only ever
//                               activate each other
//
//  Mapping/platform analysis (mapping::SystemView + platform topology):
//   - map.group.unmapped        process group with no <<Mapping>>
//   - map.pe.incompatible       group ProcessType vs component Type clash
//   - map.pe.overcommitted      mapped Code+DataMemory exceeds the
//                               instance's IntMemory
//   - plat.segment.unattached   segment with neither wrappers nor bridges
//   - plat.route.missing        communicating processes mapped to PEs with
//                               no segment path between them
//   - map.failover.infeasible   a PE's processes have no compatible
//                               migration target should it fail (info;
//                               error when a fault plan fails that PE)
//   - fault.component.unknown   fault plan names no model component
//
// The analyzer is read-only and total: defective models produce
// diagnostics, never exceptions.
#pragma once

#include <string_view>

#include "analysis/diagnostics.hpp"
#include "sim/fault.hpp"
#include "uml/model.hpp"

namespace tut::analysis {

struct Options {
  bool core = true;     ///< run uml core + TUT-Profile design rules first
  bool efsm = true;     ///< EFSM bytecode family
  bool flow = true;     ///< signal-flow family
  bool mapping = true;  ///< mapping/platform family
  /// Value-range abstract interpretation over the EFSM bytecode (interval
  /// fixpoint per machine); adds the proof-backed rules efsm.guard.dead.
  /// range, efsm.guard.tautology.range, efsm.expr.divzero.possible,
  /// efsm.var.overflow.possible, efsm.timer.nonpositive and range-refined
  /// efsm.state.unreachable / efsm.transition.dead. Requires `efsm`.
  bool absint = true;

  /// Optional fault plan to cross-check (failover feasibility of the PEs it
  /// fails; component-name resolution).
  const sim::FaultPlan* faults = nullptr;

  /// The model's source XML; when set, diagnostics carry byte offsets.
  std::string_view xml_text = {};
};

/// One catalog entry per rule the analyzer can emit.
struct RuleInfo {
  std::string_view id;
  Severity severity;  ///< default severity
  std::string_view summary;
};

/// The full rule catalog, sorted by id (analysis rules only; core rules are
/// documented by uml::Validator / profile::make_validator).
const std::vector<RuleInfo>& rule_catalog();

/// Runs every enabled family and returns the sorted report.
Report analyze(const uml::Model& model, const Options& options = {});

}  // namespace tut::analysis
