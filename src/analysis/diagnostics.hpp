// tut::analysis — diagnostics engine for whole-design static analysis.
//
// The paper's profile exists so that tools can catch design errors before
// simulation ("various stereotypes and strict rules how to use them"). This
// module is the reporting half of that promise: a Diagnostic carries a
// stable rule id, a severity, the offending element's qualified name, and —
// when the model came from XML — the byte offset of the element's start tag
// (resolved through analysis::SourceMap), so editors and CI annotations can
// jump straight to the defect. A Report aggregates diagnostics, renders
// them as text or JSON, and applies a Baseline (a checked-in suppression
// file) so a legacy design can adopt the analyzer incrementally.
//
// The shape deliberately extends uml::ValidationResult (severity, rule,
// element, message) rather than replacing it: core well-formedness findings
// merge into a Report unchanged, gaining offsets where resolvable.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "uml/validation.hpp"

namespace tut::analysis {

using uml::Severity;

/// One analysis finding. `offset` is the byte position of the element's
/// start tag in the source XML (-1 when the model was built in memory or
/// the element could not be located).
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;     ///< stable id, e.g. "efsm.state.unreachable"
  std::string element;  ///< qualified name ("" for model-level findings)
  std::string message;
  long offset = -1;
  bool suppressed = false;  ///< matched by the active baseline

  /// "error [rule] element @byte: message" (offset and element elided when
  /// absent; "(baseline)" appended when suppressed).
  std::string to_text() const;
};

/// A baseline (suppression) file: one "rule<TAB>element" pair per line,
/// '#' comments and blank lines ignored. Matching diagnostics are kept in
/// the report but excluded from the error/warning counts and the exit code.
class Baseline {
 public:
  static Baseline parse(std::string_view text);

  bool matches(const Diagnostic& d) const {
    return entries_.count({d.rule, d.element}) != 0;
  }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Serializes every non-suppressed diagnostic of `diags` as a baseline
  /// file (sorted, deduplicated) — the `--write-baseline` payload.
  static std::string from_diagnostics(const std::vector<Diagnostic>& diags);

  /// Entries that match none of `diags` (suppressed or not): stale
  /// suppressions whose finding has since been fixed. Sorted by
  /// (rule, element). A bare-rule entry is stale only when no diagnostic
  /// of that rule remains at all.
  std::vector<std::pair<std::string, std::string>> stale_against(
      const std::vector<Diagnostic>& diags) const;

 private:
  std::set<std::pair<std::string, std::string>> entries_;
};

/// An analysis run's findings.
class Report {
 public:
  void add(Severity severity, std::string rule, std::string element,
           std::string message, long offset = -1);

  /// Folds a core validation result in; `resolve` maps a qualified element
  /// name to its byte offset (may be empty).
  void merge(const uml::ValidationResult& result,
             const std::function<long(const std::string&)>& resolve = {});

  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }

  /// Marks every baseline-matched diagnostic as suppressed.
  void apply_baseline(const Baseline& baseline);

  /// Keeps only diagnostics whose rule id satisfies `keep` — the
  /// `--rules` filter. Counts and renderings reflect the filtered set.
  void filter_rules(const std::function<bool(const std::string&)>& keep);

  /// Stable presentation order: byte offset, then rule, then element
  /// (unknown offsets last, in insertion order among themselves).
  void sort();

  // Suppressed diagnostics never count.
  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  std::size_t info_count() const noexcept;
  std::size_t suppressed_count() const noexcept;

  /// True when nothing blocks: no errors, and no warnings when `werror`.
  bool ok(bool werror = false) const noexcept {
    return error_count() == 0 && (!werror || warning_count() == 0);
  }

  /// One line per diagnostic plus a summary line.
  std::string to_text() const;
  /// Machine-readable rendering:
  /// {"diagnostics":[...],"errors":N,"warnings":N,"infos":N,"suppressed":N}
  std::string to_json() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Appends `s` to `out` as a JSON string literal (quotes included).
void json_escape(std::string& out, std::string_view s);

}  // namespace tut::analysis
