#include "analysis/analyzer.hpp"

#include <memory>

#include "analysis/internal.hpp"
#include "profile/tut_profile.hpp"

namespace tut::analysis {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"analysis.baseline.stale", Severity::Warning,
       "baseline entry matches no current finding (stale suppression)"},
      {"analysis.view.failed", Severity::Error,
       "the combined application/platform/mapping view cannot be built"},
      {"efsm.expr.divzero.possible", Severity::Warning,
       "divisor's reachable value range includes 0"},
      {"efsm.expr.malformed", Severity::Error,
       "expression text fails to lower to bytecode"},
      {"efsm.guard.dead.range", Severity::Warning,
       "guard is false for every reachable variable valuation"},
      {"efsm.guard.false", Severity::Warning,
       "constant-folded guard is always false"},
      {"efsm.guard.tautology.range", Severity::Info,
       "guard is true for every reachable variable valuation"},
      {"efsm.signal.never_sent", Severity::Warning,
       "trigger signal is never sent and cannot be injected"},
      {"efsm.state.unreachable", Severity::Warning,
       "state unreachable from the initial state"},
      {"efsm.timer.nonpositive", Severity::Warning,
       "timer armed with a provably non-positive delay"},
      {"efsm.transition.dead", Severity::Warning,
       "transition shadowed by an earlier unconditional transition"},
      {"efsm.trigger.overlap", Severity::Warning,
       "same trigger and identical guard as an earlier transition"},
      {"efsm.var.overflow.possible", Severity::Warning,
       "arithmetic may leave the representable integer range"},
      {"efsm.var.read_before_write", Severity::Warning,
       "variable may be read before any path assigns it"},
      {"efsm.var.undefined", Severity::Error,
       "expression reads a name no declaration, assignment or trigger "
       "parameter defines"},
      {"fault.component.unknown", Severity::Error,
       "fault plan names no component of the model"},
      {"flow.boundary.unbound", Severity::Warning,
       "root boundary port connected to no part"},
      {"flow.connector.type", Severity::Error,
       "routed signal not provided by the destination port"},
      {"flow.cycle.deadlock", Severity::Warning,
       "wait-for cycle among non-spontaneous processes"},
      {"flow.hierarchy.ambiguous", Severity::Error,
       "composite structure cannot be flattened for routing"},
      {"flow.port.unbound", Severity::Warning,
       "send port routes nowhere; the signal is dropped"},
      {"flow.process.starved", Severity::Warning,
       "process can never be activated"},
      {"flow.signal.ignored", Severity::Warning,
       "routed signal reaches a process that never consumes it"},
      {"map.failover.infeasible", Severity::Info,
       "a PE's processes have no compatible migration target"},
      {"map.group.unmapped", Severity::Error,
       "process group has no <<Mapping>> dependency"},
      {"map.pe.incompatible", Severity::Error,
       "group ProcessType incompatible with the target component Type"},
      {"map.pe.overcommitted", Severity::Warning,
       "mapped Code+DataMemory exceeds the instance's IntMemory"},
      {"plat.route.missing", Severity::Error,
       "communicating PEs have no segment path"},
      {"plat.segment.unattached", Severity::Warning,
       "segment has neither wrappers nor bridge links"},
  };
  return catalog;
}

Report analyze(const uml::Model& model, const Options& options) {
  Report report;

  SourceMap smap;
  const bool have_offsets = !options.xml_text.empty();
  if (have_offsets) smap = SourceMap::build(options.xml_text);

  if (options.core) {
    // Qualified-name -> offset for the core rules, which only report names.
    std::map<std::string, long> by_name;
    if (have_offsets) {
      for (const auto& elem : model.elements()) {
        by_name.emplace(elem->qualified_name(), smap.offset_of(elem->id()));
      }
    }
    const uml::ValidationResult core = profile::make_validator().run(model);
    report.merge(core, [&by_name](const std::string& qn) -> long {
      const auto it = by_name.find(qn);
      return it == by_name.end() ? -1 : it->second;
    });
  }

  detail::Context ctx{model, nullptr, nullptr,
                      have_offsets ? &smap : nullptr, &report,
                      options.absint};

  // The combined view never throws on well-formed metadata, but a hostile
  // model (e.g. grouping cycles hand-written in XML) must degrade to
  // diagnostics, not exceptions.
  std::unique_ptr<mapping::SystemView> sys;
  try {
    sys = std::make_unique<mapping::SystemView>(model);
    ctx.sys = sys.get();
  } catch (const std::exception& e) {
    report.add(Severity::Error, "analysis.view.failed", model.qualified_name(),
               std::string("cannot build the combined system view: ") +
                   e.what());
  }

  std::unique_ptr<efsm::Router> router;
  if (ctx.sys != nullptr && ctx.sys->app().application() != nullptr) {
    try {
      router = std::make_unique<efsm::Router>(*ctx.sys->app().application());
      ctx.router = router.get();
    } catch (const std::exception& e) {
      ctx.diag(Severity::Error, "flow.hierarchy.ambiguous",
               *ctx.sys->app().application(), e.what());
    }
  }

  if (options.efsm) detail::run_efsm_rules(ctx);
  if (options.flow) detail::run_flow_rules(ctx);
  if (options.mapping) detail::run_mapping_rules(ctx, options.faults);

  report.sort();
  return report;
}

}  // namespace tut::analysis
