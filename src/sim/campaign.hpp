// sim::Campaign — scenario-sweep campaigns: 1e5+ runs over one compiled
// image with streaming aggregation and sharded, resumable execution.
//
// BatchRunner executes a hand-listed vector of scenarios and returns one
// result per run; that shape cannot reach the ROADMAP's 1e5–1e7 scenario
// campaigns. A campaign instead describes its runs as a *sweep*: axes over
// seeds, horizons, fault plans, mappings and free traffic parameters,
// combined cartesian or zipped. Scenario i is materialized on demand from
// its index (CampaignSpec::scenario is a pure function of i — nothing is
// ever expanded into a stored list), executed on a per-thread reusable run
// context (Simulation::reset over the shared CompiledModel, so per-run cost
// excludes construction), and reduced *streamingly*: a per-scenario FNV-1a
// digest plus a compact summary feed campaign totals and P² percentile
// sketches, and the full log is released before the next run claims the
// context. Resident log memory is O(threads), never O(scenarios).
//
// Determinism is the contract everything else leans on:
//  - scenario(i) is pure in i; per-scenario fault seeds come from a
//    splitmix64 draw keyed on (base seed, seed-axis value, i);
//  - reduction happens in scenario-index order behind a reorder buffer, so
//    digests and sketches are byte-identical across any thread count;
//  - shards cover contiguous index ranges and record their per-scenario
//    summaries; merging replays them in global index order through the same
//    reduction, so merged output is byte-identical to a single-process run;
//  - checkpoints snapshot the reduction state at index boundaries, so a
//    killed campaign resumes to byte-identical final aggregates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/backend.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"

namespace tut::sim {

// ---------------------------------------------------------------------------
// Streaming aggregation
// ---------------------------------------------------------------------------

/// P² quantile sketch (Jain & Chlamtac 1985): an O(1)-memory running
/// estimate of one quantile over a stream. The update is order-dependent,
/// which the campaign reducer turns into a feature: samples are always fed
/// in scenario-index order, so the sketch state — and its serialized bytes —
/// are invariant across thread counts, shards and resume.
class P2Quantile {
 public:
  /// Sketch for the `p`-quantile (0 < p < 1).
  explicit P2Quantile(double p);

  void add(double sample);
  /// Current estimate. Exact while fewer than 5 samples were seen.
  double value() const;
  std::uint64_t count() const noexcept { return count_; }

  /// Appends the exact state (doubles as bit patterns) for checkpoints and
  /// byte-identity assertions.
  void serialize(std::string& out) const;
  /// Reads state back from a serialize() blob, advancing `cursor`. Throws
  /// std::invalid_argument ("[campaign.checkpoint.corrupt]") on truncation.
  static P2Quantile deserialize(std::string_view bytes, std::size_t& cursor);

 private:
  double parabolic(int i, double d) const;
  double linear(int i, int d) const;

  double p_;
  std::uint64_t count_ = 0;
  double q_[5] = {0, 0, 0, 0, 0};   ///< marker heights
  double n_[5] = {0, 0, 0, 0, 0};   ///< marker positions (exact integers)
  double np_[5] = {0, 0, 0, 0, 0};  ///< desired positions
  double dn_[5] = {0, 0, 0, 0, 0};  ///< desired-position increments
};

/// What one scenario leaves behind: a canonical log digest plus the summary
/// numbers the campaign aggregates. Fixed 96-byte layout in shard part
/// files. `error != 0` marks a failed run (defective plan, diverging EFSM);
/// its other fields are zero.
struct ScenarioSummary {
  std::uint64_t index = 0;
  std::uint64_t digest = 0;
  std::uint64_t events = 0;   ///< kernel events dispatched
  std::uint64_t records = 0;  ///< log records
  Time makespan = 0;          ///< time of the last log record
  std::uint64_t drops = 0;    ///< Drop records
  std::uint64_t retries = 0;  ///< Retry records
  Time seg_wait = 0;          ///< total segment grant-queue waiting
  std::uint64_t seg_grants = 0;
  std::uint64_t error = 0;
  /// Compile-backend provenance: the BackendImage content hash that ran the
  /// scenario, 0 for the bytecode interpreter. Excluded from the campaign
  /// digest by design — a backend swap must leave digests untouched, and
  /// this field is how an A/B run proves which backend produced them.
  std::uint64_t backend = 0;
  /// RejectionCode as one word: non-zero iff the scenario died on a resource
  /// envelope ([envelope.*], a classified rejection) rather than a model
  /// defect. Like `backend`, excluded from the campaign digest — the
  /// deterministic EnvelopeError message already hashes into `error`.
  std::uint64_t rejection = 0;
};

/// Canonical FNV-1a digest of a simulation log. Hashes the rendered text —
/// the *names* behind the interned ids, never the id values — so a reusable
/// context's persistent name table cannot leak into the digest. Two logs
/// digest equal iff their rendered text is equal.
std::uint64_t log_digest(const SimulationLog& log);
/// Same digest through a caller-owned scratch buffer: the render reuses
/// `scratch`'s capacity, keeping per-run digesting allocation-free.
std::uint64_t log_digest(const SimulationLog& log, std::string& scratch);

/// The campaign-level reduction state. add() must be called in scenario
/// index order (the runner and the shard merger guarantee it); serialize()
/// is byte-exact, so equal campaigns compare equal as strings.
struct CampaignAggregate {
  std::uint64_t scenarios = 0;
  std::uint64_t errors = 0;
  /// Classified envelope rejections (a subset of `errors`): total plus the
  /// per-ceiling split. One scenario hitting its envelope never corrupts
  /// the aggregate of the rest — it is counted here and in the digest (via
  /// its deterministic error hash) and contributes nothing else.
  std::uint64_t rejected = 0;
  std::uint64_t rejected_log = 0;    ///< [envelope.log.overflow]
  std::uint64_t rejected_queue = 0;  ///< [envelope.queue.full]
  std::uint64_t rejected_other = 0;  ///< arena / concurrency / unknown
  /// Rolling FNV-1a over (index, digest) pairs in index order.
  std::uint64_t digest = 0xcbf29ce484222325ull;
  std::uint64_t events = 0;
  std::uint64_t records = 0;
  std::uint64_t drops = 0;
  std::uint64_t retries = 0;
  Time makespan_min = 0;
  Time makespan_max = 0;
  P2Quantile makespan_p50{0.5}, makespan_p90{0.9}, makespan_p99{0.99};
  /// Latency metric: per-scenario mean segment grant-queue wait in ticks.
  P2Quantile latency_p50{0.5}, latency_p90{0.9}, latency_p99{0.99};

  void add(const ScenarioSummary& s);
  std::string serialize() const;
  static CampaignAggregate deserialize(std::string_view bytes);
  /// Human-readable summary block (CLI output).
  std::string to_text() const;
};

// ---------------------------------------------------------------------------
// Sweep grammar
// ---------------------------------------------------------------------------

/// One sweep dimension. Axis names "seed", "horizon", "plan" and "mapping"
/// are interpreted by the campaign machinery (see CampaignSpec::scenario);
/// any other name is a free parameter handed to the setup callback (traffic
/// periods, burst sizes, ...).
struct CampaignAxis {
  std::string name;
  std::vector<long> values;
};

/// One materialized run of the sweep. `params` views the spec's axis names;
/// the spec must outlive the scenario (the runner materializes on demand and
/// discards, so this never constrains callers in practice).
struct Scenario {
  std::uint64_t index = 0;
  Config config;           ///< base config + horizon/plan/seed axis values
  std::uint32_t image = 0; ///< mapping-axis choice among the runner's images
  std::vector<std::pair<const std::string*, long>> params;

  /// Value of a free parameter, or `fallback` when the sweep has no such
  /// axis.
  long param(std::string_view name, long fallback) const;
};

/// A scenario sweep: what to run, never materialized as a list.
class CampaignSpec {
 public:
  enum class Mode { Cartesian, Zip };

  std::string name = "campaign";
  Mode mode = Mode::Cartesian;
  /// Per-run configuration before axis substitution.
  Config base;
  /// Campaign seed: per-scenario fault seeds are
  /// FaultRng::draw(base_seed, seed-axis value, scenario index).
  std::uint64_t base_seed = 1;
  std::vector<CampaignAxis> axes;
  /// Fault plans the "plan" axis indexes. Entry 0 is always the empty plan
  /// ("none").
  std::vector<std::pair<std::string, FaultPlan>> plans = {
      {"none", FaultPlan{}}};
  /// Mapping names the "mapping" axis indexes; the runner's images must be
  /// built in this order. Empty when the campaign sweeps no mappings.
  std::vector<std::string> mapping_names;

  /// Structural validation. Returns one "[campaign.*]"-tagged message per
  /// defect; empty when the sweep is well-formed.
  std::vector<std::string> validate() const;

  /// Number of scenarios: the product of axis sizes (cartesian) or their
  /// common length (zip).
  std::uint64_t total() const;

  /// Materializes scenario `index` — a pure function of the index (the
  /// lazy-expansion contract sharding and resume rely on). Cartesian order
  /// is row-major with the last axis fastest.
  Scenario scenario(std::uint64_t index) const;

  /// Stable hash over the whole sweep definition. Checkpoints and shard
  /// part files embed it so resuming or merging a *different* campaign is
  /// rejected instead of silently blending results.
  std::uint64_t fingerprint() const;

  /// Reads referenced fault-plan files for the XML loader (path → content).
  using FileReader = std::function<std::string(const std::string& file)>;

  /// Parses the `tut:campaign` XML form:
  ///
  ///   <tut:campaign name="sweep" mode="cartesian" seed="1"
  ///                 horizon="5000000">
  ///     <plan name="burst" file="plans/burst.xml"/>
  ///     <axis name="seed" count="1000"/>
  ///     <axis name="slotPeriod" values="50000 100000"/>
  ///     <axis name="rxPeriod" from="500000" step="250000" count="3"/>
  ///     <axis name="plan" values="none burst"/>
  ///     <axis name="mapping" values="paper singlePe"/>
  ///   </tut:campaign>
  ///
  /// Numeric axes take `values` (whitespace-separated) or from/step/count;
  /// the "plan" and "mapping" axes take names. Throws xml::ParseError on
  /// malformed XML and std::invalid_argument with a "[campaign.*]" rule tag
  /// on every other defect ([campaign.sweep.empty], [campaign.ref.unknown],
  /// [campaign.axis.malformed], [campaign.axis.duplicate],
  /// [campaign.zip.length], [campaign.mode.unknown],
  /// [campaign.plan.unreadable], [campaign.element.unknown]).
  ///
  /// `arena_limit` caps the parse arena in bytes (0 = unbounded); a spec
  /// that overflows it throws xml::ArenaLimitError tagged
  /// [envelope.arena.exhausted].
  static CampaignSpec from_xml_text(std::string_view text,
                                    const FileReader& read_file = {},
                                    std::size_t arena_limit = 0);
};

// ---------------------------------------------------------------------------
// Campaign runner
// ---------------------------------------------------------------------------

/// Contiguous shard `index` of `count`: this process runs scenario range
/// [total*index/count, total*(index+1)/count).
struct CampaignShard {
  std::uint32_t index = 0;
  std::uint32_t count = 1;
};

struct CampaignOptions {
  /// Worker threads; 0 resolves to std::thread::hardware_concurrency().
  std::size_t threads = 0;
  CampaignShard shard;
  /// When non-empty, the reduction state is checkpointed here every
  /// `checkpoint_every` in-order completions (atomic tmp+rename), and
  /// `resume` restarts from it.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 1024;
  bool resume = false;
  /// When non-empty, every in-order summary is appended to this shard part
  /// file (88 bytes per scenario) for a later merge_campaign_parts().
  std::string samples_path;
  /// Test hook: stop claiming once the in-order prefix reaches this many
  /// completions (simulates a kill). 0 = run to the end of the shard.
  std::uint64_t stop_after = 0;
  /// Streaming observer, called in scenario-index order under the reducer
  /// lock. Keep it cheap.
  std::function<void(const ScenarioSummary&)> on_summary;
  /// Resource envelope for the whole campaign: simulation caps are stamped
  /// into every scenario's config (spill path cleared — workers never share
  /// a spill file), `concurrency` clamps the worker count (surfaced as an
  /// [envelope.concurrency.capped] note), and `reorder_depth` bounds how
  /// far workers may claim ahead of the in-order commit frontier. Semantic
  /// lock: an in-envelope campaign digests byte-identical to an unbounded
  /// one; profile caps *do* enter the checkpoint/part fingerprint so
  /// artifacts from different envelopes never blend.
  ResourceProfile profile;
};

struct CampaignResult {
  CampaignAggregate aggregate;
  std::uint64_t first = 0;  ///< shard range start
  std::uint64_t end = 0;    ///< shard range end (exclusive)
  std::uint64_t next = 0;   ///< in-order prefix reached; == end when done
  bool completed = true;
  double wall_seconds = 0;
  /// Human-readable envelope notes (e.g. "[envelope.concurrency.capped]
  /// ..."). Advisory only — never part of the aggregate or its digest.
  std::vector<std::string> notes;
};

/// Executes campaigns over one or more shared compiled images (one per
/// mapping-axis value). The setup callback injects the scenario's workload
/// into the (reset) simulation; it runs concurrently on worker threads and
/// must only touch the passed Simulation and read-only state.
class CampaignRunner {
 public:
  using Setup = std::function<void(Simulation&, const Scenario&)>;

  CampaignRunner(std::vector<std::shared_ptr<const CompiledModel>> images,
                 Setup setup);

  /// Same campaign through generated behaviour images (one per mapping, in
  /// mapping_names order — e.g. codegen::NativeImage). Aggregates and
  /// digests are byte-identical to the interpreter runner's; only
  /// ScenarioSummary::backend records the difference.
  CampaignRunner(std::vector<std::shared_ptr<const BackendImage>> backends,
                 Setup setup);

  /// Runs the spec's scenarios (this shard's contiguous range), reducing in
  /// index order. Throws std::invalid_argument on spec defects (the
  /// combined "[campaign.*]" messages) and std::runtime_error on checkpoint
  /// or part-file I/O problems.
  CampaignResult run(const CampaignSpec& spec,
                     const CampaignOptions& options = {}) const;

 private:
  std::vector<std::shared_ptr<const CompiledModel>> images_;
  std::vector<std::shared_ptr<const BackendImage>> backends_;  ///< may be empty
  Setup setup_;
};

/// Exact size in bytes of a shard part file covering `scenarios` summaries
/// (tutpart3 header + one fixed-size record each) — the `tut campaign
/// --dry-run` preflight quotes it before anything runs.
std::uint64_t part_file_bytes(std::uint64_t scenarios) noexcept;

/// Merges shard part files covering [0, total) into the aggregate a
/// single-process run of the same campaign produces — byte-identical,
/// because the summaries replay through the same in-order reduction. Throws
/// std::runtime_error with "[campaign.part.*]" tags on missing files,
/// fingerprint mismatches, or gaps in coverage.
CampaignResult merge_campaign_parts(const std::vector<std::string>& paths);

}  // namespace tut::sim
