#include "sim/kernel.hpp"

#include <stdexcept>

namespace tut::sim {

void Kernel::schedule_at(Time at, Handler fn) {
  if (at < now_) {
    throw std::logic_error("cannot schedule an event in the past");
  }
  queue_.push(Entry{at, next_seq_++, std::move(fn)});
}

std::uint64_t Kernel::run(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().at <= horizon) {
    // Move the handler out before popping so it may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.at;
    entry.fn();
    ++count;
    ++dispatched_;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

}  // namespace tut::sim
