#include "sim/kernel.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "sim/resource.hpp"

namespace tut::sim {

void Kernel::schedule_at(Time at, Handler fn) {
  assert(at >= now_ && "schedule_at: event time precedes kernel now()");
  if (at < now_) {
    throw std::logic_error("cannot schedule an event in the past (at=" +
                           std::to_string(at) +
                           ", now=" + std::to_string(now_) + ")");
  }
  if (capacity_ != 0 && pending() >= capacity_) {
    throw EnvelopeError("envelope.queue.full", now_,
                        "event queue reached its envelope of " +
                            std::to_string(capacity_) + " pending events");
  }
  if (at == now_) {
    // Due immediately: FIFO bucket, no heap traffic. Anything already in the
    // heap at this time carries a smaller seq and is served first by run().
    bucket_.push_back(std::move(fn));
    return;
  }
  heap_.push_back(Entry{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

std::uint64_t Kernel::run(Time horizon) {
  std::uint64_t count = 0;
  while (now_ <= horizon) {
    if (!heap_.empty() && heap_.front().at <= now_) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Handler fn = std::move(heap_.back().fn);
      heap_.pop_back();
      fn();
    } else if (!bucket_.empty()) {
      Handler fn = std::move(bucket_.front());
      bucket_.pop_front();
      fn();
    } else if (!heap_.empty() && heap_.front().at <= horizon) {
      now_ = heap_.front().at;
      continue;
    } else {
      break;
    }
    ++count;
    ++dispatched_;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

}  // namespace tut::sim
