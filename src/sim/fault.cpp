#include "sim/fault.hpp"

#include <charconv>
#include <stdexcept>
#include <type_traits>

#include "xml/arena.hpp"
#include "xml/cursor.hpp"
#include "xml/xml.hpp"

namespace tut::sim {

namespace {

template <typename T>
T number_attr(const xml::Cursor& cur, std::string_view key, T fallback) {
  const auto v = cur.attr(key);
  if (!v) return fallback;
  // from_chars would reject "-5" for an unsigned target with the same
  // generic error as garbage; times and rates deserve the specific story.
  if constexpr (std::is_unsigned_v<T>) {
    if (!v->empty() && v->front() == '-') {
      throw std::invalid_argument(
          "faultplan: [fault.time.negative] attribute '" + std::string(key) +
          "' must be non-negative: '" + std::string(*v) + "'");
    }
  }
  T n{};
  const auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), n);
  if (ec != std::errc{} || p != v->data() + v->size()) {
    throw std::invalid_argument(
        "faultplan: [fault.attr.malformed] attribute '" + std::string(key) +
        "' is not a number: '" + std::string(*v) + "'");
  }
  return n;
}

std::string string_attr(const xml::Cursor& cur, std::string_view key) {
  const auto v = cur.attr(key);
  return v ? std::string(*v) : std::string();
}

}  // namespace

// Messages carry a stable "[rule]" tag so callers (CLI errors, the analysis
// layer, CI logs) can match defects without parsing prose.
std::vector<std::string> FaultPlan::validate() const {
  std::vector<std::string> defects;
  const auto check_window = [&](const char* what, const FaultWindow& w) {
    if (w.component.empty()) {
      defects.push_back(std::string("[fault.component.missing] ") + what +
                        " fault has no component name");
    }
    if (w.end != 0 && w.end <= w.start) {
      defects.push_back(std::string("[fault.window.order] ") + what +
                        " fault on '" + w.component +
                        "' has end <= start (use end=0 for a permanent fault)");
    }
  };
  for (const FaultWindow& w : pe_faults) check_window("PE", w);
  for (const FaultWindow& w : segment_faults) check_window("segment", w);
  for (const BitErrorSpec& b : bit_errors) {
    if (b.segment.empty()) {
      defects.push_back("[fault.component.missing] bit-error spec has no "
                        "segment name");
    }
    if (b.rate_ppm > 1'000'000) {
      defects.push_back("[fault.biterror.rate] bit-error rate on '" +
                        b.segment + "' exceeds 1000000 ppm");
    }
  }
  for (const SignalFault& s : signal_faults) {
    if (s.process.empty()) {
      defects.push_back("[fault.component.missing] signal fault has no "
                        "process name");
    }
    if (s.kind == SignalFault::Kind::Stuck && s.end <= s.start) {
      defects.push_back("[fault.signal.window] stuck-signal fault on '" +
                        s.process +
                        "' needs a finite window (end > start)");
    }
    if (s.kind == SignalFault::Kind::Lost && s.end != 0 && s.end <= s.start) {
      defects.push_back("[fault.window.order] lost-signal fault on '" +
                        s.process +
                        "' has end <= start (use end=0 for permanent loss)");
    }
  }
  if (max_retries < 0) {
    defects.push_back("[fault.retry.bounds] max_retries must be >= 0");
  }
  if (retry_backoff == 0 && (max_retries > 0)) {
    defects.push_back("[fault.retry.bounds] retry_backoff must be > 0 when "
                      "retries are enabled");
  }
  return defects;
}

std::string FaultPlan::to_xml_text() const {
  xml::Writer w(512);
  w.declaration();
  w.open("tut:faultplan");
  w.attr("seed", std::to_string(seed));
  if (watchdog_timeout != 0) {
    w.attr("watchdogTimeout", std::to_string(watchdog_timeout));
  }
  w.attr("maxRetries", std::to_string(max_retries));
  w.attr("retryBackoff", std::to_string(retry_backoff));
  const auto write_window = [&w](const char* tag, const FaultWindow& win) {
    w.open(tag);
    w.attr("component", win.component);
    w.attr("start", std::to_string(win.start));
    if (win.end != 0) w.attr("end", std::to_string(win.end));
    w.close();
  };
  for (const FaultWindow& win : pe_faults) write_window("peFault", win);
  for (const FaultWindow& win : segment_faults) {
    write_window("segmentFault", win);
  }
  for (const BitErrorSpec& b : bit_errors) {
    w.open("bitError");
    w.attr("segment", b.segment);
    w.attr("ratePpm", std::to_string(b.rate_ppm));
    w.close();
  }
  for (const SignalFault& s : signal_faults) {
    w.open("signalFault");
    w.attr("process", s.process);
    if (!s.signal.empty()) w.attr("signal", s.signal);
    w.attr("kind", s.kind == SignalFault::Kind::Stuck ? "stuck" : "lost");
    w.attr("start", std::to_string(s.start));
    if (s.end != 0) w.attr("end", std::to_string(s.end));
    w.close();
  }
  return w.take();
}

FaultPlan FaultPlan::from_xml_text(std::string_view text) {
  FaultPlan plan;
  xml::Arena arena;
  xml::Cursor cur(text, arena);
  if (cur.next() != xml::Cursor::Event::StartElement ||
      cur.name() != "tut:faultplan") {
    throw std::invalid_argument("faultplan: root element must be "
                                "<tut:faultplan>");
  }
  plan.seed = number_attr<std::uint64_t>(cur, "seed", 1);
  plan.watchdog_timeout = number_attr<Time>(cur, "watchdogTimeout", 0);
  plan.max_retries = number_attr<int>(cur, "maxRetries", 4);
  plan.retry_backoff = number_attr<Time>(cur, "retryBackoff", 200);

  for (auto ev = cur.next(); ev != xml::Cursor::Event::End; ev = cur.next()) {
    if (ev == xml::Cursor::Event::Text || ev == xml::Cursor::Event::EndElement) {
      continue;
    }
    const std::string_view name = cur.name();
    if (name == "peFault" || name == "segmentFault") {
      FaultWindow win;
      win.component = string_attr(cur, "component");
      win.start = number_attr<Time>(cur, "start", 0);
      win.end = number_attr<Time>(cur, "end", 0);
      (name == "peFault" ? plan.pe_faults : plan.segment_faults)
          .push_back(std::move(win));
    } else if (name == "bitError") {
      BitErrorSpec b;
      b.segment = string_attr(cur, "segment");
      b.rate_ppm = number_attr<std::uint32_t>(cur, "ratePpm", 0);
      plan.bit_errors.push_back(std::move(b));
    } else if (name == "signalFault") {
      SignalFault s;
      s.process = string_attr(cur, "process");
      s.signal = string_attr(cur, "signal");
      const std::string kind = string_attr(cur, "kind");
      if (kind == "stuck") {
        s.kind = SignalFault::Kind::Stuck;
      } else if (kind == "lost" || kind.empty()) {
        s.kind = SignalFault::Kind::Lost;
      } else {
        throw std::invalid_argument("faultplan: unknown signal fault kind '" +
                                    kind + "'");
      }
      s.start = number_attr<Time>(cur, "start", 0);
      s.end = number_attr<Time>(cur, "end", 0);
      plan.signal_faults.push_back(std::move(s));
    } else {
      throw std::invalid_argument("faultplan: unknown element <" +
                                  std::string(name) + ">");
    }
  }

  const std::vector<std::string> defects = plan.validate();
  if (!defects.empty()) {
    std::string msg = "faultplan: invalid plan:";
    for (const std::string& d : defects) msg += "\n  - " + d;
    throw std::invalid_argument(msg);
  }
  return plan;
}

}  // namespace tut::sim
