#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "xml/arena.hpp"
#include "xml/cursor.hpp"

namespace tut::sim {

namespace {

// ---------------------------------------------------------------------------
// Bytes and hashes
// ---------------------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Incremental FNV-1a accumulator; every campaign hash (log digest, spec
/// fingerprint, rolling aggregate digest) goes through this one definition.
struct Fnv {
  std::uint64_t h = kFnvOffset;
  void bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  }
  void str(std::string_view s) noexcept {
    bytes(s.data(), s.size());
    h = (h ^ 0xffu) * kFnvPrime;  // length delimiter: "ab"+"c" != "a"+"bc"
  }
  void u64(std::uint64_t v) noexcept {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, 8);
  }
};

// Serialized integers are explicit little-endian so checkpoints, part files
// and sketch blobs compare byte-equal across hosts.
void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}

std::uint64_t take_u64(std::string_view bytes, std::size_t& cursor) {
  if (cursor + 8 > bytes.size()) {
    throw std::invalid_argument(
        "campaign: [campaign.checkpoint.corrupt] truncated binary blob");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[cursor + i]))
         << (8 * i);
  }
  cursor += 8;
  return v;
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

double take_f64(std::string_view bytes, std::size_t& cursor) {
  const std::uint64_t bits = take_u64(bytes, cursor);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void append_double(std::string& out, double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%.6g", v);
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

// ---------------------------------------------------------------------------
// P² quantile sketch
// ---------------------------------------------------------------------------

P2Quantile::P2Quantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument(
        "campaign: [campaign.quantile.range] P2Quantile needs 0 < p < 1");
  }
  dn_[0] = 0;
  dn_[1] = p / 2;
  dn_[2] = p;
  dn_[3] = (1 + p) / 2;
  dn_[4] = 1;
}

void P2Quantile::add(double sample) {
  if (count_ < 5) {
    q_[count_++] = sample;
    if (count_ == 5) {
      std::sort(q_, q_ + 5);
      for (int i = 0; i < 5; ++i) n_[i] = i;
      np_[0] = 0;
      np_[1] = 2 * p_;
      np_[2] = 4 * p_;
      np_[3] = 2 + 2 * p_;
      np_[4] = 4;
    }
    return;
  }
  ++count_;
  int k;
  if (sample < q_[0]) {
    q_[0] = sample;
    k = 0;
  } else if (sample >= q_[4]) {
    q_[4] = std::max(q_[4], sample);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && sample >= q_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) n_[i] += 1;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1 && n_[i + 1] - n_[i] > 1) ||
        (d <= -1 && n_[i - 1] - n_[i] < -1)) {
      const double s = d >= 0 ? 1 : -1;
      const double cand = parabolic(i, s);
      if (q_[i - 1] < cand && cand < q_[i + 1]) {
        q_[i] = cand;
      } else {
        q_[i] = linear(i, static_cast<int>(s));
      }
      n_[i] += s;
    }
  }
}

double P2Quantile::parabolic(int i, double d) const {
  return q_[i] + d / (n_[i + 1] - n_[i - 1]) *
                     ((n_[i] - n_[i - 1] + d) * (q_[i + 1] - q_[i]) /
                          (n_[i + 1] - n_[i]) +
                      (n_[i + 1] - n_[i] - d) * (q_[i] - q_[i - 1]) /
                          (n_[i] - n_[i - 1]));
}

double P2Quantile::linear(int i, int d) const {
  return q_[i] + d * (q_[i + d] - q_[i]) / (n_[i + d] - n_[i]);
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    double sorted[5];
    std::copy(q_, q_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    // Nearest-rank on the exact samples while the sketch is still exact.
    const auto rank = static_cast<std::size_t>(p_ * (count_ - 1) + 0.5);
    return sorted[std::min<std::size_t>(rank, count_ - 1)];
  }
  return q_[2];
}

void P2Quantile::serialize(std::string& out) const {
  put_f64(out, p_);
  put_u64(out, count_);
  for (const double v : q_) put_f64(out, v);
  for (const double v : n_) put_f64(out, v);
  for (const double v : np_) put_f64(out, v);
}

P2Quantile P2Quantile::deserialize(std::string_view bytes,
                                   std::size_t& cursor) {
  const double p = take_f64(bytes, cursor);
  P2Quantile s(p);
  s.count_ = take_u64(bytes, cursor);
  for (double& v : s.q_) v = take_f64(bytes, cursor);
  for (double& v : s.n_) v = take_f64(bytes, cursor);
  for (double& v : s.np_) v = take_f64(bytes, cursor);
  return s;
}

// ---------------------------------------------------------------------------
// Digest and aggregate
// ---------------------------------------------------------------------------

std::uint64_t log_digest(const SimulationLog& log, std::string& scratch) {
  scratch.clear();
  log.to_text(scratch);
  Fnv f;
  f.bytes(scratch.data(), scratch.size());
  return f.h;
}

std::uint64_t log_digest(const SimulationLog& log) {
  std::string scratch;
  return log_digest(log, scratch);
}

void CampaignAggregate::add(const ScenarioSummary& s) {
  ++scenarios;
  Fnv f;
  f.h = digest;
  f.u64(s.index);
  f.u64(s.digest);
  f.u64(s.error);
  digest = f.h;
  if (s.error != 0) {
    ++errors;
    if (s.rejection != 0) {
      ++rejected;
      switch (static_cast<RejectionCode>(s.rejection)) {
        case RejectionCode::Log:
          ++rejected_log;
          break;
        case RejectionCode::Queue:
          ++rejected_queue;
          break;
        default:
          ++rejected_other;
          break;
      }
    }
    return;
  }
  events += s.events;
  records += s.records;
  drops += s.drops;
  retries += s.retries;
  const std::uint64_t ok = scenarios - errors;
  makespan_min = ok == 1 ? s.makespan : std::min(makespan_min, s.makespan);
  makespan_max = ok == 1 ? s.makespan : std::max(makespan_max, s.makespan);
  const auto makespan = static_cast<double>(s.makespan);
  makespan_p50.add(makespan);
  makespan_p90.add(makespan);
  makespan_p99.add(makespan);
  const double latency =
      s.seg_grants == 0
          ? 0.0
          : static_cast<double>(s.seg_wait) / static_cast<double>(s.seg_grants);
  latency_p50.add(latency);
  latency_p90.add(latency);
  latency_p99.add(latency);
}

std::string CampaignAggregate::serialize() const {
  std::string out;
  put_u64(out, scenarios);
  put_u64(out, errors);
  put_u64(out, digest);
  put_u64(out, events);
  put_u64(out, records);
  put_u64(out, drops);
  put_u64(out, retries);
  put_u64(out, rejected);
  put_u64(out, rejected_log);
  put_u64(out, rejected_queue);
  put_u64(out, rejected_other);
  put_u64(out, makespan_min);
  put_u64(out, makespan_max);
  for (const P2Quantile* s : {&makespan_p50, &makespan_p90, &makespan_p99,
                              &latency_p50, &latency_p90, &latency_p99}) {
    s->serialize(out);
  }
  return out;
}

CampaignAggregate CampaignAggregate::deserialize(std::string_view bytes) {
  CampaignAggregate a;
  std::size_t cur = 0;
  a.scenarios = take_u64(bytes, cur);
  a.errors = take_u64(bytes, cur);
  a.digest = take_u64(bytes, cur);
  a.events = take_u64(bytes, cur);
  a.records = take_u64(bytes, cur);
  a.drops = take_u64(bytes, cur);
  a.retries = take_u64(bytes, cur);
  a.rejected = take_u64(bytes, cur);
  a.rejected_log = take_u64(bytes, cur);
  a.rejected_queue = take_u64(bytes, cur);
  a.rejected_other = take_u64(bytes, cur);
  a.makespan_min = take_u64(bytes, cur);
  a.makespan_max = take_u64(bytes, cur);
  for (P2Quantile* s : {&a.makespan_p50, &a.makespan_p90, &a.makespan_p99,
                        &a.latency_p50, &a.latency_p90, &a.latency_p99}) {
    *s = P2Quantile::deserialize(bytes, cur);
  }
  if (cur != bytes.size()) {
    throw std::invalid_argument(
        "campaign: [campaign.checkpoint.corrupt] trailing bytes in aggregate");
  }
  return a;
}

std::string CampaignAggregate::to_text() const {
  std::string out;
  out += "scenarios: " + std::to_string(scenarios) + " (" +
         std::to_string(errors) + " errors)\n";
  char hex[19];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(digest));
  out += "digest:    " + std::string(hex) + "\n";
  out += "events:    " + std::to_string(events) + "\n";
  out += "records:   " + std::to_string(records) + "\n";
  out += "drops:     " + std::to_string(drops) + "\n";
  out += "retries:   " + std::to_string(retries) + "\n";
  if (rejected != 0) {
    out += "rejected:  " + std::to_string(rejected) + " (log " +
           std::to_string(rejected_log) + ", queue " +
           std::to_string(rejected_queue) + ", other " +
           std::to_string(rejected_other) + ")\n";
  }
  out += "makespan:  min " + std::to_string(makespan_min) + "  p50 ";
  append_double(out, makespan_p50.value());
  out += "  p90 ";
  append_double(out, makespan_p90.value());
  out += "  p99 ";
  append_double(out, makespan_p99.value());
  out += "  max " + std::to_string(makespan_max) + "\n";
  out += "latency:   p50 ";
  append_double(out, latency_p50.value());
  out += "  p90 ";
  append_double(out, latency_p90.value());
  out += "  p99 ";
  append_double(out, latency_p99.value());
  out += "  (mean segment wait per grant, ticks)\n";
  return out;
}

// ---------------------------------------------------------------------------
// Sweep grammar
// ---------------------------------------------------------------------------

long Scenario::param(std::string_view name, long fallback) const {
  for (const auto& [axis, value] : params) {
    if (*axis == name) return value;
  }
  return fallback;
}

namespace {

bool reserved_axis(std::string_view name) {
  return name == "seed" || name == "horizon" || name == "plan" ||
         name == "mapping";
}

}  // namespace

std::vector<std::string> CampaignSpec::validate() const {
  std::vector<std::string> defects;
  if (axes.empty()) {
    defects.push_back("[campaign.sweep.empty] campaign has no axes");
  }
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const CampaignAxis& ax = axes[i];
    if (ax.name.empty()) {
      defects.push_back("[campaign.axis.malformed] axis " + std::to_string(i) +
                        " has no name");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (axes[j].name == ax.name) {
        defects.push_back("[campaign.axis.duplicate] duplicate axis '" +
                          ax.name + "'");
        break;
      }
    }
    if (ax.values.empty()) {
      defects.push_back("[campaign.sweep.empty] axis '" + ax.name +
                        "' has no values");
    }
    for (const long v : ax.values) {
      if (ax.name == "plan" &&
          (v < 0 || static_cast<std::size_t>(v) >= plans.size())) {
        defects.push_back("[campaign.ref.unknown] plan axis value " +
                          std::to_string(v) + " has no matching plan");
        break;
      }
      if (ax.name == "mapping" &&
          (v < 0 || static_cast<std::size_t>(v) >= mapping_names.size())) {
        defects.push_back("[campaign.ref.unknown] mapping axis value " +
                          std::to_string(v) + " has no matching mapping");
        break;
      }
      if (ax.name == "horizon" && v <= 0) {
        defects.push_back(
            "[campaign.axis.malformed] horizon axis values must be > 0");
        break;
      }
      if (ax.name == "seed" && v < 0) {
        defects.push_back(
            "[campaign.axis.malformed] seed axis values must be >= 0");
        break;
      }
    }
  }
  if (mode == Mode::Zip && !axes.empty()) {
    for (const CampaignAxis& ax : axes) {
      if (ax.values.size() != axes.front().values.size()) {
        defects.push_back("[campaign.zip.length] zip axes '" +
                          axes.front().name + "' (" +
                          std::to_string(axes.front().values.size()) +
                          " values) and '" + ax.name + "' (" +
                          std::to_string(ax.values.size()) +
                          " values) differ in length");
        break;
      }
    }
  }
  if (mode == Mode::Cartesian) {
    std::uint64_t total = 1;
    for (const CampaignAxis& ax : axes) {
      const std::uint64_t n = ax.values.size();
      if (n != 0 && total > (std::uint64_t(1) << 62) / n) {
        defects.push_back(
            "[campaign.sweep.overflow] cartesian product exceeds 2^62 "
            "scenarios");
        break;
      }
      total *= std::max<std::uint64_t>(n, 1);
    }
  }
  if (plans.empty()) {
    defects.push_back("[campaign.ref.unknown] plans list must keep entry 0 "
                      "(the empty plan)");
  }
  return defects;
}

std::uint64_t CampaignSpec::total() const {
  if (axes.empty()) return 0;
  if (mode == Mode::Zip) return axes.front().values.size();
  std::uint64_t total = 1;
  for (const CampaignAxis& ax : axes) total *= ax.values.size();
  return total;
}

Scenario CampaignSpec::scenario(std::uint64_t index) const {
  Scenario s;
  s.index = index;
  s.config = base;
  // Axis value indices: zip reads column `index` everywhere; cartesian is
  // row-major with the *last* axis fastest (radix decomposition of index).
  std::uint64_t seed_axis = 0;
  std::size_t plan_idx = std::size_t(-1);
  std::uint64_t rem = index;
  for (std::size_t a = axes.size(); a-- > 0;) {
    const CampaignAxis& ax = axes[a];
    std::uint64_t vi;
    if (mode == Mode::Zip) {
      vi = index;
    } else {
      vi = rem % ax.values.size();
      rem /= ax.values.size();
    }
    const long v = ax.values[vi];
    if (ax.name == "seed") {
      seed_axis = static_cast<std::uint64_t>(v);
    } else if (ax.name == "horizon") {
      s.config.horizon = static_cast<Time>(v);
    } else if (ax.name == "plan") {
      plan_idx = static_cast<std::size_t>(v);
    } else if (ax.name == "mapping") {
      s.image = static_cast<std::uint32_t>(v);
    } else {
      s.params.emplace_back(&ax.name, v);
    }
  }
  // Axes were visited last-to-first for the radix walk; free parameters read
  // better in declaration order.
  std::reverse(s.params.begin(), s.params.end());
  if (plan_idx != std::size_t(-1)) s.config.faults = plans[plan_idx].second;
  // Per-scenario seed: a splitmix64 draw keyed on (campaign seed, seed-axis
  // value, scenario index). Decorrelates scenarios even when the sweep has
  // no seed axis, and keeps scenario(i) pure in i.
  s.config.faults.seed = FaultRng::draw(base_seed, seed_axis, index);
  return s;
}

std::uint64_t CampaignSpec::fingerprint() const {
  Fnv f;
  f.str(name);
  f.u64(static_cast<std::uint64_t>(mode));
  f.u64(base_seed);
  f.u64(base.horizon);
  f.u64(static_cast<std::uint64_t>(base.segment_overhead_cycles));
  f.u64(base.log_runs ? 1 : 0);
  f.str(base.faults.to_xml_text());
  f.u64(axes.size());
  for (const CampaignAxis& ax : axes) {
    f.str(ax.name);
    f.u64(ax.values.size());
    for (const long v : ax.values) f.u64(static_cast<std::uint64_t>(v));
  }
  f.u64(plans.size());
  for (const auto& [pname, plan] : plans) {
    f.str(pname);
    f.str(plan.to_xml_text());
  }
  f.u64(mapping_names.size());
  for (const std::string& m : mapping_names) f.str(m);
  return f.h;
}

// ---------------------------------------------------------------------------
// XML loader
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void campaign_error(const std::string& tag,
                                 const std::string& what) {
  throw std::invalid_argument("campaign: [" + tag + "] " + what);
}

template <typename T>
T campaign_number_attr(const xml::Cursor& cur, std::string_view key,
                       T fallback) {
  const auto v = cur.attr(key);
  if (!v) return fallback;
  if constexpr (std::is_unsigned_v<T>) {
    if (!v->empty() && v->front() == '-') {
      campaign_error("campaign.axis.malformed",
                     "attribute '" + std::string(key) +
                         "' must be non-negative: '" + std::string(*v) + "'");
    }
  }
  T n{};
  const auto [p, ec] = std::from_chars(v->data(), v->data() + v->size(), n);
  if (ec != std::errc{} || p != v->data() + v->size()) {
    campaign_error("campaign.axis.malformed",
                   "attribute '" + std::string(key) + "' is not a number: '" +
                       std::string(*v) + "'");
  }
  return n;
}

std::string campaign_string_attr(const xml::Cursor& cur,
                                 std::string_view key) {
  const auto v = cur.attr(key);
  return v ? std::string(*v) : std::string();
}

std::vector<std::string_view> split_tokens(std::string_view text) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j > i) tokens.push_back(text.substr(i, j - i));
    i = j;
  }
  return tokens;
}

}  // namespace

CampaignSpec CampaignSpec::from_xml_text(std::string_view text,
                                         const FileReader& read_file,
                                         std::size_t arena_limit) {
  CampaignSpec spec;
  xml::Arena arena(16 * 1024, arena_limit);
  xml::Cursor cur(text, arena);
  if (cur.next() != xml::Cursor::Event::StartElement ||
      cur.name() != "tut:campaign") {
    campaign_error("campaign.element.unknown",
                   "root element must be <tut:campaign>");
  }
  const std::string cname = campaign_string_attr(cur, "name");
  if (!cname.empty()) spec.name = cname;
  const std::string mode = campaign_string_attr(cur, "mode");
  if (mode == "zip") {
    spec.mode = Mode::Zip;
  } else if (mode == "cartesian" || mode.empty()) {
    spec.mode = Mode::Cartesian;
  } else {
    campaign_error("campaign.mode.unknown",
                   "mode must be 'cartesian' or 'zip', got '" + mode + "'");
  }
  spec.base_seed = campaign_number_attr<std::uint64_t>(cur, "seed", 1);
  spec.base.horizon =
      campaign_number_attr<Time>(cur, "horizon", spec.base.horizon);

  for (auto ev = cur.next(); ev != xml::Cursor::Event::End; ev = cur.next()) {
    if (ev == xml::Cursor::Event::Text ||
        ev == xml::Cursor::Event::EndElement) {
      continue;
    }
    const std::string_view elem = cur.name();
    if (elem == "plan") {
      const std::string pname = campaign_string_attr(cur, "name");
      const std::string file = campaign_string_attr(cur, "file");
      if (pname.empty() || file.empty()) {
        campaign_error("campaign.plan.unreadable",
                       "<plan> needs both name= and file=");
      }
      for (const auto& [existing, _] : spec.plans) {
        if (existing == pname) {
          campaign_error("campaign.plan.duplicate",
                         "duplicate plan '" + pname + "'");
        }
      }
      if (!read_file) {
        campaign_error("campaign.plan.unreadable",
                       "plan '" + pname + "' references file '" + file +
                           "' but no file reader was provided");
      }
      try {
        spec.plans.emplace_back(pname,
                                FaultPlan::from_xml_text(read_file(file)));
      } catch (const std::exception& e) {
        campaign_error("campaign.plan.unreadable",
                       "plan '" + pname + "' (" + file + "): " + e.what());
      }
    } else if (elem == "axis") {
      CampaignAxis ax;
      ax.name = campaign_string_attr(cur, "name");
      if (ax.name.empty()) {
        campaign_error("campaign.axis.malformed", "<axis> needs name=");
      }
      const auto values = cur.attr("values");
      if (values) {
        for (const std::string_view tok : split_tokens(*values)) {
          if (ax.name == "plan") {
            std::size_t idx = spec.plans.size();
            for (std::size_t i = 0; i < spec.plans.size(); ++i) {
              if (spec.plans[i].first == tok) idx = i;
            }
            if (idx == spec.plans.size()) {
              campaign_error("campaign.ref.unknown",
                             "plan axis references unknown plan '" +
                                 std::string(tok) +
                                 "' (declare it with <plan> first)");
            }
            ax.values.push_back(static_cast<long>(idx));
          } else if (ax.name == "mapping") {
            // Mapping names are opaque here: each first use claims the next
            // image slot, in axis order. The runner's image list and the
            // CLI's mapping resolver follow mapping_names.
            std::size_t idx = spec.mapping_names.size();
            for (std::size_t i = 0; i < spec.mapping_names.size(); ++i) {
              if (spec.mapping_names[i] == tok) idx = i;
            }
            if (idx == spec.mapping_names.size()) {
              spec.mapping_names.emplace_back(tok);
            }
            ax.values.push_back(static_cast<long>(idx));
          } else {
            long v{};
            const auto [p, ec] =
                std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec != std::errc{} || p != tok.data() + tok.size()) {
              campaign_error("campaign.axis.malformed",
                             "axis '" + ax.name + "' value '" +
                                 std::string(tok) + "' is not a number");
            }
            ax.values.push_back(v);
          }
        }
      } else {
        if (ax.name == "plan" || ax.name == "mapping") {
          campaign_error("campaign.axis.malformed",
                         "axis '" + ax.name + "' takes values= (names), not "
                         "from/step/count");
        }
        const auto count = campaign_number_attr<std::uint64_t>(cur, "count", 0);
        if (count == 0) {
          campaign_error("campaign.axis.malformed",
                         "axis '" + ax.name +
                             "' needs values= or a positive count=");
        }
        const long from = campaign_number_attr<long>(cur, "from", 0);
        const long step = campaign_number_attr<long>(cur, "step", 1);
        ax.values.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          ax.values.push_back(from + static_cast<long>(i) * step);
        }
      }
      spec.axes.push_back(std::move(ax));
    } else {
      campaign_error("campaign.element.unknown",
                     "unknown element <" + std::string(elem) + ">");
    }
  }

  const std::vector<std::string> defects = spec.validate();
  if (!defects.empty()) {
    std::string msg = "campaign: invalid sweep:";
    for (const std::string& d : defects) msg += "\n  - " + d;
    throw std::invalid_argument(msg);
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

namespace {

/// The work-claim counter gets a cache line of its own: workers hammer it
/// with fetch_add while the reducer mutex and shard bookkeeping live right
/// next door in the shared state, and false sharing there costs more than
/// the counter itself.
struct alignas(64) PaddedCounter {
  std::atomic<std::uint64_t> value{0};
  char pad[64 - sizeof(std::atomic<std::uint64_t>)];
};

// Checkpoint format v2 ("tutckpt2"): the serialized aggregate gained the
// envelope-rejection counters. Part format v3 ("tutpart3"): v2 plus the
// trailing rejection-classification word per summary. Old files fail the
// magic check with a mismatch diagnostic rather than decoding garbage.
constexpr char kCheckpointMagic[9] = "tutckpt2";
constexpr char kPartMagic[9] = "tutpart3";
constexpr std::size_t kPartHeaderSize = 8 + 8 + 8 + 8;
constexpr std::size_t kSummarySize = 12 * 8;

void put_summary(std::string& out, const ScenarioSummary& s) {
  put_u64(out, s.index);
  put_u64(out, s.digest);
  put_u64(out, s.events);
  put_u64(out, s.records);
  put_u64(out, s.makespan);
  put_u64(out, s.drops);
  put_u64(out, s.retries);
  put_u64(out, s.seg_wait);
  put_u64(out, s.seg_grants);
  put_u64(out, s.error);
  put_u64(out, s.backend);
  put_u64(out, s.rejection);
}

ScenarioSummary take_summary(std::string_view bytes, std::size_t& cursor) {
  ScenarioSummary s;
  s.index = take_u64(bytes, cursor);
  s.digest = take_u64(bytes, cursor);
  s.events = take_u64(bytes, cursor);
  s.records = take_u64(bytes, cursor);
  s.makespan = take_u64(bytes, cursor);
  s.drops = take_u64(bytes, cursor);
  s.retries = take_u64(bytes, cursor);
  s.seg_wait = take_u64(bytes, cursor);
  s.seg_grants = take_u64(bytes, cursor);
  s.error = take_u64(bytes, cursor);
  s.backend = take_u64(bytes, cursor);
  s.rejection = take_u64(bytes, cursor);
  return s;
}

std::string read_file_bytes(const std::string& path, const char* tag) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("campaign: [" + std::string(tag) +
                             "] cannot read '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  // Any failure past this point must not leave the tmp file behind: a
  // partially-written tmp next to a checkpoint looks like state worth
  // salvaging and accumulates across retries.
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      os.flush();
      if (!os) {
        throw std::runtime_error("campaign: [campaign.checkpoint.io] cannot "
                                 "write '" + tmp + "'");
      }
    }
    std::filesystem::rename(tmp, path);
  } catch (const std::filesystem::filesystem_error& e) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("campaign: [campaign.checkpoint.io] cannot "
                             "rename '" + tmp + "' to '" + path +
                             "': " + e.what());
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

/// Everything the worker threads share. The claim counter is padded; the
/// reorder buffer + aggregate sit behind the mutex. `pending` holds only
/// summaries completed out of order. Without a depth cap its size is NOT
/// bounded by the thread count — fast workers keep claiming past one slow
/// scenario — so a profile's reorder_depth adds real backpressure: a worker
/// parks on `cv` until its claimed index is within `depth` of the commit
/// frontier.
struct CampaignState {
  PaddedCounter claim;
  std::uint64_t limit = 0;
  std::uint64_t depth = 0;  ///< reorder-buffer depth; 0 = unbounded

  std::mutex mu;
  std::condition_variable cv;  ///< signalled when next_commit advances
  std::uint64_t next_commit = 0;
  std::map<std::uint64_t, ScenarioSummary> pending;
  CampaignAggregate agg;
  std::ofstream parts;
  std::string parts_buf;
  std::exception_ptr io_error;
};

}  // namespace

CampaignRunner::CampaignRunner(
    std::vector<std::shared_ptr<const CompiledModel>> images, Setup setup)
    : images_(std::move(images)), setup_(std::move(setup)) {
  if (images_.empty()) {
    throw std::invalid_argument(
        "campaign: [campaign.ref.unknown] CampaignRunner needs at least one "
        "compiled image");
  }
  for (const auto& image : images_) {
    if (!image) {
      throw std::invalid_argument(
          "campaign: [campaign.ref.unknown] CampaignRunner images must be "
          "non-null");
    }
  }
}

CampaignRunner::CampaignRunner(
    std::vector<std::shared_ptr<const BackendImage>> backends, Setup setup)
    : backends_(std::move(backends)), setup_(std::move(setup)) {
  if (backends_.empty()) {
    throw std::invalid_argument(
        "campaign: [campaign.ref.unknown] CampaignRunner needs at least one "
        "backend image");
  }
  images_.reserve(backends_.size());
  for (const auto& backend : backends_) {
    if (!backend) {
      throw std::invalid_argument(
          "campaign: [campaign.ref.unknown] CampaignRunner backends must be "
          "non-null");
    }
    std::shared_ptr<const CompiledModel> model = backend->model();
    if (!model) {
      throw std::invalid_argument(
          "campaign: [campaign.ref.unknown] CampaignRunner backend carries "
          "no CompiledModel");
    }
    images_.push_back(std::move(model));
  }
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec,
                                   const CampaignOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  {
    const std::vector<std::string> defects = spec.validate();
    if (!defects.empty()) {
      std::string msg = "campaign: invalid sweep:";
      for (const std::string& d : defects) msg += "\n  - " + d;
      throw std::invalid_argument(msg);
    }
  }
  if (!spec.mapping_names.empty() &&
      spec.mapping_names.size() > images_.size()) {
    throw std::invalid_argument(
        "campaign: [campaign.ref.unknown] sweep names " +
        std::to_string(spec.mapping_names.size()) +
        " mappings but the runner holds " + std::to_string(images_.size()) +
        " images");
  }
  const CampaignShard shard = options.shard;
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::invalid_argument(
        "campaign: [campaign.shard.range] shard index " +
        std::to_string(shard.index) + " of " + std::to_string(shard.count));
  }
  const std::uint64_t total = spec.total();
  // The profile's simulation caps decide whether individual scenarios
  // complete, so checkpoint/part artifacts from different envelopes must
  // never blend: mix them into the run fingerprint (not spec.fingerprint(),
  // which stays a pure function of the sweep).
  const std::uint64_t fingerprint = [&] {
    Fnv f;
    f.h = spec.fingerprint();
    f.u64(options.profile.log_records);
    f.u64(options.profile.event_queue);
    return f.h;
  }();
  // Contiguous shard ranges through 128-bit math: total * count stays exact
  // even for the 2^62-scenario ceiling validate() admits.
  const auto shard_bound = [&](std::uint64_t k) {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(total) * k / shard.count);
  };
  const std::uint64_t first = shard_bound(shard.index);
  const std::uint64_t end = shard_bound(shard.index + 1);

  CampaignState st;
  st.next_commit = first;

  // Resume: the checkpoint restores the reduction prefix; everything at or
  // beyond its `next` re-runs (scenario(i) is pure, so re-running commits
  // the exact summaries the killed run would have).
  if (options.resume) {
    if (options.checkpoint_path.empty()) {
      throw std::runtime_error(
          "campaign: [campaign.checkpoint.io] --resume needs a checkpoint "
          "path");
    }
    const std::string bytes =
        read_file_bytes(options.checkpoint_path, "campaign.checkpoint.io");
    std::size_t cur = 0;
    if (bytes.size() < 8 || bytes.compare(0, 8, kCheckpointMagic, 8) != 0) {
      throw std::runtime_error(
          "campaign: [campaign.checkpoint.corrupt] bad magic in '" +
          options.checkpoint_path + "'");
    }
    cur = 8;
    const std::uint64_t fp = take_u64(bytes, cur);
    const std::uint64_t sh_index = take_u64(bytes, cur);
    const std::uint64_t sh_count = take_u64(bytes, cur);
    const std::uint64_t ck_first = take_u64(bytes, cur);
    const std::uint64_t ck_end = take_u64(bytes, cur);
    const std::uint64_t ck_next = take_u64(bytes, cur);
    if (fp != fingerprint || sh_index != shard.index ||
        sh_count != shard.count || ck_first != first || ck_end != end) {
      throw std::runtime_error(
          "campaign: [campaign.checkpoint.mismatch] checkpoint '" +
          options.checkpoint_path +
          "' was written by a different campaign or shard");
    }
    if (ck_next < first || ck_next > end) {
      throw std::runtime_error(
          "campaign: [campaign.checkpoint.corrupt] next index out of shard "
          "range");
    }
    st.agg = CampaignAggregate::deserialize(
        std::string_view(bytes).substr(cur));
    st.next_commit = ck_next;
  }

  // Shard part file: header + one fixed-size summary per committed scenario,
  // strictly in index order. On resume, truncate to the checkpoint's prefix —
  // summaries appended after the last checkpoint re-run and re-append.
  if (!options.samples_path.empty()) {
    const std::uint64_t done = st.next_commit - first;
    if (options.resume && std::filesystem::exists(options.samples_path)) {
      const std::string bytes =
          read_file_bytes(options.samples_path, "campaign.part.io");
      // A kill can truncate the part file anywhere, including to zero bytes;
      // classify that separately from a wrong-campaign mismatch so the
      // operator knows the file is this shard's, just incomplete.
      if (bytes.size() < kPartHeaderSize) {
        throw std::runtime_error(
            "campaign: [campaign.part.truncated] part file '" +
            options.samples_path + "' holds " +
            std::to_string(bytes.size()) + " bytes, shorter than the " +
            std::to_string(kPartHeaderSize) + "-byte header");
      }
      std::size_t cur = 8;
      if (bytes.compare(0, 8, kPartMagic, 8) != 0 ||
          take_u64(bytes, cur) != fingerprint ||
          take_u64(bytes, cur) != first || take_u64(bytes, cur) != end) {
        throw std::runtime_error(
            "campaign: [campaign.part.mismatch] part file '" +
            options.samples_path + "' does not match this campaign shard");
      }
      if ((bytes.size() - kPartHeaderSize) % kSummarySize != 0) {
        throw std::runtime_error(
            "campaign: [campaign.part.truncated] part file '" +
            options.samples_path + "' ends mid-summary");
      }
      const std::uintmax_t keep = kPartHeaderSize + done * kSummarySize;
      if (bytes.size() < keep) {
        throw std::runtime_error(
            "campaign: [campaign.part.truncated] part file '" +
            options.samples_path + "' is shorter than the checkpoint prefix");
      }
      std::filesystem::resize_file(options.samples_path, keep);
      st.parts.open(options.samples_path,
                    std::ios::binary | std::ios::in | std::ios::out |
                        std::ios::ate);
    } else {
      st.parts.open(options.samples_path,
                    std::ios::binary | std::ios::trunc);
      std::string header;
      header.append(kPartMagic, 8);
      put_u64(header, fingerprint);
      put_u64(header, first);
      put_u64(header, end);
      st.parts.write(header.data(),
                     static_cast<std::streamsize>(header.size()));
    }
    if (!st.parts) {
      throw std::runtime_error("campaign: [campaign.part.io] cannot open '" +
                               options.samples_path + "'");
    }
  }

  st.claim.value.store(st.next_commit, std::memory_order_relaxed);
  st.limit = end;
  if (options.stop_after != 0) {
    st.limit = std::min(end, st.next_commit + options.stop_after);
  }
  st.depth = options.profile.reorder_depth;

  const auto checkpoint_now = [&](std::uint64_t next) {
    std::string bytes;
    bytes.append(kCheckpointMagic, 8);
    put_u64(bytes, fingerprint);
    put_u64(bytes, shard.index);
    put_u64(bytes, shard.count);
    put_u64(bytes, first);
    put_u64(bytes, end);
    put_u64(bytes, next);
    bytes += st.agg.serialize();
    if (st.parts.is_open()) st.parts.flush();
    write_file_atomic(options.checkpoint_path, bytes);
  };

  // Worker: claim → materialize → run on a per-thread reusable context →
  // hand the summary to the in-order reducer. Logs die with the context
  // reset, so resident memory is O(threads · images), not O(scenarios).
  const auto worker = [&]() {
    std::vector<std::unique_ptr<Simulation>> ctxs(images_.size());
    std::string scratch;
    for (;;) {
      const std::uint64_t i =
          st.claim.value.fetch_add(1, std::memory_order_relaxed);
      if (i >= st.limit) break;
      if (st.depth != 0) {
        // Reorder-buffer backpressure: run scenario i only once it is within
        // `depth` of the commit frontier. Deadlock-free for depth >= 1:
        // claims are dense, so the worker holding i == next_commit always
        // passes the predicate and unblocks everyone else by committing.
        std::unique_lock<std::mutex> lock(st.mu);
        st.cv.wait(lock, [&] {
          return st.io_error || i < st.next_commit + st.depth;
        });
        if (st.io_error) break;
      }
      Scenario sc = spec.scenario(i);
      if (options.profile.bounds_simulation()) {
        sc.config.envelope = options.profile;
        // Concurrent workers must never share one spill file; spilling is a
        // single-run CLI feature and campaign logs are hash-and-release.
        sc.config.envelope.log_spill_path.clear();
      }
      ScenarioSummary s;
      s.index = i;
      if (!backends_.empty()) s.backend = backends_[sc.image]->content_hash();
      std::unique_ptr<Simulation>& ctx = ctxs[sc.image];
      try {
        if (!ctx) {
          ctx = backends_.empty()
                    ? std::make_unique<Simulation>(images_[sc.image],
                                                   sc.config)
                    : std::make_unique<Simulation>(backends_[sc.image],
                                                   sc.config);
        } else {
          ctx->reset(sc.config);
        }
        if (setup_) setup_(*ctx, sc);
        ctx->run();
        const SimulationLog& log = ctx->log();
        s.digest = log_digest(log, scratch);
        s.events = ctx->events_dispatched();
        s.records = log.size();
        const auto& recs = log.compact_records();
        if (!recs.empty()) s.makespan = recs.back().time;
        for (const SimulationLog::Compact& r : recs) {
          if (r.kind == LogRecord::Kind::Drop) ++s.drops;
          if (r.kind == LogRecord::Kind::Retry) ++s.retries;
        }
        for (const auto& [name, seg] : ctx->segment_stats()) {
          s.seg_wait += seg.wait_time;
          s.seg_grants += seg.grants;
        }
      } catch (const EnvelopeError& e) {
        // A classified rejection: the scenario hit a resource ceiling. The
        // EnvelopeError message is deterministic (tag + cap + sim time), so
        // its hash — and therefore the campaign digest — is identical across
        // thread counts, shards and backends.
        ctx.reset();
        s = ScenarioSummary{};
        s.index = i;
        if (!backends_.empty()) {
          s.backend = backends_[sc.image]->content_hash();
        }
        Fnv f;
        f.str(e.what());
        s.error = f.h;
        s.rejection =
            static_cast<std::uint64_t>(classify_envelope_tag(e.tag()));
      } catch (const std::exception& e) {
        // A throw can leave the context mid-run; drop it so the next claim
        // rebuilds from the pristine image. The error digest is the message
        // hash — deterministic, so failed scenarios still cross-check.
        ctx.reset();
        s = ScenarioSummary{};
        s.index = i;
        if (!backends_.empty()) {
          s.backend = backends_[sc.image]->content_hash();
        }
        Fnv f;
        f.str(e.what());
        s.error = f.h;
      }

      std::lock_guard<std::mutex> lock(st.mu);
      if (st.io_error) {
        st.cv.notify_all();
        break;
      }
      st.pending.emplace(i, s);
      while (!st.pending.empty() &&
             st.pending.begin()->first == st.next_commit) {
        const ScenarioSummary& head = st.pending.begin()->second;
        st.agg.add(head);
        if (st.parts.is_open()) {
          st.parts_buf.clear();
          put_summary(st.parts_buf, head);
          st.parts.write(st.parts_buf.data(),
                         static_cast<std::streamsize>(st.parts_buf.size()));
        }
        if (options.on_summary) options.on_summary(head);
        st.pending.erase(st.pending.begin());
        ++st.next_commit;
        if (!options.checkpoint_path.empty() && options.checkpoint_every &&
            (st.next_commit - first) % options.checkpoint_every == 0 &&
            st.next_commit != end) {
          try {
            checkpoint_now(st.next_commit);
          } catch (...) {
            st.io_error = std::current_exception();
          }
        }
      }
      // Wake workers parked on the reorder-depth backpressure: the commit
      // frontier moved (or an I/O error ended the run).
      if (st.depth != 0) st.cv.notify_all();
    }
  };

  std::vector<std::string> notes;
  std::size_t threads = options.threads != 0
                            ? options.threads
                            : std::max(1u, std::thread::hardware_concurrency());
  if (options.profile.concurrency != 0 &&
      threads > options.profile.concurrency) {
    // Semantics-preserving: results are thread-count-invariant, so clamping
    // is a capacity decision, not a rejection — surfaced as a note.
    notes.push_back("[envelope.concurrency.capped] " + std::to_string(threads) +
                    " workers capped at " +
                    std::to_string(options.profile.concurrency) +
                    " by profile '" + options.profile.name + "'");
    threads = options.profile.concurrency;
  }
  if (st.limit > st.next_commit) {
    threads = std::min<std::uint64_t>(threads, st.limit - st.next_commit);
  } else {
    threads = 1;
  }
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (st.io_error) std::rethrow_exception(st.io_error);

  if (st.parts.is_open()) {
    st.parts.flush();
    if (!st.parts) {
      throw std::runtime_error("campaign: [campaign.part.io] cannot write '" +
                               options.samples_path + "'");
    }
  }
  if (!options.checkpoint_path.empty()) checkpoint_now(st.next_commit);

  CampaignResult result;
  result.aggregate = st.agg;
  result.first = first;
  result.end = end;
  result.next = st.next_commit;
  result.completed = st.next_commit == end;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.notes = std::move(notes);
  return result;
}

std::uint64_t part_file_bytes(std::uint64_t scenarios) noexcept {
  return kPartHeaderSize + scenarios * kSummarySize;
}

CampaignResult merge_campaign_parts(const std::vector<std::string>& paths) {
  struct Part {
    std::uint64_t first = 0;
    std::uint64_t end = 0;
    std::string bytes;
  };
  if (paths.empty()) {
    throw std::runtime_error(
        "campaign: [campaign.part.gap] no part files to merge");
  }
  std::vector<Part> parts;
  parts.reserve(paths.size());
  std::uint64_t fingerprint = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    Part part;
    part.bytes = read_file_bytes(paths[i], "campaign.part.io");
    if (part.bytes.size() < kPartHeaderSize) {
      throw std::runtime_error("campaign: [campaign.part.truncated] '" +
                               paths[i] + "' holds " +
                               std::to_string(part.bytes.size()) +
                               " bytes, shorter than the " +
                               std::to_string(kPartHeaderSize) +
                               "-byte header");
    }
    if (part.bytes.compare(0, 8, kPartMagic, 8) != 0) {
      throw std::runtime_error("campaign: [campaign.part.corrupt] '" +
                               paths[i] + "' is not a campaign part file");
    }
    std::size_t cur = 8;
    const std::uint64_t fp = take_u64(part.bytes, cur);
    part.first = take_u64(part.bytes, cur);
    part.end = take_u64(part.bytes, cur);
    if (i == 0) {
      fingerprint = fp;
    } else if (fp != fingerprint) {
      throw std::runtime_error("campaign: [campaign.part.mismatch] '" +
                               paths[i] +
                               "' comes from a different campaign");
    }
    const std::size_t payload = part.bytes.size() - kPartHeaderSize;
    if (payload % kSummarySize != 0 ||
        payload / kSummarySize < part.end - part.first) {
      // A short or mid-summary payload is a truncation (killed shard, partial
      // copy); only an over-long one is corrupt.
      throw std::runtime_error("campaign: [campaign.part.truncated] '" +
                               paths[i] + "' holds " +
                               std::to_string(payload / kSummarySize) +
                               " whole summaries for range [" +
                               std::to_string(part.first) + ", " +
                               std::to_string(part.end) + ")");
    }
    if (payload / kSummarySize != part.end - part.first) {
      throw std::runtime_error("campaign: [campaign.part.corrupt] '" +
                               paths[i] + "' holds " +
                               std::to_string(payload / kSummarySize) +
                               " summaries for range [" +
                               std::to_string(part.first) + ", " +
                               std::to_string(part.end) + ")");
    }
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end(),
            [](const Part& a, const Part& b) { return a.first < b.first; });
  if (parts.front().first != 0) {
    throw std::runtime_error(
        "campaign: [campaign.part.gap] coverage does not start at scenario 0");
  }
  // Replaying the per-scenario summaries in global index order through a
  // fresh aggregate reproduces the single-process reduction byte for byte —
  // this is what makes P² sketches (not mergeable per se) shardable.
  CampaignAggregate agg;
  std::uint64_t expected = 0;
  for (const Part& part : parts) {
    if (part.first != expected) {
      throw std::runtime_error(
          "campaign: [campaign.part.gap] missing scenarios [" +
          std::to_string(expected) + ", " + std::to_string(part.first) + ")");
    }
    std::size_t cur = kPartHeaderSize;
    for (std::uint64_t i = part.first; i < part.end; ++i) {
      const ScenarioSummary s = take_summary(part.bytes, cur);
      if (s.index != i) {
        throw std::runtime_error(
            "campaign: [campaign.part.corrupt] summary index " +
            std::to_string(s.index) + " where " + std::to_string(i) +
            " was expected");
      }
      agg.add(s);
    }
    expected = part.end;
  }
  CampaignResult result;
  result.aggregate = agg;
  result.first = 0;
  result.end = expected;
  result.next = expected;
  result.completed = true;
  return result;
}

}  // namespace tut::sim
