// EventQueue is header-only (schedule_at/poll are the simulator's per-event
// hot pair and must inline into the dispatch loop); this TU only anchors the
// header in the build so it is compiled standalone at least once.
#include "sim/event.hpp"
