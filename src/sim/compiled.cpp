#include "sim/compiled.hpp"

#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "profile/tut_profile.hpp"
#include "sim/fault.hpp"

namespace tut::sim {

namespace {

/// Send-action port names of a behaviour, unique, in first-use order
/// (transition effects in declaration order, then entry actions).
std::vector<std::string> send_ports(const uml::StateMachine& sm) {
  std::vector<std::string> ports;
  std::set<std::string> seen;
  auto add = [&](const std::vector<uml::Action>& actions) {
    for (const uml::Action& a : actions) {
      if (a.kind == uml::Action::Kind::Send && seen.insert(a.port).second) {
        ports.push_back(a.port);
      }
    }
  };
  for (const uml::Transition* t : sm.transitions()) add(t->effects());
  for (const uml::State* s : sm.states()) add(s->entry_actions());
  return ports;
}

long wrapper_max_time(const mapping::SystemView& sys,
                      const uml::Property& instance) {
  for (const uml::Connector* w : sys.plat().wrappers_of(instance)) {
    const long mt = appmodel::tag_long(*w, "MaxTime", 0);
    if (mt > 0) return mt;
  }
  return 0;
}

}  // namespace

std::shared_ptr<const CompiledModel> CompiledModel::build(
    const mapping::SystemView& sys) {
  std::vector<std::string> defects;
  std::shared_ptr<CompiledModel> model = build_collect(sys, defects, true);
  if (!defects.empty()) {
    std::string msg = "model is not executable (" +
                      std::to_string(defects.size()) + " defect" +
                      (defects.size() == 1 ? "" : "s") + "):";
    for (const std::string& d : defects) msg += "\n  - " + d;
    throw std::runtime_error(msg);
  }
  return model;
}

std::shared_ptr<CompiledModel> CompiledModel::build_collect(
    const mapping::SystemView& sys, std::vector<std::string>& defects,
    bool compile_machines) {
  const uml::Class* app = sys.app().application();
  if (app == nullptr) {
    throw std::runtime_error("simulation requires an <<Application>> class");
  }

  auto model = std::shared_ptr<CompiledModel>(new CompiledModel());
  model->sys_ = &sys;
  model->router_ = std::make_unique<efsm::Router>(*app);

  for (const uml::Property* part : sys.plat().instances()) {
    PeInfo pe;
    pe.part = part;
    pe.name = part->name();
    pe.freq_mhz = sys.instance_frequency_mhz(*part);
    if (const uml::Class* comp = part->part_type()) {
      pe.preemptive = comp->tagged_value("Scheduling") ==
                      profile::tags::SchedulingPreemptive;
      pe.ctx_switch_cycles = appmodel::tag_long(*comp, "ContextSwitchCycles", 0);
      pe.hw_accel = comp->tagged_value("Type") == "hw_accelerator";
    }
    pe.wrapper_max_cycles = wrapper_max_time(sys, *part);
    pe.rr_key = appmodel::tag_long(*part, "ID", 0);
    model->pe_by_name_.emplace(pe.name,
                               static_cast<std::uint32_t>(model->pes_.size()));
    model->pes_.push_back(std::move(pe));
  }

  std::map<const uml::Property*, std::uint32_t> pe_of_part;
  for (std::uint32_t i = 0; i < model->pes_.size(); ++i) {
    pe_of_part.emplace(model->pes_[i].part, i);
  }

  std::map<const uml::Property*, std::uint32_t> seg_of_part;
  for (const uml::Property* part : sys.plat().segments()) {
    SegInfo seg;
    seg.part = part;
    seg.name = part->name();
    seg.width_bits = appmodel::tag_long(*part, "DataWidth", 32);
    seg.freq_mhz = appmodel::tag_long(*part, "Frequency", 100);
    seg.priority_arb = part->tagged_value("Arbitration") !=
                       profile::tags::ArbitrationRoundRobin;
    seg.rng_key = FaultRng::key(part->name());
    const auto index = static_cast<std::uint32_t>(model->segs_.size());
    model->seg_by_name_.emplace(seg.name, index);
    seg_of_part.emplace(part, index);
    model->segs_.push_back(std::move(seg));
  }

  std::map<const uml::StateMachine*, const efsm::CompiledMachine*> machine_of;
  for (const uml::Property* part : sys.app().processes()) {
    const uml::Class* comp = part->part_type();
    if (comp == nullptr || comp->behavior() == nullptr) {
      defects.push_back("process '" + part->name() +
                        "' has no executable behaviour");
      continue;
    }
    const uml::Property* target = sys.instance_for_process(*part);
    if (target == nullptr) {
      defects.push_back("process '" + part->name() +
                        "' is not mapped to any platform component instance");
      continue;
    }
    ProcInfo proc;
    proc.part = part;
    proc.name = part->name();
    proc.behavior = comp->behavior();
    proc.home_pe = pe_of_part.at(target);
    proc.hw = part->tagged_value("ProcessType") == "hardware";
    proc.priority = sys.process_priority(*part);
    if (compile_machines) {
      auto it = machine_of.find(proc.behavior);
      if (it == machine_of.end()) {
        model->machines_.push_back(
            std::make_unique<efsm::CompiledMachine>(*proc.behavior));
        it = machine_of.emplace(proc.behavior, model->machines_.back().get())
                 .first;
      }
      proc.machine = it->second;
    }
    for (std::string& port : send_ports(*proc.behavior)) {
      PortDest pd;
      pd.port = std::move(port);
      proc.ports.push_back(std::move(pd));
    }
    const auto index = static_cast<std::uint32_t>(model->procs_.size());
    model->proc_by_name_.emplace(proc.name, index);
    model->proc_by_part_.emplace(part, index);
    model->procs_.push_back(std::move(proc));
  }

  // Second pass: port destinations can point at processes declared later.
  for (ProcInfo& proc : model->procs_) {
    for (PortDest& pd : proc.ports) {
      const efsm::Endpoint dest =
          model->router_->destination(*proc.part, pd.port);
      pd.dest_port = dest.port != nullptr ? dest.port->name() : "";
      pd.proc = dest.part != nullptr ? model->proc_of_part(dest.part) : -1;
    }
  }

  // Dense route table. Precomputed for every PE pair (exploration sweeps
  // remap processes freely), with defects reported per process pair in the
  // order Simulation used to collect them.
  const std::size_t npe = model->pes_.size();
  model->routes_.assign(npe * npe, {});
  for (std::uint32_t a = 0; a < npe; ++a) {
    for (std::uint32_t b = 0; b < npe; ++b) {
      if (a == b) continue;
      std::vector<std::uint32_t>& out = model->routes_[a * npe + b];
      for (const uml::Property* seg_part :
           sys.plat().route(*model->pes_[a].part, *model->pes_[b].part)) {
        out.push_back(seg_of_part.at(seg_part));
      }
    }
  }
  std::set<std::string> detached;
  std::set<std::pair<std::string, std::string>> unroutable;
  for (const ProcInfo& a : model->procs_) {
    for (const ProcInfo& b : model->procs_) {
      if (a.home_pe == b.home_pe) continue;
      if (!model->route(a.home_pe, b.home_pe).empty()) continue;
      const PeInfo& pa = model->pes_[a.home_pe];
      const PeInfo& pb = model->pes_[b.home_pe];
      bool pair_ok = true;
      for (const PeInfo* pe : {&pa, &pb}) {
        if (sys.plat().segment_of(*pe->part) == nullptr &&
            detached.insert(pe->name).second) {
          defects.push_back("instance '" + pe->name +
                            "' is not attached to any communication "
                            "segment but hosts remote communication");
          pair_ok = false;
        }
      }
      if (pair_ok && unroutable
                         .insert({std::min(pa.name, pb.name),
                                  std::max(pa.name, pb.name)})
                         .second) {
        defects.push_back("no communication route between '" + pa.name +
                          "' and '" + pb.name + "'");
      }
    }
  }
  return model;
}

std::int32_t CompiledModel::pe_index(std::string_view name) const {
  auto it = pe_by_name_.find(name);
  return it == pe_by_name_.end() ? -1 : static_cast<std::int32_t>(it->second);
}

std::int32_t CompiledModel::seg_index(std::string_view name) const {
  auto it = seg_by_name_.find(name);
  return it == seg_by_name_.end() ? -1 : static_cast<std::int32_t>(it->second);
}

std::int32_t CompiledModel::proc_index(std::string_view name) const {
  auto it = proc_by_name_.find(name);
  return it == proc_by_name_.end() ? -1 : static_cast<std::int32_t>(it->second);
}

std::int32_t CompiledModel::proc_of_part(const uml::Property* part) const {
  auto it = proc_by_part_.find(part);
  return it == proc_by_part_.end() ? -1 : static_cast<std::int32_t>(it->second);
}

}  // namespace tut::sim
