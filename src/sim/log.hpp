// The simulation log-file.
//
// Figure 2 of the paper: the generated application code is complemented with
// custom C functions that write a log-file during simulation; the profiling
// tool later parses that file. This module defines the in-memory records, a
// line-oriented text serialization (the actual "log-file"), and its parser.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace tut::sim {

/// Sentinel process name for the environment.
inline constexpr const char* kEnvironment = "env";

/// One log record. `process`, `peer` are application process names (or
/// `kEnvironment`).
struct LogRecord {
  enum class Kind : std::uint8_t {
    Run,      ///< `process` executed `cycles` cycles for `duration` ticks
    Send,     ///< `process` sent `signal` (`bytes` bytes) towards `peer`
    Receive,  ///< `process` received `signal` from `peer`
    Drop,     ///< `process` discarded `signal` (no matching transition)
  };

  Time time = 0;
  Kind kind = Kind::Run;
  std::string process;
  std::string peer;
  std::string signal;
  long cycles = 0;
  Time duration = 0;
  std::size_t bytes = 0;
};

/// Append-only simulation log with text round trip.
class SimulationLog {
public:
  void run(Time t, std::string process, long cycles, Time duration);
  void send(Time t, std::string from, std::string to, std::string signal,
            std::size_t bytes);
  void receive(Time t, std::string process, std::string from,
               std::string signal);
  void drop(Time t, std::string process, std::string signal);

  const std::vector<LogRecord>& records() const noexcept { return records_; }
  std::size_t size() const noexcept { return records_.size(); }
  void clear() { records_.clear(); }

  /// Serializes to the line-oriented log-file format:
  ///   # tut-simlog v1
  ///   R <time> <process> <cycles> <duration>
  ///   S <time> <from> <to> <signal> <bytes>
  ///   V <time> <process> <from> <signal>
  ///   D <time> <process> <signal>
  std::string to_text() const;

  /// Parses a log-file. Throws std::runtime_error on malformed lines.
  static SimulationLog parse(const std::string& text);

private:
  std::vector<LogRecord> records_;
};

}  // namespace tut::sim
