// The simulation log-file.
//
// Figure 2 of the paper: the generated application code is complemented with
// custom C functions that write a log-file during simulation; the profiling
// tool later parses that file. This module defines the in-memory records, a
// line-oriented text serialization (the actual "log-file"), and its parser.
//
// Records are stored in a compact interned form: every process/peer/signal
// name is a dense intern::Id into the log's name table, so appends never
// allocate per record and downstream analyses (the profiler, exploration)
// can key flat vectors by id instead of std::map<std::string, ...>. The
// string-based record view is materialized on demand for compatibility.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "intern/intern.hpp"
#include "sim/kernel.hpp"
#include "sim/resource.hpp"

namespace tut::sim {

/// Sentinel process name for the environment.
inline constexpr const char* kEnvironment = "env";

/// One log record in the string-based compatibility view. `process`, `peer`
/// are application process names (or `kEnvironment`).
struct LogRecord {
  enum class Kind : std::uint8_t {
    Run,      ///< `process` executed `cycles` cycles for `duration` ticks
    Send,     ///< `process` sent `signal` (`bytes` bytes) towards `peer`
    Receive,  ///< `process` received `signal` from `peer`
    Drop,     ///< `process` discarded `signal` (no matching transition,
              ///< a fault-induced loss, or a transfer out of retries)
    Fault,    ///< fault raised on component `process` (PE, segment or the
              ///< receiving process of a signal fault)
    Clear,    ///< fault cleared on component `process`
    Retry,    ///< `process` retries sending `signal`; `cycles` = attempt no.
    Watchdog, ///< `process` was reset by its watchdog timer
    Migrate,  ///< `process` migrated from PE `peer` to PE `signal`
  };

  Time time = 0;
  Kind kind = Kind::Run;
  std::string process;
  std::string peer;
  std::string signal;
  long cycles = 0;
  Time duration = 0;
  std::size_t bytes = 0;
};

/// Append-only simulation log with text round trip.
class SimulationLog {
 public:
  /// One record in the hot-path form: names as ids into names(). Fields a
  /// record kind does not use hold intern::kNoId.
  struct Compact {
    Time time = 0;
    LogRecord::Kind kind = LogRecord::Kind::Run;
    intern::Id process = intern::kNoId;
    intern::Id peer = intern::kNoId;
    intern::Id signal = intern::kNoId;
    long cycles = 0;
    Time duration = 0;
    std::size_t bytes = 0;
  };

  void run(Time t, std::string_view process, long cycles, Time duration);
  void send(Time t, std::string_view from, std::string_view to,
            std::string_view signal, std::size_t bytes);
  void receive(Time t, std::string_view process, std::string_view from,
               std::string_view signal);
  void drop(Time t, std::string_view process, std::string_view signal);
  void fault(Time t, std::string_view component);
  void fault_cleared(Time t, std::string_view component);
  void retry(Time t, std::string_view process, std::string_view signal,
             long attempt);
  void watchdog_reset(Time t, std::string_view process);
  void migrate(Time t, std::string_view process, std::string_view from_pe,
               std::string_view to_pe);

  /// Interns a name for use with the id-based append paths below. Writers
  /// that log the same names repeatedly (the co-simulator) intern once and
  /// append by id, skipping even the hash lookup.
  intern::Id intern_name(std::string_view name) { return names_.intern(name); }
  void run_id(Time t, intern::Id process, long cycles, Time duration);
  void send_id(Time t, intern::Id from, intern::Id to, intern::Id signal,
               std::size_t bytes);
  void receive_id(Time t, intern::Id process, intern::Id from,
                  intern::Id signal);
  void drop_id(Time t, intern::Id process, intern::Id signal);
  void fault_id(Time t, intern::Id component);
  void clear_id(Time t, intern::Id component);
  void retry_id(Time t, intern::Id process, intern::Id signal, long attempt);
  void watchdog_id(Time t, intern::Id process);
  void migrate_id(Time t, intern::Id process, intern::Id from_pe,
                  intern::Id to_pe);

  /// The *resident* records in compact interned form — the profiler's
  /// input. With an active spill envelope this is the tail that has not yet
  /// been flushed; spilled records are only reachable through to_text().
  const std::vector<Compact>& compact_records() const noexcept {
    return compact_;
  }
  /// The name table the compact records' ids index.
  const intern::Table& names() const noexcept { return names_; }

  /// String-based view of the resident records, materialized lazily
  /// (append-only, so already materialized prefixes are reused).
  const std::vector<LogRecord>& records() const;

  /// Resource envelope: caps the resident records at `capacity` (0 =
  /// unbounded, the default). Without a spill path, the append that would
  /// exceed the cap throws EnvelopeError ("[envelope.log.overflow]", with
  /// the record's sim time) before mutating anything. With a spill path,
  /// reaching the cap renders the resident records to the spill file and
  /// frees them; to_text() reads the spill back, so the serialized log —
  /// and every digest over it — is byte-identical to an unbounded run.
  void set_envelope(std::uint64_t capacity, std::string spill_path = {});
  std::uint64_t envelope_capacity() const noexcept { return capacity_; }
  /// Records flushed to the spill file so far.
  std::uint64_t spilled() const noexcept { return spilled_; }

  /// Running counters maintained on append. They cover spilled records too,
  /// so campaign summaries stay exact under any envelope.
  std::uint64_t drop_count() const noexcept { return drops_; }
  std::uint64_t retry_count() const noexcept { return retries_; }
  /// Time of the most recent record (0 when the log is empty).
  Time last_time() const noexcept { return last_time_; }

  /// Logical record count: spilled + resident.
  std::size_t size() const noexcept { return spilled_ + compact_.size(); }
  /// Drops every record and counter; removes the spill file if one was
  /// written (a reset run must start from a genuinely empty log).
  void clear();
  /// Reserves capacity for `n` records (e.g. from the injected-event count).
  void reserve(std::size_t n);

  /// Serializes to the line-oriented log-file format:
  ///   # tut-simlog v1
  ///   R <time> <process> <cycles> <duration>
  ///   S <time> <from> <to> <signal> <bytes>
  ///   V <time> <process> <from> <signal>
  ///   D <time> <process> <signal>
  ///   F <time> <component>
  ///   C <time> <component>
  ///   T <time> <process> <signal> <attempt>
  ///   W <time> <process>
  ///   M <time> <process> <from_pe> <to_pe>
  std::string to_text() const;
  /// Appends the same serialization to `out` (no clearing). Batch and
  /// campaign runs render thousands of logs; reusing one buffer keeps the
  /// render allocation-free after the first run.
  void to_text(std::string& out) const;

  /// Parses a log-file. Throws std::runtime_error on malformed lines.
  static SimulationLog parse(const std::string& text);

 private:
  /// Envelope-checked append: every public append path funnels through
  /// here. Throws (or spills) *before* pushing, so a rejected log still
  /// holds exactly `capacity_` records.
  void append(const Compact& r);
  /// Renders the resident records to the spill file and frees them.
  void spill_resident(Time at);
  /// Renders the resident records (no header) — shared by to_text and the
  /// spill flush so both paths serialize identically.
  void render_body(std::string& out) const;

  std::vector<Compact> compact_;
  intern::Table names_;
  mutable std::vector<LogRecord> materialized_;  // lazy prefix of compact_
  std::uint64_t capacity_ = 0;   ///< resident-record ceiling; 0 = unbounded
  std::string spill_path_;       ///< empty: overflow throws instead
  std::uint64_t spilled_ = 0;    ///< records already flushed to spill_path_
  std::uint64_t drops_ = 0;      ///< Drop records appended (incl. spilled)
  std::uint64_t retries_ = 0;    ///< Retry records appended (incl. spilled)
  Time last_time_ = 0;           ///< time of the most recent record
};

}  // namespace tut::sim
