// tut::sim — pluggable process-behaviour backends.
//
// The simulator owns event routing, timing and logging; *how* one process
// steps its state machine is a backend decision. Three executors exist: the
// AST walker (efsm::Instance), the bytecode interpreter
// (efsm::CompiledInstance) and, through this interface, out-of-line
// executors such as codegen::NativeImage's dlopen'ed machine code. The
// interface is deliberately the exact Instance/CompiledInstance step
// surface — identical StepResults in, identical SimulationLogs out — so a
// backend swap is observable only through wall-clock time and the
// provenance fields (name + content hash) that batch and campaign runs
// record. Resource envelopes (sim::ResourceProfile) are part of that
// parity: caps live in the simulator layer (log, event queue), never in a
// backend, so an envelope miss raises the same EnvelopeError — same tag,
// same message, same sim time — under every executor, and in-envelope runs
// stay byte-identical across backends.
//
// sim must not depend on codegen (codegen links sim), so the simulator only
// sees these abstract classes; codegen::NativeImage implements them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "efsm/machine.hpp"

namespace tut::sim {

class CompiledModel;

/// Which executor a run steps its processes with. Interpreter is the
/// bytecode interpreter (the default for image-based runs); Native is a
/// generated-and-dlopen'ed BackendImage.
enum class Backend { Interpreter, Native };

/// Mutable per-process execution state behind a backend. Mirrors
/// efsm::CompiledInstance's stepping surface exactly, including which
/// exceptions escape (EvalError, LivelockError, std::logic_error) — the
/// simulator's fault handling and the lockstep tests rely on parity.
class ProcExecutor {
 public:
  virtual ~ProcExecutor() = default;
  virtual efsm::StepResult start() = 0;
  virtual efsm::StepResult reset() = 0;
  virtual efsm::StepResult deliver(const efsm::Event& event) = 0;
  virtual efsm::StepResult timer_fired(const std::string& timer) = 0;
  /// Rewind to the freshly-constructed state (CompiledInstance::rewind()).
  virtual void rewind() = 0;
};

/// A loaded behaviour image covering every process of one CompiledModel.
/// Shared and immutable: batch and campaign workers on any number of
/// threads draw executors from one image.
class BackendImage {
 public:
  virtual ~BackendImage() = default;
  /// The model this image was generated from; Simulation runs it for
  /// routing, mapping and timing while the image supplies behaviour.
  virtual std::shared_ptr<const CompiledModel> model() const = 0;
  /// Fresh executor for process `proc` (CompiledModel process index).
  virtual std::unique_ptr<ProcExecutor> make_executor(
      std::uint32_t proc) const = 0;
  /// Short backend name for provenance output, e.g. "native".
  virtual std::string_view name() const = 0;
  /// Content hash of the generated image (source + flags); 0 is reserved
  /// for "no image" (interpreter) in ScenarioSummary provenance.
  virtual std::uint64_t content_hash() const = 0;
};

}  // namespace tut::sim
