// Discrete-event simulation kernel: a time-ordered event queue with
// deterministic FIFO tie-breaking for simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tut::sim {

/// Simulation time in ticks. The platform models interpret one tick as one
/// nanosecond (a 50 MHz component retires one cycle per 20 ticks).
using Time = std::uint64_t;

/// The event kernel. Events scheduled for the same time fire in scheduling
/// order, which makes whole-simulation runs reproducible.
class Kernel {
public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `at` (>= now()).
  void schedule_at(Time at, Handler fn);
  /// Schedules `fn` `delay` ticks from now.
  void schedule_in(Time delay, Handler fn) { schedule_at(now_ + delay, fn); }

  Time now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Runs events until the queue drains or the next event would be past
  /// `horizon`. Events exactly at the horizon still run. Returns the number
  /// of events dispatched.
  std::uint64_t run(Time horizon);

private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace tut::sim
