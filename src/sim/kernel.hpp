// Discrete-event simulation kernel: a time-ordered event queue with
// deterministic FIFO tie-breaking for simultaneous events.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace tut::sim {

/// Simulation time in ticks. The platform models interpret one tick as one
/// nanosecond (a 50 MHz component retires one cycle per 20 ticks).
using Time = std::uint64_t;

/// The event kernel. Events scheduled for the same time fire in scheduling
/// order, which makes whole-simulation runs reproducible.
///
/// Storage is an explicit binary heap (std::vector + std::push_heap /
/// std::pop_heap) so dispatch *moves* handlers out instead of copying them
/// from a const priority_queue top, plus a FIFO bucket for events due at the
/// current time: zero-delay scheduling — the dominant pattern in the
/// co-simulator's run-to-completion steps — bypasses the heap entirely.
/// Ordering stays identical to a single (time, seq) queue: every heap entry
/// due at now() was scheduled before now() was reached and therefore before
/// any bucket entry, so heap-then-bucket is exactly seq order.
class Kernel {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Scheduling into the past is a
  /// hard error: `at < now()` asserts in debug builds and throws
  /// std::logic_error (with both times in the message) in release builds.
  void schedule_at(Time at, Handler fn);
  /// Schedules `fn` `delay` ticks from now.
  void schedule_in(Time delay, Handler fn) { schedule_at(now_ + delay, fn); }

  Time now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty() && bucket_.empty(); }
  std::size_t pending() const noexcept { return heap_.size() + bucket_.size(); }
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Reserves heap capacity for `n` pending events.
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Resource envelope: caps pending() at `cap` (0 = unbounded, the
  /// default). The schedule_at that would exceed it throws
  /// sim::EnvelopeError tagged [envelope.queue.full] before touching the
  /// heap or bucket — same contract as EventQueue::set_capacity.
  void set_capacity(std::uint64_t cap) noexcept { capacity_ = cap; }
  std::uint64_t capacity() const noexcept { return capacity_; }

  /// Runs events until the queue drains or the next event would be past
  /// `horizon`. Events exactly at the horizon still run. Returns the number
  /// of events dispatched.
  std::uint64_t run(Time horizon);

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;     ///< binary min-(at, seq) heap
  std::deque<Handler> bucket_;  ///< events due exactly at now_, FIFO
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t capacity_ = 0;  ///< pending-event ceiling; 0 = unbounded
};

}  // namespace tut::sim
