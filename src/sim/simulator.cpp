#include "sim/simulator.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace tut::sim {

namespace {

/// Converts component cycles to ticks (1 tick = 1 ns): ceil(c * 1000 / MHz).
Time cycles_to_ticks(long cycles, long freq_mhz) {
  if (cycles <= 0) return 0;
  if (freq_mhz <= 0) freq_mhz = 50;
  const auto c = static_cast<std::uint64_t>(cycles);
  const auto f = static_cast<std::uint64_t>(freq_mhz);
  return (c * 1000 + f - 1) / f;
}

long tag_long_of(const uml::Element& e, const char* tag, long fallback) {
  return appmodel::tag_long(e, tag, fallback);
}

}  // namespace

struct Simulation::Impl {
  struct Pe;

  struct PendingEvent {
    enum class Kind { Start, Signal, Timer, Reset };
    Kind kind = Kind::Signal;
    efsm::Event event;                     // Signal
    intern::Id from = intern::kNoId;       // Signal
    std::string timer;                     // Timer
  };

  struct Proc {
    const uml::Property* part = nullptr;
    std::string name;
    intern::Id name_id = intern::kNoId;  // in the log's name table
    efsm::Instance inst;
    Pe* pe = nullptr;
    Pe* home = nullptr;             // mapped PE; failover migrates back here
    bool hw = false;                // ProcessType "hardware"
    long priority = 0;
    std::deque<PendingEvent> queue;
    std::map<std::string, std::uint64_t> timer_gen;
    bool ready = false;             // enlisted in pe->ready
    std::uint64_t ready_seq = 0;    // FIFO tie-break among equal priorities
    Time last_progress = 0;         // last fired transition (watchdog)

    Proc(const uml::StateMachine& sm, std::string n)
        : name(n), inst(sm, std::move(n)) {}
  };

  struct Pe {
    const uml::Property* part = nullptr;
    std::string name;
    intern::Id name_id = intern::kNoId;
    PeStats* stats = nullptr;  // owner_.pe_stats_ entry (map nodes are stable)
    long freq_mhz = 50;
    bool hw_accel = false;     // component Type "hw_accelerator"
    bool failed = false;       // inside a PE fault window
    std::vector<Proc*> ready;

    // RTOS parameterization (Component tags Scheduling/ContextSwitchCycles).
    bool preemptive = false;
    long ctx_switch_cycles = 0;

    // The step currently executing, if any. `run_gen` invalidates the
    // scheduled completion event when the step is preempted.
    struct Running {
      Proc* proc = nullptr;
      efsm::StepResult result;
      Time end = 0;
    };
    std::optional<Running> running;
    std::uint64_t run_gen = 0;

    // Steps suspended by preemption. LIFO: preemption only ever stacks a
    // strictly higher-priority step on top, so the back has the highest
    // priority among suspended steps.
    struct Suspended {
      Proc* proc = nullptr;
      efsm::StepResult result;
      Time remaining = 0;
    };
    std::vector<Suspended> suspended;

    bool busy() const noexcept { return running.has_value(); }
  };

  struct Seg {
    const uml::Property* part = nullptr;
    std::string name;
    intern::Id name_id = intern::kNoId;
    SegmentStats* stats = nullptr;
    long width_bits = 32;
    long freq_mhz = 100;
    bool priority_arb = true;
    bool busy = false;
    bool faulted = false;          // inside a segment fault window
    std::uint32_t ber_ppm = 0;     // bit errors per million completed hops
    std::uint64_t rng_key = 0;     // FaultRng instance key (name hash)
    std::uint64_t ber_seq = 0;     // FaultRng sequence counter
    long last_rr = -1;
    std::deque<std::size_t> waiting;  // indices into transfers_
  };

  struct Transfer {
    Proc* dest = nullptr;
    intern::Id from = intern::kNoId;
    efsm::Event event;
    std::vector<Seg*> path;
    std::size_t hop = 0;
    std::size_t bytes = 0;
    long priority = 0;
    long rr_key = 0;           // sender instance ID (round-robin order)
    long max_grant_cycles = 0; // sender wrapper MaxTime; 0 = unlimited
    long remaining_cycles = 0; // on current hop; 0 = not yet computed
    Time enqueue_time = 0;
    int attempts = 0;          // fault retries consumed
    bool done = false;
  };

  Impl(const mapping::SystemView& sys, Simulation& owner)
      : sys_(sys), owner_(owner), router_(require_app(sys)) {
    build();
  }

  static const uml::Class& require_app(const mapping::SystemView& sys) {
    const uml::Class* app = sys.app().application();
    if (app == nullptr) {
      throw std::runtime_error("simulation requires an <<Application>> class");
    }
    return *app;
  }

  void build() {
    // Defects are collected, not thrown one at a time, so users fix a
    // non-executable model (and a bad fault plan) in one pass.
    std::vector<std::string> defects;

    env_id_ = owner_.log_.intern_name(kEnvironment);
    unknown_sig_id_ = owner_.log_.intern_name("?");
    faults_on_ = !owner_.config_.faults.empty();
    // Processing elements (only instances that host processes need a model,
    // but we build all so stats cover idle PEs too).
    for (const uml::Property* part : sys_.plat().instances()) {
      auto pe = std::make_unique<Pe>();
      pe->part = part;
      pe->name = part->name();
      pe->name_id = owner_.log_.intern_name(part->name());
      pe->freq_mhz = sys_.instance_frequency_mhz(*part);
      if (const uml::Class* comp = part->part_type()) {
        pe->preemptive = comp->tagged_value("Scheduling") ==
                         profile::tags::SchedulingPreemptive;
        pe->ctx_switch_cycles = tag_long_of(*comp, "ContextSwitchCycles", 0);
        pe->hw_accel = comp->tagged_value("Type") == "hw_accelerator";
      }
      pe->stats = &owner_.pe_stats_[part->name()];
      pe_order_.push_back(pe.get());
      pes_by_name_[part->name()] = pe.get();
      pes_[part] = std::move(pe);
    }
    for (const uml::Property* part : sys_.plat().segments()) {
      auto seg = std::make_unique<Seg>();
      seg->part = part;
      seg->name = part->name();
      seg->name_id = owner_.log_.intern_name(part->name());
      seg->width_bits = tag_long_of(*part, "DataWidth", 32);
      seg->freq_mhz = tag_long_of(*part, "Frequency", 100);
      seg->priority_arb =
          part->tagged_value("Arbitration") != profile::tags::ArbitrationRoundRobin;
      seg->rng_key = FaultRng::key(part->name());
      seg->stats = &owner_.segment_stats_[part->name()];
      segs_by_name_[part->name()] = seg.get();
      segs_[part] = std::move(seg);
    }
    for (const uml::Property* part : sys_.app().processes()) {
      const uml::Class* comp = part->part_type();
      if (comp == nullptr || comp->behavior() == nullptr) {
        defects.push_back("process '" + part->name() +
                          "' has no executable behaviour");
        continue;
      }
      const uml::Property* target = sys_.instance_for_process(*part);
      if (target == nullptr) {
        defects.push_back(
            "process '" + part->name() +
            "' is not mapped to any platform component instance");
        continue;
      }
      auto proc = std::make_unique<Proc>(*comp->behavior(), part->name());
      proc->part = part;
      proc->name_id = owner_.log_.intern_name(part->name());
      proc->pe = pes_.at(target).get();
      proc->home = proc->pe;
      proc->hw = part->tagged_value("ProcessType") == "hardware";
      proc->priority = sys_.process_priority(*part);
      procs_by_part_[part] = proc.get();
      procs_by_name_[part->name()] = proc.get();
      procs_.push_back(std::move(proc));
    }
    // Every pair of PEs that host processes must be routable. A PE detached
    // from every segment is reported as such once; unroutable attached
    // pairs are reported per pair.
    std::set<std::string> detached;
    std::set<std::pair<std::string, std::string>> unroutable;
    for (const auto& a : procs_) {
      for (const auto& b : procs_) {
        if (a->pe == b->pe) continue;
        if (!sys_.plat().route(*a->pe->part, *b->pe->part).empty()) continue;
        bool pair_ok = true;
        for (const Pe* pe : {a->pe, b->pe}) {
          if (sys_.plat().segment_of(*pe->part) == nullptr &&
              detached.insert(pe->name).second) {
            defects.push_back("instance '" + pe->name +
                              "' is not attached to any communication "
                              "segment but hosts remote communication");
            pair_ok = false;
          }
        }
        if (pair_ok &&
            unroutable.insert({std::min(a->pe->name, b->pe->name),
                               std::max(a->pe->name, b->pe->name)})
                .second) {
          defects.push_back("no communication route between '" + a->pe->name +
                            "' and '" + b->pe->name + "'");
        }
      }
    }
    check_fault_plan(defects);
    if (!defects.empty()) {
      std::string msg = "model is not executable (" +
                        std::to_string(defects.size()) + " defect" +
                        (defects.size() == 1 ? "" : "s") + "):";
      for (const std::string& d : defects) msg += "\n  - " + d;
      throw std::runtime_error(msg);
    }
  }

  /// Appends fault-plan defects (structure + unresolved component names).
  void check_fault_plan(std::vector<std::string>& defects) {
    const FaultPlan& plan = owner_.config_.faults;
    if (!faults_on_) return;
    for (const std::string& d : plan.validate()) {
      defects.push_back("fault plan: " + d);
    }
    for (const FaultWindow& w : plan.pe_faults) {
      if (!w.component.empty() && pes_by_name_.count(w.component) == 0) {
        defects.push_back("fault plan: unknown component instance '" +
                          w.component + "'");
      }
    }
    for (const FaultWindow& w : plan.segment_faults) {
      if (!w.component.empty() && segs_by_name_.count(w.component) == 0) {
        defects.push_back("fault plan: unknown segment '" + w.component + "'");
      }
    }
    for (const BitErrorSpec& b : plan.bit_errors) {
      auto it = segs_by_name_.find(b.segment);
      if (it == segs_by_name_.end()) {
        if (!b.segment.empty()) {
          defects.push_back("fault plan: unknown segment '" + b.segment + "'");
        }
      } else {
        it->second->ber_ppm = b.rate_ppm;
      }
    }
    for (const SignalFault& s : plan.signal_faults) {
      if (!s.process.empty() && procs_by_name_.count(s.process) == 0) {
        defects.push_back("fault plan: unknown process '" + s.process + "'");
      }
    }
  }

  // -- fault injection ---------------------------------------------------------

  /// Schedules every fault event of the plan at simulation start. All times
  /// are absolute; recurring behaviour is expressed as multiple windows.
  /// Overlapping windows on the same component are not merged: the first
  /// clear ends the fault.
  void schedule_faults() {
    const FaultPlan& plan = owner_.config_.faults;
    for (const FaultWindow& w : plan.pe_faults) {
      Pe* pe = pes_by_name_.at(w.component);
      kernel_.schedule_at(w.start, [this, pe]() { raise_pe_fault(*pe); });
      if (w.end != 0) {
        kernel_.schedule_at(w.end, [this, pe]() { clear_pe_fault(*pe); });
      }
    }
    for (const FaultWindow& w : plan.segment_faults) {
      Seg* seg = segs_by_name_.at(w.component);
      kernel_.schedule_at(w.start, [this, seg]() { raise_seg_fault(*seg); });
      if (w.end != 0) {
        kernel_.schedule_at(w.end, [this, seg]() { clear_seg_fault(*seg); });
      }
    }
    for (std::size_t i = 0; i < plan.signal_faults.size(); ++i) {
      const SignalFault& s = plan.signal_faults[i];
      Proc* proc = procs_by_name_.at(s.process);
      kernel_.schedule_at(s.start, [this, proc]() {
        owner_.log_.fault_id(kernel_.now(), proc->name_id);
      });
      if (s.end != 0) {
        kernel_.schedule_at(s.end, [this, proc, i]() {
          owner_.log_.clear_id(kernel_.now(), proc->name_id);
          flush_stuck(i);
        });
      }
    }
    if (plan.watchdog_timeout > 0) {
      for (auto& proc : procs_) {
        Proc* p = proc.get();
        kernel_.schedule_at(plan.watchdog_timeout,
                            [this, p]() { watchdog_check(*p); });
      }
    }
  }

  void raise_pe_fault(Pe& pe) {
    if (pe.failed) return;
    pe.failed = true;
    owner_.log_.fault_id(kernel_.now(), pe.name_id);
    // Abort the step in flight and discard preempted work: a dead PE makes
    // no further progress, so half-finished transitions are lost.
    ++pe.run_gen;
    pe.running.reset();
    pe.suspended.clear();
    // Migrate residents to the least-loaded compatible survivor (hardware
    // processes only onto hardware accelerators, software processes onto
    // programmable PEs). With no survivor a process stays and stalls until
    // the PE recovers.
    Pe* sw_dest = pick_failover(false, pe);
    Pe* hw_dest = pick_failover(true, pe);
    for (auto& proc : procs_) {
      if (proc->pe != &pe) continue;
      Pe* dest = proc->hw ? hw_dest : sw_dest;
      if (dest != nullptr) migrate(*proc, *dest);
    }
  }

  void clear_pe_fault(Pe& pe) {
    if (!pe.failed) return;
    pe.failed = false;
    owner_.log_.clear_id(kernel_.now(), pe.name_id);
    // Evacuated processes come home; stranded ones resume in place.
    for (auto& proc : procs_) {
      if (proc->home == &pe && proc->pe != &pe) migrate(*proc, pe);
    }
    start_step(pe);
  }

  /// The FailoverPolicy choice among compatible surviving PEs, or nullptr.
  /// Candidates are collected in sys_.plat().instances() order and loads are
  /// simulation state, so the choice is reproducible across runs.
  Pe* pick_failover(bool hw, const Pe& failed) {
    std::vector<mapping::FailoverPolicy::Candidate> candidates;
    std::vector<Pe*> pes;
    for (Pe* pe : pe_order_) {
      if (pe == &failed || pe->failed || pe->hw_accel != hw) continue;
      candidates.push_back(
          {pe->name, static_cast<double>(pe->stats->busy_time)});
      pes.push_back(pe);
    }
    const std::size_t pick = failover_.choose(candidates);
    return pick == mapping::FailoverPolicy::npos ? nullptr : pes[pick];
  }

  void migrate(Proc& proc, Pe& dest) {
    Pe& from = *proc.pe;
    if (&from == &dest) return;
    if (proc.ready) {
      auto it = std::find(from.ready.begin(), from.ready.end(), &proc);
      if (it != from.ready.end()) from.ready.erase(it);
      proc.ready = false;
    }
    owner_.log_.migrate_id(kernel_.now(), proc.name_id, from.name_id,
                           dest.name_id);
    proc.pe = &dest;
    make_ready(proc);
  }

  void raise_seg_fault(Seg& seg) {
    if (seg.faulted) return;
    seg.faulted = true;
    owner_.log_.fault_id(kernel_.now(), seg.name_id);
    // Queued transfers back off immediately; a transfer being granted right
    // now notices the fault when its grant completes.
    std::deque<std::size_t> waiting = std::move(seg.waiting);
    seg.waiting.clear();
    for (const std::size_t index : waiting) retry_transfer(index);
  }

  void clear_seg_fault(Seg& seg) {
    if (!seg.faulted) return;
    seg.faulted = false;
    owner_.log_.clear_id(kernel_.now(), seg.name_id);
    try_grant(seg);
  }

  /// Restarts a transfer from its first hop after a fault or bit error,
  /// with exponential backoff, until the retry budget is spent (then the
  /// signal is dropped at the destination).
  void retry_transfer(std::size_t index) {
    Transfer& x = *transfers_[index];
    x.hop = 0;
    x.remaining_cycles = 0;
    ++x.attempts;
    const FaultPlan& plan = owner_.config_.faults;
    if (x.attempts > plan.max_retries) {
      x.done = true;
      owner_.log_.drop_id(kernel_.now(), x.dest->name_id,
                          signal_id(x.event.signal));
      return;
    }
    owner_.log_.retry_id(kernel_.now(), x.from, signal_id(x.event.signal),
                         x.attempts);
    const Time delay = plan.retry_backoff << (x.attempts - 1);
    kernel_.schedule_in(delay, [this, index]() { request_segment(index); });
  }

  /// True when the hop whose grant just completed must be re-sent: the
  /// segment faulted mid-transfer, or the finished hop drew a bit error.
  /// The draw is counter-based — (seed, segment, per-segment sequence) —
  /// so it is identical run to run.
  bool hop_disturbed(Seg& seg, Transfer& x) {
    if (seg.faulted) return true;
    if (x.remaining_cycles > 0 || seg.ber_ppm == 0) return false;
    const FaultPlan& plan = owner_.config_.faults;
    return FaultRng::draw(plan.seed, seg.rng_key, seg.ber_seq++) % 1'000'000 <
           seg.ber_ppm;
  }

  /// First active signal fault matching a delivery, or nullptr (index out).
  const SignalFault* active_signal_fault(const Proc& to,
                                         const efsm::Event& event,
                                         std::size_t& index_out) const {
    const auto& sfs = owner_.config_.faults.signal_faults;
    const Time now = kernel_.now();
    for (std::size_t i = 0; i < sfs.size(); ++i) {
      const SignalFault& s = sfs[i];
      if (now < s.start || (s.end != 0 && now >= s.end)) continue;
      if (s.process != to.name) continue;
      if (!s.signal.empty() &&
          (event.signal == nullptr || s.signal != event.signal->name())) {
        continue;
      }
      index_out = i;
      return &s;
    }
    return nullptr;
  }

  /// Releases signals held by a stuck-signal window when it closes. Each is
  /// re-checked against the remaining windows on redelivery.
  void flush_stuck(std::size_t index) {
    auto it = stuck_.find(index);
    if (it == stuck_.end()) return;
    std::vector<Stuck> held = std::move(it->second);
    stuck_.erase(it);
    for (Stuck& s : held) deliver_local(*s.to, std::move(s.event), s.from);
  }

  /// Per-process watchdog: when a process has not fired a transition for
  /// watchdog_timeout ticks, its EFSM instance is reset to the initial
  /// state (pending events are kept, armed timers are cancelled) and the
  /// timer re-arms.
  void watchdog_check(Proc& proc) {
    const Time timeout = owner_.config_.faults.watchdog_timeout;
    const Time due = proc.last_progress + timeout;
    if (kernel_.now() < due) {
      kernel_.schedule_at(due, [this, &proc]() { watchdog_check(proc); });
      return;
    }
    owner_.log_.watchdog_id(kernel_.now(), proc.name_id);
    proc.last_progress = kernel_.now();
    PendingEvent ev;
    ev.kind = PendingEvent::Kind::Reset;
    proc.queue.push_front(std::move(ev));
    make_ready(proc);
    kernel_.schedule_at(kernel_.now() + timeout,
                        [this, &proc]() { watchdog_check(proc); });
  }

  // -- PE scheduling -----------------------------------------------------------

  void make_ready(Proc& proc) {
    if (proc.ready || proc.queue.empty()) return;
    proc.ready = true;
    proc.ready_seq = ++ready_counter_;
    proc.pe->ready.push_back(&proc);
    maybe_preempt(*proc.pe, proc);
    start_step(*proc.pe);
  }

  /// Suspends the running step when a strictly higher-priority process
  /// becomes ready on a preemptive PE.
  void maybe_preempt(Pe& pe, const Proc& challenger) {
    if (!pe.preemptive || !pe.running.has_value()) return;
    if (challenger.priority <= pe.running->proc->priority) return;
    // Steps completing at the current instant are not preemptible: their
    // completion event is already due.
    if (pe.running->end <= kernel_.now()) return;
    ++pe.run_gen;  // invalidate the scheduled completion
    Pe::Suspended s;
    s.proc = pe.running->proc;
    s.result = std::move(pe.running->result);
    s.remaining = pe.running->end - kernel_.now();
    pe.suspended.push_back(std::move(s));
    pe.running.reset();
    ++pe.stats->preemptions;
  }

  /// The highest-priority ready process (FIFO among equals), or ready.end().
  std::vector<Proc*>::iterator best_ready(Pe& pe) {
    auto best = pe.ready.begin();
    for (auto it = pe.ready.begin(); it != pe.ready.end(); ++it) {
      if ((*it)->priority > (*best)->priority ||
          ((*it)->priority == (*best)->priority &&
           (*it)->ready_seq < (*best)->ready_seq)) {
        best = it;
      }
    }
    return best;
  }

  void schedule_completion(Pe& pe, Time dur) {
    pe.running->end = kernel_.now() + dur;
    const std::uint64_t gen = ++pe.run_gen;
    kernel_.schedule_in(dur, [this, &pe, gen]() {
      if (pe.run_gen == gen) finish_step(pe);
    });
  }

  /// Context-switch overhead in ticks, accounted as PE busy time.
  Time switch_overhead(Pe& pe) {
    const Time t = cycles_to_ticks(pe.ctx_switch_cycles, pe.freq_mhz);
    pe.stats->overhead_time += t;
    pe.stats->busy_time += t;
    return t;
  }

  void start_step(Pe& pe) {
    if (pe.busy() || pe.failed) return;

    // Resume a suspended step unless a strictly higher-priority process is
    // ready (it would immediately preempt again).
    auto best = best_ready(pe);
    const bool have_ready = best != pe.ready.end();
    if (!pe.suspended.empty() &&
        (!have_ready ||
         pe.suspended.back().proc->priority >= (*best)->priority)) {
      resume_step(pe);
      return;
    }
    if (!have_ready) return;

    Proc* proc = *best;
    pe.ready.erase(best);
    proc->ready = false;

    PendingEvent ev = std::move(proc->queue.front());
    proc->queue.pop_front();

    efsm::StepResult result;
    bool fired = true;
    switch (ev.kind) {
      case PendingEvent::Kind::Start:
        result = proc->inst.start();
        break;
      case PendingEvent::Kind::Signal:
        result = proc->inst.deliver(ev.event);
        fired = result.fired;
        if (!fired) {
          owner_.log_.drop_id(kernel_.now(), proc->name_id,
                              signal_id(ev.event.signal));
        }
        break;
      case PendingEvent::Kind::Timer:
        result = proc->inst.timer_fired(ev.timer);
        fired = result.fired;
        break;
      case PendingEvent::Kind::Reset:
        // Watchdog recovery: cancel every armed timer, then restart the
        // EFSM from its initial state.
        for (auto& [name, gen] : proc->timer_gen) ++gen;
        result = proc->inst.reset();
        break;
    }

    Time dur = cycles_to_ticks(result.compute_cycles, pe.freq_mhz);
    PeStats& stats = *pe.stats;
    ++stats.dispatched;
    if (fired) {
      if (faults_on_) proc->last_progress = kernel_.now();
      ++stats.steps;
      stats.busy_time += dur;
      if (owner_.config_.log_runs) {
        owner_.log_.run_id(kernel_.now(), proc->name_id, result.compute_cycles,
                           dur);
      }
    }
    // Dispatching on top of suspended work implies the RTOS switched
    // contexts to get here.
    if (!pe.suspended.empty()) dur += switch_overhead(pe);

    pe.running = Pe::Running{proc, std::move(result), 0};
    schedule_completion(pe, dur);
  }

  void resume_step(Pe& pe) {
    Pe::Suspended s = std::move(pe.suspended.back());
    pe.suspended.pop_back();
    // Switching back into the preempted context costs the RTOS overhead.
    const Time dur = s.remaining + switch_overhead(pe);
    pe.running = Pe::Running{s.proc, std::move(s.result), 0};
    schedule_completion(pe, dur);
  }

  void finish_step(Pe& pe) {
    Proc& proc = *pe.running->proc;
    const efsm::StepResult result = std::move(pe.running->result);
    pe.running.reset();
    // Timers first: a timer armed by this step may be reset by a later step,
    // but not vice versa within one step (actions already ordered upstream).
    for (const efsm::TimerOp& op : result.timers) {
      const std::uint64_t gen = ++proc.timer_gen[op.name];
      if (op.kind == efsm::TimerOp::Kind::Set) {
        const Time delay = op.delay > 0 ? static_cast<Time>(op.delay) : 0;
        kernel_.schedule_in(delay, [this, &proc, name = op.name, gen]() {
          on_timer(proc, name, gen);
        });
      }
    }
    for (const efsm::Send& send : result.sends) {
      dispatch_send(proc, send);
    }
    make_ready(proc);  // it may have more pending events
    start_step(pe);
  }

  void on_timer(Proc& proc, const std::string& name, std::uint64_t gen) {
    auto it = proc.timer_gen.find(name);
    if (it == proc.timer_gen.end() || it->second != gen) return;  // stale
    PendingEvent ev;
    ev.kind = PendingEvent::Kind::Timer;
    ev.timer = name;
    proc.queue.push_back(std::move(ev));
    make_ready(proc);
  }

  // -- communication -------------------------------------------------------------

  void dispatch_send(Proc& from, const efsm::Send& send) {
    const Time now = kernel_.now();
    const efsm::Endpoint dest = router_.destination(*from.part, send.port);
    const std::size_t bytes =
        send.signal != nullptr ? send.signal->payload_bytes() : 4;
    const intern::Id sig_id = signal_id(send.signal);

    if (dest.is_environment()) {
      owner_.log_.send_id(now, from.name_id, env_id_, sig_id, bytes);
      return;
    }
    auto it = procs_by_part_.find(dest.part);
    if (it == procs_by_part_.end()) {
      // Destination part is not an executable process (e.g. a structural
      // part): treat as environment.
      owner_.log_.send_id(now, from.name_id, env_id_, sig_id, bytes);
      return;
    }
    Proc& to = *it->second;
    owner_.log_.send_id(now, from.name_id, to.name_id, sig_id, bytes);

    efsm::Event event;
    event.signal = send.signal;
    event.port = dest.port != nullptr ? dest.port->name() : "";
    event.args = send.args;

    if (to.pe == from.pe) {
      deliver_local(to, std::move(event), from.name_id);
      return;
    }

    // Remote: traverse the segment route.
    auto xfer = std::make_unique<Transfer>();
    xfer->dest = &to;
    xfer->from = from.name_id;
    xfer->event = std::move(event);
    for (const uml::Property* seg_part :
         sys_.plat().route(*from.pe->part, *to.pe->part)) {
      xfer->path.push_back(segs_.at(seg_part).get());
    }
    xfer->bytes = bytes;
    xfer->priority = from.priority;
    xfer->rr_key = tag_long_of(*from.pe->part, "ID", 0);
    xfer->max_grant_cycles = wrapper_max_time(*from.pe->part);
    const std::size_t index = transfers_.size();
    transfers_.push_back(std::move(xfer));
    request_segment(index);
  }

  long wrapper_max_time(const uml::Property& instance) const {
    for (const uml::Connector* w : sys_.plat().wrappers_of(instance)) {
      const long mt = tag_long_of(*w, "MaxTime", 0);
      if (mt > 0) return mt;
    }
    return 0;
  }

  void deliver_local(Proc& to, efsm::Event event, intern::Id from) {
    if (faults_on_) {
      std::size_t sf_index = 0;
      if (const SignalFault* sf =
              active_signal_fault(to, event, sf_index)) {
        if (sf->kind == SignalFault::Kind::Lost) {
          owner_.log_.drop_id(kernel_.now(), to.name_id,
                              signal_id(event.signal));
        } else {
          stuck_[sf_index].push_back(Stuck{&to, std::move(event), from});
        }
        return;
      }
    }
    owner_.log_.receive_id(kernel_.now(), to.name_id, from,
                           signal_id(event.signal));
    PendingEvent ev;
    ev.kind = PendingEvent::Kind::Signal;
    ev.event = std::move(event);
    ev.from = from;
    to.queue.push_back(std::move(ev));
    make_ready(to);
  }

  /// Interned id of a signal's name, cached per Signal object.
  intern::Id signal_id(const uml::Signal* signal) {
    if (signal == nullptr) return unknown_sig_id_;
    auto [it, inserted] = signal_ids_.try_emplace(signal, intern::kNoId);
    if (inserted) it->second = owner_.log_.intern_name(signal->name());
    return it->second;
  }

  void request_segment(std::size_t index) {
    Transfer& x = *transfers_[index];
    Seg& seg = *x.path[x.hop];
    if (faults_on_ && seg.faulted) {
      retry_transfer(index);
      return;
    }
    if (x.remaining_cycles == 0) {
      const long words =
          static_cast<long>((x.bytes * 8 + seg.width_bits - 1) / seg.width_bits);
      x.remaining_cycles = words + owner_.config_.segment_overhead_cycles;
    }
    x.enqueue_time = kernel_.now();
    seg.waiting.push_back(index);
    try_grant(seg);
  }

  void try_grant(Seg& seg) {
    if (seg.busy || seg.waiting.empty()) return;

    // Pick the next transfer per the segment's arbitration scheme.
    std::size_t pick = 0;
    if (seg.priority_arb) {
      for (std::size_t i = 1; i < seg.waiting.size(); ++i) {
        if (transfers_[seg.waiting[i]]->priority >
            transfers_[seg.waiting[pick]]->priority) {
          pick = i;
        }
      }
    } else {
      // Round-robin over sender IDs: the smallest key strictly greater than
      // the last served, wrapping around.
      long best_key = -1;
      bool found = false;
      for (std::size_t i = 0; i < seg.waiting.size(); ++i) {
        const long key = transfers_[seg.waiting[i]]->rr_key;
        const bool after = key > seg.last_rr;
        const bool best_after = best_key > seg.last_rr;
        if (!found ||
            (after && (!best_after || key < best_key)) ||
            (!after && !best_after && key < best_key)) {
          pick = i;
          best_key = key;
          found = true;
        }
      }
      seg.last_rr = best_key;
    }

    const std::size_t index = seg.waiting[pick];
    seg.waiting.erase(seg.waiting.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    Transfer& x = *transfers_[index];

    const bool capped = x.hop == 0 && x.max_grant_cycles > 0;
    const long grant =
        capped ? std::min(x.remaining_cycles, x.max_grant_cycles)
               : x.remaining_cycles;
    const Time dur = cycles_to_ticks(grant, seg.freq_mhz);

    SegmentStats& stats = *seg.stats;
    ++stats.grants;
    stats.busy_time += dur;
    stats.wait_time += kernel_.now() - x.enqueue_time;

    seg.busy = true;
    kernel_.schedule_in(dur, [this, &seg, index, grant]() {
      grant_done(seg, index, grant);
    });
  }

  void grant_done(Seg& seg, std::size_t index, long granted) {
    seg.busy = false;
    Transfer& x = *transfers_[index];
    x.remaining_cycles -= granted;
    if (faults_on_ && hop_disturbed(seg, x)) {
      retry_transfer(index);
      try_grant(seg);
      return;
    }
    if (x.remaining_cycles > 0) {
      // Re-arbitrate for the rest of this hop (MaxTime chunking).
      x.enqueue_time = kernel_.now();
      seg.waiting.push_back(index);
    } else {
      ++seg.stats->transfers;
      ++x.hop;
      if (x.hop < x.path.size()) {
        x.remaining_cycles = 0;
        request_segment(index);
      } else {
        x.done = true;
        deliver_local(*x.dest, std::move(x.event), x.from);
      }
    }
    try_grant(seg);
  }

  // -- environment ---------------------------------------------------------------

  void inject(Time t, const std::string& port, const uml::Signal& signal,
              std::vector<long> args) {
    if (t < kernel_.now()) {
      throw std::invalid_argument(
          "cannot inject '" + signal.name() + "' at t=" + std::to_string(t) +
          ": simulation time has already advanced to " +
          std::to_string(kernel_.now()));
    }
    kernel_.schedule_at(t, [this, port, &signal, args = std::move(args)]() {
      const intern::Id sig_id = signal_id(&signal);
      const efsm::Endpoint dest = router_.boundary_destination(port);
      if (dest.part == nullptr) {
        owner_.log_.send_id(kernel_.now(), env_id_, env_id_, sig_id,
                            signal.payload_bytes());
        return;
      }
      auto it = procs_by_part_.find(dest.part);
      if (it == procs_by_part_.end()) {
        owner_.log_.send_id(kernel_.now(), env_id_, env_id_, sig_id,
                            signal.payload_bytes());
        return;
      }
      owner_.log_.send_id(kernel_.now(), env_id_, it->second->name_id, sig_id,
                          signal.payload_bytes());
      efsm::Event event;
      event.signal = &signal;
      event.port = dest.port != nullptr ? dest.port->name() : "";
      event.args = args;
      deliver_local(*it->second, std::move(event), env_id_);
    });
  }

  void start_all() {
    if (started_) return;
    started_ = true;
    if (faults_on_) schedule_faults();
    for (auto& proc : procs_) {
      PendingEvent ev;
      ev.kind = PendingEvent::Kind::Start;
      proc->queue.push_front(std::move(ev));
      make_ready(*proc);
    }
  }

  /// A delivery held back by a stuck-signal fault window.
  struct Stuck {
    Proc* to = nullptr;
    efsm::Event event;
    intern::Id from = intern::kNoId;
  };

  const mapping::SystemView& sys_;
  Simulation& owner_;
  efsm::Router router_;
  Kernel kernel_;
  bool started_ = false;
  std::uint64_t ready_counter_ = 0;
  bool faults_on_ = false;  // Config::faults is non-empty
  mapping::FailoverPolicy failover_;
  std::map<std::size_t, std::vector<Stuck>> stuck_;  // by signal-fault index

  std::vector<std::unique_ptr<Proc>> procs_;
  std::map<const uml::Property*, Proc*> procs_by_part_;
  std::map<std::string, Proc*> procs_by_name_;
  std::map<const uml::Property*, std::unique_ptr<Pe>> pes_;
  /// PEs in sys_.plat().instances() order: failover candidate collection
  /// must not iterate pes_ (keyed by pointer, nondeterministic across runs).
  std::vector<Pe*> pe_order_;
  std::map<std::string, Pe*> pes_by_name_;
  std::map<const uml::Property*, std::unique_ptr<Seg>> segs_;
  std::map<std::string, Seg*> segs_by_name_;
  std::vector<std::unique_ptr<Transfer>> transfers_;

  intern::Id env_id_ = intern::kNoId;
  intern::Id unknown_sig_id_ = intern::kNoId;
  std::unordered_map<const uml::Signal*, intern::Id> signal_ids_;
};

Simulation::Simulation(const mapping::SystemView& sys, Config config)
    : config_(config) {
  impl_ = std::make_unique<Impl>(sys, *this);
}

Simulation::~Simulation() = default;

void Simulation::inject(Time t, const std::string& boundary_port,
                        const uml::Signal& signal, std::vector<long> args) {
  impl_->inject(t, boundary_port, signal, std::move(args));
}

void Simulation::inject_periodic(Time first, Time period, std::size_t count,
                                 const std::string& boundary_port,
                                 const uml::Signal& signal,
                                 std::vector<long> args) {
  // Each injected signal typically yields a handful of records (env send,
  // receive, run, forwarded sends); reserve up front to curb reallocation.
  log_.reserve(log_.size() + 4 * count);
  for (std::size_t i = 0; i < count; ++i) {
    inject(first + static_cast<Time>(i) * period, boundary_port, signal, args);
  }
}

void Simulation::run() { run_until(config_.horizon); }

void Simulation::run_until(Time horizon) {
  impl_->start_all();
  impl_->kernel_.run(horizon);
}

Time Simulation::now() const noexcept { return impl_->kernel_.now(); }

const efsm::Instance& Simulation::instance(const std::string& process) const {
  auto it = impl_->procs_by_name_.find(process);
  if (it == impl_->procs_by_name_.end()) {
    throw std::out_of_range("no process named '" + process + "'");
  }
  return it->second->inst;
}

std::uint64_t Simulation::events_dispatched() const noexcept {
  return impl_->kernel_.dispatched();
}

}  // namespace tut::sim
