#include "sim/simulator.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "sim/backend.hpp"
#include "sim/compiled.hpp"
#include "sim/event.hpp"

namespace tut::sim {

namespace {

/// Converts component cycles to ticks (1 tick = 1 ns): ceil(c * 1000 / MHz).
Time cycles_to_ticks(long cycles, long freq_mhz) {
  if (cycles <= 0) return 0;
  if (freq_mhz <= 0) freq_mhz = 50;
  const auto c = static_cast<std::uint64_t>(cycles);
  const auto f = static_cast<std::uint64_t>(freq_mhz);
  return (c * 1000 + f - 1) / f;
}

}  // namespace

// The hot loop is a POD event queue (EventQueue) drained by the dispatch()
// switch below: event records carry dense indices into the flat pes_ /
// segs_ / procs_ / transfers_ tables, so dispatching touches no
// std::function and allocates nothing. All static model facts (routes,
// frequencies, arbitration modes, port destinations) come precomputed from
// the shared CompiledModel; this Impl holds only per-run mutable state.
struct Simulation::Impl {
  struct Pe;

  struct PendingEvent {
    enum class Kind { Start, Signal, Timer, Reset };
    Kind kind = Kind::Signal;
    efsm::Event event;                // Signal
    intern::Id from = intern::kNoId;  // Signal
    std::uint32_t timer = 0;          // Timer (id into timer_names_)
  };

  /// EFSM backend of one process: the AST interpreter (SystemView
  /// constructor), the bytecode image (CompiledModel constructor), or an
  /// out-of-line executor drawn from a BackendImage (e.g. dlopen'ed native
  /// code). Exactly one of the three is set.
  struct Behavior {
    std::optional<efsm::Instance> ast;
    std::optional<efsm::CompiledInstance> code;
    std::unique_ptr<ProcExecutor> ext;

    efsm::StepResult start() {
      return ast ? ast->start() : code ? code->start() : ext->start();
    }
    efsm::StepResult reset() {
      return ast ? ast->reset() : code ? code->reset() : ext->reset();
    }
    efsm::StepResult deliver(const efsm::Event& e) {
      return ast ? ast->deliver(e) : code ? code->deliver(e) : ext->deliver(e);
    }
    efsm::StepResult timer_fired(const std::string& t) {
      return ast      ? ast->timer_fired(t)
             : code   ? code->timer_fired(t)
                      : ext->timer_fired(t);
    }
    void rewind() {
      if (ast) {
        ast->rewind();
      } else if (code) {
        code->rewind();
      } else {
        ext->rewind();
      }
    }
  };

  struct Proc {
    const CompiledModel::ProcInfo* info = nullptr;
    std::uint32_t index = 0;
    intern::Id name_id = intern::kNoId;
    Behavior inst;
    std::uint32_t pe = 0;    // executing PE; failover migrates this
    std::deque<PendingEvent> queue;
    std::map<std::uint32_t, std::uint64_t> timer_gen;  // by timer id
    bool ready = false;             // enlisted in pe->ready
    std::uint64_t ready_seq = 0;    // FIFO tie-break among equal priorities
    Time last_progress = 0;         // last fired transition (watchdog)
  };

  struct Pe {
    const CompiledModel::PeInfo* info = nullptr;
    std::uint32_t index = 0;
    intern::Id name_id = intern::kNoId;
    PeStats* stats = nullptr;  // owner_.pe_stats_ entry (map nodes are stable)
    bool failed = false;       // inside a PE fault window
    std::vector<Proc*> ready;

    // The step currently executing, if any. `run_gen` invalidates the
    // scheduled completion event when the step is preempted.
    struct Running {
      Proc* proc = nullptr;
      efsm::StepResult result;
      Time end = 0;
    };
    std::optional<Running> running;
    std::uint64_t run_gen = 0;

    // Steps suspended by preemption. LIFO: preemption only ever stacks a
    // strictly higher-priority step on top, so the back has the highest
    // priority among suspended steps.
    struct Suspended {
      Proc* proc = nullptr;
      efsm::StepResult result;
      Time remaining = 0;
    };
    std::vector<Suspended> suspended;

    bool busy() const noexcept { return running.has_value(); }
  };

  struct Seg {
    const CompiledModel::SegInfo* info = nullptr;
    std::uint32_t index = 0;
    intern::Id name_id = intern::kNoId;
    SegmentStats* stats = nullptr;
    bool busy = false;
    bool faulted = false;          // inside a segment fault window
    std::uint32_t ber_ppm = 0;     // bit errors per million completed hops
    std::uint64_t ber_seq = 0;     // FaultRng sequence counter
    long last_rr = -1;
    std::deque<std::size_t> waiting;  // indices into transfers_
  };

  struct Transfer {
    std::uint32_t dest = 0;    // destination process index
    intern::Id from = intern::kNoId;
    efsm::Event event;
    const std::vector<std::uint32_t>* path = nullptr;  // model route (segs)
    std::size_t hop = 0;
    std::size_t bytes = 0;
    long priority = 0;
    long rr_key = 0;           // sender instance ID (round-robin order)
    long max_grant_cycles = 0; // sender wrapper MaxTime; 0 = unlimited
    long remaining_cycles = 0; // on current hop; 0 = not yet computed
    Time enqueue_time = 0;
    int attempts = 0;          // fault retries consumed
    bool done = false;
  };

  /// A boundary injection, fired by an Inject event.
  struct Injection {
    std::string port;
    const uml::Signal* signal = nullptr;
    std::vector<long> args;
  };

  Impl(std::shared_ptr<const CompiledModel> model, Simulation& owner,
       std::vector<std::string> defects,
       std::shared_ptr<const BackendImage> backend = nullptr)
      : model_(std::move(model)),
        backend_(std::move(backend)),
        owner_(owner) {
    build(std::move(defects));
  }

  void build(std::vector<std::string> defects) {
    apply_envelope();
    env_id_ = owner_.log_.intern_name(kEnvironment);
    unknown_sig_id_ = owner_.log_.intern_name("?");
    faults_on_ = !owner_.config_.faults.empty();
    use_bytecode_ = model_->has_machines();

    pes_.reserve(model_->pes().size());
    for (const CompiledModel::PeInfo& info : model_->pes()) {
      Pe pe;
      pe.info = &info;
      pe.index = static_cast<std::uint32_t>(pes_.size());
      pe.name_id = owner_.log_.intern_name(info.name);
      pe.stats = &owner_.pe_stats_[info.name];
      pes_.push_back(std::move(pe));
    }
    segs_.reserve(model_->segs().size());
    for (const CompiledModel::SegInfo& info : model_->segs()) {
      Seg seg;
      seg.info = &info;
      seg.index = static_cast<std::uint32_t>(segs_.size());
      seg.name_id = owner_.log_.intern_name(info.name);
      seg.stats = &owner_.segment_stats_[info.name];
      segs_.push_back(std::move(seg));
    }
    procs_.reserve(model_->procs().size());
    for (const CompiledModel::ProcInfo& info : model_->procs()) {
      Proc proc;
      proc.info = &info;
      proc.index = static_cast<std::uint32_t>(procs_.size());
      proc.name_id = owner_.log_.intern_name(info.name);
      if (backend_) {
        proc.inst.ext = backend_->make_executor(proc.index);
      } else if (use_bytecode_) {
        proc.inst.code.emplace(*info.machine, info.name);
      } else {
        proc.inst.ast.emplace(*info.behavior, info.name);
      }
      proc.pe = info.home_pe;
      procs_.push_back(std::move(proc));
    }

    check_fault_plan(defects);
    if (!defects.empty()) throw_defects(defects);
  }

  [[noreturn]] static void throw_defects(
      const std::vector<std::string>& defects) {
    std::string msg = "model is not executable (" +
                      std::to_string(defects.size()) + " defect" +
                      (defects.size() == 1 ? "" : "s") + "):";
    for (const std::string& d : defects) msg += "\n  - " + d;
    throw std::runtime_error(msg);
  }

  /// Rewinds every piece of per-run state to its value after build() while
  /// keeping allocations: the event queue's heap, the EFSM slot files, the
  /// transfer/injection stores, the log's record vector and name table, and
  /// the stats map nodes all survive. The caller has already replaced
  /// owner_.config_, so fault resolution runs against the new plan. Interned
  /// ids (process names, timers, signals) deliberately persist — they map
  /// to the same names, and nothing observable depends on id values.
  void reset_run() {
    queue_.reset();
    started_ = false;
    ready_counter_ = 0;
    transfers_.clear();
    injects_.clear();
    stuck_.clear();
    faults_on_ = !owner_.config_.faults.empty();
    for (Proc& proc : procs_) {
      proc.inst.rewind();
      proc.pe = proc.info->home_pe;
      proc.queue.clear();
      proc.timer_gen.clear();
      proc.ready = false;
      proc.ready_seq = 0;
      proc.last_progress = 0;
    }
    for (Pe& pe : pes_) {
      pe.failed = false;
      pe.ready.clear();
      pe.running.reset();
      pe.run_gen = 0;
      pe.suspended.clear();
      *pe.stats = PeStats{};
    }
    for (Seg& seg : segs_) {
      seg.busy = false;
      seg.faulted = false;
      seg.ber_ppm = 0;
      seg.ber_seq = 0;
      seg.last_rr = -1;
      seg.waiting.clear();
      *seg.stats = SegmentStats{};
    }
    owner_.log_.clear();
    apply_envelope();  // config_ may carry a different profile now
    std::vector<std::string> defects;
    check_fault_plan(defects);  // re-resolves names, re-applies bit errors
    if (!defects.empty()) throw_defects(defects);
  }

  /// Arms the run's resource envelope on the log and the event queue.
  /// Unbounded caps (the default profile) disarm them, reproducing the
  /// pre-envelope behaviour exactly.
  void apply_envelope() {
    const ResourceProfile& env = owner_.config_.envelope;
    queue_.set_capacity(env.event_queue);
    owner_.log_.set_envelope(env.log_records, env.log_spill_path);
  }

  /// Appends fault-plan defects (structure + unresolved component names).
  void check_fault_plan(std::vector<std::string>& defects) {
    const FaultPlan& plan = owner_.config_.faults;
    if (!faults_on_) return;
    for (const std::string& d : plan.validate()) {
      defects.push_back("fault plan: " + d);
    }
    for (const FaultWindow& w : plan.pe_faults) {
      if (!w.component.empty() && model_->pe_index(w.component) < 0) {
        defects.push_back("fault plan: unknown component instance '" +
                          w.component + "'");
      }
    }
    for (const FaultWindow& w : plan.segment_faults) {
      if (!w.component.empty() && model_->seg_index(w.component) < 0) {
        defects.push_back("fault plan: unknown segment '" + w.component + "'");
      }
    }
    for (const BitErrorSpec& b : plan.bit_errors) {
      const std::int32_t seg = model_->seg_index(b.segment);
      if (seg < 0) {
        if (!b.segment.empty()) {
          defects.push_back("fault plan: unknown segment '" + b.segment + "'");
        }
      } else {
        segs_[seg].ber_ppm = b.rate_ppm;
      }
    }
    for (const SignalFault& s : plan.signal_faults) {
      if (!s.process.empty() && model_->proc_index(s.process) < 0) {
        defects.push_back("fault plan: unknown process '" + s.process + "'");
      }
    }
  }

  // -- event dispatch ----------------------------------------------------------

  void dispatch(const EventRec& ev) {
    switch (ev.kind) {
      case EventRec::Kind::PeFaultRaise:
        raise_pe_fault(pes_[ev.a]);
        break;
      case EventRec::Kind::PeFaultClear:
        clear_pe_fault(pes_[ev.a]);
        break;
      case EventRec::Kind::SegFaultRaise:
        raise_seg_fault(segs_[ev.a]);
        break;
      case EventRec::Kind::SegFaultClear:
        clear_seg_fault(segs_[ev.a]);
        break;
      case EventRec::Kind::SignalFaultStart:
        owner_.log_.fault_id(queue_.now(), procs_[ev.b].name_id);
        break;
      case EventRec::Kind::SignalFaultEnd:
        owner_.log_.clear_id(queue_.now(), procs_[ev.b].name_id);
        flush_stuck(ev.a);
        break;
      case EventRec::Kind::WatchdogCheck:
        watchdog_check(procs_[ev.a]);
        break;
      case EventRec::Kind::StepDone:
        if (pes_[ev.a].run_gen == ev.c) finish_step(pes_[ev.a]);
        break;
      case EventRec::Kind::TimerFired:
        on_timer(procs_[ev.a], ev.b, ev.c);
        break;
      case EventRec::Kind::RetryResume:
        request_segment(ev.a);
        break;
      case EventRec::Kind::GrantDone:
        grant_done(segs_[ev.a], ev.b, static_cast<long>(ev.c));
        break;
      case EventRec::Kind::Inject:
        fire_inject(injects_[ev.a]);
        break;
    }
  }

  void run_until(Time horizon) {
    start_all();
    EventRec ev;
    while (queue_.poll(horizon, ev)) dispatch(ev);
  }

  // -- fault injection ---------------------------------------------------------

  /// Schedules every fault event of the plan at simulation start. All times
  /// are absolute; recurring behaviour is expressed as multiple windows.
  /// Overlapping windows on the same component are not merged: the first
  /// clear ends the fault.
  void schedule_faults() {
    const FaultPlan& plan = owner_.config_.faults;
    for (const FaultWindow& w : plan.pe_faults) {
      const auto pe = static_cast<std::uint32_t>(model_->pe_index(w.component));
      queue_.schedule_at(w.start, {EventRec::Kind::PeFaultRaise, pe});
      if (w.end != 0) {
        queue_.schedule_at(w.end, {EventRec::Kind::PeFaultClear, pe});
      }
    }
    for (const FaultWindow& w : plan.segment_faults) {
      const auto seg =
          static_cast<std::uint32_t>(model_->seg_index(w.component));
      queue_.schedule_at(w.start, {EventRec::Kind::SegFaultRaise, seg});
      if (w.end != 0) {
        queue_.schedule_at(w.end, {EventRec::Kind::SegFaultClear, seg});
      }
    }
    for (std::size_t i = 0; i < plan.signal_faults.size(); ++i) {
      const SignalFault& s = plan.signal_faults[i];
      const auto sf = static_cast<std::uint32_t>(i);
      const auto proc =
          static_cast<std::uint32_t>(model_->proc_index(s.process));
      queue_.schedule_at(s.start,
                         {EventRec::Kind::SignalFaultStart, sf, proc});
      if (s.end != 0) {
        queue_.schedule_at(s.end, {EventRec::Kind::SignalFaultEnd, sf, proc});
      }
    }
    if (plan.watchdog_timeout > 0) {
      for (Proc& proc : procs_) {
        queue_.schedule_at(plan.watchdog_timeout,
                           {EventRec::Kind::WatchdogCheck, proc.index});
      }
    }
  }

  void raise_pe_fault(Pe& pe) {
    if (pe.failed) return;
    pe.failed = true;
    owner_.log_.fault_id(queue_.now(), pe.name_id);
    // Abort the step in flight and discard preempted work: a dead PE makes
    // no further progress, so half-finished transitions are lost.
    ++pe.run_gen;
    pe.running.reset();
    pe.suspended.clear();
    // Migrate residents to the least-loaded compatible survivor (hardware
    // processes only onto hardware accelerators, software processes onto
    // programmable PEs). With no survivor a process stays and stalls until
    // the PE recovers.
    Pe* sw_dest = pick_failover(false, pe);
    Pe* hw_dest = pick_failover(true, pe);
    for (Proc& proc : procs_) {
      if (proc.pe != pe.index) continue;
      Pe* dest = proc.info->hw ? hw_dest : sw_dest;
      if (dest != nullptr) migrate(proc, *dest);
    }
  }

  void clear_pe_fault(Pe& pe) {
    if (!pe.failed) return;
    pe.failed = false;
    owner_.log_.clear_id(queue_.now(), pe.name_id);
    // Evacuated processes come home; stranded ones resume in place.
    for (Proc& proc : procs_) {
      if (proc.info->home_pe == pe.index && proc.pe != pe.index) {
        migrate(proc, pe);
      }
    }
    start_step(pe);
  }

  /// The FailoverPolicy choice among compatible surviving PEs, or nullptr.
  /// Candidates are collected in platform instance order and loads are
  /// simulation state, so the choice is reproducible across runs.
  Pe* pick_failover(bool hw, const Pe& failed) {
    std::vector<mapping::FailoverPolicy::Candidate> candidates;
    std::vector<Pe*> pes;
    for (Pe& pe : pes_) {
      if (&pe == &failed || pe.failed || pe.info->hw_accel != hw) continue;
      candidates.push_back(
          {pe.info->name, static_cast<double>(pe.stats->busy_time)});
      pes.push_back(&pe);
    }
    const std::size_t pick = failover_.choose(candidates);
    return pick == mapping::FailoverPolicy::npos ? nullptr : pes[pick];
  }

  void migrate(Proc& proc, Pe& dest) {
    Pe& from = pes_[proc.pe];
    if (&from == &dest) return;
    if (proc.ready) {
      auto it = std::find(from.ready.begin(), from.ready.end(), &proc);
      if (it != from.ready.end()) from.ready.erase(it);
      proc.ready = false;
    }
    owner_.log_.migrate_id(queue_.now(), proc.name_id, from.name_id,
                           dest.name_id);
    proc.pe = dest.index;
    make_ready(proc);
  }

  void raise_seg_fault(Seg& seg) {
    if (seg.faulted) return;
    seg.faulted = true;
    owner_.log_.fault_id(queue_.now(), seg.name_id);
    // Queued transfers back off immediately; a transfer being granted right
    // now notices the fault when its grant completes.
    std::deque<std::size_t> waiting = std::move(seg.waiting);
    seg.waiting.clear();
    for (const std::size_t index : waiting) retry_transfer(index);
  }

  void clear_seg_fault(Seg& seg) {
    if (!seg.faulted) return;
    seg.faulted = false;
    owner_.log_.clear_id(queue_.now(), seg.name_id);
    try_grant(seg);
  }

  /// Restarts a transfer from its first hop after a fault or bit error,
  /// with exponential backoff, until the retry budget is spent (then the
  /// signal is dropped at the destination).
  void retry_transfer(std::size_t index) {
    Transfer& x = transfers_[index];
    x.hop = 0;
    x.remaining_cycles = 0;
    ++x.attempts;
    const FaultPlan& plan = owner_.config_.faults;
    if (x.attempts > plan.max_retries) {
      x.done = true;
      owner_.log_.drop_id(queue_.now(), procs_[x.dest].name_id,
                          signal_id(x.event.signal));
      return;
    }
    owner_.log_.retry_id(queue_.now(), x.from, signal_id(x.event.signal),
                         x.attempts);
    const Time delay = plan.retry_backoff << (x.attempts - 1);
    queue_.schedule_in(delay, {EventRec::Kind::RetryResume,
                               static_cast<std::uint32_t>(index)});
  }

  /// True when the hop whose grant just completed must be re-sent: the
  /// segment faulted mid-transfer, or the finished hop drew a bit error.
  /// The draw is counter-based — (seed, segment, per-segment sequence) —
  /// so it is identical run to run.
  bool hop_disturbed(Seg& seg, Transfer& x) {
    if (seg.faulted) return true;
    if (x.remaining_cycles > 0 || seg.ber_ppm == 0) return false;
    const FaultPlan& plan = owner_.config_.faults;
    return FaultRng::draw(plan.seed, seg.info->rng_key, seg.ber_seq++) %
               1'000'000 <
           seg.ber_ppm;
  }

  /// First active signal fault matching a delivery, or nullptr (index out).
  const SignalFault* active_signal_fault(const Proc& to,
                                         const efsm::Event& event,
                                         std::size_t& index_out) const {
    const auto& sfs = owner_.config_.faults.signal_faults;
    const Time now = queue_.now();
    for (std::size_t i = 0; i < sfs.size(); ++i) {
      const SignalFault& s = sfs[i];
      if (now < s.start || (s.end != 0 && now >= s.end)) continue;
      if (s.process != to.info->name) continue;
      if (!s.signal.empty() &&
          (event.signal == nullptr || s.signal != event.signal->name())) {
        continue;
      }
      index_out = i;
      return &s;
    }
    return nullptr;
  }

  /// Releases signals held by a stuck-signal window when it closes. Each is
  /// re-checked against the remaining windows on redelivery.
  void flush_stuck(std::size_t index) {
    auto it = stuck_.find(index);
    if (it == stuck_.end()) return;
    std::vector<Stuck> held = std::move(it->second);
    stuck_.erase(it);
    for (Stuck& s : held) {
      deliver_local(procs_[s.to], std::move(s.event), s.from);
    }
  }

  /// Per-process watchdog: when a process has not fired a transition for
  /// watchdog_timeout ticks, its EFSM instance is reset to the initial
  /// state (pending events are kept, armed timers are cancelled) and the
  /// timer re-arms.
  void watchdog_check(Proc& proc) {
    const Time timeout = owner_.config_.faults.watchdog_timeout;
    const Time due = proc.last_progress + timeout;
    if (queue_.now() < due) {
      queue_.schedule_at(due, {EventRec::Kind::WatchdogCheck, proc.index});
      return;
    }
    owner_.log_.watchdog_id(queue_.now(), proc.name_id);
    proc.last_progress = queue_.now();
    PendingEvent ev;
    ev.kind = PendingEvent::Kind::Reset;
    proc.queue.push_front(std::move(ev));
    make_ready(proc);
    queue_.schedule_at(queue_.now() + timeout,
                       {EventRec::Kind::WatchdogCheck, proc.index});
  }

  // -- PE scheduling -----------------------------------------------------------

  void make_ready(Proc& proc) {
    if (proc.ready || proc.queue.empty()) return;
    proc.ready = true;
    proc.ready_seq = ++ready_counter_;
    Pe& pe = pes_[proc.pe];
    pe.ready.push_back(&proc);
    maybe_preempt(pe, proc);
    start_step(pe);
  }

  /// Suspends the running step when a strictly higher-priority process
  /// becomes ready on a preemptive PE.
  void maybe_preempt(Pe& pe, const Proc& challenger) {
    if (!pe.info->preemptive || !pe.running.has_value()) return;
    if (challenger.info->priority <= pe.running->proc->info->priority) return;
    // Steps completing at the current instant are not preemptible: their
    // completion event is already due.
    if (pe.running->end <= queue_.now()) return;
    ++pe.run_gen;  // invalidate the scheduled completion
    Pe::Suspended s;
    s.proc = pe.running->proc;
    s.result = std::move(pe.running->result);
    s.remaining = pe.running->end - queue_.now();
    pe.suspended.push_back(std::move(s));
    pe.running.reset();
    ++pe.stats->preemptions;
  }

  /// The highest-priority ready process (FIFO among equals), or ready.end().
  std::vector<Proc*>::iterator best_ready(Pe& pe) {
    auto best = pe.ready.begin();
    for (auto it = pe.ready.begin(); it != pe.ready.end(); ++it) {
      if ((*it)->info->priority > (*best)->info->priority ||
          ((*it)->info->priority == (*best)->info->priority &&
           (*it)->ready_seq < (*best)->ready_seq)) {
        best = it;
      }
    }
    return best;
  }

  void schedule_completion(Pe& pe, Time dur) {
    pe.running->end = queue_.now() + dur;
    const std::uint64_t gen = ++pe.run_gen;
    queue_.schedule_in(dur, {EventRec::Kind::StepDone, pe.index, 0, gen});
  }

  /// Context-switch overhead in ticks, accounted as PE busy time.
  Time switch_overhead(Pe& pe) {
    const Time t =
        cycles_to_ticks(pe.info->ctx_switch_cycles, pe.info->freq_mhz);
    pe.stats->overhead_time += t;
    pe.stats->busy_time += t;
    return t;
  }

  void start_step(Pe& pe) {
    if (pe.busy() || pe.failed) return;

    // Resume a suspended step unless a strictly higher-priority process is
    // ready (it would immediately preempt again).
    auto best = best_ready(pe);
    const bool have_ready = best != pe.ready.end();
    if (!pe.suspended.empty() &&
        (!have_ready ||
         pe.suspended.back().proc->info->priority >= (*best)->info->priority)) {
      resume_step(pe);
      return;
    }
    if (!have_ready) return;

    Proc* proc = *best;
    pe.ready.erase(best);
    proc->ready = false;

    PendingEvent ev = std::move(proc->queue.front());
    proc->queue.pop_front();

    efsm::StepResult result;
    bool fired = true;
    switch (ev.kind) {
      case PendingEvent::Kind::Start:
        result = proc->inst.start();
        break;
      case PendingEvent::Kind::Signal:
        result = proc->inst.deliver(ev.event);
        fired = result.fired;
        if (!fired) {
          owner_.log_.drop_id(queue_.now(), proc->name_id,
                              signal_id(ev.event.signal));
        }
        break;
      case PendingEvent::Kind::Timer:
        result = proc->inst.timer_fired(timer_names_[ev.timer]);
        fired = result.fired;
        break;
      case PendingEvent::Kind::Reset:
        // Watchdog recovery: cancel every armed timer, then restart the
        // EFSM from its initial state.
        for (auto& [id, gen] : proc->timer_gen) ++gen;
        result = proc->inst.reset();
        break;
    }

    Time dur = cycles_to_ticks(result.compute_cycles, pe.info->freq_mhz);
    PeStats& stats = *pe.stats;
    ++stats.dispatched;
    if (fired) {
      if (faults_on_) proc->last_progress = queue_.now();
      ++stats.steps;
      stats.busy_time += dur;
      if (owner_.config_.log_runs) {
        owner_.log_.run_id(queue_.now(), proc->name_id, result.compute_cycles,
                           dur);
      }
    }
    // Dispatching on top of suspended work implies the RTOS switched
    // contexts to get here.
    if (!pe.suspended.empty()) dur += switch_overhead(pe);

    pe.running = Pe::Running{proc, std::move(result), 0};
    schedule_completion(pe, dur);
  }

  void resume_step(Pe& pe) {
    Pe::Suspended s = std::move(pe.suspended.back());
    pe.suspended.pop_back();
    // Switching back into the preempted context costs the RTOS overhead.
    const Time dur = s.remaining + switch_overhead(pe);
    pe.running = Pe::Running{s.proc, std::move(s.result), 0};
    schedule_completion(pe, dur);
  }

  void finish_step(Pe& pe) {
    Proc& proc = *pe.running->proc;
    const efsm::StepResult result = std::move(pe.running->result);
    pe.running.reset();
    // Timers first: a timer armed by this step may be reset by a later step,
    // but not vice versa within one step (actions already ordered upstream).
    for (const efsm::TimerOp& op : result.timers) {
      const std::uint32_t id = timer_id(op.name);
      const std::uint64_t gen = ++proc.timer_gen[id];
      if (op.kind == efsm::TimerOp::Kind::Set) {
        const Time delay = op.delay > 0 ? static_cast<Time>(op.delay) : 0;
        queue_.schedule_in(delay,
                           {EventRec::Kind::TimerFired, proc.index, id, gen});
      }
    }
    for (const efsm::Send& send : result.sends) {
      dispatch_send(proc, send);
    }
    make_ready(proc);  // it may have more pending events
    start_step(pe);
  }

  void on_timer(Proc& proc, std::uint32_t timer, std::uint64_t gen) {
    auto it = proc.timer_gen.find(timer);
    if (it == proc.timer_gen.end() || it->second != gen) return;  // stale
    PendingEvent ev;
    ev.kind = PendingEvent::Kind::Timer;
    ev.timer = timer;
    proc.queue.push_back(std::move(ev));
    make_ready(proc);
  }

  /// Dense id of a timer name (first use interns it).
  std::uint32_t timer_id(const std::string& name) {
    auto it = timer_ids_.find(name);
    if (it != timer_ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(timer_names_.size());
    timer_names_.push_back(name);
    timer_ids_.emplace(name, id);
    return id;
  }

  // -- communication -------------------------------------------------------------

  /// Precomputed destination of a send port (every Send-action port of the
  /// behaviour is in the table; absent or unconnected ports route to the
  /// environment).
  const CompiledModel::PortDest* find_port(const Proc& from,
                                           const std::string& port) const {
    for (const CompiledModel::PortDest& pd : from.info->ports) {
      if (pd.port == port) return &pd;
    }
    return nullptr;
  }

  void dispatch_send(Proc& from, const efsm::Send& send) {
    const Time now = queue_.now();
    const CompiledModel::PortDest* pd = find_port(from, send.port);
    const std::size_t bytes =
        send.signal != nullptr ? send.signal->payload_bytes() : 4;
    const intern::Id sig_id = signal_id(send.signal);

    if (pd == nullptr || pd->proc < 0) {
      // Environment, or a destination part that is not an executable
      // process (e.g. a structural part).
      owner_.log_.send_id(now, from.name_id, env_id_, sig_id, bytes);
      return;
    }
    Proc& to = procs_[pd->proc];
    owner_.log_.send_id(now, from.name_id, to.name_id, sig_id, bytes);

    efsm::Event event;
    event.signal = send.signal;
    event.port = pd->dest_port;
    event.args = send.args;

    if (to.pe == from.pe) {
      deliver_local(to, std::move(event), from.name_id);
      return;
    }

    // Remote: traverse the segment route.
    Transfer x;
    x.dest = to.index;
    x.from = from.name_id;
    x.event = std::move(event);
    x.path = &model_->route(from.pe, to.pe);
    x.bytes = bytes;
    x.priority = from.info->priority;
    x.rr_key = pes_[from.pe].info->rr_key;
    x.max_grant_cycles = pes_[from.pe].info->wrapper_max_cycles;
    const std::size_t index = transfers_.size();
    transfers_.push_back(std::move(x));
    request_segment(index);
  }

  void deliver_local(Proc& to, efsm::Event event, intern::Id from) {
    if (faults_on_) {
      std::size_t sf_index = 0;
      if (const SignalFault* sf =
              active_signal_fault(to, event, sf_index)) {
        if (sf->kind == SignalFault::Kind::Lost) {
          owner_.log_.drop_id(queue_.now(), to.name_id,
                              signal_id(event.signal));
        } else {
          stuck_[sf_index].push_back(Stuck{to.index, std::move(event), from});
        }
        return;
      }
    }
    owner_.log_.receive_id(queue_.now(), to.name_id, from,
                           signal_id(event.signal));
    PendingEvent ev;
    ev.kind = PendingEvent::Kind::Signal;
    ev.event = std::move(event);
    ev.from = from;
    to.queue.push_back(std::move(ev));
    make_ready(to);
  }

  /// Interned id of a signal's name, cached per Signal object.
  intern::Id signal_id(const uml::Signal* signal) {
    if (signal == nullptr) return unknown_sig_id_;
    auto [it, inserted] = signal_ids_.try_emplace(signal, intern::kNoId);
    if (inserted) it->second = owner_.log_.intern_name(signal->name());
    return it->second;
  }

  void request_segment(std::size_t index) {
    Transfer& x = transfers_[index];
    Seg& seg = segs_[(*x.path)[x.hop]];
    if (faults_on_ && seg.faulted) {
      retry_transfer(index);
      return;
    }
    if (x.remaining_cycles == 0) {
      const long words = static_cast<long>(
          (x.bytes * 8 + seg.info->width_bits - 1) / seg.info->width_bits);
      x.remaining_cycles = words + owner_.config_.segment_overhead_cycles;
    }
    x.enqueue_time = queue_.now();
    seg.waiting.push_back(index);
    try_grant(seg);
  }

  void try_grant(Seg& seg) {
    if (seg.busy || seg.waiting.empty()) return;

    // Pick the next transfer per the segment's arbitration scheme.
    std::size_t pick = 0;
    if (seg.info->priority_arb) {
      for (std::size_t i = 1; i < seg.waiting.size(); ++i) {
        if (transfers_[seg.waiting[i]].priority >
            transfers_[seg.waiting[pick]].priority) {
          pick = i;
        }
      }
    } else {
      // Round-robin over sender IDs: the smallest key strictly greater than
      // the last served, wrapping around.
      long best_key = -1;
      bool found = false;
      for (std::size_t i = 0; i < seg.waiting.size(); ++i) {
        const long key = transfers_[seg.waiting[i]].rr_key;
        const bool after = key > seg.last_rr;
        const bool best_after = best_key > seg.last_rr;
        if (!found ||
            (after && (!best_after || key < best_key)) ||
            (!after && !best_after && key < best_key)) {
          pick = i;
          best_key = key;
          found = true;
        }
      }
      seg.last_rr = best_key;
    }

    const std::size_t index = seg.waiting[pick];
    seg.waiting.erase(seg.waiting.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    Transfer& x = transfers_[index];

    const bool capped = x.hop == 0 && x.max_grant_cycles > 0;
    const long grant =
        capped ? std::min(x.remaining_cycles, x.max_grant_cycles)
               : x.remaining_cycles;
    const Time dur = cycles_to_ticks(grant, seg.info->freq_mhz);

    SegmentStats& stats = *seg.stats;
    ++stats.grants;
    stats.busy_time += dur;
    stats.wait_time += queue_.now() - x.enqueue_time;

    seg.busy = true;
    queue_.schedule_in(dur, {EventRec::Kind::GrantDone, seg.index,
                             static_cast<std::uint32_t>(index),
                             static_cast<std::uint64_t>(grant)});
  }

  void grant_done(Seg& seg, std::size_t index, long granted) {
    seg.busy = false;
    Transfer& x = transfers_[index];
    x.remaining_cycles -= granted;
    if (faults_on_ && hop_disturbed(seg, x)) {
      retry_transfer(index);
      try_grant(seg);
      return;
    }
    if (x.remaining_cycles > 0) {
      // Re-arbitrate for the rest of this hop (MaxTime chunking).
      x.enqueue_time = queue_.now();
      seg.waiting.push_back(index);
    } else {
      ++seg.stats->transfers;
      ++x.hop;
      if (x.hop < x.path->size()) {
        x.remaining_cycles = 0;
        request_segment(index);
      } else {
        x.done = true;
        deliver_local(procs_[x.dest], std::move(x.event), x.from);
      }
    }
    try_grant(seg);
  }

  // -- environment ---------------------------------------------------------------

  void inject(Time t, const std::string& port, const uml::Signal& signal,
              std::vector<long> args) {
    if (t < queue_.now()) {
      throw std::invalid_argument(
          "cannot inject '" + signal.name() + "' at t=" + std::to_string(t) +
          ": simulation time has already advanced to " +
          std::to_string(queue_.now()));
    }
    const auto index = static_cast<std::uint32_t>(injects_.size());
    injects_.push_back(Injection{port, &signal, std::move(args)});
    queue_.schedule_at(t, {EventRec::Kind::Inject, index});
  }

  void fire_inject(const Injection& in) {
    const intern::Id sig_id = signal_id(in.signal);
    const efsm::Endpoint dest = model_->router().boundary_destination(in.port);
    const std::int32_t proc =
        dest.part != nullptr ? model_->proc_of_part(dest.part) : -1;
    if (proc < 0) {
      owner_.log_.send_id(queue_.now(), env_id_, env_id_, sig_id,
                          in.signal->payload_bytes());
      return;
    }
    Proc& to = procs_[proc];
    owner_.log_.send_id(queue_.now(), env_id_, to.name_id, sig_id,
                        in.signal->payload_bytes());
    efsm::Event event;
    event.signal = in.signal;
    event.port = dest.port != nullptr ? dest.port->name() : "";
    event.args = in.args;
    deliver_local(to, std::move(event), env_id_);
  }

  void start_all() {
    if (started_) return;
    started_ = true;
    if (faults_on_) schedule_faults();
    for (Proc& proc : procs_) {
      PendingEvent ev;
      ev.kind = PendingEvent::Kind::Start;
      proc.queue.push_front(std::move(ev));
      make_ready(proc);
    }
  }

  /// A delivery held back by a stuck-signal fault window.
  struct Stuck {
    std::uint32_t to = 0;
    efsm::Event event;
    intern::Id from = intern::kNoId;
  };

  const std::shared_ptr<const CompiledModel> model_;
  const std::shared_ptr<const BackendImage> backend_;  // null: interpreter
  Simulation& owner_;
  EventQueue queue_;
  bool started_ = false;
  bool use_bytecode_ = false;
  std::uint64_t ready_counter_ = 0;
  bool faults_on_ = false;  // Config::faults is non-empty
  mapping::FailoverPolicy failover_;
  std::map<std::size_t, std::vector<Stuck>> stuck_;  // by signal-fault index

  std::vector<Proc> procs_;
  std::vector<Pe> pes_;
  std::vector<Seg> segs_;
  std::deque<Transfer> transfers_;
  std::deque<Injection> injects_;
  std::vector<std::string> timer_names_;
  std::unordered_map<std::string, std::uint32_t> timer_ids_;

  intern::Id env_id_ = intern::kNoId;
  intern::Id unknown_sig_id_ = intern::kNoId;
  std::unordered_map<const uml::Signal*, intern::Id> signal_ids_;
};

Simulation::Simulation(const mapping::SystemView& sys, Config config)
    : config_(config) {
  // The AST path: lower the structure (routes, tags, ports) but keep the
  // behaviours interpreted, so expression errors surface lazily exactly as
  // before.
  std::vector<std::string> defects;
  std::shared_ptr<const CompiledModel> model =
      CompiledModel::build_collect(sys, defects, /*compile_machines=*/false);
  impl_ = std::make_unique<Impl>(std::move(model), *this, std::move(defects));
}

Simulation::Simulation(std::shared_ptr<const CompiledModel> model,
                       Config config)
    : config_(config) {
  if (model == nullptr) {
    throw std::invalid_argument("Simulation requires a non-null model");
  }
  if (!model->has_machines() && !model->procs().empty()) {
    throw std::logic_error(
        "CompiledModel was built without behaviour images; use "
        "CompiledModel::build()");
  }
  impl_ = std::make_unique<Impl>(std::move(model), *this,
                                 std::vector<std::string>{});
}

Simulation::Simulation(std::shared_ptr<const BackendImage> image,
                       Config config)
    : config_(config) {
  if (image == nullptr) {
    throw std::invalid_argument("Simulation requires a non-null backend image");
  }
  std::shared_ptr<const CompiledModel> model = image->model();
  if (model == nullptr) {
    throw std::invalid_argument(
        "Simulation backend image carries no CompiledModel");
  }
  impl_ = std::make_unique<Impl>(std::move(model), *this,
                                 std::vector<std::string>{}, std::move(image));
}

Simulation::~Simulation() = default;

void Simulation::reset(const Config& config) {
  config_ = config;
  impl_->reset_run();
}

void Simulation::inject(Time t, const std::string& boundary_port,
                        const uml::Signal& signal, std::vector<long> args) {
  impl_->inject(t, boundary_port, signal, std::move(args));
}

void Simulation::inject_periodic(Time first, Time period, std::size_t count,
                                 const std::string& boundary_port,
                                 const uml::Signal& signal,
                                 std::vector<long> args) {
  // Each injected signal typically yields a handful of records (env send,
  // receive, run, forwarded sends); reserve up front to curb reallocation.
  log_.reserve(log_.size() + 4 * count);
  for (std::size_t i = 0; i < count; ++i) {
    inject(first + static_cast<Time>(i) * period, boundary_port, signal, args);
  }
}

void Simulation::run() { run_until(config_.horizon); }

void Simulation::run_until(Time horizon) { impl_->run_until(horizon); }

Time Simulation::now() const noexcept { return impl_->queue_.now(); }

const efsm::Instance& Simulation::instance(const std::string& process) const {
  const std::int32_t index = impl_->model_->proc_index(process);
  if (index < 0) {
    throw std::out_of_range("no process named '" + process + "'");
  }
  const Impl::Proc& proc = impl_->procs_[index];
  if (!proc.inst.ast.has_value()) {
    throw std::logic_error(
        "process '" + process +
        "' runs a compiled behaviour image; Simulation::instance() requires "
        "the SystemView constructor");
  }
  return *proc.inst.ast;
}

std::uint64_t Simulation::events_dispatched() const noexcept {
  return impl_->queue_.dispatched();
}

}  // namespace tut::sim
