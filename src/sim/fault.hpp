// sim::FaultPlan — deterministic fault injection for the co-simulator.
//
// The paper's profile-driven iteration loop only ever evaluates mappings on
// a healthy platform. A FaultPlan extends a co-simulation with scheduled,
// seeded fault events so the simulator can answer the question a real
// deployment asks: which mapping still meets its deadlines when components
// fail? The plan is pure data — the runtime semantics (failover migration,
// watchdog resets, bounded retry) live in sim::Simulation.
//
// Fault kinds:
//  - PE fail/recover windows: the processing element stops executing; its
//    processes migrate to the least-loaded compatible surviving PE
//    (mapping::FailoverPolicy) and migrate back on recovery.
//  - Segment fault windows: transfers that hit the faulted segment retry
//    with exponential backoff, bounded by `max_retries`, then drop.
//  - Per-transfer bit-error rates: each completed segment hop draws from the
//    counter PRNG; a corrupted transfer is dropped and NACKed, sending the
//    sender back through the retry path.
//  - Signal faults: deliveries of a matching signal to a process are lost
//    (dropped) or stuck (held and flushed when the window closes).
//
// Determinism: every random draw comes from FaultRng, a stateless
// counter-based PRNG keyed on (seed, instance, sequence). Runs are
// bit-reproducible for a fixed (plan, seed) and independent of host thread
// counts because no RNG state is shared or iterated.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"

namespace tut::sim {

/// Stateless counter-based PRNG (splitmix64 finalizer over a mixed key).
/// draw(seed, instance, seq) is a pure function: callers key `instance` on a
/// stable identity (e.g. a name hash) and advance `seq` per decision.
class FaultRng {
 public:
  /// 64-bit draw for the given (seed, instance, sequence) triple.
  static std::uint64_t draw(std::uint64_t seed, std::uint64_t instance,
                            std::uint64_t seq) noexcept {
    return mix(mix(seed ^ mix(instance)) ^ seq);
  }
  /// Stable 64-bit identity for a component name (FNV-1a).
  static std::uint64_t key(std::string_view name) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : name) {
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    }
    return h;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

/// A fail/recover window on a platform component instance or segment.
/// `end == 0` means the component never recovers.
struct FaultWindow {
  std::string component;
  Time start = 0;
  Time end = 0;
};

/// Per-transfer bit-error rate on a segment, in errors per million
/// completed hops (integer, so plans round-trip exactly through XML).
struct BitErrorSpec {
  std::string segment;
  std::uint32_t rate_ppm = 0;
};

/// A window during which signals delivered to `process` are lost (dropped)
/// or stuck (held, then flushed at `end`). Empty `signal` matches any
/// signal. Stuck faults require a finite window (`end > start`).
struct SignalFault {
  enum class Kind { Lost, Stuck };
  Kind kind = Kind::Lost;
  std::string process;
  std::string signal;
  Time start = 0;
  Time end = 0;
};

/// A complete fault scenario plus the degraded-mode runtime knobs. Attach to
/// sim::Config::faults; an empty plan leaves the fault machinery fully off.
struct FaultPlan {
  std::uint64_t seed = 1;

  std::vector<FaultWindow> pe_faults;
  std::vector<FaultWindow> segment_faults;
  std::vector<BitErrorSpec> bit_errors;
  std::vector<SignalFault> signal_faults;

  /// Per-process watchdog: a process that fires no transition for this many
  /// ticks is reset to its initial EFSM state. 0 disables watchdogs.
  Time watchdog_timeout = 0;
  /// Bounded retry for transfers that hit a faulted segment or a bit error:
  /// attempt k (1-based) waits retry_backoff << (k-1) ticks; after
  /// max_retries failed attempts the transfer is dropped.
  int max_retries = 4;
  Time retry_backoff = 200;

  /// True when the plan injects nothing and enables no runtime semantics —
  /// the simulator skips all fault bookkeeping for an empty plan.
  bool empty() const noexcept {
    return pe_faults.empty() && segment_faults.empty() && bit_errors.empty() &&
           signal_faults.empty() && watchdog_timeout == 0;
  }

  /// Structural validation (window ordering, rate bounds, retry knobs).
  /// Returns one message per defect; empty when the plan is well-formed.
  std::vector<std::string> validate() const;

  /// XML interchange (the `tut simulate --faults <plan.xml>` format).
  std::string to_xml_text() const;
  /// Parses a plan. Throws xml::ParseError on malformed XML and
  /// std::invalid_argument on unknown elements or failed validation.
  static FaultPlan from_xml_text(std::string_view text);
};

}  // namespace tut::sim
