// sim::ResourceProfile — named resource-envelope classes with deterministic
// exhaustion.
//
// The paper targets embedded platforms where memory and queue capacity are
// hard constraints; the simulation stack mirrors that by running every
// unbounded allocation under an explicit envelope: SimulationLog retention
// (resident ring with optional spill-to-disk), EventQueue pending events,
// xml::Arena bytes, BatchRunner's retained-log budget, and campaign worker
// concurrency / reorder-buffer depth. A profile is a bundle of those caps
// under a name (constrained / balanced / server, à la ASX_CLASS_R1..R3),
// plus fully custom caps via the `tut:profile` XML element.
//
// The contract has two halves:
//  - Semantic lock: tuning may change ceilings, never results. Any run that
//    fits its envelope produces byte-identical logs, replays and campaign
//    digests under every profile and both behaviour backends. Nothing in a
//    profile may leak into the simulation semantics — caps only decide
//    *whether* a run completes, never *what* it computes.
//  - Deterministic exhaustion: an envelope miss is an explicit classified
//    rejection (EnvelopeError with an "[envelope.*]" rule tag and the sim
//    time of the hit), thrown before any partial mutation of the capped
//    structure. A rejected campaign scenario becomes a counted, classified
//    outcome in CampaignAggregate instead of a crash.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/kernel.hpp"  // Time

namespace tut::sim {

/// A classified envelope miss: which ceiling was hit, at which sim time.
/// The message embeds the rule tag ("envelope: [envelope.queue.full] ... at
/// t=N"), so log greps and error-hash digests stay attributable. Thrown
/// *before* the capped structure mutates: the structure still holds exactly
/// its envelope's worth of state afterwards.
class EnvelopeError : public std::runtime_error {
 public:
  EnvelopeError(std::string tag, Time at, const std::string& what)
      : std::runtime_error("envelope: [" + tag + "] " + what +
                           " at t=" + std::to_string(at)),
        tag_(std::move(tag)),
        at_(at) {}

  /// The rule tag without brackets, e.g. "envelope.log.overflow".
  const std::string& tag() const noexcept { return tag_; }
  /// Sim time (ticks) at which the ceiling was hit.
  Time at() const noexcept { return at_; }

 private:
  std::string tag_;
  Time at_;
};

/// Which ceiling a rejection classifies under. Stored as one word in
/// ScenarioSummary so campaign aggregates can count rejections per ceiling.
enum class RejectionCode : std::uint64_t {
  None = 0,
  Log = 1,          ///< [envelope.log.overflow]
  Queue = 2,        ///< [envelope.queue.full]
  Arena = 3,        ///< [envelope.arena.exhausted]
  Concurrency = 4,  ///< [envelope.concurrency.capped]
  Other = 5,        ///< an [envelope.*] tag this build does not know
};

/// Maps an EnvelopeError tag to its RejectionCode (Other for unknown tags).
RejectionCode classify_envelope_tag(std::string_view tag) noexcept;

/// One envelope: every cap is a count or byte ceiling, 0 = unbounded. The
/// default-constructed profile is fully unbounded, which reproduces the
/// pre-envelope behaviour bit for bit.
struct ResourceProfile {
  /// Class name for diagnostics and provenance ("unbounded", "constrained",
  /// "balanced", "server", or "custom" for XML-tuned envelopes).
  std::string name = "unbounded";

  /// SimulationLog resident-record ceiling. Without a spill path the append
  /// that would exceed it throws [envelope.log.overflow]; with one, the
  /// resident records are rendered to the spill file and freed, and the
  /// log's text (and digest) stay byte-identical to an unbounded run.
  std::uint64_t log_records = 0;
  /// Spill file for the log ring. Single-run feature: batch and campaign
  /// runs hash-and-release logs anyway, and the runners clear this before
  /// stamping scenario configs so concurrent workers never share a file.
  std::string log_spill_path;
  /// EventQueue pending-event ceiling (heap + same-time FIFO ring
  /// together); the schedule that would exceed it throws
  /// [envelope.queue.full].
  std::uint64_t event_queue = 0;
  /// xml::Arena reserved-byte ceiling for XML loading under this profile;
  /// exceeding it throws with an [envelope.arena.exhausted] tag.
  std::uint64_t arena_bytes = 0;
  /// BatchRunner: per-scenario retained-log byte budget when keep_logs is
  /// on. A larger rendered log classifies the scenario as rejected
  /// ([envelope.log.overflow]) instead of retaining it.
  std::uint64_t keep_log_bytes = 0;
  /// Batch/campaign worker-thread ceiling. Clamping is semantics-preserving
  /// (results are thread-count-invariant); the campaign surfaces the clamp
  /// as an [envelope.concurrency.capped] note.
  std::uint64_t concurrency = 0;
  /// Campaign reorder-buffer depth: workers stop claiming more than this
  /// many scenarios ahead of the in-order commit frontier, bounding the
  /// out-of-order summary buffer at `reorder_depth` entries.
  std::uint64_t reorder_depth = 0;
  /// serve::ModelCache byte ceiling for the `tut serve` daemon: total
  /// estimated bytes of cached compiled-model entries (parsed model + lowered
  /// tables + behaviour image). Exceeding it evicts least-recently-used
  /// entries — a capacity decision, never a semantic one: an evicted model is
  /// rebuilt from its XML to a byte-identical image on the next request.
  std::uint64_t cache_bytes = 0;

  /// True when any Simulation-level cap is set (log ring, spill, queue) —
  /// the runners stamp the profile into scenario configs only then, so a
  /// caller-provided per-scenario envelope survives an unbounded profile.
  bool bounds_simulation() const noexcept {
    return log_records != 0 || event_queue != 0 || !log_spill_path.empty();
  }

  /// The named classes. unbounded() is the default-constructed profile.
  static ResourceProfile unbounded();
  /// Embedded-target envelope: tight ring/queue/arena, 2 workers.
  static ResourceProfile constrained();
  /// Workstation envelope: roomy caps that still bound a runaway model.
  static ResourceProfile balanced();
  /// Server envelope: large ceilings, hardware-sized concurrency.
  static ResourceProfile server();
  /// Resolves a class name; throws std::invalid_argument with a
  /// "[profile.class.unknown]" tag for anything else.
  static ResourceProfile by_name(std::string_view name);

  /// Parses the `tut:profile` XML element:
  ///
  ///   <tut:profile class="constrained" spill="sim.spill">
  ///     <cap name="logRecords" value="4096"/>
  ///     <cap name="eventQueue" value="1024"/>
  ///   </tut:profile>
  ///
  /// `class` (optional, default "custom") seeds the caps from a named
  /// class; each <cap> then overrides one ceiling. Cap names mirror the
  /// fields: logRecords, eventQueue, arenaBytes, keepLogBytes, concurrency,
  /// reorderDepth. Throws xml::ParseError on malformed XML and
  /// std::invalid_argument with a "[profile.*]" rule tag on every other
  /// defect ([profile.element.unknown], [profile.class.unknown],
  /// [profile.cap.unknown], [profile.cap.malformed]).
  static ResourceProfile from_xml_text(std::string_view text);

  /// One-line human-readable cap listing for CLI provenance output.
  std::string to_text() const;
};

}  // namespace tut::sim
