#include "sim/batch.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

namespace tut::sim {

BatchRunner::BatchRunner(std::shared_ptr<const CompiledModel> model,
                         BatchOptions options)
    : model_(std::move(model)), options_(options) {
  if (model_ == nullptr) {
    throw std::invalid_argument("BatchRunner requires a non-null model");
  }
  threads_ = options_.threads != 0
                 ? options_.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::uint64_t BatchRunner::hash_text(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

BatchResult BatchRunner::run_one(const BatchScenario& scenario) const {
  BatchResult result;
  result.name = scenario.name;
  try {
    Simulation simulation(model_, scenario.config);
    if (scenario.setup) scenario.setup(simulation);
    simulation.run();
    result.end_time = simulation.now();
    result.events = simulation.events_dispatched();
    result.records = simulation.log().size();
    const std::string text = simulation.log().to_text();
    result.log_hash = hash_text(text);
    if (options_.keep_logs) result.log_text = text;
    result.pe_stats = simulation.pe_stats();
    result.segment_stats = simulation.segment_stats();
  } catch (const std::exception& e) {
    result = BatchResult{};
    result.name = scenario.name;
    result.error = e.what();
  }
  return result;
}

std::vector<BatchResult> BatchRunner::run(
    const std::vector<BatchScenario>& scenarios) const {
  std::vector<BatchResult> results(scenarios.size());
  const std::size_t workers = std::min(threads_, scenarios.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      results[i] = run_one(scenarios[i]);
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < scenarios.size();
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      results[i] = run_one(scenarios[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace tut::sim
