#include "sim/batch.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>

namespace tut::sim {

namespace {

/// Resolves the worker count: explicit threads, else hardware, then clamped
/// by the profile's concurrency ceiling (clamping is semantics-preserving —
/// batch results are thread-count-invariant by construction).
std::size_t resolve_threads(const BatchOptions& options) {
  std::size_t n =
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (options.profile.concurrency != 0) {
    n = std::min<std::size_t>(n, options.profile.concurrency);
  }
  return n;
}

}  // namespace

BatchRunner::BatchRunner(std::shared_ptr<const CompiledModel> model,
                         BatchOptions options)
    : model_(std::move(model)), options_(options) {
  if (model_ == nullptr) {
    throw std::invalid_argument("BatchRunner requires a non-null model");
  }
  threads_ = resolve_threads(options_);
}

BatchRunner::BatchRunner(std::shared_ptr<const BackendImage> backend,
                         BatchOptions options)
    : backend_(std::move(backend)), options_(options) {
  if (backend_ == nullptr) {
    throw std::invalid_argument("BatchRunner requires a non-null backend");
  }
  model_ = backend_->model();
  if (model_ == nullptr) {
    throw std::invalid_argument(
        "BatchRunner backend carries no CompiledModel");
  }
  threads_ = resolve_threads(options_);
}

std::uint64_t BatchRunner::hash_text(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

BatchResult BatchRunner::run_one(const BatchScenario& scenario,
                                 std::unique_ptr<Simulation>& context,
                                 std::string& scratch) const {
  BatchResult result;
  result.name = scenario.name;
  if (backend_) {
    result.backend = backend_->name();
    result.image_hash = backend_->content_hash();
  }
  try {
    Config config = scenario.config;
    if (options_.profile.bounds_simulation()) {
      config.envelope = options_.profile;
      // Workers must not share one spill file; spilling is a single-run
      // feature and batch runs hash-and-release logs anyway.
      config.envelope.log_spill_path.clear();
    }
    if (!context) {
      context = backend_ ? std::make_unique<Simulation>(backend_, config)
                         : std::make_unique<Simulation>(model_, config);
    } else {
      context->reset(config);
    }
    Simulation& simulation = *context;
    if (scenario.setup) scenario.setup(simulation);
    simulation.run();
    result.end_time = simulation.now();
    result.events = simulation.events_dispatched();
    result.records = simulation.log().size();
    // Hash-and-release: the log is rendered into the worker's reusable
    // scratch buffer, hashed, and only *copied out* when the caller opted
    // into retained logs. Resident log memory is O(threads), never O(runs).
    scratch.clear();
    simulation.log().to_text(scratch);
    result.log_hash = hash_text(scratch);
    if (options_.keep_logs) {
      if (options_.profile.keep_log_bytes != 0 &&
          scratch.size() > options_.profile.keep_log_bytes) {
        throw EnvelopeError(
            "envelope.log.overflow", simulation.now(),
            "retained log of " + std::to_string(scratch.size()) +
                " bytes exceeds the keep_logs budget of " +
                std::to_string(options_.profile.keep_log_bytes) + " bytes");
      }
      result.log_text = scratch;
    }
    result.pe_stats = simulation.pe_stats();
    result.segment_stats = simulation.segment_stats();
  } catch (const std::exception& e) {
    // The throw can leave the context mid-run; rebuild from the image on the
    // next scenario instead of resetting a half-consistent state.
    context.reset();
    result = BatchResult{};
    result.name = scenario.name;
    result.error = e.what();
    if (backend_) {
      result.backend = backend_->name();
      result.image_hash = backend_->content_hash();
    }
  }
  return result;
}

namespace {

/// The claim counter lives on its own cache line: results[] slots and the
/// scenario vector are read/written right next to it, and sharing its line
/// would bounce every fetch_add through the other workers' caches.
struct alignas(64) PaddedIndex {
  std::atomic<std::size_t> value{0};
  char pad[64 - sizeof(std::atomic<std::size_t>)];
};

}  // namespace

std::vector<BatchResult> BatchRunner::run(
    const std::vector<BatchScenario>& scenarios) const {
  std::vector<BatchResult> results(scenarios.size());
  const std::size_t workers = std::min(threads_, scenarios.size());
  if (workers <= 1) {
    std::unique_ptr<Simulation> context;
    std::string scratch;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      results[i] = run_one(scenarios[i], context, scratch);
    }
    return results;
  }
  PaddedIndex next;
  auto work = [&]() {
    std::unique_ptr<Simulation> context;
    std::string scratch;
    for (std::size_t i = next.value.fetch_add(1, std::memory_order_relaxed);
         i < scenarios.size();
         i = next.value.fetch_add(1, std::memory_order_relaxed)) {
      results[i] = run_one(scenarios[i], context, scratch);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace tut::sim
