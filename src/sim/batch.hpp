// sim::BatchRunner — N scenarios over one shared CompiledModel.
//
// Fault-scenario sweeps, seed sweeps and workload sweeps all simulate the
// same system image under different knobs. BatchRunner amortizes the model
// lowering (CompiledModel::build once) across every scenario and fans the
// runs out over a thread pool: scenarios are claimed from an atomic index,
// each worker keeps one reusable Simulation context over the shared
// read-only model (Simulation::reset between runs), and every worker writes
// only its own result slot. Results are therefore indexed by scenario and
// byte-identical whether threads = 1 or 64. Logs are hashed in a reusable
// buffer and released; BatchOptions::keep_logs opts into retaining them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/backend.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"

namespace tut::sim {

/// One run of the batch: a simulator configuration (horizon, fault plan,
/// seed) plus the workload to inject before running.
struct BatchScenario {
  std::string name;
  Config config;
  /// Called once on the freshly constructed Simulation, before run(); use
  /// it to inject the environment workload. May be empty.
  std::function<void(Simulation&)> setup;
};

/// Outcome of one scenario. `error` is empty on success; on failure (a
/// defective fault plan, a diverging EFSM) it carries the exception text
/// and the remaining fields are zero.
struct BatchResult {
  std::string name;
  Time end_time = 0;
  std::uint64_t events = 0;     ///< kernel events dispatched
  std::size_t records = 0;      ///< simulation log records
  std::uint64_t log_hash = 0;   ///< FNV-1a of the rendered log text
  std::string log_text;         ///< rendered log (BatchOptions::keep_logs)
  std::map<std::string, PeStats> pe_stats;
  std::map<std::string, SegmentStats> segment_stats;
  std::string error;
  /// Compile-backend provenance: which executor stepped the processes
  /// ("interpreter" or the BackendImage's name) and, for generated images,
  /// the image content hash (0 for the interpreter) — so A/B comparisons
  /// stay attributable after the fact.
  std::string backend = "interpreter";
  std::uint64_t image_hash = 0;
};

struct BatchOptions {
  /// Worker threads; 0 resolves to std::thread::hardware_concurrency()
  /// (minimum 1). 1 runs inline without spawning.
  std::size_t threads = 0;
  /// Keep every scenario's rendered log text in its result. Off by default:
  /// the 64-bit hash is enough to compare runs, full logs are large.
  bool keep_logs = false;
  /// Resource envelope for the whole batch. Simulation-level caps (log ring,
  /// event queue) are stamped into every scenario's config when set; the
  /// spill path is cleared first (workers must not share one spill file).
  /// `concurrency` clamps the worker count, `keep_log_bytes` budgets each
  /// retained log under keep_logs. Semantic lock: an in-envelope batch is
  /// byte-identical to an unbounded one.
  ResourceProfile profile;
};

/// Runs scenario batches over one compiled model image.
class BatchRunner {
 public:
  explicit BatchRunner(std::shared_ptr<const CompiledModel> model,
                       BatchOptions options = {});

  /// Runs every scenario through `backend` (e.g. a codegen::NativeImage)
  /// instead of the bytecode interpreter. Results are byte-identical to
  /// the interpreter's, modulo the provenance fields.
  explicit BatchRunner(std::shared_ptr<const BackendImage> backend,
                       BatchOptions options = {});

  /// Resolved worker count.
  std::size_t threads() const noexcept { return threads_; }
  const CompiledModel& model() const noexcept { return *model_; }

  /// Runs every scenario (concurrently when threads() > 1) and returns the
  /// results in scenario order. Per-scenario failures are reported in
  /// BatchResult::error, not thrown.
  std::vector<BatchResult> run(
      const std::vector<BatchScenario>& scenarios) const;

  /// FNV-1a 64-bit hash used for BatchResult::log_hash.
  static std::uint64_t hash_text(std::string_view text) noexcept;

 private:
  /// Runs one scenario on a reusable per-worker context (constructed on the
  /// first call, Simulation::reset thereafter) with a reusable render
  /// buffer — per-run cost and memory are independent of the batch size.
  BatchResult run_one(const BatchScenario& scenario,
                      std::unique_ptr<Simulation>& context,
                      std::string& scratch) const;

  std::shared_ptr<const CompiledModel> model_;
  std::shared_ptr<const BackendImage> backend_;  ///< null: interpreter
  BatchOptions options_;
  std::size_t threads_ = 1;
};

}  // namespace tut::sim
