// sim::CompiledModel — a system model lowered once for many simulations.
//
// Building a Simulation used to re-derive everything from the UML object
// graph: tag lookups for frequencies and arbitration, shortest-path routing
// per send, wrapper MaxTime scans per transfer, Router walks per signal.
// CompiledModel hoists all of it into dense index-addressed tables built
// once from a (model, mapping, platform) triple: PEs, segments and
// processes in their canonical declaration orders, a pe×pe route table of
// segment index lists, per-process send-port destination tables, and one
// shared read-only efsm::CompiledMachine per distinct behaviour.
//
// Lifetime rules: a CompiledModel borrows the mapping::SystemView (and
// through it the uml::Model), which must outlive it; Simulations and
// BatchRunner runs borrow the CompiledModel via shared_ptr, so one image
// can serve any number of concurrent scenario runs — everything here is
// immutable after build().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "efsm/program.hpp"
#include "efsm/router.hpp"
#include "mapping/mapping.hpp"

namespace tut::sim {

class CompiledModel {
 public:
  /// Where a process's send port delivers: another process (`proc >= 0`,
  /// arriving through `dest_port`) or the environment (`proc < 0`).
  struct PortDest {
    std::string port;        ///< sending port name
    std::int32_t proc = -1;  ///< destination process index; -1 = environment
    std::string dest_port;   ///< receiving port name (empty for environment)
  };

  struct PeInfo {
    const uml::Property* part = nullptr;
    std::string name;
    long freq_mhz = 50;
    bool preemptive = false;
    long ctx_switch_cycles = 0;
    bool hw_accel = false;
    long wrapper_max_cycles = 0;  ///< wrapper MaxTime; 0 = unlimited
    long rr_key = 0;              ///< instance "ID" tag (round-robin order)
  };

  struct SegInfo {
    const uml::Property* part = nullptr;
    std::string name;
    long width_bits = 32;
    long freq_mhz = 100;
    bool priority_arb = true;
    std::uint64_t rng_key = 0;  ///< FaultRng instance key (name hash)
  };

  struct ProcInfo {
    const uml::Property* part = nullptr;
    std::string name;
    const uml::StateMachine* behavior = nullptr;
    /// Bytecode image of `behavior`; nullptr when the model was built for
    /// the AST backend only (Simulation's default path).
    const efsm::CompiledMachine* machine = nullptr;
    std::uint32_t home_pe = 0;  ///< mapped PE (failover returns here)
    bool hw = false;            ///< ProcessType "hardware"
    long priority = 0;
    std::vector<PortDest> ports;  ///< every Send-action port, resolved
  };

  /// Lowers the system. Throws std::runtime_error with the combined
  /// "model is not executable" diagnostic on defects (same messages as
  /// constructing a Simulation), and efsm::ExprError on malformed
  /// expression text (which the AST path would defer to first evaluation).
  static std::shared_ptr<const CompiledModel> build(
      const mapping::SystemView& sys);

  const mapping::SystemView& view() const noexcept { return *sys_; }
  const efsm::Router& router() const noexcept { return *router_; }

  const std::vector<PeInfo>& pes() const noexcept { return pes_; }
  const std::vector<SegInfo>& segs() const noexcept { return segs_; }
  const std::vector<ProcInfo>& procs() const noexcept { return procs_; }

  /// Segment indices of the route between two PEs (empty = unroutable or
  /// same PE).
  const std::vector<std::uint32_t>& route(std::uint32_t from_pe,
                                          std::uint32_t to_pe) const {
    return routes_[from_pe * pes_.size() + to_pe];
  }

  /// Index lookups (-1 when absent) for fault-plan resolution and the
  /// environment boundary.
  std::int32_t pe_index(std::string_view name) const;
  std::int32_t seg_index(std::string_view name) const;
  std::int32_t proc_index(std::string_view name) const;
  std::int32_t proc_of_part(const uml::Property* part) const;

  bool has_machines() const noexcept { return !machines_.empty(); }

 private:
  friend class Simulation;
  CompiledModel() = default;

  /// Builds without throwing on model defects (they are appended to
  /// `defects` in the same order Simulation used to collect them).
  /// `compile_machines` controls bytecode lowering: the AST backend skips
  /// it so malformed expression text keeps failing lazily.
  static std::shared_ptr<CompiledModel> build_collect(
      const mapping::SystemView& sys, std::vector<std::string>& defects,
      bool compile_machines);

  const mapping::SystemView* sys_ = nullptr;
  std::unique_ptr<efsm::Router> router_;
  std::vector<PeInfo> pes_;
  std::vector<SegInfo> segs_;
  std::vector<ProcInfo> procs_;
  std::vector<std::vector<std::uint32_t>> routes_;  ///< pe×pe
  std::vector<std::unique_ptr<efsm::CompiledMachine>> machines_;
  std::map<std::string, std::uint32_t, std::less<>> pe_by_name_;
  std::map<std::string, std::uint32_t, std::less<>> seg_by_name_;
  std::map<std::string, std::uint32_t, std::less<>> proc_by_name_;
  std::map<const uml::Property*, std::uint32_t> proc_by_part_;
};

}  // namespace tut::sim
