// POD event queue: the compiled replacement for the closure Kernel.
//
// Kernel stores one heap-allocated std::function per event; at the event
// rates the exploration engine drives (millions of events per candidate
// mapping), allocation and indirect-call overhead dominate the hot loop.
// EventQueue stores a 16-byte tagged record instead — a kind enum plus
// dense indices into the Simulation's flat tables and one inline payload
// word — and hands records back to the caller, which dispatches them with a
// switch. No allocation per event, a moveable flat heap, and handlers
// inlined into one dispatch loop.
//
// Ordering is pinned to Kernel: a (time, seq) binary min-heap where seq is
// assigned at scheduling time, plus a FIFO bucket for events due exactly at
// now() (every heap entry due at now() predates every bucket entry, so
// heap-before-bucket is exactly seq order). poll() is Kernel::run's loop
// body turned inside out; driving it to exhaustion yields the identical
// dispatch sequence, final now(), and past-time scheduling errors.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/kernel.hpp"  // Time
#include "sim/resource.hpp"

namespace tut::sim {

/// One scheduled occurrence. `a`/`b` are dense indices whose meaning the
/// kind defines (PE, segment, process, transfer, fault-window or injection
/// slots); `c` carries a wide payload (generation counter or granted
/// cycles).
struct EventRec {
  enum class Kind : std::uint8_t {
    PeFaultRaise,      ///< a = PE index
    PeFaultClear,      ///< a = PE index
    SegFaultRaise,     ///< a = segment index
    SegFaultClear,     ///< a = segment index
    SignalFaultStart,  ///< a = fault-plan signal fault index, b = process
    SignalFaultEnd,    ///< a = fault-plan signal fault index, b = process
    WatchdogCheck,     ///< a = process index
    StepDone,          ///< a = PE index, c = run generation
    TimerFired,        ///< a = process index, b = timer id, c = generation
    RetryResume,       ///< a = transfer index
    GrantDone,         ///< a = segment index, b = transfer, c = granted cycles
    Inject,            ///< a = injection index
  };

  Kind kind;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
};

/// Time-ordered queue of EventRec with Kernel's deterministic FIFO
/// tie-breaking for simultaneous events.
class EventQueue {
 public:
  /// Schedules `ev` at absolute time `at`. Scheduling into the past is a
  /// hard error: asserts in debug builds, throws std::logic_error in
  /// release builds (same contract as Kernel::schedule_at). Defined inline:
  /// schedule/poll are the per-event hot pair of the whole simulator.
  void schedule_at(Time at, EventRec ev) {
    assert(at >= now_ && "schedule_at: event time precedes queue now()");
    if (at < now_) {
      throw std::logic_error("cannot schedule an event in the past (at=" +
                             std::to_string(at) +
                             ", now=" + std::to_string(now_) + ")");
    }
    if (capacity_ != 0 && pending() >= capacity_) {
      throw EnvelopeError("envelope.queue.full", now_,
                          "event queue reached its envelope of " +
                              std::to_string(capacity_) + " pending events");
    }
    if (at == now_) {
      if (bucket_head_ != 0 && bucket_empty()) {
        bucket_.clear();
        bucket_head_ = 0;
      }
      bucket_.push_back(ev);
      return;
    }
    heap_.push_back(Entry{at, next_seq_++, ev});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  void schedule_in(Time delay, EventRec ev) { schedule_at(now_ + delay, ev); }

  /// Pops the next event due at or before `horizon` into `out`, advancing
  /// now() as needed. Returns false when nothing further is due, leaving
  /// now() == horizon (when it was behind). `while (q.poll(h, ev)) ...`
  /// replays Kernel::run(h) exactly.
  bool poll(Time horizon, EventRec& out) {
    while (now_ <= horizon) {
      if (!heap_.empty() && heap_.front().at <= now_) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        out = heap_.back().ev;
        heap_.pop_back();
        ++dispatched_;
        return true;
      }
      if (!bucket_empty()) {
        out = bucket_[bucket_head_++];
        if (bucket_empty()) {
          bucket_.clear();
          bucket_head_ = 0;
        }
        ++dispatched_;
        return true;
      }
      if (!heap_.empty() && heap_.front().at <= horizon) {
        now_ = heap_.front().at;
        continue;
      }
      break;
    }
    if (now_ < horizon) now_ = horizon;
    return false;
  }

  /// Rewinds to the freshly-constructed state (now() == 0, empty queue,
  /// sequence and dispatch counters zeroed) while keeping the heap's
  /// capacity. Reusable run contexts (sim::Simulation::reset) depend on the
  /// counters restarting: event ordering and generation payloads must be
  /// identical to a brand-new queue.
  void reset() noexcept {
    heap_.clear();
    bucket_.clear();
    bucket_head_ = 0;
    now_ = 0;
    next_seq_ = 0;
    dispatched_ = 0;
  }

  Time now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty() && bucket_empty(); }
  std::size_t pending() const noexcept {
    return heap_.size() + (bucket_.size() - bucket_head_);
  }
  std::uint64_t dispatched() const noexcept { return dispatched_; }
  void reserve(std::size_t n) { heap_.reserve(n); }

  /// Resource envelope: caps pending() at `cap` (0 = unbounded). The
  /// schedule_at that would exceed it throws [envelope.queue.full] before
  /// touching the heap or bucket. Survives reset(): the envelope belongs to
  /// the queue's owner, not to one run.
  void set_capacity(std::uint64_t cap) noexcept { capacity_ = cap; }
  std::uint64_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventRec ev;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  bool bucket_empty() const noexcept { return bucket_head_ == bucket_.size(); }

  std::vector<Entry> heap_;       ///< binary min-(at, seq) heap
  std::vector<EventRec> bucket_;  ///< events due exactly at now_, FIFO ring
  std::size_t bucket_head_ = 0;   ///< index of the oldest bucket entry
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t capacity_ = 0;  ///< pending-event ceiling; 0 = unbounded
};

}  // namespace tut::sim
