#include "sim/log.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tut::sim {

void SimulationLog::run(Time t, std::string_view process, long cycles,
                        Time duration) {
  run_id(t, names_.intern(process), cycles, duration);
}

void SimulationLog::send(Time t, std::string_view from, std::string_view to,
                         std::string_view signal, std::size_t bytes) {
  send_id(t, names_.intern(from), names_.intern(to), names_.intern(signal),
          bytes);
}

void SimulationLog::receive(Time t, std::string_view process,
                            std::string_view from, std::string_view signal) {
  receive_id(t, names_.intern(process), names_.intern(from),
             names_.intern(signal));
}

void SimulationLog::drop(Time t, std::string_view process,
                         std::string_view signal) {
  drop_id(t, names_.intern(process), names_.intern(signal));
}

void SimulationLog::fault(Time t, std::string_view component) {
  fault_id(t, names_.intern(component));
}

void SimulationLog::fault_cleared(Time t, std::string_view component) {
  clear_id(t, names_.intern(component));
}

void SimulationLog::retry(Time t, std::string_view process,
                          std::string_view signal, long attempt) {
  retry_id(t, names_.intern(process), names_.intern(signal), attempt);
}

void SimulationLog::watchdog_reset(Time t, std::string_view process) {
  watchdog_id(t, names_.intern(process));
}

void SimulationLog::migrate(Time t, std::string_view process,
                            std::string_view from_pe, std::string_view to_pe) {
  migrate_id(t, names_.intern(process), names_.intern(from_pe),
             names_.intern(to_pe));
}

void SimulationLog::run_id(Time t, intern::Id process, long cycles,
                           Time duration) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Run;
  r.process = process;
  r.cycles = cycles;
  r.duration = duration;
  append(r);
}

void SimulationLog::send_id(Time t, intern::Id from, intern::Id to,
                            intern::Id signal, std::size_t bytes) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Send;
  r.process = from;
  r.peer = to;
  r.signal = signal;
  r.bytes = bytes;
  append(r);
}

void SimulationLog::receive_id(Time t, intern::Id process, intern::Id from,
                               intern::Id signal) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Receive;
  r.process = process;
  r.peer = from;
  r.signal = signal;
  append(r);
}

void SimulationLog::drop_id(Time t, intern::Id process, intern::Id signal) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Drop;
  r.process = process;
  r.signal = signal;
  append(r);
  ++drops_;
}

void SimulationLog::fault_id(Time t, intern::Id component) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Fault;
  r.process = component;
  append(r);
}

void SimulationLog::clear_id(Time t, intern::Id component) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Clear;
  r.process = component;
  append(r);
}

void SimulationLog::retry_id(Time t, intern::Id process, intern::Id signal,
                             long attempt) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Retry;
  r.process = process;
  r.signal = signal;
  r.cycles = attempt;
  append(r);
  ++retries_;
}

void SimulationLog::watchdog_id(Time t, intern::Id process) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Watchdog;
  r.process = process;
  append(r);
}

void SimulationLog::migrate_id(Time t, intern::Id process, intern::Id from_pe,
                               intern::Id to_pe) {
  Compact r;
  r.time = t;
  r.kind = LogRecord::Kind::Migrate;
  r.process = process;
  r.peer = from_pe;
  r.signal = to_pe;
  append(r);
}

void SimulationLog::append(const Compact& r) {
  if (capacity_ != 0 && compact_.size() >= capacity_) {
    if (spill_path_.empty()) {
      throw EnvelopeError("envelope.log.overflow", r.time,
                          "simulation log reached its envelope of " +
                              std::to_string(capacity_) + " resident records");
    }
    spill_resident(r.time);
  }
  compact_.push_back(r);
  last_time_ = r.time;
}

void SimulationLog::spill_resident(Time at) {
  std::string body;
  render_body(body);
  std::ofstream os(spill_path_, spilled_ == 0
                                    ? std::ios::binary | std::ios::trunc
                                    : std::ios::binary | std::ios::app);
  if (!os || !os.write(body.data(), std::streamsize(body.size())) ||
      !os.flush()) {
    throw EnvelopeError("envelope.log.overflow", at,
                        "cannot write log spill file '" + spill_path_ + "'");
  }
  spilled_ += compact_.size();
  compact_.clear();
  materialized_.clear();
}

void SimulationLog::set_envelope(std::uint64_t capacity,
                                 std::string spill_path) {
  capacity_ = capacity;
  spill_path_ = std::move(spill_path);
}

const std::vector<LogRecord>& SimulationLog::records() const {
  for (std::size_t i = materialized_.size(); i < compact_.size(); ++i) {
    const Compact& c = compact_[i];
    LogRecord r;
    r.time = c.time;
    r.kind = c.kind;
    if (c.process != intern::kNoId) r.process = names_.name(c.process);
    if (c.peer != intern::kNoId) r.peer = names_.name(c.peer);
    if (c.signal != intern::kNoId) r.signal = names_.name(c.signal);
    r.cycles = c.cycles;
    r.duration = c.duration;
    r.bytes = c.bytes;
    materialized_.push_back(std::move(r));
  }
  return materialized_;
}

void SimulationLog::clear() {
  compact_.clear();
  materialized_.clear();
  if (spilled_ != 0 && !spill_path_.empty()) {
    std::error_code ec;
    std::filesystem::remove(spill_path_, ec);  // best effort
  }
  spilled_ = 0;
  drops_ = 0;
  retries_ = 0;
  last_time_ = 0;
}

void SimulationLog::reserve(std::size_t n) { compact_.reserve(n); }

namespace {

template <typename N>
void append_num(std::string& out, N value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, ptr);
}

}  // namespace

std::string SimulationLog::to_text() const {
  std::string out;
  to_text(out);
  return out;
}

void SimulationLog::to_text(std::string& out) const {
  out.reserve(out.size() + 16 + 32 * compact_.size());
  out += "# tut-simlog v1\n";
  if (spilled_ != 0) {
    // The spill file holds the already-rendered prefix; splicing it back in
    // front of the resident tail reproduces the unbounded serialization
    // byte for byte.
    std::ifstream is(spill_path_, std::ios::binary);
    if (!is) {
      throw std::runtime_error("cannot read log spill file '" + spill_path_ +
                               "'");
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    out += buf.str();
  }
  render_body(out);
}

void SimulationLog::render_body(std::string& out) const {
  // ~32 bytes per rendered line; reserving up front keeps the append loop
  // free of reallocation even on the first use of a fresh buffer.
  out.reserve(out.size() + 32 * compact_.size());
  const auto field = [&](intern::Id id) {
    out += ' ';
    out += names_.name(id);
  };
  for (const Compact& r : compact_) {
    switch (r.kind) {
      case LogRecord::Kind::Run:
        out += "R ";
        append_num(out, r.time);
        field(r.process);
        out += ' ';
        append_num(out, r.cycles);
        out += ' ';
        append_num(out, r.duration);
        break;
      case LogRecord::Kind::Send:
        out += "S ";
        append_num(out, r.time);
        field(r.process);
        field(r.peer);
        field(r.signal);
        out += ' ';
        append_num(out, r.bytes);
        break;
      case LogRecord::Kind::Receive:
        out += "V ";
        append_num(out, r.time);
        field(r.process);
        field(r.peer);
        field(r.signal);
        break;
      case LogRecord::Kind::Drop:
        out += "D ";
        append_num(out, r.time);
        field(r.process);
        field(r.signal);
        break;
      case LogRecord::Kind::Fault:
        out += "F ";
        append_num(out, r.time);
        field(r.process);
        break;
      case LogRecord::Kind::Clear:
        out += "C ";
        append_num(out, r.time);
        field(r.process);
        break;
      case LogRecord::Kind::Retry:
        out += "T ";
        append_num(out, r.time);
        field(r.process);
        field(r.signal);
        out += ' ';
        append_num(out, r.cycles);
        break;
      case LogRecord::Kind::Watchdog:
        out += "W ";
        append_num(out, r.time);
        field(r.process);
        break;
      case LogRecord::Kind::Migrate:
        out += "M ";
        append_num(out, r.time);
        field(r.process);
        field(r.peer);
        field(r.signal);
        break;
    }
    out += '\n';
  }
}

SimulationLog SimulationLog::parse(const std::string& text) {
  SimulationLog log;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const auto bad = [&]() -> std::runtime_error {
      return std::runtime_error("malformed simulation log line " +
                                std::to_string(lineno) + ": '" + line + "'");
    };
    if (kind == "R") {
      Time t = 0, d = 0;
      std::string proc;
      long cycles = 0;
      if (!(ls >> t >> proc >> cycles >> d)) throw bad();
      log.run(t, proc, cycles, d);
    } else if (kind == "S") {
      Time t = 0;
      std::string from, to, sig;
      std::size_t bytes = 0;
      if (!(ls >> t >> from >> to >> sig >> bytes)) throw bad();
      log.send(t, from, to, sig, bytes);
    } else if (kind == "V") {
      Time t = 0;
      std::string proc, from, sig;
      if (!(ls >> t >> proc >> from >> sig)) throw bad();
      log.receive(t, proc, from, sig);
    } else if (kind == "D") {
      Time t = 0;
      std::string proc, sig;
      if (!(ls >> t >> proc >> sig)) throw bad();
      log.drop(t, proc, sig);
    } else if (kind == "F" || kind == "C" || kind == "W") {
      Time t = 0;
      std::string name;
      if (!(ls >> t >> name)) throw bad();
      if (kind == "F") {
        log.fault(t, name);
      } else if (kind == "C") {
        log.fault_cleared(t, name);
      } else {
        log.watchdog_reset(t, name);
      }
    } else if (kind == "T") {
      Time t = 0;
      std::string proc, sig;
      long attempt = 0;
      if (!(ls >> t >> proc >> sig >> attempt)) throw bad();
      log.retry(t, proc, sig, attempt);
    } else if (kind == "M") {
      Time t = 0;
      std::string proc, from, to;
      if (!(ls >> t >> proc >> from >> to)) throw bad();
      log.migrate(t, proc, from, to);
    } else {
      throw bad();
    }
  }
  return log;
}

}  // namespace tut::sim
