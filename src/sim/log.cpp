#include "sim/log.hpp"

#include <sstream>
#include <stdexcept>

namespace tut::sim {

void SimulationLog::run(Time t, std::string process, long cycles,
                        Time duration) {
  LogRecord r;
  r.time = t;
  r.kind = LogRecord::Kind::Run;
  r.process = std::move(process);
  r.cycles = cycles;
  r.duration = duration;
  records_.push_back(std::move(r));
}

void SimulationLog::send(Time t, std::string from, std::string to,
                         std::string signal, std::size_t bytes) {
  LogRecord r;
  r.time = t;
  r.kind = LogRecord::Kind::Send;
  r.process = std::move(from);
  r.peer = std::move(to);
  r.signal = std::move(signal);
  r.bytes = bytes;
  records_.push_back(std::move(r));
}

void SimulationLog::receive(Time t, std::string process, std::string from,
                            std::string signal) {
  LogRecord r;
  r.time = t;
  r.kind = LogRecord::Kind::Receive;
  r.process = std::move(process);
  r.peer = std::move(from);
  r.signal = std::move(signal);
  records_.push_back(std::move(r));
}

void SimulationLog::drop(Time t, std::string process, std::string signal) {
  LogRecord r;
  r.time = t;
  r.kind = LogRecord::Kind::Drop;
  r.process = std::move(process);
  r.signal = std::move(signal);
  records_.push_back(std::move(r));
}

std::string SimulationLog::to_text() const {
  std::ostringstream os;
  os << "# tut-simlog v1\n";
  for (const LogRecord& r : records_) {
    switch (r.kind) {
      case LogRecord::Kind::Run:
        os << "R " << r.time << ' ' << r.process << ' ' << r.cycles << ' '
           << r.duration << '\n';
        break;
      case LogRecord::Kind::Send:
        os << "S " << r.time << ' ' << r.process << ' ' << r.peer << ' '
           << r.signal << ' ' << r.bytes << '\n';
        break;
      case LogRecord::Kind::Receive:
        os << "V " << r.time << ' ' << r.process << ' ' << r.peer << ' '
           << r.signal << '\n';
        break;
      case LogRecord::Kind::Drop:
        os << "D " << r.time << ' ' << r.process << ' ' << r.signal << '\n';
        break;
    }
  }
  return os.str();
}

SimulationLog SimulationLog::parse(const std::string& text) {
  SimulationLog log;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    const auto bad = [&]() -> std::runtime_error {
      return std::runtime_error("malformed simulation log line " +
                                std::to_string(lineno) + ": '" + line + "'");
    };
    if (kind == "R") {
      Time t = 0, d = 0;
      std::string proc;
      long cycles = 0;
      if (!(ls >> t >> proc >> cycles >> d)) throw bad();
      log.run(t, proc, cycles, d);
    } else if (kind == "S") {
      Time t = 0;
      std::string from, to, sig;
      std::size_t bytes = 0;
      if (!(ls >> t >> from >> to >> sig >> bytes)) throw bad();
      log.send(t, from, to, sig, bytes);
    } else if (kind == "V") {
      Time t = 0;
      std::string proc, from, sig;
      if (!(ls >> t >> proc >> from >> sig)) throw bad();
      log.receive(t, proc, from, sig);
    } else if (kind == "D") {
      Time t = 0;
      std::string proc, sig;
      if (!(ls >> t >> proc >> sig)) throw bad();
      log.drop(t, proc, sig);
    } else {
      throw bad();
    }
  }
  return log;
}

}  // namespace tut::sim
