#include "sim/resource.hpp"

#include <charconv>
#include <stdexcept>

#include "xml/arena.hpp"
#include "xml/cursor.hpp"

namespace tut::sim {

RejectionCode classify_envelope_tag(std::string_view tag) noexcept {
  if (tag == "envelope.log.overflow") return RejectionCode::Log;
  if (tag == "envelope.queue.full") return RejectionCode::Queue;
  if (tag == "envelope.arena.exhausted") return RejectionCode::Arena;
  if (tag == "envelope.concurrency.capped") return RejectionCode::Concurrency;
  return RejectionCode::Other;
}

ResourceProfile ResourceProfile::unbounded() { return ResourceProfile{}; }

ResourceProfile ResourceProfile::constrained() {
  ResourceProfile p;
  p.name = "constrained";
  p.log_records = 1u << 16;        // 64Ki resident records (~1.5 MiB)
  p.event_queue = 1u << 14;        // 16Ki pending events (256 KiB heap)
  p.arena_bytes = 8u << 20;        // 8 MiB of parsed XML
  p.keep_log_bytes = 1u << 20;     // 1 MiB retained log per scenario
  p.concurrency = 2;
  p.reorder_depth = 4;
  p.cache_bytes = 16u << 20;       // 16 MiB of cached compiled models
  return p;
}

ResourceProfile ResourceProfile::balanced() {
  ResourceProfile p;
  p.name = "balanced";
  p.log_records = 1u << 20;
  p.event_queue = 1u << 18;
  p.arena_bytes = 64u << 20;
  p.keep_log_bytes = 16u << 20;
  p.concurrency = 8;
  p.reorder_depth = 32;
  p.cache_bytes = 256u << 20;
  return p;
}

ResourceProfile ResourceProfile::server() {
  ResourceProfile p;
  p.name = "server";
  p.log_records = 1u << 24;
  p.event_queue = 1u << 22;
  p.arena_bytes = 512u << 20;
  p.keep_log_bytes = 256u << 20;
  p.concurrency = 0;  // hardware-sized
  p.reorder_depth = 256;
  p.cache_bytes = 1u << 30;
  return p;
}

namespace {

[[noreturn]] void profile_error(const std::string& tag,
                                const std::string& what) {
  throw std::invalid_argument("profile: [" + tag + "] " + what);
}

}  // namespace

ResourceProfile ResourceProfile::by_name(std::string_view name) {
  if (name == "unbounded") return unbounded();
  if (name == "constrained") return constrained();
  if (name == "balanced") return balanced();
  if (name == "server") return server();
  profile_error("profile.class.unknown",
                "unknown profile class '" + std::string(name) +
                    "' (unbounded, constrained, balanced, server)");
}

ResourceProfile ResourceProfile::from_xml_text(std::string_view text) {
  xml::Arena arena;
  xml::Cursor cur(text, arena);
  if (cur.next() != xml::Cursor::Event::StartElement ||
      cur.name() != "tut:profile") {
    profile_error("profile.element.unknown",
                  "root element must be <tut:profile>");
  }
  ResourceProfile p;
  if (const auto cls = cur.attr("class")) {
    if (*cls != "custom") p = by_name(*cls);
    p.name = std::string(*cls);
  } else {
    p.name = "custom";
  }
  if (const auto spill = cur.attr("spill")) {
    p.log_spill_path = std::string(*spill);
  }
  for (auto ev = cur.next(); ev != xml::Cursor::Event::End; ev = cur.next()) {
    if (ev == xml::Cursor::Event::Text ||
        ev == xml::Cursor::Event::EndElement) {
      continue;
    }
    if (cur.name() != "cap") {
      profile_error("profile.element.unknown",
                    "unknown element <" + std::string(cur.name()) +
                        "> (only <cap name=... value=.../>)");
    }
    const auto cname = cur.attr("name");
    const auto cvalue = cur.attr("value");
    if (!cname || !cvalue) {
      profile_error("profile.cap.malformed",
                    "<cap> needs both name= and value=");
    }
    std::uint64_t v = 0;
    const auto [end, ec] =
        std::from_chars(cvalue->data(), cvalue->data() + cvalue->size(), v);
    if (ec != std::errc{} || end != cvalue->data() + cvalue->size()) {
      profile_error("profile.cap.malformed",
                    "cap '" + std::string(*cname) +
                        "' value is not a non-negative integer: '" +
                        std::string(*cvalue) + "'");
    }
    if (*cname == "logRecords") {
      p.log_records = v;
    } else if (*cname == "eventQueue") {
      p.event_queue = v;
    } else if (*cname == "arenaBytes") {
      p.arena_bytes = v;
    } else if (*cname == "keepLogBytes") {
      p.keep_log_bytes = v;
    } else if (*cname == "concurrency") {
      p.concurrency = v;
    } else if (*cname == "reorderDepth") {
      p.reorder_depth = v;
    } else if (*cname == "cacheBytes") {
      p.cache_bytes = v;
    } else {
      profile_error("profile.cap.unknown",
                    "unknown cap '" + std::string(*cname) +
                        "' (logRecords, eventQueue, arenaBytes, keepLogBytes, "
                        "concurrency, reorderDepth, cacheBytes)");
    }
  }
  return p;
}

namespace {

void append_cap(std::string& out, const char* label, std::uint64_t v,
                const char* unit) {
  out += label;
  if (v == 0) {
    out += "unbounded";
  } else {
    out += std::to_string(v);
    out += unit;
  }
}

}  // namespace

std::string ResourceProfile::to_text() const {
  std::string out = name;
  out += " (";
  append_cap(out, "log ", log_records, " records");
  append_cap(out, ", queue ", event_queue, " events");
  append_cap(out, ", arena ", arena_bytes, " bytes");
  append_cap(out, ", keepLogs ", keep_log_bytes, " bytes");
  append_cap(out, ", concurrency ", concurrency, "");
  append_cap(out, ", reorder ", reorder_depth, "");
  append_cap(out, ", cache ", cache_bytes, " bytes");
  if (!log_spill_path.empty()) out += ", spill " + log_spill_path;
  out += ")";
  return out;
}

}  // namespace tut::sim
