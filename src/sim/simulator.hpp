// High-level hardware/software co-simulation (Section 3.2 of the paper:
// "The parameterized models are used to perform a high-level
// hardware/software co-simulation. In that case, the execution of
// application processes is guided with the properties of the platform
// components.").
//
// The simulator executes every application process as an EFSM instance on
// the platform component instance its group is mapped to:
//  - Processing elements run one transition at a time (run-to-completion),
//    picking the pending process with the highest priority. A transition's
//    Compute cycles take cycles/frequency wall time.
//  - Signals between processes on the same PE are delivered when the sending
//    transition completes. Signals between PEs traverse the communication
//    segments on the route between the instances: each segment is an
//    arbitrated resource (priority or round-robin per its Arbitration tag);
//    transfer time follows the segment's DataWidth and Frequency; a
//    wrapper's MaxTime splits long transfers into multiple grants.
//  - The environment injects signals through the application class's
//    boundary ports and absorbs signals routed outside.
// Every run, send, receive and drop is written to the SimulationLog — the
// "simulation log-file" the profiling tool consumes.
//
// With a FaultPlan configured (Config::faults) the simulation additionally
// executes deterministic fault events and the degraded-mode semantics a
// deployed system needs: PE fail/recover windows with failover migration
// (mapping::FailoverPolicy), segment faults and bit errors with bounded
// exponential-backoff retry, lost/stuck signal windows, and per-process
// watchdog resets. The fault records (F/C/T/W/M) flow into the same log and
// feed the profiler's reliability section.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "efsm/machine.hpp"
#include "efsm/router.hpp"
#include "mapping/mapping.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/log.hpp"

namespace tut::sim {

class BackendImage;
class CompiledModel;

/// Simulator configuration knobs (defaults follow the platform defaults of
/// tut::mapping and a small per-grant arbitration overhead).
struct Config {
  Time horizon = 1'000'000;       ///< run() stops at this time
  long segment_overhead_cycles = 2;  ///< arbitration+header cycles per grant
  bool log_runs = true;           ///< record R lines (disable to shrink logs)
  /// Fault scenario + degraded-mode knobs. An empty plan (the default)
  /// leaves the fault machinery fully off: the simulation log and the
  /// statistics are identical to a build without fault support.
  FaultPlan faults = {};
  /// Resource envelope applied to this run: log_records (+ optional
  /// log_spill_path) caps the SimulationLog, event_queue caps pending
  /// events. Semantic lock: an in-envelope run is byte-identical to an
  /// unbounded one; an envelope miss throws a classified EnvelopeError.
  ResourceProfile envelope = {};
};

/// Per-processing-element statistics.
struct PeStats {
  Time busy_time = 0;            ///< compute + RTOS overhead
  std::uint64_t steps = 0;       ///< transitions executed
  std::uint64_t dispatched = 0;  ///< events delivered (incl. dropped)
  std::uint64_t preemptions = 0; ///< preemptive scheduling only
  Time overhead_time = 0;        ///< context-switch time (part of busy_time)
};

/// Per-segment statistics.
struct SegmentStats {
  std::uint64_t grants = 0;
  std::uint64_t transfers = 0;
  Time busy_time = 0;
  Time wait_time = 0;  ///< total grant-queue waiting
};

/// One co-simulation over a complete system model. Construct, inject the
/// environment workload, run, then read the log / stats.
class Simulation {
public:
  /// Builds the executable system. Throws std::runtime_error when the model
  /// is not executable: a process is unmapped, its target instance is not
  /// attached to any segment while remote communication is required, or a
  /// functional component lacks a behaviour. All defects (including fault
  /// plan defects: malformed windows, unknown component names) are collected
  /// into one multi-line diagnostic so the model can be fixed in one pass.
  explicit Simulation(const mapping::SystemView& sys, Config config = {});

  /// Builds a simulation over a pre-lowered model image (CompiledModel::
  /// build). Processes execute as bytecode (efsm::CompiledInstance) instead
  /// of AST interpretation; the SimulationLog is byte-identical to the
  /// SystemView constructor's. The model may be shared read-only by any
  /// number of concurrent Simulations (see sim::BatchRunner); each keeps it
  /// alive through the shared_ptr.
  explicit Simulation(std::shared_ptr<const CompiledModel> model,
                      Config config = {});

  /// Builds a simulation whose processes step through an out-of-line
  /// behaviour image (e.g. codegen::NativeImage's dlopen'ed machine code)
  /// instead of the bytecode interpreter. Routing, timing and logging are
  /// unchanged — the SimulationLog is byte-identical to the other two
  /// constructors'. The image (and through it the model) may be shared
  /// read-only across concurrent Simulations.
  explicit Simulation(std::shared_ptr<const BackendImage> image,
                      Config config = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Rewinds this simulation to time 0 over the same model under a new
  /// configuration, reusing every allocation (event queue, EFSM slot files,
  /// log buffers, stat tables) instead of reconstructing them. The
  /// subsequent run is byte-identical to a freshly constructed Simulation
  /// with the same configuration — batch and campaign runs lean on that to
  /// make per-run cost independent of model size at small horizons. Throws
  /// std::runtime_error on fault-plan defects, exactly like construction.
  void reset(const Config& config);

  /// Injects a signal from the environment through a boundary port of the
  /// application class at absolute time `t`. Valid before and after run()
  /// has started, as long as `t >= now()`; injecting into the past throws
  /// std::invalid_argument.
  void inject(Time t, const std::string& boundary_port,
              const uml::Signal& signal, std::vector<long> args = {});
  /// Injects `count` occurrences, the first at `first`, spaced by `period`.
  void inject_periodic(Time first, Time period, std::size_t count,
                       const std::string& boundary_port,
                       const uml::Signal& signal, std::vector<long> args = {});

  /// Runs until the configured horizon (processes are started at time 0 on
  /// the first call). Can be called repeatedly with a raised horizon.
  void run();
  void run_until(Time horizon);

  Time now() const noexcept;
  const SimulationLog& log() const noexcept { return log_; }
  const Config& config() const noexcept { return config_; }

  /// EFSM instance of a process (for white-box assertions in tests).
  const efsm::Instance& instance(const std::string& process) const;

  const std::map<std::string, PeStats>& pe_stats() const noexcept {
    return pe_stats_;
  }
  const std::map<std::string, SegmentStats>& segment_stats() const noexcept {
    return segment_stats_;
  }
  std::uint64_t events_dispatched() const noexcept;

private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  SimulationLog log_;
  Config config_;
  std::map<std::string, PeStats> pe_stats_;
  std::map<std::string, SegmentStats> segment_stats_;
};

}  // namespace tut::sim
