// NativeImage: compile-and-load driver for the emitted translation unit,
// plus NativeInstance, the ProcExecutor adapter that steps one process
// through the loaded C ABI.
//
// The pipeline is generate -> hash -> cache lookup -> (compile) -> dlopen:
// the cache key is the FNV-1a hash of emitted source + compile flags +
// compiler command, so a model, flag or compiler change recompiles while
// repeated runs (and parallel test processes) reuse the .so. Compilation
// writes to a pid-suffixed temp file and renames into place, making
// concurrent builders race-safe; within one process a per-key single-flight
// gate additionally serializes same-hash builds, so exactly one thread pays
// the compiler shell-out and the rest wait for its rename and take the
// cache hit. The loaded library carries its own hash
// (tut_native_v1_hash, appended after hashing to break the circularity) and
// ABI version, both checked at load.

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "codegen/native.hpp"
#include "uml/structure.hpp"

namespace tut::codegen {
namespace {

namespace fs = std::filesystem;

// FNV-1a 64 (same constants as the batch/campaign log digests).
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ull;
    }
  }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    const unsigned char delim = 0xff;
    bytes(&delim, 1);
  }
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool command_works(const std::string& cxx) {
  if (cxx.empty()) return false;
  const std::string cmd = cxx + " --version > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

// Single-flight gate per content hash: two concurrent builds of the same
// key used to race to compile the same object (safe through the pid-tmp +
// rename dance, but each racer paid a full compiler shell-out). One mutex
// per key serializes the exists-check/compile/rename window, so the first
// builder compiles and every concurrent peer waits, then takes the cache
// hit. Keyed by hash only — the hash already covers source, flags, compiler
// and thereby the cache-relevant identity (distinct cache_dirs of the same
// key share a gate, which costs a little concurrency, never correctness).
std::shared_ptr<std::mutex> build_gate(std::uint64_t key) {
  static std::mutex gates_mu;
  static std::map<std::uint64_t, std::weak_ptr<std::mutex>> gates;
  const std::lock_guard<std::mutex> lock(gates_mu);
  std::weak_ptr<std::mutex>& slot = gates[key];
  std::shared_ptr<std::mutex> gate = slot.lock();
  if (gate == nullptr) {
    gate = std::make_shared<std::mutex>();
    slot = gate;
  }
  return gate;
}

std::string default_cache_dir() {
  if (const char* dir = std::getenv("TUT_NATIVE_CACHE"); dir && *dir)
    return dir;
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
    return std::string(xdg) + "/tut-native";
  if (const char* home = std::getenv("HOME"); home && *home)
    return std::string(home) + "/.cache/tut-native";
  return "/tmp/tut-native";
}

void write_file_atomic(const fs::path& path, const std::string& content) {
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw std::runtime_error("[native.cache.unwritable] cannot write '" +
                               tmp.string() + "'");
    }
  }
  fs::rename(tmp, path);
}

std::string read_file_head(const fs::path& path, std::size_t limit) {
  std::ifstream in(path, std::ios::binary);
  std::string text(limit, '\0');
  in.read(text.data(), static_cast<std::streamsize>(limit));
  text.resize(static_cast<std::size_t>(in.gcount()));
  return text;
}

// Host-side mirrors of the emitted C ABI structs (layout must match
// native_emit.cpp's preamble; the lockstep tests pin the behaviour).
struct NativeOut {
  long cycles;
  unsigned long long transitions;
  int fired;
  unsigned err_aux;
};

struct NativeSink {
  void* ctx;
  void (*send)(void*, unsigned, const long*, unsigned);
  void (*timer_set)(void*, unsigned, long);
  void (*timer_reset)(void*, unsigned);
};

struct SinkCtx {
  efsm::StepResult* result;
  const NativeMachineInfo* info;
};

void cb_send(void* ctx, unsigned id, const long* args, unsigned nargs) {
  auto* c = static_cast<SinkCtx*>(ctx);
  efsm::Send send;
  send.port = c->info->sends[id].first;
  send.signal = c->info->sends[id].second;
  send.args.assign(args, args + nargs);
  c->result->sends.push_back(std::move(send));
}

void cb_timer_set(void* ctx, unsigned id, long delay) {
  auto* c = static_cast<SinkCtx*>(ctx);
  c->result->timers.push_back(
      {efsm::TimerOp::Kind::Set, c->info->timers[id], delay});
}

void cb_timer_reset(void* ctx, unsigned id) {
  auto* c = static_cast<SinkCtx*>(ctx);
  c->result->timers.push_back(
      {efsm::TimerOp::Kind::Reset, c->info->timers[id], 0});
}

template <typename T>
T resolve(void* handle, const char* name, std::vector<std::string>& missing) {
  void* sym = ::dlsym(handle, name);
  if (sym == nullptr) missing.emplace_back(name);
  return reinterpret_cast<T>(sym);
}

}  // namespace

std::string NativeImage::find_compiler(const std::string& preferred) {
  if (!preferred.empty()) return command_works(preferred) ? preferred : "";
  if (const char* env = std::getenv("CXX"); env && *env) {
    if (command_works(env)) return env;
  }
  for (const char* candidate : {"c++", "g++", "clang++"}) {
    if (command_works(candidate)) return candidate;
  }
  return "";
}

std::shared_ptr<const NativeImage> NativeImage::build(
    std::shared_ptr<const sim::CompiledModel> model, NativeOptions opt) {
  if (model == nullptr) {
    throw std::invalid_argument("NativeImage requires a non-null model");
  }
  auto image = std::shared_ptr<NativeImage>(new NativeImage());
  image->model_ = std::move(model);
  image->source_ = emit_native(*image->model_);

  const std::string cxx = find_compiler(opt.cxx);
  if (cxx.empty()) {
    throw std::runtime_error(
        "[native.compiler.missing] no C++ compiler available (tried $CXX, "
        "c++, g++, clang++); use --backend=interpreter or install one");
  }
  std::string flags = "-O2 -fPIC -shared -std=c++17";
  if (!opt.extra_flags.empty()) flags += " " + opt.extra_flags;

  Fnv fnv;
  fnv.str(image->source_.code);
  fnv.str(flags);
  fnv.str(cxx);
  image->hash_ = fnv.h;
  const std::string key = hex64(image->hash_);

  const fs::path dir =
      opt.cache_dir.empty() ? fs::path(default_cache_dir())
                            : fs::path(opt.cache_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("[native.cache.unwritable] cannot create "
                             "cache directory '" + dir.string() + "': " +
                             ec.message());
  }
  const fs::path cpp = dir / (key + ".cpp");
  const fs::path so = dir / (key + ".so");
  const fs::path err = dir / (key + ".err");

  const std::shared_ptr<std::mutex> gate = build_gate(image->hash_);
  const std::lock_guard<std::mutex> build_lock(*gate);
  if (opt.force_rebuild || !fs::exists(so)) {
    // The emitted TU hashes without the hash export (circular otherwise);
    // append it now so the loaded library can prove its identity.
    std::string text = image->source_.code;
    text += "\nextern \"C\" unsigned long long tut_native_v1_hash(void) "
            "{ return 0x" + key + "ull; }\n";
    write_file_atomic(cpp, text);
    const fs::path tmp_so =
        so.string() + ".tmp." + std::to_string(::getpid());
    const std::string cmd = cxx + " " + flags + " -o \"" + tmp_so.string() +
                            "\" \"" + cpp.string() + "\" 2> \"" +
                            err.string() + "\"";
    if (std::system(cmd.c_str()) != 0) {
      fs::remove(tmp_so, ec);
      throw std::runtime_error("[native.compile.failed] '" + cxx +
                               "' failed on generated source '" +
                               cpp.string() + "':\n" +
                               read_file_head(err, 4000));
    }
    fs::rename(tmp_so, so);
  } else {
    image->cache_hit_ = true;
  }
  image->so_path_ = so.string();

  image->handle_ = ::dlopen(image->so_path_.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (image->handle_ == nullptr) {
    throw std::runtime_error("[native.dlopen.failed] cannot load '" +
                             image->so_path_ + "': " + ::dlerror());
  }
  std::vector<std::string> missing;
  Abi& abi = image->abi_;
  void* h = image->handle_;
  abi.abi = resolve<int (*)()>(h, "tut_native_v1_abi", missing);
  abi.hash = resolve<std::uint64_t (*)()>(h, "tut_native_v1_hash", missing);
  abi.machine_count =
      resolve<unsigned (*)()>(h, "tut_native_v1_machine_count", missing);
  abi.instance_size = resolve<std::uint64_t (*)(unsigned)>(
      h, "tut_native_v1_instance_size", missing);
  abi.init =
      resolve<void (*)(unsigned, void*)>(h, "tut_native_v1_init", missing);
  abi.start = resolve<int (*)(unsigned, void*, const void*, void*)>(
      h, "tut_native_v1_start", missing);
  abi.reset = resolve<int (*)(unsigned, void*, const void*, void*)>(
      h, "tut_native_v1_reset", missing);
  abi.deliver = resolve<int (*)(unsigned, void*, int, int, const long*,
                                unsigned, const void*, void*)>(
      h, "tut_native_v1_deliver", missing);
  abi.timer = resolve<int (*)(unsigned, void*, int, const void*, void*)>(
      h, "tut_native_v1_timer", missing);
  abi.state = resolve<int (*)(unsigned, const void*)>(
      h, "tut_native_v1_state", missing);
  abi.slot = resolve<long (*)(unsigned, const void*, unsigned, int*)>(
      h, "tut_native_v1_slot", missing);
  if (!missing.empty()) {
    std::string names;
    for (const std::string& n : missing) names += " " + n;
    throw std::runtime_error("[native.abi.mismatch] '" + image->so_path_ +
                             "' lacks entry points:" + names);
  }
  if (abi.abi() != 1) {
    throw std::runtime_error(
        "[native.abi.mismatch] '" + image->so_path_ + "' speaks ABI v" +
        std::to_string(abi.abi()) + ", host expects v1");
  }
  if (abi.hash() != image->hash_) {
    throw std::runtime_error("[native.abi.mismatch] '" + image->so_path_ +
                             "' content hash " + hex64(abi.hash()) +
                             " != expected " + key +
                             " (stale cache entry?)");
  }
  if (abi.machine_count() != image->source_.machines.size()) {
    throw std::runtime_error("[native.abi.mismatch] '" + image->so_path_ +
                             "' machine count mismatch");
  }
  return image;
}

NativeImage::~NativeImage() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

std::unique_ptr<sim::ProcExecutor> NativeImage::make_executor(
    std::uint32_t proc) const {
  const auto& procs = model_->procs();
  if (proc >= procs.size()) {
    throw std::out_of_range("NativeImage has no process index " +
                            std::to_string(proc));
  }
  return std::make_unique<NativeInstance>(shared_from_this(),
                                          source_.proc_machine[proc],
                                          procs[proc].name);
}

// ---------------------------------------------------------------------------
// NativeInstance
// ---------------------------------------------------------------------------

NativeInstance::NativeInstance(std::shared_ptr<const NativeImage> image,
                               std::uint32_t machine, std::string name)
    : image_(std::move(image)),
      info_(&image_->source().machines.at(machine)),
      machine_(machine),
      name_(std::move(name)) {
  const std::uint64_t size = image_->abi().instance_size(machine);
  blob_ = std::make_unique<std::uint64_t[]>(
      size == 0 ? 1 : (size + 7) / 8);
  image_->abi().init(machine_, blob_.get());
  for (std::size_t i = 0; i < info_->signals.size(); ++i) {
    sig_ids_.emplace(info_->signals[i], static_cast<int>(i));
  }
  for (std::size_t i = 0; i < info_->ports.size(); ++i) {
    port_ids_.emplace(info_->ports[i], static_cast<int>(i));
  }
  for (std::size_t i = 0; i < info_->timers.size(); ++i) {
    timer_ids_.emplace(info_->timers[i], static_cast<int>(i));
  }
}

void NativeInstance::raise(int err, unsigned aux) const {
  const efsm::CompiledMachine& m = *info_->machine;
  switch (err) {
    case 1: {
      const auto& names = m.slot_names();
      throw efsm::EvalError(
          "unknown identifier '" +
          (aux < names.size() ? names[aux] : std::string("?")) + "'");
    }
    case 2:
      throw efsm::EvalError(
          "unknown identifier '" +
          (aux < info_->missing.size() ? info_->missing[aux]
                                       : std::string("?")) +
          "'");
    case 3:
      throw efsm::EvalError("division by zero");
    case 4:
      throw efsm::EvalError("modulo by zero");
    case 5:
      throw efsm::LivelockError(
          "instance '" + name_ + "' chained more than 1000 completion "
          "transitions in state '" +
          (aux < m.states().size() ? m.states()[aux].name
                                   : std::string("?")) +
          "'");
    case 6:
      throw std::logic_error("instance '" + name_ + "' not started");
    case 7:
      throw std::logic_error("state machine '" + m.source().name() +
                             "' has no initial state");
    default:
      throw std::runtime_error("[native.abi.error] instance '" + name_ +
                               "' returned unknown error code " +
                               std::to_string(err));
  }
}

efsm::StepResult NativeInstance::finish(int err, const void* out,
                                        efsm::StepResult result) const {
  const auto* o = static_cast<const NativeOut*>(out);
  if (err != 0) raise(err, o->err_aux);
  result.fired = o->fired != 0;
  result.compute_cycles = o->cycles;
  result.transitions_taken = static_cast<std::size_t>(o->transitions);
  return result;
}

efsm::StepResult NativeInstance::start() {
  efsm::StepResult result;
  NativeOut out{};
  SinkCtx ctx{&result, info_};
  NativeSink sink{&ctx, &cb_send, &cb_timer_set, &cb_timer_reset};
  const int rc = image_->abi().start(machine_, blob_.get(), &sink, &out);
  return finish(rc, &out, std::move(result));
}

efsm::StepResult NativeInstance::reset() {
  efsm::StepResult result;
  NativeOut out{};
  SinkCtx ctx{&result, info_};
  NativeSink sink{&ctx, &cb_send, &cb_timer_set, &cb_timer_reset};
  const int rc = image_->abi().reset(machine_, blob_.get(), &sink, &out);
  return finish(rc, &out, std::move(result));
}

efsm::StepResult NativeInstance::deliver(const efsm::Event& event) {
  int sig = -2;
  if (event.signal != nullptr) {
    auto it = sig_ids_.find(event.signal);
    sig = it == sig_ids_.end() ? -1 : it->second;
  }
  int port = -1;
  if (auto it = port_ids_.find(event.port); it != port_ids_.end()) {
    port = it->second;
  }
  efsm::StepResult result;
  NativeOut out{};
  SinkCtx ctx{&result, info_};
  NativeSink sink{&ctx, &cb_send, &cb_timer_set, &cb_timer_reset};
  const int rc = image_->abi().deliver(
      machine_, blob_.get(), sig, port, event.args.data(),
      static_cast<unsigned>(event.args.size()), &sink, &out);
  return finish(rc, &out, std::move(result));
}

efsm::StepResult NativeInstance::timer_fired(const std::string& timer) {
  int tm = -2;  // empty name: the interpreter's completion poll
  if (!timer.empty()) {
    auto it = timer_ids_.find(timer);
    tm = it == timer_ids_.end() ? -1 : it->second;
  }
  efsm::StepResult result;
  NativeOut out{};
  SinkCtx ctx{&result, info_};
  NativeSink sink{&ctx, &cb_send, &cb_timer_set, &cb_timer_reset};
  const int rc =
      image_->abi().timer(machine_, blob_.get(), tm, &sink, &out);
  return finish(rc, &out, std::move(result));
}

void NativeInstance::rewind() { image_->abi().init(machine_, blob_.get()); }

bool NativeInstance::started() const {
  return image_->abi().state(machine_, blob_.get()) >= 0;
}

const std::string& NativeInstance::state_name() const {
  static const std::string kEmpty;
  const int state = image_->abi().state(machine_, blob_.get());
  if (state < 0) return kEmpty;
  return info_->machine->states()[static_cast<std::size_t>(state)].name;
}

long NativeInstance::variable(const std::string& name) const {
  const std::uint16_t slot = info_->machine->slot_of(name);
  int defined = 0;
  long value = 0;
  if (slot != efsm::kNoSlot) {
    value = image_->abi().slot(machine_, blob_.get(), slot, &defined);
  }
  if (slot == efsm::kNoSlot || defined == 0) {
    throw std::out_of_range("instance '" + name_ + "' has no variable '" +
                            name + "'");
  }
  return value;
}

}  // namespace tut::codegen
