// codegen::native — native machine code generation from EFSM bytecode.
//
// The paper's flow compiles the UML model to embedded C before execution;
// this module closes the same loop inside the co-simulator. emit_native()
// walks every distinct efsm::CompiledMachine of a sim::CompiledModel and
// translates its Program bytecode instruction-for-instruction into
// specialized C++: one set of functions per machine (start / reset /
// deliver / timer dispatchers over a switch on the current state), each
// guard and action expression lowered to straight-line statements with the
// interpreter's registers as locals, guards const-folded when they touch no
// variable, and transition targets / signal parameter-slot tables baked in
// as constexpr arrays. The emitted translation unit is self-contained
// (no tut headers) behind a stable C ABI, `tut_native_v1`.
//
// NativeImage drives the build: shell out to the configured C++ compiler
// ($CXX, else the first of c++/g++/clang++ that answers --version), cache
// the shared object by FNV-1a content hash of source + flags + compiler
// under ~/.cache/tut-native/, dlopen the result and implement
// sim::BackendImage over it. NativeInstance adapts one machine's entry
// points to the efsm step surface, reconstructing the interpreter's exact
// exceptions from ABI error codes — native and interpreted runs produce
// byte-identical SimulationLogs, pinned by the lockstep tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "efsm/machine.hpp"
#include "efsm/program.hpp"
#include "sim/backend.hpp"
#include "sim/compiled.hpp"

namespace tut::codegen {

/// Host-side tables mirroring the id spaces baked into one generated
/// machine. The emitter builds both sides in a single deterministic walk,
/// so an id agreed on here is the id compiled into the .so.
struct NativeMachineInfo {
  const efsm::CompiledMachine* machine = nullptr;
  /// Trigger signals, first-seen in transition declaration order; index is
  /// the signal id the generated deliver() switches on (-2 encodes a null
  /// signal, -1 a signal unknown to this machine).
  std::vector<const uml::Signal*> signals;
  /// Distinct non-empty trigger ports, first-seen order; index = port id.
  std::vector<std::string> ports;
  /// Timer names (trigger timers, then SetTimer/ResetTimer operands), in
  /// first-seen canonical walk order; index = timer id (-2 encodes the
  /// empty name, which the interpreter treats as a completion poll).
  std::vector<std::string> timers;
  /// Distinct Send (port, signal) pairs in canonical action order; index is
  /// the send id reported through the sink callback.
  std::vector<std::pair<std::string, const uml::Signal*>> sends;
  /// Unknown identifiers per Missing op, in program emission order, for
  /// reconstructing the interpreter's EvalError messages.
  std::vector<std::string> missing;
};

/// One emitted translation unit covering every machine of a model.
struct NativeSource {
  std::string code;                         ///< the C++ TU (no ABI hash yet)
  std::vector<NativeMachineInfo> machines;  ///< by generated machine index
  std::vector<std::uint32_t> proc_machine;  ///< process index -> machine index
};

/// Emits the native translation unit for `model` (which must carry bytecode
/// images, i.e. CompiledModel::build()). Deterministic: equal models emit
/// byte-identical source.
NativeSource emit_native(const sim::CompiledModel& model);

/// Compiler / cache knobs for NativeImage::build.
struct NativeOptions {
  /// C++ compiler command. Empty: $CXX, then the first of c++ / g++ /
  /// clang++ that runs `--version` successfully.
  std::string cxx;
  /// Cache directory for generated sources and shared objects. Empty:
  /// $TUT_NATIVE_CACHE, else $XDG_CACHE_HOME/tut-native, else
  /// $HOME/.cache/tut-native, else /tmp/tut-native.
  std::string cache_dir;
  /// Extra flags appended to the compile command (part of the cache key).
  std::string extra_flags;
  /// Recompile even when the cached .so exists.
  bool force_rebuild = false;
};

/// A generated, compiled and dlopen'ed behaviour image. Immutable and
/// shareable: any number of Simulations on any number of threads draw
/// executors from one image; the dlopen handle lives until the last
/// NativeInstance and the image itself are gone.
class NativeImage final : public sim::BackendImage,
                          public std::enable_shared_from_this<NativeImage> {
 public:
  /// Emits, compiles (or reuses the cached .so) and loads the image.
  /// Throws std::runtime_error with a stable "[native.*]" tag on failure:
  /// [native.compiler.missing] when no compiler answers, [native.compile.
  /// failed] with the captured compiler stderr, [native.dlopen.failed],
  /// [native.abi.mismatch]; std::invalid_argument on a null or
  /// bytecode-less model.
  static std::shared_ptr<const NativeImage> build(
      std::shared_ptr<const sim::CompiledModel> model, NativeOptions opt = {});

  ~NativeImage() override;
  NativeImage(const NativeImage&) = delete;
  NativeImage& operator=(const NativeImage&) = delete;

  std::shared_ptr<const sim::CompiledModel> model() const override {
    return model_;
  }
  std::unique_ptr<sim::ProcExecutor> make_executor(
      std::uint32_t proc) const override;
  std::string_view name() const override { return "native"; }
  /// FNV-1a over emitted source + flags + compiler command; also exported
  /// by the .so (tut_native_v1_hash) and checked at load.
  std::uint64_t content_hash() const override { return hash_; }

  const NativeSource& source() const noexcept { return source_; }
  const std::string& library_path() const noexcept { return so_path_; }
  /// True when the shared object came from the cache without compiling.
  bool cache_hit() const noexcept { return cache_hit_; }

  /// Resolved compiler command per NativeOptions rules; empty when none is
  /// available (callers then fall back to the interpreter).
  static std::string find_compiler(const std::string& preferred = {});

  /// Entry points resolved from the loaded library (tut_native_v1_*).
  struct Abi {
    int (*abi)() = nullptr;
    std::uint64_t (*hash)() = nullptr;
    unsigned (*machine_count)() = nullptr;
    std::uint64_t (*instance_size)(unsigned) = nullptr;
    void (*init)(unsigned, void*) = nullptr;
    int (*start)(unsigned, void*, const void*, void*) = nullptr;
    int (*reset)(unsigned, void*, const void*, void*) = nullptr;
    int (*deliver)(unsigned, void*, int, int, const long*, unsigned,
                   const void*, void*) = nullptr;
    int (*timer)(unsigned, void*, int, const void*, void*) = nullptr;
    int (*state)(unsigned, const void*) = nullptr;
    long (*slot)(unsigned, const void*, unsigned, int*) = nullptr;
  };
  const Abi& abi() const noexcept { return abi_; }

 private:
  NativeImage() = default;

  std::shared_ptr<const sim::CompiledModel> model_;
  NativeSource source_;
  std::string so_path_;
  std::uint64_t hash_ = 0;
  bool cache_hit_ = false;
  void* handle_ = nullptr;
  Abi abi_;
};

/// One process's native execution state: an opaque instance blob stepped
/// through the image's C ABI. Mirrors efsm::CompiledInstance exactly —
/// StepResults, exception types and messages included.
class NativeInstance final : public sim::ProcExecutor {
 public:
  NativeInstance(std::shared_ptr<const NativeImage> image,
                 std::uint32_t machine, std::string name);

  efsm::StepResult start() override;
  efsm::StepResult reset() override;
  efsm::StepResult deliver(const efsm::Event& event) override;
  efsm::StepResult timer_fired(const std::string& timer) override;
  void rewind() override;

  // Introspection for the lockstep tests (CompiledInstance surface).
  const std::string& name() const noexcept { return name_; }
  bool started() const;
  const std::string& state_name() const;
  long variable(const std::string& name) const;

 private:
  [[noreturn]] void raise(int err, unsigned aux) const;
  efsm::StepResult finish(int err, const void* out,
                          efsm::StepResult result) const;

  std::shared_ptr<const NativeImage> image_;
  const NativeMachineInfo* info_ = nullptr;
  std::uint32_t machine_ = 0;
  std::string name_;
  std::unique_ptr<std::uint64_t[]> blob_;  ///< instance storage, 8-aligned
  std::unordered_map<const uml::Signal*, int> sig_ids_;
  std::unordered_map<std::string, int> port_ids_;
  std::unordered_map<std::string, int> timer_ids_;
};

}  // namespace tut::codegen
