// tut::codegen — automatic C code generation from the UML model.
//
// Figure 2 of the paper: "executable application for the implemented
// platform is automatically generated from the UML" and "the automatically
// generated application code is complemented with custom C functions to
// create simulation log-file during simulations".
//
// The generator emits portable C99:
//  - tut_runtime.h      : the run-time library interface (event/queue/timer
//                         API plus the TUT_PROFILING logging hooks — the
//                         paper's "run-time libraries & custom functions")
//  - signals.h          : signal ids and parameter layouts
//  - <component>.h/.c   : per functional component, the EFSM as a context
//                         struct + dispatch function (run-to-completion)
//  - process_table.c    : process instances with their process groups (the
//                         "process group information" embedded in the build)
//  - main.c             : the dispatch loop skeleton
//
// Guards and action expressions translate one-to-one: the model's expression
// language is a C expression subset; only identifiers are renamed (state
// variables to ctx->fields, signal parameters to locals).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "uml/model.hpp"

namespace tut::codegen {

struct GeneratedFile {
  std::string path;
  std::string content;
};

/// The generated source tree (in memory; write_to saves it).
struct CodeBundle {
  std::vector<GeneratedFile> files;

  const GeneratedFile* find(const std::string& path) const noexcept;
  std::size_t total_lines() const noexcept;
  std::size_t total_bytes() const noexcept;
  /// Writes all files under `dir` (created if missing).
  void write_to(const std::string& dir) const;
};

/// One environment injection in the generated host workload: `count`
/// occurrences of `signal` through the application's `boundary_port`,
/// starting at `time`, `period` ticks apart.
struct Injection {
  std::string boundary_port;
  unsigned long long time = 0;
  unsigned long long period = 0;
  std::size_t count = 1;
  const uml::Signal* signal = nullptr;
  std::vector<long> args;
};

struct Options {
  /// Emit TUT_PROFILING logging hooks (stage 2 of the profiling flow).
  bool profiling_instrumentation = true;

  /// Also emit a runnable host build: tut_runtime_host.c (single reference
  /// processor, logical time, log-file on stdout) and platform_glue.c
  /// (contexts, port wiring from the composite structure, workload). The
  /// result compiles and runs with
  ///   gcc -std=c99 -I<dir> <dir>/*.c -o app && ./app > simulation.log
  bool host_runtime = false;
  /// Host pump stops past this logical time (ticks; 1 cycle = 10 ticks).
  unsigned long long host_horizon = 10'000'000;
  /// Environment workload baked into the generated glue.
  std::vector<Injection> workload;
};

/// The fixed source text of the host reference run-time.
const char* host_runtime_source();

/// Generates the C implementation of every <<ApplicationComponent>> in the
/// model plus the shared runtime and tables. Throws std::runtime_error when
/// a functional component has no behaviour.
CodeBundle generate(const uml::Model& model, const Options& options = {});

/// Renames identifiers in a model expression to C lvalues; all other tokens
/// pass through. Identifiers missing from `rename` are left unchanged.
std::string expr_to_c(const std::string& expr,
                      const std::map<std::string, std::string>& rename);

/// Lower-cases a model name into a C identifier (non-alnum -> '_').
std::string c_ident(const std::string& name);

}  // namespace tut::codegen
