#include "codegen/codegen.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "appmodel/appmodel.hpp"
#include "efsm/router.hpp"
#include "profile/tut_profile.hpp"

namespace tut::codegen {

namespace {

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string c_ident(const std::string& name) {
  std::string out;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c))) {
      // CamelCase -> snake_case.
      if (!out.empty() && out.back() != '_' && i > 0 &&
          !std::isupper(static_cast<unsigned char>(name[i - 1]))) {
        out += '_';
      }
      out += static_cast<char>(std::tolower(c));
    } else if (ident_char(c)) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), 'x');
  }
  return out;
}

std::string expr_to_c(const std::string& expr,
                      const std::map<std::string, std::string>& rename) {
  std::string out;
  std::size_t i = 0;
  while (i < expr.size()) {
    const char c = expr[i];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < expr.size() && ident_char(expr[i])) ident += expr[i++];
      auto it = rename.find(ident);
      out += it != rename.end() ? it->second : ident;
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

const GeneratedFile* CodeBundle::find(const std::string& path) const noexcept {
  for (const auto& f : files) {
    if (f.path == path) return &f;
  }
  return nullptr;
}

std::size_t CodeBundle::total_lines() const noexcept {
  std::size_t n = 0;
  for (const auto& f : files) {
    n += static_cast<std::size_t>(
        std::count(f.content.begin(), f.content.end(), '\n'));
  }
  return n;
}

std::size_t CodeBundle::total_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& f : files) n += f.content.size();
  return n;
}

void CodeBundle::write_to(const std::string& dir) const {
  std::filesystem::create_directories(dir);
  for (const auto& f : files) {
    std::ofstream out(std::filesystem::path(dir) / f.path);
    if (!out) {
      throw std::runtime_error("cannot write generated file '" + f.path + "'");
    }
    out << f.content;
  }
}

namespace {

// ---------------------------------------------------------------------------
// Fixed runtime files
// ---------------------------------------------------------------------------

constexpr const char* kRuntimeHeader = R"(/* tut_runtime.h — generated run-time library interface.
 * The implementation is provided by the target's run-time libraries (a host
 * reference implementation, tut_runtime_host.c, can be generated alongside);
 * during profiling runs the logging hooks write the simulation log-file. */
#ifndef TUT_RUNTIME_H
#define TUT_RUNTIME_H

#include <stddef.h>

typedef struct tut_port tut_port_t;

typedef enum { TUT_EV_START, TUT_EV_SIGNAL, TUT_EV_TIMER } tut_event_kind_t;

typedef struct {
  tut_event_kind_t kind;
  int signal;             /* signal id, see signals.h */
  const tut_port_t* port; /* receiving port */
  const long* args;       /* signal parameters */
  size_t argc;
  const char* timer;      /* fired timer name */
} tut_event_t;

/* A port attachment. Exposed (not opaque) so the generated platform glue
 * can wire connectors; application code never touches the fields. */
struct tut_port {
  const char* owner;      /* process owning this attachment */
  const char* dest_name;  /* peer process name, or "env" */
  void* dest_ctx;         /* peer context, NULL for the environment */
  void (*dest_dispatch)(void*, const tut_event_t*);
  const tut_port_t* dest_port; /* peer attachment (event identity) */
};

/* Asynchronous send through a port (queued by the run-time). */
void tut_send(tut_port_t* port, int signal, const long* args, size_t argc);
/* Accounts `cycles` of computation on the executing processing element. */
void tut_compute(long cycles);
/* Arms / cancels a named context timer. */
void tut_set_timer(void* ctx, const char* name, long delay);
void tut_reset_timer(void* ctx, const char* name);
/* Nonzero when the timer event `ev` is the named timer. */
int tut_timer_is(const tut_event_t* ev, const char* name);

/* -- platform glue interface (implemented by tut_runtime_host.c) -------- */
/* Registers a process so timers can find their dispatch function. */
void tut_register_process(void* ctx, void (*dispatch)(void*, const tut_event_t*),
                          const char* name);
/* Enqueues a TUT_EV_START for every registered process at time 0. */
void tut_start_all(void);
/* Environment injection through a resolved boundary destination. */
void tut_inject(unsigned long long time, void* ctx,
                void (*dispatch)(void*, const tut_event_t*),
                const tut_port_t* port, const char* dest_name, int signal,
                const long* args, size_t argc);
/* Stops the pump once the logical clock passes `horizon` ticks. */
void tut_set_horizon(unsigned long long horizon);
/* Signal metadata tables (implemented by the generated platform glue). */
const char* tut_signal_name(int signal);
size_t tut_signal_bytes(int signal);

#ifdef TUT_PROFILING
/* Extra instrumentation hooks ("custom C functions", paper Section 4.4).
 * The host runtime already logs runs/sends; targets may map these to their
 * own tracing. */
void tut_log_run(const char* process, long cycles);
void tut_log_send(const char* from, int signal);
#define TUT_LOG_RUN(p, c) tut_log_run((p), (c))
#define TUT_LOG_SEND(f, s) tut_log_send((f), (s))
#else
#define TUT_LOG_RUN(p, c) ((void)0)
#define TUT_LOG_SEND(f, s) ((void)0)
#endif

#endif /* TUT_RUNTIME_H */
)";

constexpr const char* kMainSkeleton = R"(/* main.c — generated dispatch loop skeleton.
 * The platform glue wires ports, delivers TUT_EV_START to every process and
 * then pumps queued events into the dispatch functions. */
#include "tut_runtime.h"

extern void tut_platform_boot(void);
extern int tut_platform_pump(void);

int main(void) {
  tut_platform_boot();
  while (tut_platform_pump()) {
    /* run-to-completion event loop */
  }
  return 0;
}
)";

// ---------------------------------------------------------------------------
// Per-model generation
// ---------------------------------------------------------------------------

class Generator {
public:
  Generator(const uml::Model& model, const Options& options)
      : model_(model), options_(options) {}

  CodeBundle run() {
    CodeBundle bundle;
    bundle.files.push_back({"tut_runtime.h", kRuntimeHeader});
    bundle.files.push_back({"signals.h", gen_signals()});

    for (uml::Element* e :
         model_.stereotyped(profile::names::ApplicationComponent)) {
      if (e->kind() != uml::ElementKind::Class) continue;
      const auto* cls = static_cast<const uml::Class*>(e);
      if (cls->behavior() == nullptr) {
        throw std::runtime_error("functional component '" + cls->name() +
                                 "' has no behaviour to generate");
      }
      const std::string ident = c_ident(cls->name());
      bundle.files.push_back({ident + ".h", gen_component_header(*cls)});
      bundle.files.push_back({ident + ".c", gen_component_source(*cls)});
    }

    bundle.files.push_back({"process_table.c", gen_process_table()});
    if (options_.host_runtime) {
      bundle.files.push_back({"tut_runtime_host.c", host_runtime_source()});
      bundle.files.push_back({"platform_glue.c", gen_platform_glue()});
    }
    bundle.files.push_back({"main.c", kMainSkeleton});
    return bundle;
  }

private:
  std::string signal_macro(const uml::Signal& s) const {
    return "TUT_SIG_" + upper(c_ident(s.name()));
  }

  std::string gen_signals() const {
    std::ostringstream os;
    os << "/* signals.h — generated signal identifiers. */\n"
       << "#ifndef TUT_GEN_SIGNALS_H\n#define TUT_GEN_SIGNALS_H\n\n";
    int id = 1;
    for (uml::Element* e : model_.elements_of_kind(uml::ElementKind::Signal)) {
      const auto* sig = static_cast<const uml::Signal*>(e);
      os << "#define " << signal_macro(*sig) << ' ' << id++ << " /*";
      if (sig->parameters().empty()) {
        os << " no parameters";
      } else {
        for (std::size_t i = 0; i < sig->parameters().size(); ++i) {
          os << " args[" << i << "]=" << sig->parameters()[i].name;
        }
      }
      os << ", " << sig->payload_bytes() << " bytes */\n";
    }
    os << "\n#endif /* TUT_GEN_SIGNALS_H */\n";
    return os.str();
  }

  std::string ctx_type(const uml::Class& cls) const {
    return c_ident(cls.name()) + "_ctx_t";
  }

  std::string state_const(const uml::Class& cls, const uml::State& s) const {
    return upper(c_ident(cls.name())) + "_STATE_" + s.name();
  }

  std::string gen_component_header(const uml::Class& cls) const {
    const std::string ident = c_ident(cls.name());
    const std::string guard = "TUT_GEN_" + upper(ident) + "_H";
    const uml::StateMachine& sm = *cls.behavior();
    std::ostringstream os;
    os << "/* " << ident << ".h — generated from component '" << cls.name()
       << "'. */\n";
    os << "#ifndef " << guard << "\n#define " << guard << "\n\n";
    os << "#include \"tut_runtime.h\"\n\n";
    os << "typedef enum {\n";
    for (const uml::State* s : sm.states()) {
      os << "  " << state_const(cls, *s) << ",\n";
    }
    os << "} " << ident << "_state_t;\n\n";
    os << "typedef struct {\n";
    os << "  const char* name; /* process instance name */\n";
    os << "  " << ident << "_state_t state;\n";
    for (const auto& [var, init] : sm.variables()) {
      os << "  long " << var << "; /* initial: " << init << " */\n";
    }
    for (const uml::Port* p : cls.ports()) {
      os << "  tut_port_t* port_" << c_ident(p->name()) << ";\n";
    }
    os << "} " << ctx_type(cls) << ";\n\n";
    os << "void " << ident << "_init(" << ctx_type(cls) << "* ctx);\n";
    os << "void " << ident << "_dispatch(" << ctx_type(cls)
       << "* ctx, const tut_event_t* ev);\n\n";
    os << "#endif /* " << guard << " */\n";
    return os.str();
  }

  /// Identifier renaming for a transition context: state variables plus the
  /// trigger signal's parameters.
  std::map<std::string, std::string> renames(const uml::StateMachine& sm,
                                             const uml::Signal* trigger) const {
    std::map<std::string, std::string> rn;
    for (const auto& [var, init] : sm.variables()) rn[var] = "ctx->" + var;
    if (trigger != nullptr) {
      for (const auto& p : trigger->parameters()) rn[p.name] = "p_" + p.name;
    }
    return rn;
  }

  void emit_actions(std::ostringstream& os, const std::string& pad,
                    const std::vector<uml::Action>& actions,
                    const std::map<std::string, std::string>& rn) const {
    for (const uml::Action& a : actions) {
      switch (a.kind) {
        case uml::Action::Kind::Assign:
          os << pad << expr_to_c(a.var, rn) << " = " << expr_to_c(a.expr, rn)
             << ";\n";
          break;
        case uml::Action::Kind::Compute:
          if (options_.profiling_instrumentation) {
            os << pad << "TUT_LOG_RUN(ctx->name, (" << expr_to_c(a.expr, rn)
               << "));\n";
          }
          os << pad << "tut_compute(" << expr_to_c(a.expr, rn) << ");\n";
          break;
        case uml::Action::Kind::Send: {
          os << pad << "{\n";
          if (!a.args.empty()) {
            os << pad << "  long tut_args[" << a.args.size() << "];\n";
            for (std::size_t i = 0; i < a.args.size(); ++i) {
              os << pad << "  tut_args[" << i
                 << "] = " << expr_to_c(a.args[i], rn) << ";\n";
            }
          }
          if (options_.profiling_instrumentation) {
            os << pad << "  TUT_LOG_SEND(ctx->name, "
               << signal_macro(*a.signal) << ");\n";
          }
          os << pad << "  tut_send(ctx->port_" << c_ident(a.port) << ", "
             << signal_macro(*a.signal) << ", "
             << (a.args.empty() ? "0" : "tut_args") << ", " << a.args.size()
             << ");\n";
          os << pad << "}\n";
          break;
        }
        case uml::Action::Kind::SetTimer:
          os << pad << "tut_set_timer(ctx, \"" << a.var << "\", "
             << expr_to_c(a.expr, rn) << ");\n";
          break;
        case uml::Action::Kind::ResetTimer:
          os << pad << "tut_reset_timer(ctx, \"" << a.var << "\");\n";
          break;
      }
    }
  }

  void emit_param_bindings(std::ostringstream& os, const std::string& pad,
                           const uml::Signal& trigger) const {
    const auto& params = trigger.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      os << pad << "const long p_" << params[i].name << " = ev->argc > " << i
         << " ? ev->args[" << i << "] : 0;\n";
      os << pad << "(void)p_" << params[i].name << ";\n";
    }
  }

  std::string gen_component_source(const uml::Class& cls) const {
    const std::string ident = c_ident(cls.name());
    const uml::StateMachine& sm = *cls.behavior();
    std::ostringstream os;
    os << "/* " << ident << ".c — generated from component '" << cls.name()
       << "'. */\n";
    os << "#include \"" << ident << ".h\"\n#include \"signals.h\"\n\n";

    // Entry functions.
    for (const uml::State* s : sm.states()) {
      os << "static void " << ident << "_enter_" << s->name() << "("
         << ctx_type(cls) << "* ctx) {\n";
      os << "  ctx->state = " << state_const(cls, *s) << ";\n";
      emit_actions(os, "  ", s->entry_actions(), renames(sm, nullptr));
      os << "}\n\n";
    }

    // Completion-transition chaining (bounded, mirrors the runtime).
    os << "static void " << ident << "_run_completions(" << ctx_type(cls)
       << "* ctx) {\n";
    bool any_completion = false;
    for (const uml::Transition* t : sm.transitions()) {
      if (t->is_completion()) any_completion = true;
    }
    if (any_completion) {
      os << "  int bound;\n";
      os << "  for (bound = 0; bound < 1000; ++bound) {\n";
      os << "    switch (ctx->state) {\n";
      for (const uml::State* s : sm.states()) {
        std::ostringstream body;
        for (const uml::Transition* t : sm.outgoing(*s)) {
          if (!t->is_completion()) continue;
          const auto rn = renames(sm, nullptr);
          body << "        if ("
               << (t->guard().empty() ? "1" : expr_to_c(t->guard(), rn))
               << ") {\n";
          emit_actions(body, "          ", t->effects(), rn);
          body << "          " << ident << "_enter_" << t->target()->name()
               << "(ctx);\n";
          body << "          continue;\n";
          body << "        }\n";
        }
        const std::string text = body.str();
        if (!text.empty()) {
          os << "      case " << state_const(cls, *s) << ":\n"
             << text << "        break;\n";
        }
      }
      os << "      default: break;\n";
      os << "    }\n";
      os << "    return;\n";
      os << "  }\n";
    }
    os << "  (void)ctx;\n";
    os << "}\n\n";

    // init.
    os << "void " << ident << "_init(" << ctx_type(cls) << "* ctx) {\n";
    for (const auto& [var, init] : sm.variables()) {
      os << "  ctx->" << var << " = " << init << ";\n";
    }
    os << "  ctx->state = " << state_const(cls, *sm.initial_state()) << ";\n";
    os << "}\n\n";

    // dispatch.
    os << "void " << ident << "_dispatch(" << ctx_type(cls)
       << "* ctx, const tut_event_t* ev) {\n";
    os << "  if (ev->kind == TUT_EV_START) {\n";
    os << "    " << ident << "_enter_" << sm.initial_state()->name()
       << "(ctx);\n";
    os << "    " << ident << "_run_completions(ctx);\n";
    os << "    return;\n";
    os << "  }\n";
    os << "  switch (ctx->state) {\n";
    for (const uml::State* s : sm.states()) {
      os << "    case " << state_const(cls, *s) << ":\n";
      for (const uml::Transition* t : sm.outgoing(*s)) {
        if (t->is_completion()) continue;
        os << "      {\n";
        if (t->trigger_signal() != nullptr) {
          os << "        if (ev->kind == TUT_EV_SIGNAL && ev->signal == "
             << signal_macro(*t->trigger_signal());
          if (!t->trigger_port().empty()) {
            os << " && ev->port == ctx->port_" << c_ident(t->trigger_port());
          }
          os << ") {\n";
          emit_param_bindings(os, "          ", *t->trigger_signal());
        } else {
          os << "        if (ev->kind == TUT_EV_TIMER && tut_timer_is(ev, \""
             << t->trigger_timer() << "\")) {\n";
        }
        const auto rn = renames(sm, t->trigger_signal());
        os << "          if ("
           << (t->guard().empty() ? "1" : expr_to_c(t->guard(), rn))
           << ") {\n";
        emit_actions(os, "            ", t->effects(), rn);
        os << "            " << ident << "_enter_" << t->target()->name()
           << "(ctx);\n";
        os << "            " << ident << "_run_completions(ctx);\n";
        os << "            return;\n";
        os << "          }\n";
        os << "        }\n";
        os << "      }\n";
      }
      os << "      break;\n";
    }
    os << "    default: break;\n";
    os << "  }\n";
    os << "  /* unhandled event: discarded per UML signal semantics */\n";
    os << "}\n";
    return os.str();
  }

  /// Generates platform_glue.c: static contexts, dispatch trampolines, port
  /// attachments wired from the flattened composite structure, process
  /// registration, horizon, and the baked-in environment workload.
  std::string gen_platform_glue() const {
    const uml::Class* app = nullptr;
    for (uml::Element* e : model_.stereotyped(profile::names::Application)) {
      if (e->kind() == uml::ElementKind::Class) {
        app = static_cast<const uml::Class*>(e);
        break;
      }
    }
    if (app == nullptr) {
      throw std::runtime_error(
          "host runtime generation requires an <<Application>> class");
    }
    const efsm::Router router(*app);
    appmodel::ApplicationView view(model_);

    // Process name -> (part, class ident).
    struct ProcInfo {
      const uml::Property* part;
      const uml::Class* cls;
      std::string ident;  ///< class ident
      std::string pname;  ///< C-safe process ident
    };
    std::vector<ProcInfo> procs;
    std::map<const uml::Property*, const ProcInfo*> by_part;
    for (const uml::Property* p : view.processes()) {
      procs.push_back(ProcInfo{p, p->part_type(), c_ident(p->part_type()->name()),
                               c_ident(p->name())});
    }
    for (const ProcInfo& pi : procs) by_part[pi.part] = &pi;

    std::ostringstream os;
    os << "/* platform_glue.c — generated platform wiring and workload. */\n";
    os << "#include \"tut_runtime.h\"\n#include \"signals.h\"\n";
    std::set<std::string> included;
    for (const ProcInfo& pi : procs) {
      if (included.insert(pi.ident).second) {
        os << "#include \"" << pi.ident << ".h\"\n";
      }
    }
    os << "\n/* contexts */\n";
    for (const ProcInfo& pi : procs) {
      os << "static " << pi.ident << "_ctx_t g_ctx_" << pi.pname << ";\n";
    }
    os << "\n/* dispatch trampolines */\n";
    std::set<std::string> trampolined;
    for (const ProcInfo& pi : procs) {
      if (!trampolined.insert(pi.ident).second) continue;
      os << "static void d_" << pi.ident
         << "(void* c, const tut_event_t* e) {\n  " << pi.ident
         << "_dispatch((" << pi.ident << "_ctx_t*)c, e);\n}\n";
    }
    os << "\n/* port attachments */\n";
    for (const ProcInfo& pi : procs) {
      for (const uml::Port* port : pi.cls->ports()) {
        os << "static tut_port_t g_port_" << pi.pname << '_'
           << c_ident(port->name()) << ";\n";
      }
    }

    // Signal metadata tables.
    os << "\nconst char* tut_signal_name(int signal) {\n  switch (signal) {\n";
    for (uml::Element* e : model_.elements_of_kind(uml::ElementKind::Signal)) {
      const auto* sig = static_cast<const uml::Signal*>(e);
      os << "    case " << signal_macro(*sig) << ": return \"" << sig->name()
         << "\";\n";
    }
    os << "    default: return \"?\";\n  }\n}\n";
    os << "\nsize_t tut_signal_bytes(int signal) {\n  switch (signal) {\n";
    for (uml::Element* e : model_.elements_of_kind(uml::ElementKind::Signal)) {
      const auto* sig = static_cast<const uml::Signal*>(e);
      os << "    case " << signal_macro(*sig) << ": return "
         << sig->payload_bytes() << ";\n";
    }
    os << "    default: return 4;\n  }\n}\n";

    // Boot.
    os << "\nvoid tut_platform_boot(void) {\n";
    for (const ProcInfo& pi : procs) {
      os << "  g_ctx_" << pi.pname << ".name = \"" << pi.part->name()
         << "\";\n";
      os << "  " << pi.ident << "_init(&g_ctx_" << pi.pname << ");\n";
      for (const uml::Port* port : pi.cls->ports()) {
        os << "  g_ctx_" << pi.pname << ".port_" << c_ident(port->name())
           << " = &g_port_" << pi.pname << '_' << c_ident(port->name())
           << ";\n";
      }
      os << "  tut_register_process(&g_ctx_" << pi.pname << ", d_" << pi.ident
         << ", \"" << pi.part->name() << "\");\n";
    }
    os << "\n  /* connector wiring (flattened composite structure) */\n";
    for (const ProcInfo& pi : procs) {
      for (const uml::Port* port : pi.cls->ports()) {
        const std::string var =
            "g_port_" + pi.pname + "_" + c_ident(port->name());
        os << "  " << var << ".owner = \"" << pi.part->name() << "\";\n";
        const efsm::Endpoint dest =
            router.destination(*pi.part, port->name());
        const ProcInfo* target = nullptr;
        if (dest.part != nullptr) {
          auto it = by_part.find(dest.part);
          if (it != by_part.end()) target = it->second;
        }
        if (target == nullptr) {
          os << "  " << var << ".dest_name = \"env\";\n";
        } else {
          os << "  " << var << ".dest_name = \"" << target->part->name()
             << "\";\n";
          os << "  " << var << ".dest_ctx = &g_ctx_" << target->pname << ";\n";
          os << "  " << var << ".dest_dispatch = d_" << target->ident << ";\n";
          os << "  " << var << ".dest_port = &g_port_" << target->pname << '_'
             << c_ident(dest.port->name()) << ";\n";
        }
      }
    }
    os << "\n  tut_set_horizon(" << options_.host_horizon << "ULL);\n";
    os << "  tut_start_all();\n";

    if (!options_.workload.empty()) {
      os << "\n  /* environment workload */\n";
    }
    std::size_t widx = 0;
    for (const Injection& inj : options_.workload) {
      const efsm::Endpoint dest = router.boundary_destination(inj.boundary_port);
      const ProcInfo* target = nullptr;
      if (dest.part != nullptr) {
        auto it = by_part.find(dest.part);
        if (it != by_part.end()) target = it->second;
      }
      if (target == nullptr || inj.signal == nullptr) {
        throw std::runtime_error("workload injection through '" +
                                 inj.boundary_port +
                                 "' does not reach a process");
      }
      os << "  {\n";
      if (!inj.args.empty()) {
        os << "    static const long args" << widx << "[] = {";
        for (std::size_t i = 0; i < inj.args.size(); ++i) {
          os << (i ? ", " : "") << inj.args[i];
        }
        os << "};\n";
      }
      os << "    unsigned long long k;\n";
      os << "    for (k = 0; k < " << inj.count << "ULL; ++k) {\n";
      os << "      tut_inject(" << inj.time << "ULL + k * " << inj.period
         << "ULL, &g_ctx_" << target->pname << ", d_" << target->ident
         << ", &g_port_" << target->pname << '_' << c_ident(dest.port->name())
         << ", \"" << target->part->name() << "\", "
         << signal_macro(*inj.signal) << ", "
         << (inj.args.empty() ? "0" : ("args" + std::to_string(widx)))
         << ", " << inj.args.size() << ");\n";
      os << "    }\n  }\n";
      ++widx;
    }
    os << "}\n";
    return os.str();
  }

  std::string gen_process_table() const {
    appmodel::ApplicationView view(model_);
    std::ostringstream os;
    os << "/* process_table.c — generated process group information. */\n";
    os << "#include \"tut_runtime.h\"\n\n";
    os << "typedef struct {\n"
       << "  const char* process;\n"
       << "  const char* component;\n"
       << "  const char* group;\n"
       << "} tut_process_info_t;\n\n";
    os << "const tut_process_info_t tut_process_table[] = {\n";
    for (const uml::Property* p : view.processes()) {
      const uml::Property* g = view.group_of(*p);
      os << "  {\"" << p->name() << "\", \""
         << (p->part_type() != nullptr ? p->part_type()->name() : "?")
         << "\", \"" << (g != nullptr ? g->name() : "") << "\"},\n";
    }
    os << "};\n\n";
    os << "const size_t tut_process_count =\n"
       << "    sizeof(tut_process_table) / sizeof(tut_process_table[0]);\n";
    return os.str();
  }

  const uml::Model& model_;
  Options options_;
};

}  // namespace

CodeBundle generate(const uml::Model& model, const Options& options) {
  return Generator(model, options).run();
}

}  // namespace tut::codegen
