// Translator from efsm::Program bytecode + sim::CompiledModel tables to one
// self-contained C++ translation unit behind the tut_native_v1 C ABI.
//
// The semantics contract is efsm::CompiledInstance (program.cpp), mirrored
// construct-for-construct:
//  - each Program becomes a static function with the interpreter's
//    registers as locals and its Jz/Jmp targets as goto labels, or a
//    constant when the program touches no variable (guards the analysis
//    layer could prove are emitted pre-folded the same way);
//  - deliver/timer dispatch is a switch on the current state with the
//    outgoing transitions as sequential trigger+guard ifs in declaration-
//    priority order — exactly find_transition's scan;
//  - the parameter overlay (save, stamp-guarded restore) and the
//    1000-transition completion bound are reproduced literally;
//  - every throwing path raises an internal TnErr carrying the error kind
//    and operand; the host (NativeInstance) rebuilds the interpreter's
//    exact exception type and message from the ABI error code.
//
// Emission is deterministic: equal models yield byte-identical source, so
// the content hash doubles as the image identity for caching and
// provenance.

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/absint.hpp"
#include "codegen/native.hpp"
#include "uml/structure.hpp"

namespace tut::codegen {
namespace {

using efsm::CompiledMachine;
using efsm::Program;

std::string lit(long v) {
  // LONG_MIN has no negatable literal form; build it arithmetically.
  if (v == std::numeric_limits<long>::min())
    return "(" + std::to_string(v + 1) + "L - 1L)";
  return std::to_string(v) + "L";
}

/// How a Program is referenced at its use sites: a call to its emitted
/// function, or a folded constant.
struct ProgRef {
  bool folded = false;
  long value = 0;
  std::string fn;

  std::string expr() const { return folded ? lit(value) : fn + "(I)"; }
  /// Guard condition (fire when the value is non-zero); empty when the
  /// guard folded to a non-zero constant (fires unconditionally).
  std::string cond() const {
    if (folded) return value != 0 ? std::string() : "false";
    return fn + "(I) != 0";
  }
};

/// Emits one machine into `out`, filling the host-side id tables of `info`
/// in the same walk so both ends of the ABI agree by construction.
class MachineEmitter {
 public:
  MachineEmitter(const CompiledMachine& m, int index, NativeMachineInfo& info,
                 const analysis::Facts& facts, std::string& out)
      : m_(m), index_(index), info_(info), facts_(facts), out_(out) {
    info_.machine = &m;
  }

  void emit() {
    build_id_tables();
    out_ += "namespace m" + std::to_string(index_) + " {\n\n";
    emit_inst_struct();
    emit_programs();
    emit_overlay_helpers();
    emit_enter();
    emit_completions();
    emit_start_reset();
    emit_deliver();
    emit_timer();
    emit_introspection();
    out_ += "}  // namespace m" + std::to_string(index_) + "\n\n";
  }

 private:
  // -- id spaces ------------------------------------------------------------

  void build_id_tables() {
    for (const auto& t : m_.transitions()) {
      if (t.trigger_signal != nullptr && !sig_ids_.count(t.trigger_signal)) {
        sig_ids_.emplace(t.trigger_signal,
                         static_cast<int>(info_.signals.size()));
        info_.signals.push_back(t.trigger_signal);
      }
      if (!t.trigger_port.empty() && !port_ids_.count(t.trigger_port)) {
        port_ids_.emplace(t.trigger_port,
                          static_cast<int>(info_.ports.size()));
        info_.ports.push_back(t.trigger_port);
      }
      if (!t.trigger_timer.empty()) intern_timer(t.trigger_timer);
    }
    // SetTimer/ResetTimer operands and Send pairs in the canonical action
    // walk: every state's entry actions, then every transition's effects.
    for (const auto& st : m_.states()) intern_actions(st.entry);
    for (const auto& t : m_.transitions()) intern_actions(t.effects);
  }

  void intern_timer(const std::string& name) {
    if (timer_ids_.count(name)) return;
    timer_ids_.emplace(name, static_cast<int>(info_.timers.size()));
    info_.timers.push_back(name);
  }

  void intern_actions(const std::vector<CompiledMachine::Action>& actions) {
    for (const auto& a : actions) {
      if (a.kind == uml::Action::Kind::SetTimer ||
          a.kind == uml::Action::Kind::ResetTimer) {
        intern_timer(a.name);
      } else if (a.kind == uml::Action::Kind::Send) {
        const auto key = std::make_pair(a.port, a.signal);
        if (!send_ids_.count(key)) {
          send_ids_.emplace(key, static_cast<unsigned>(info_.sends.size()));
          info_.sends.emplace_back(a.port, a.signal);
        }
      }
    }
  }

  int sig_id(const uml::Signal* s) const {
    if (s == nullptr) return -2;
    auto it = sig_ids_.find(s);
    return it == sig_ids_.end() ? -1 : it->second;
  }

  // -- instance layout ------------------------------------------------------

  std::size_t slot_dim() const {
    return std::max<std::size_t>(1, m_.slot_count());
  }

  std::size_t overlay_dim() const {
    std::size_t n = 1;
    for (const uml::Signal* s : info_.signals) {
      if (const auto* slots = m_.param_slots(s)) n = std::max(n, slots->size());
    }
    return n;
  }

  void emit_inst_struct() {
    const std::string n = std::to_string(slot_dim());
    out_ += "struct Inst {\n";
    out_ += "  long slots[" + n + "];\n";
    out_ += "  unsigned long long stamp[" + n + "];\n";
    out_ += "  unsigned long long step;\n";
    out_ += "  struct Sav { long value; unsigned short slot; "
            "unsigned char defined; } ovr[" +
            std::to_string(overlay_dim()) + "];\n";
    out_ += "  int state;\n";
    out_ += "  unsigned ovr_n;\n";
    out_ += "  unsigned char defined[" + n + "];\n";
    out_ += "};\n\n";
    if (!m_.transitions().empty()) {
      out_ += "static constexpr int kTarget[" +
              std::to_string(m_.transitions().size()) + "] = {";
      for (std::size_t i = 0; i < m_.transitions().size(); ++i) {
        out_ += (i ? ", " : " ");
        out_ += std::to_string(m_.transitions()[i].target);
      }
      out_ += " };\n\n";
    }
  }

  // -- expression programs --------------------------------------------------

  void emit_programs() {
    // Canonical program walk; ids and Missing-name interning follow it.
    for (const auto& st : m_.states()) walk_actions(st.entry);
    for (const auto& t : m_.transitions()) {
      if (t.has_guard) emit_program(t.guard);
      walk_actions(t.effects);
    }
  }

  void walk_actions(const std::vector<CompiledMachine::Action>& actions) {
    for (const auto& a : actions) {
      switch (a.kind) {
        case uml::Action::Kind::Assign:
        case uml::Action::Kind::Compute:
        case uml::Action::Kind::SetTimer:
          emit_program(a.expr);
          break;
        case uml::Action::Kind::Send:
          for (const auto& arg : a.args) emit_program(arg);
          break;
        case uml::Action::Kind::ResetTimer:
          break;
      }
    }
  }

  const ProgRef& ref(const Program& p) const { return progs_.at(&p); }

  void emit_program(const Program& p) {
    if (progs_.count(&p)) return;
    ProgRef r;
    if (try_fold(p, r.value)) {
      r.folded = true;
      progs_.emplace(&p, std::move(r));
      return;
    }
    // Range-proven guard outcome (analysis::Facts): fold without emitting a
    // function. Only transition guards land in guard_const, and guards are
    // consumed through cond() alone, so the 0/1 truth value is faithful;
    // totality was proven by the analysis, so skipping the evaluation can
    // never skip a throw the interpreter would surface.
    if (const auto it = facts_.guard_const.find(&p);
        it != facts_.guard_const.end()) {
      r.folded = true;
      r.value = it->second;
      progs_.emplace(&p, std::move(r));
      return;
    }
    r.fn = "p" + std::to_string(prog_count_++);
    emit_program_fn(p, r.fn);
    progs_.emplace(&p, std::move(r));
  }

  /// A program with no Slot/Missing op reads nothing from the instance;
  /// run it now. EvalError (a constant division by zero) means the program
  /// must still throw at its original evaluation point, so it stays live.
  bool try_fold(const Program& p, long& value) {
    for (const auto& in : p.code()) {
      if (in.op == Program::Op::Slot || in.op == Program::Op::Missing)
        return false;
    }
    std::vector<long> regs(p.reg_count(), 0);
    try {
      value = p.run(Program::Slots{}, regs.data());
      return true;
    } catch (const efsm::EvalError&) {
      return false;
    }
  }

  void emit_program_fn(const Program& p, const std::string& fn) {
    const auto& code = p.code();
    const auto& consts = p.consts();
    std::set<std::uint16_t> targets;
    for (const auto& in : code) {
      if (in.op == Program::Op::Jz || in.op == Program::Op::Jmp)
        targets.insert(in.b);
    }
    out_ += "static long " + fn + "(const Inst& I) {\n";
    out_ += "  long";
    for (std::uint16_t r = 0; r < p.reg_count(); ++r) {
      out_ += (r ? ", r" : " r") + std::to_string(r) + " = 0";
    }
    out_ += ";\n";
    const auto R = [](std::uint16_t r) { return "r" + std::to_string(r); };
    const std::vector<std::uint32_t>* elide = nullptr;
    if (const auto it = facts_.elidable_checks.find(&p);
        it != facts_.elidable_checks.end()) {
      elide = &it->second;
    }
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
      if (targets.count(static_cast<std::uint16_t>(pc)))
        out_ += "L" + std::to_string(pc) + ":;\n";
      const auto& in = code[pc];
      if ((in.op == Program::Op::ChkDiv || in.op == Program::Op::ChkMod) &&
          elide != nullptr &&
          std::find(elide->begin(), elide->end(),
                    static_cast<std::uint32_t>(pc)) != elide->end()) {
        continue;  // divisor range-proven nonzero: the zero check vanishes
      }
      out_ += "  ";
      switch (in.op) {
        case Program::Op::Const:
          out_ += R(in.dst) + " = " + lit(consts[in.a]) + ";";
          break;
        case Program::Op::Slot: {
          // Reads the missing-name slot id straight from the slot index so
          // the host can rebuild "unknown identifier '<name>'".
          const std::string a = std::to_string(in.a);
          out_ += "if (!I.defined[" + a + "]) tn_fail(1, " + a + "u); " +
                  R(in.dst) + " = I.slots[" + a + "];";
          break;
        }
        case Program::Op::Missing:
          out_ += "tn_fail(2, " +
                  std::to_string(missing_base_ + in.a) + "u);";
          break;
        case Program::Op::Neg:
          out_ += R(in.dst) + " = -" + R(in.a) + ";";
          break;
        case Program::Op::Not:
          out_ += R(in.dst) + " = " + R(in.a) + " == 0 ? 1 : 0;";
          break;
        case Program::Op::Add:
          out_ += R(in.dst) + " = " + R(in.a) + " + " + R(in.b) + ";";
          break;
        case Program::Op::Sub:
          out_ += R(in.dst) + " = " + R(in.a) + " - " + R(in.b) + ";";
          break;
        case Program::Op::Mul:
          out_ += R(in.dst) + " = " + R(in.a) + " * " + R(in.b) + ";";
          break;
        case Program::Op::Div:
          out_ += R(in.dst) + " = " + R(in.a) + " / " + R(in.b) + ";";
          break;
        case Program::Op::Mod:
          out_ += R(in.dst) + " = " + R(in.a) + " % " + R(in.b) + ";";
          break;
        case Program::Op::ChkDiv:
          out_ += "if (" + R(in.a) + " == 0) tn_fail(3, 0u);";
          break;
        case Program::Op::ChkMod:
          out_ += "if (" + R(in.a) + " == 0) tn_fail(4, 0u);";
          break;
        case Program::Op::Eq:
          out_ += R(in.dst) + " = " + R(in.a) + " == " + R(in.b) +
                  " ? 1 : 0;";
          break;
        case Program::Op::Ne:
          out_ += R(in.dst) + " = " + R(in.a) + " != " + R(in.b) +
                  " ? 1 : 0;";
          break;
        case Program::Op::Lt:
          out_ += R(in.dst) + " = " + R(in.a) + " < " + R(in.b) + " ? 1 : 0;";
          break;
        case Program::Op::Le:
          out_ += R(in.dst) + " = " + R(in.a) + " <= " + R(in.b) +
                  " ? 1 : 0;";
          break;
        case Program::Op::Gt:
          out_ += R(in.dst) + " = " + R(in.a) + " > " + R(in.b) + " ? 1 : 0;";
          break;
        case Program::Op::Ge:
          out_ += R(in.dst) + " = " + R(in.a) + " >= " + R(in.b) +
                  " ? 1 : 0;";
          break;
        case Program::Op::Bool:
          out_ += R(in.dst) + " = " + R(in.a) + " != 0 ? 1 : 0;";
          break;
        case Program::Op::LoadOne:
          out_ += R(in.dst) + " = 1;";
          break;
        case Program::Op::Jz:
          out_ += "if (" + R(in.a) + " == 0) goto L" + std::to_string(in.b) +
                  ";";
          break;
        case Program::Op::Jmp:
          out_ += "goto L" + std::to_string(in.b) + ";";
          break;
      }
      out_ += "\n";
    }
    if (targets.count(static_cast<std::uint16_t>(code.size())))
      out_ += "L" + std::to_string(code.size()) + ":;\n";
    out_ += "  return r0;\n}\n\n";
    for (const std::string& name : p.missing_names())
      info_.missing.push_back(name);
    missing_base_ += static_cast<unsigned>(p.missing_names().size());
  }

  // -- actions --------------------------------------------------------------

  void emit_actions(const std::vector<CompiledMachine::Action>& actions,
                    const std::string& ind) {
    for (const auto& a : actions) {
      switch (a.kind) {
        case uml::Action::Kind::Assign: {
          const std::string s = std::to_string(a.slot);
          out_ += ind + "{ const long v = " + ref(a.expr).expr() +
                  "; I.slots[" + s + "] = v; I.defined[" + s +
                  "] = 1; I.stamp[" + s + "] = I.step; }\n";
          break;
        }
        case uml::Action::Kind::Compute:
          out_ += ind + "O->cycles += " + ref(a.expr).expr() + ";\n";
          break;
        case uml::Action::Kind::Send: {
          const unsigned id = send_ids_.at(std::make_pair(a.port, a.signal));
          if (a.args.empty()) {
            out_ += ind + "S->send(S->ctx, " + std::to_string(id) +
                    "u, nullptr, 0u);\n";
            break;
          }
          out_ += ind + "{";
          for (std::size_t i = 0; i < a.args.size(); ++i) {
            out_ += " const long a" + std::to_string(i) + " = " +
                    ref(a.args[i]).expr() + ";";
          }
          out_ += " const long a[] = {";
          for (std::size_t i = 0; i < a.args.size(); ++i) {
            out_ += (i ? ", a" : " a") + std::to_string(i);
          }
          out_ += " }; S->send(S->ctx, " + std::to_string(id) + "u, a, " +
                  std::to_string(a.args.size()) + "u); }\n";
          break;
        }
        case uml::Action::Kind::SetTimer:
          out_ += ind + "S->timer_set(S->ctx, " +
                  std::to_string(timer_ids_.at(a.name)) + "u, " +
                  ref(a.expr).expr() + ");\n";
          break;
        case uml::Action::Kind::ResetTimer:
          out_ += ind + "S->timer_reset(S->ctx, " +
                  std::to_string(timer_ids_.at(a.name)) + "u);\n";
          break;
      }
    }
  }

  // -- overlay --------------------------------------------------------------

  void emit_overlay_helpers() {
    out_ += "static void push_ovr(Inst& I, unsigned short slot, long v) {\n"
            "  Inst::Sav& s = I.ovr[I.ovr_n];\n"
            "  s.slot = slot; s.value = I.slots[slot]; "
            "s.defined = I.defined[slot];\n"
            "  I.ovr_n += 1u;\n"
            "  I.slots[slot] = v; I.defined[slot] = 1;\n"
            "}\n\n"
            "static void restore(Inst& I) {\n"
            "  for (unsigned i = I.ovr_n; i > 0u; --i) {\n"
            "    const Inst::Sav& s = I.ovr[i - 1u];\n"
            "    if (I.stamp[s.slot] == I.step) continue;\n"
            "    I.slots[s.slot] = s.value; I.defined[s.slot] = s.defined;\n"
            "  }\n"
            "  I.ovr_n = 0u;\n"
            "}\n\n";
  }

  // -- state entry / completions -------------------------------------------

  void emit_enter() {
    bool any_entry = false;
    for (const auto& st : m_.states())
      if (!st.entry.empty()) any_entry = true;
    out_ += "static void enter(Inst& I, const tut_native_sink* S, "
            "tut_native_out* O, int s) {\n";
    out_ += "  I.state = s;\n";
    if (any_entry) {
      out_ += "  switch (s) {\n";
      for (std::size_t i = 0; i < m_.states().size(); ++i) {
        const auto& st = m_.states()[i];
        if (st.entry.empty()) continue;
        out_ += "    case " + std::to_string(i) + ": {\n";
        emit_actions(st.entry, "      ");
        out_ += "      break;\n    }\n";
      }
      out_ += "    default: break;\n  }\n";
    } else {
      out_ += "  (void)S; (void)O;\n";
    }
    out_ += "}\n\n";
  }

  void emit_completions() {
    bool any = false;
    for (const auto& t : m_.transitions())
      if (t.completion) any = true;
    if (!any) {
      out_ += "static void completions(Inst&, const tut_native_sink*, "
              "tut_native_out*) {}\n\n";
      return;
    }
    out_ += "static void completions(Inst& I, const tut_native_sink* S, "
            "tut_native_out* O) {\n";
    out_ += "  for (int i = 0; i < 1000; ++i) {\n";
    out_ += "    switch (I.state) {\n";
    for (std::size_t si = 0; si < m_.states().size(); ++si) {
      const auto& st = m_.states()[si];
      bool has = false;
      for (std::uint32_t ti : st.outgoing)
        if (m_.transitions()[ti].completion) has = true;
      if (!has) continue;
      out_ += "      case " + std::to_string(si) + ": {\n";
      bool unconditional = false;
      for (std::uint32_t ti : st.outgoing) {
        const auto& t = m_.transitions()[ti];
        if (!t.completion || unconditional) continue;
        std::string cond = t.has_guard ? ref(t.guard).cond() : std::string();
        if (cond == "false") continue;  // guard folded false: never fires
        std::string ind = "        ";
        if (!cond.empty()) {
          out_ += "        if (" + cond + ") {\n";
          ind += "  ";
        } else {
          unconditional = true;  // later transitions are unreachable
          out_ += "        {\n";
          ind += "  ";
        }
        emit_actions(t.effects, ind);
        out_ += ind + "O->transitions += 1u;\n";
        out_ += ind + "enter(I, S, O, kTarget[" + std::to_string(ti) +
                "]);\n";
        out_ += ind + "continue;\n";
        out_ += "        }\n";
      }
      if (!unconditional) out_ += "        return;\n";
      out_ += "      }\n";
    }
    out_ += "      default: return;\n    }\n  }\n";
    out_ += "  tn_fail(5, static_cast<unsigned>(I.state));\n";
    out_ += "}\n\n";
  }

  // -- lifecycle ------------------------------------------------------------

  void emit_start_reset() {
    const std::string n = std::to_string(slot_dim());
    out_ += "static void init_slots(Inst& I) {\n";
    out_ += "  for (unsigned i = 0; i < " + n +
            "u; ++i) { I.slots[i] = 0; I.defined[i] = 0; }\n";
    for (const auto& [slot, value] : m_.initial_values()) {
      const std::string s = std::to_string(slot);
      out_ += "  I.slots[" + s + "] = " + lit(value) + "; I.defined[" + s +
              "] = 1;\n";
    }
    out_ += "}\n\n";
    out_ += "static void rewind(Inst& I) {\n";
    out_ += "  init_slots(I);\n";
    out_ += "  for (unsigned i = 0; i < " + n + "u; ++i) I.stamp[i] = 0u;\n";
    out_ += "  I.step = 0u; I.ovr_n = 0u; I.state = -1;\n";
    out_ += "}\n\n";
    if (m_.initial_state() == CompiledMachine::kNoState) {
      out_ += "static int start(Inst&, const tut_native_sink*, "
              "tut_native_out*) { return 7; }\n\n";
    } else {
      out_ += "static int start(Inst& I, const tut_native_sink* S, "
              "tut_native_out* O) {\n";
      out_ += "  try {\n";
      out_ += "    enter(I, S, O, " + std::to_string(m_.initial_state()) +
              ");\n";
      out_ += "    completions(I, S, O);\n";
      out_ += "    return 0;\n";
      out_ += "  } catch (const TnErr& e) { O->err_aux = e.aux; "
              "return e.kind; }\n";
      out_ += "}\n\n";
    }
    out_ += "static int reset(Inst& I, const tut_native_sink* S, "
            "tut_native_out* O) {\n";
    out_ += "  I.state = -1;\n  init_slots(I);\n  return start(I, S, O);\n";
    out_ += "}\n\n";
  }

  // -- deliver --------------------------------------------------------------

  /// Emits one fired-transition body: effects, overlay restore (deliver
  /// only), bookkeeping, target entry, completion chain.
  void emit_fire(const CompiledMachine::Transition& t, std::uint32_t ti,
                 bool restore_overlay, const std::string& ind) {
    out_ += ind + "O->fired = 1;\n";
    emit_actions(t.effects, ind);
    if (restore_overlay) out_ += ind + "restore(I);\n";
    out_ += ind + "O->transitions += 1u;\n";
    out_ += ind + "enter(I, S, O, kTarget[" + std::to_string(ti) + "]);\n";
    out_ += ind + "completions(I, S, O);\n";
    out_ += ind + "return 0;\n";
  }

  void emit_deliver() {
    out_ += "static int deliver(Inst& I, int sig, int port, "
            "const long* args, unsigned nargs,\n"
            "                   const tut_native_sink* S, "
            "tut_native_out* O) {\n";
    out_ += "  if (I.state < 0) return 6;\n";
    out_ += "  I.step += 1u;\n  I.ovr_n = 0u;\n";
    // Parameter overlay per trigger signal (constexpr slot tables).
    bool any_params = false;
    for (const uml::Signal* s : info_.signals) {
      const auto* slots = m_.param_slots(s);
      if (slots != nullptr && !slots->empty()) any_params = true;
    }
    if (any_params) {
      out_ += "  switch (sig) {\n";
      for (std::size_t i = 0; i < info_.signals.size(); ++i) {
        const auto* slots = m_.param_slots(info_.signals[i]);
        if (slots == nullptr || slots->empty()) continue;
        out_ += "    case " + std::to_string(i) + ": {\n";
        out_ += "      static constexpr unsigned short kPs[" +
                std::to_string(slots->size()) + "] = {";
        for (std::size_t j = 0; j < slots->size(); ++j) {
          out_ += (j ? ", " : " ");
          out_ += std::to_string((*slots)[j]);
        }
        out_ += " };\n";
        out_ += "      for (unsigned i = 0; i < " +
                std::to_string(slots->size()) +
                "u; ++i) push_ovr(I, kPs[i], nargs > i ? args[i] : 0);\n";
        out_ += "      break;\n    }\n";
      }
      out_ += "    default: break;\n  }\n";
    } else {
      out_ += "  (void)sig; (void)args; (void)nargs;\n";
    }
    out_ += "  (void)port;\n";
    out_ += "  try {\n";
    out_ += "    switch (I.state) {\n";
    for (std::size_t si = 0; si < m_.states().size(); ++si) {
      const auto& st = m_.states()[si];
      if (st.outgoing.empty()) continue;
      out_ += "      case " + std::to_string(si) + ": {\n";
      for (std::uint32_t ti : st.outgoing) {
        const auto& t = m_.transitions()[ti];
        // The event branch of find_transition matches on the trigger-signal
        // pointer alone (a null-signal event can fire timer/completion
        // transitions); the emitted arm mirrors that with sig id -2.
        std::string cond = "sig == " + std::to_string(sig_id(t.trigger_signal));
        if (!t.trigger_port.empty()) {
          cond += " && port == " +
                  std::to_string(port_ids_.at(t.trigger_port));
        }
        if (t.has_guard) {
          const std::string g = ref(t.guard).cond();
          if (g == "false") continue;  // folded-false guard never fires
          if (!g.empty()) cond += " && (" + g + ")";
        }
        out_ += "        if (" + cond + ") {\n";
        emit_fire(t, ti, /*restore_overlay=*/true, "          ");
        out_ += "        }\n";
      }
      out_ += "        break;\n      }\n";
    }
    out_ += "      default: break;\n    }\n";
    out_ += "    restore(I);\n    return 0;\n";
    out_ += "  } catch (const TnErr& e) {\n";
    out_ += "    restore(I);\n";
    out_ += "    O->err_aux = e.aux;\n    return e.kind;\n  }\n";
    out_ += "}\n\n";
  }

  // -- timer ----------------------------------------------------------------

  void emit_timer() {
    out_ += "static int timer(Inst& I, int tm, const tut_native_sink* S, "
            "tut_native_out* O) {\n";
    out_ += "  if (I.state < 0) return 6;\n";
    out_ += "  (void)tm;\n";
    out_ += "  try {\n";
    out_ += "    switch (I.state) {\n";
    for (std::size_t si = 0; si < m_.states().size(); ++si) {
      const auto& st = m_.states()[si];
      bool relevant = false;
      for (std::uint32_t ti : st.outgoing) {
        const auto& t = m_.transitions()[ti];
        if (!t.trigger_timer.empty() || t.completion) relevant = true;
      }
      if (!relevant) continue;
      out_ += "      case " + std::to_string(si) + ": {\n";
      for (std::uint32_t ti : st.outgoing) {
        const auto& t = m_.transitions()[ti];
        // find_transition's timer branch: a non-empty timer name matches
        // trigger_timer equality; the empty name polls completions.
        std::string cond;
        if (!t.trigger_timer.empty()) {
          cond = "tm == " + std::to_string(timer_ids_.at(t.trigger_timer));
        } else if (t.completion) {
          cond = "tm == -2";
        } else {
          continue;
        }
        if (t.has_guard) {
          const std::string g = ref(t.guard).cond();
          if (g == "false") continue;
          if (!g.empty()) cond += " && (" + g + ")";
        }
        out_ += "        if (" + cond + ") {\n";
        emit_fire(t, ti, /*restore_overlay=*/false, "          ");
        out_ += "        }\n";
      }
      out_ += "        break;\n      }\n";
    }
    out_ += "      default: break;\n    }\n";
    out_ += "    return 0;\n";
    out_ += "  } catch (const TnErr& e) { O->err_aux = e.aux; "
            "return e.kind; }\n";
    out_ += "}\n\n";
  }

  // -- introspection --------------------------------------------------------

  void emit_introspection() {
    out_ += "static long slot(const Inst& I, unsigned s, int* defined) {\n";
    out_ += "  if (s >= " + std::to_string(slot_dim()) +
            "u) { *defined = 0; return 0; }\n";
    out_ += "  *defined = I.defined[s] ? 1 : 0;\n";
    out_ += "  return I.slots[s];\n";
    out_ += "}\n\n";
  }

  const CompiledMachine& m_;
  int index_;
  NativeMachineInfo& info_;
  const analysis::Facts& facts_;
  std::string& out_;

  std::unordered_map<const uml::Signal*, int> sig_ids_;
  std::unordered_map<std::string, int> port_ids_;
  std::unordered_map<std::string, int> timer_ids_;
  std::map<std::pair<std::string, const uml::Signal*>, unsigned> send_ids_;
  std::unordered_map<const Program*, ProgRef> progs_;
  unsigned prog_count_ = 0;
  unsigned missing_base_ = 0;
};

}  // namespace

NativeSource emit_native(const sim::CompiledModel& model) {
  if (!model.has_machines() && !model.procs().empty()) {
    throw std::invalid_argument(
        "emit_native requires a CompiledModel with bytecode images "
        "(CompiledModel::build)");
  }
  NativeSource src;
  std::unordered_map<const efsm::CompiledMachine*, std::uint32_t> indices;
  std::vector<const efsm::CompiledMachine*> machines;
  src.proc_machine.reserve(model.procs().size());
  for (const auto& proc : model.procs()) {
    auto it = indices.find(proc.machine);
    if (it == indices.end()) {
      it = indices
               .emplace(proc.machine,
                        static_cast<std::uint32_t>(machines.size()))
               .first;
      machines.push_back(proc.machine);
    }
    src.proc_machine.push_back(it->second);
  }

  std::string& out = src.code;
  out +=
      "// Generated by tut codegen::native (ABI tut_native_v1). Do not "
      "edit.\n"
      "// One namespace per distinct state machine; semantics mirror\n"
      "// efsm::CompiledInstance instruction-for-instruction.\n\n"
      "extern \"C\" {\n"
      "struct tut_native_out {\n"
      "  long cycles;\n"
      "  unsigned long long transitions;\n"
      "  int fired;\n"
      "  unsigned err_aux;\n"
      "};\n"
      "struct tut_native_sink {\n"
      "  void* ctx;\n"
      "  void (*send)(void*, unsigned, const long*, unsigned);\n"
      "  void (*timer_set)(void*, unsigned, long);\n"
      "  void (*timer_reset)(void*, unsigned);\n"
      "};\n"
      "}\n\n"
      "namespace {\n\n"
      "struct TnErr { int kind; unsigned aux; };\n"
      "[[noreturn]] inline void tn_fail(int kind, unsigned aux) { "
      "throw TnErr{kind, aux}; }\n\n";

  src.machines.resize(machines.size());
  for (std::size_t i = 0; i < machines.size(); ++i) {
    // Per-machine value-range facts: range-proven guards fold, proven-
    // nonzero divisor checks vanish. The analysis is deterministic, so the
    // emitted source (and with it the content hash / cache identity) stays
    // a pure function of the model.
    const analysis::Facts facts =
        analysis::make_facts(*machines[i], analysis::absint::analyze(*machines[i]));
    MachineEmitter(*machines[i], static_cast<int>(i), src.machines[i], facts,
                   out)
        .emit();
  }

  const std::string count = std::to_string(machines.size());
  out += "static constexpr unsigned long long kInstanceSize[] = {";
  if (machines.empty()) {
    out += " 0ull";
  } else {
    for (std::size_t i = 0; i < machines.size(); ++i) {
      out += (i ? ", " : " ");
      out += "sizeof(m" + std::to_string(i) + "::Inst)";
    }
  }
  out += " };\n\n}  // namespace\n\nextern \"C\" {\n\n";
  out += "int tut_native_v1_abi(void) { return 1; }\n\n";
  out += "unsigned tut_native_v1_machine_count(void) { return " + count +
         "u; }\n\n";
  out += "unsigned long long tut_native_v1_instance_size(unsigned m) {\n"
         "  return m < " + count + "u ? kInstanceSize[m] : 0ull;\n}\n\n";

  const auto dispatch = [&](const std::string& signature,
                            const std::string& call,
                            const std::string& fallback) {
    out += signature + " {\n";
    if (!machines.empty()) {
      out += "  switch (m) {\n";
      for (std::size_t i = 0; i < machines.size(); ++i) {
        const std::string ns = "m" + std::to_string(i);
        std::string line = call;
        // Substitute the per-machine namespace for the "$" placeholder.
        std::size_t pos;
        while ((pos = line.find('$')) != std::string::npos)
          line.replace(pos, 1, ns);
        out += "    case " + std::to_string(i) + "u: " + line + "\n";
      }
      out += "    default: break;\n  }\n";
    }
    out += "  " + fallback + "\n}\n\n";
  };

  dispatch("void tut_native_v1_init(unsigned m, void* p)",
           "$::rewind(*static_cast<$::Inst*>(p)); return;", "(void)p;");
  dispatch(
      "int tut_native_v1_start(unsigned m, void* p, const tut_native_sink* "
      "s, tut_native_out* o)",
      "return $::start(*static_cast<$::Inst*>(p), s, o);",
      "(void)p; (void)s; (void)o; return 100;");
  dispatch(
      "int tut_native_v1_reset(unsigned m, void* p, const tut_native_sink* "
      "s, tut_native_out* o)",
      "return $::reset(*static_cast<$::Inst*>(p), s, o);",
      "(void)p; (void)s; (void)o; return 100;");
  dispatch(
      "int tut_native_v1_deliver(unsigned m, void* p, int sig, int port, "
      "const long* args, unsigned nargs, const tut_native_sink* s, "
      "tut_native_out* o)",
      "return $::deliver(*static_cast<$::Inst*>(p), sig, port, args, nargs, "
      "s, o);",
      "(void)p; (void)sig; (void)port; (void)args; (void)nargs; (void)s; "
      "(void)o; return 100;");
  dispatch(
      "int tut_native_v1_timer(unsigned m, void* p, int tm, const "
      "tut_native_sink* s, tut_native_out* o)",
      "return $::timer(*static_cast<$::Inst*>(p), tm, s, o);",
      "(void)p; (void)tm; (void)s; (void)o; return 100;");
  dispatch("int tut_native_v1_state(unsigned m, const void* p)",
           "return static_cast<const $::Inst*>(p)->state;",
           "(void)p; return -1;");
  dispatch(
      "long tut_native_v1_slot(unsigned m, const void* p, unsigned s, int* "
      "defined)",
      "return $::slot(*static_cast<const $::Inst*>(p), s, defined);",
      "(void)p; (void)s; *defined = 0; return 0;");

  out += "}  // extern \"C\"\n";
  return src;
}

}  // namespace tut::codegen
