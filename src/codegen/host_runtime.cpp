// The host reference run-time (tut_runtime_host.c) emitted by the code
// generator when Options::host_runtime is set. It executes the generated
// application on a single logical reference processor — the paper's
// "simulations on a reference platform, such as a PC workstation" — with a
// run-to-completion event loop, logical time (1 compute cycle = 10 ticks at
// the 100 MHz reference clock) and simulation log-file output on stdout in
// the exact format tut::sim::SimulationLog parses.
#include "codegen/codegen.hpp"

namespace tut::codegen {

const char* host_runtime_source() {
  return R"(/* tut_runtime_host.c — generated host reference run-time.
 * Single reference processor, run-to-completion, logical time. Writes the
 * simulation log-file to stdout (parsed by the profiling tool). */
#include "tut_runtime.h"

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define TUT_MAX_ARGS 8
#define TUT_MAX_TIMER_NAME 32
#define TUT_REFERENCE_TICKS_PER_CYCLE 10ULL

/* ---- event queue: binary min-heap on (time, seq) ---------------------- */

typedef struct {
  unsigned long long time;
  unsigned long long seq;
  int kind; /* 0 = start, 1 = signal, 2 = timer */
  int injected; /* environment injection: log the S line at delivery */
  int signal;
  long args[TUT_MAX_ARGS];
  size_t argc;
  char timer[TUT_MAX_TIMER_NAME];
  unsigned long long timer_gen;
  const char* from;
  const char* dest_name;
  void* ctx;
  void (*dispatch)(void*, const tut_event_t*);
  const tut_port_t* port;
} tut_qev_t;

static tut_qev_t* tut_q = NULL;
static size_t tut_qn = 0;
static size_t tut_qcap = 0;
static unsigned long long tut_clock = 0;
static unsigned long long tut_seq = 0;
static unsigned long long tut_horizon = (unsigned long long)-1;
static long tut_compute_acc = 0;

static int tut_qev_before(const tut_qev_t* a, const tut_qev_t* b) {
  if (a->time != b->time) return a->time < b->time;
  return a->seq < b->seq;
}

static void tut_qpush(tut_qev_t ev) {
  size_t i;
  if (tut_qn == tut_qcap) {
    tut_qcap = tut_qcap ? tut_qcap * 2 : 64;
    tut_q = (tut_qev_t*)realloc(tut_q, tut_qcap * sizeof(tut_qev_t));
    if (tut_q == NULL) {
      fprintf(stderr, "tut_runtime: out of memory\n");
      exit(1);
    }
  }
  ev.seq = tut_seq++;
  i = tut_qn++;
  tut_q[i] = ev;
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!tut_qev_before(&tut_q[i], &tut_q[parent])) break;
    tut_qev_t tmp = tut_q[i];
    tut_q[i] = tut_q[parent];
    tut_q[parent] = tmp;
    i = parent;
  }
}

static int tut_qpop(tut_qev_t* out) {
  size_t i = 0;
  if (tut_qn == 0) return 0;
  *out = tut_q[0];
  tut_q[0] = tut_q[--tut_qn];
  for (;;) {
    size_t l = 2 * i + 1, r = 2 * i + 2, best = i;
    if (l < tut_qn && tut_qev_before(&tut_q[l], &tut_q[best])) best = l;
    if (r < tut_qn && tut_qev_before(&tut_q[r], &tut_q[best])) best = r;
    if (best == i) break;
    tut_qev_t tmp = tut_q[i];
    tut_q[i] = tut_q[best];
    tut_q[best] = tmp;
    i = best;
  }
  return 1;
}

/* ---- process registry (timers need ctx -> dispatch/name) --------------- */

typedef struct {
  void* ctx;
  void (*dispatch)(void*, const tut_event_t*);
  const char* name;
} tut_proc_t;

#define TUT_MAX_PROCS 256
static tut_proc_t tut_procs[TUT_MAX_PROCS];
static size_t tut_proc_count_reg = 0;

void tut_register_process(void* ctx,
                          void (*dispatch)(void*, const tut_event_t*),
                          const char* name) {
  if (tut_proc_count_reg >= TUT_MAX_PROCS) {
    fprintf(stderr, "tut_runtime: too many processes\n");
    exit(1);
  }
  tut_procs[tut_proc_count_reg].ctx = ctx;
  tut_procs[tut_proc_count_reg].dispatch = dispatch;
  tut_procs[tut_proc_count_reg].name = name;
  ++tut_proc_count_reg;
}

static const tut_proc_t* tut_find_proc(const void* ctx) {
  size_t i;
  for (i = 0; i < tut_proc_count_reg; ++i) {
    if (tut_procs[i].ctx == ctx) return &tut_procs[i];
  }
  return NULL;
}

/* ---- timers ------------------------------------------------------------ */

typedef struct {
  void* ctx;
  char name[TUT_MAX_TIMER_NAME];
  unsigned long long gen;
} tut_timer_t;

#define TUT_MAX_TIMERS 1024
static tut_timer_t tut_timers[TUT_MAX_TIMERS];
static size_t tut_timer_count = 0;

static tut_timer_t* tut_timer_slot(void* ctx, const char* name) {
  size_t i;
  for (i = 0; i < tut_timer_count; ++i) {
    if (tut_timers[i].ctx == ctx && strcmp(tut_timers[i].name, name) == 0) {
      return &tut_timers[i];
    }
  }
  if (tut_timer_count >= TUT_MAX_TIMERS) {
    fprintf(stderr, "tut_runtime: too many timers\n");
    exit(1);
  }
  tut_timers[tut_timer_count].ctx = ctx;
  strncpy(tut_timers[tut_timer_count].name, name, TUT_MAX_TIMER_NAME - 1);
  tut_timers[tut_timer_count].name[TUT_MAX_TIMER_NAME - 1] = '\0';
  tut_timers[tut_timer_count].gen = 0;
  return &tut_timers[tut_timer_count++];
}

void tut_set_timer(void* ctx, const char* name, long delay) {
  tut_timer_t* slot = tut_timer_slot(ctx, name);
  const tut_proc_t* proc = tut_find_proc(ctx);
  tut_qev_t ev;
  if (proc == NULL) return;
  memset(&ev, 0, sizeof(ev));
  ev.time = tut_clock + (delay > 0 ? (unsigned long long)delay : 0);
  ev.kind = 2;
  strncpy(ev.timer, name, TUT_MAX_TIMER_NAME - 1);
  ev.timer_gen = ++slot->gen;
  ev.ctx = ctx;
  ev.dispatch = proc->dispatch;
  ev.dest_name = proc->name;
  tut_qpush(ev);
}

void tut_reset_timer(void* ctx, const char* name) {
  ++tut_timer_slot(ctx, name)->gen;
}

int tut_timer_is(const tut_event_t* ev, const char* name) {
  return ev->kind == TUT_EV_TIMER && ev->timer != NULL &&
         strcmp(ev->timer, name) == 0;
}

/* ---- communication ------------------------------------------------------ */

void tut_send(tut_port_t* port, int signal, const long* args, size_t argc) {
  size_t i;
  printf("S %llu %s %s %s %zu\n", tut_clock,
         port->owner ? port->owner : "env",
         port->dest_name ? port->dest_name : "env", tut_signal_name(signal),
         tut_signal_bytes(signal));
  if (port->dest_ctx == NULL) return; /* environment absorbs it */
  {
    tut_qev_t ev;
    memset(&ev, 0, sizeof(ev));
    ev.time = tut_clock;
    ev.kind = 1;
    ev.signal = signal;
    ev.argc = argc < TUT_MAX_ARGS ? argc : TUT_MAX_ARGS;
    for (i = 0; i < ev.argc; ++i) ev.args[i] = args[i];
    ev.from = port->owner;
    ev.dest_name = port->dest_name;
    ev.ctx = port->dest_ctx;
    ev.dispatch = port->dest_dispatch;
    ev.port = port->dest_port;
    tut_qpush(ev);
  }
}

void tut_compute(long cycles) { tut_compute_acc += cycles; }

void tut_inject(unsigned long long time, void* ctx,
                void (*dispatch)(void*, const tut_event_t*),
                const tut_port_t* port, const char* dest_name, int signal,
                const long* args, size_t argc) {
  tut_qev_t ev;
  size_t i;
  memset(&ev, 0, sizeof(ev));
  ev.time = time;
  ev.kind = 1;
  ev.injected = 1;
  ev.signal = signal;
  ev.argc = argc < TUT_MAX_ARGS ? argc : TUT_MAX_ARGS;
  for (i = 0; i < ev.argc; ++i) ev.args[i] = args[i];
  ev.from = "env";
  ev.dest_name = dest_name;
  ev.ctx = ctx;
  ev.dispatch = dispatch;
  ev.port = port;
  tut_qpush(ev);
}

void tut_start_all(void) {
  size_t i;
  printf("# tut-simlog v1\n");
  for (i = 0; i < tut_proc_count_reg; ++i) {
    tut_qev_t ev;
    memset(&ev, 0, sizeof(ev));
    ev.time = 0;
    ev.kind = 0;
    ev.ctx = tut_procs[i].ctx;
    ev.dispatch = tut_procs[i].dispatch;
    ev.dest_name = tut_procs[i].name;
    tut_qpush(ev);
  }
}

void tut_set_horizon(unsigned long long horizon) { tut_horizon = horizon; }

#ifdef TUT_PROFILING
/* The host runtime already logs authoritative R/S lines from the pump and
 * tut_send; the instrumentation hooks are kept as no-ops so both build
 * flavours behave identically. Targets map these to their own tracing. */
void tut_log_run(const char* process, long cycles) {
  (void)process;
  (void)cycles;
}
void tut_log_send(const char* from, int signal) {
  (void)from;
  (void)signal;
}
#endif

/* ---- pump ---------------------------------------------------------------- */

int tut_platform_pump(void) {
  tut_qev_t qev;
  tut_event_t ev;
  unsigned long long dur;
  for (;;) {
    if (!tut_qpop(&qev)) return 0;
    if (qev.time > tut_horizon) return 0;
    if (qev.kind == 2) {
      /* stale timer? (re-armed or reset since scheduling) */
      tut_timer_t* slot = tut_timer_slot(qev.ctx, qev.timer);
      if (slot->gen != qev.timer_gen) continue;
    }
    break;
  }
  if (qev.time > tut_clock) tut_clock = qev.time;

  if (qev.kind == 1 && qev.injected) {
    printf("S %llu env %s %s %zu\n", tut_clock, qev.dest_name,
           tut_signal_name(qev.signal), tut_signal_bytes(qev.signal));
  }
  if (qev.kind == 1) {
    printf("V %llu %s %s %s\n", tut_clock, qev.dest_name,
           qev.from ? qev.from : "env", tut_signal_name(qev.signal));
  }

  memset(&ev, 0, sizeof(ev));
  ev.kind = qev.kind == 0 ? TUT_EV_START
                          : (qev.kind == 1 ? TUT_EV_SIGNAL : TUT_EV_TIMER);
  ev.signal = qev.signal;
  ev.port = qev.port;
  ev.args = qev.args;
  ev.argc = qev.argc;
  ev.timer = qev.kind == 2 ? qev.timer : NULL;

  tut_compute_acc = 0;
  qev.dispatch(qev.ctx, &ev);
  dur = (unsigned long long)tut_compute_acc * TUT_REFERENCE_TICKS_PER_CYCLE;
  printf("R %llu %s %ld %llu\n", tut_clock, qev.dest_name, tut_compute_acc,
         dur);
  tut_clock += dur;
  return 1;
}
)";
}

}  // namespace tut::codegen
