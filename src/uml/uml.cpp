#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

#include "uml/model.hpp"

namespace tut::uml {

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

const char* to_string(ElementKind kind) noexcept {
  switch (kind) {
    case ElementKind::Model: return "Model";
    case ElementKind::Package: return "Package";
    case ElementKind::Class: return "Class";
    case ElementKind::Property: return "Property";
    case ElementKind::Port: return "Port";
    case ElementKind::Connector: return "Connector";
    case ElementKind::Signal: return "Signal";
    case ElementKind::Dependency: return "Dependency";
    case ElementKind::StateMachine: return "StateMachine";
    case ElementKind::State: return "State";
    case ElementKind::Transition: return "Transition";
    case ElementKind::Profile: return "Profile";
    case ElementKind::Stereotype: return "Stereotype";
  }
  return "?";
}

std::string Element::qualified_name() const {
  if (owner_ == nullptr || owner_->kind() == ElementKind::Model) return name_;
  return owner_->qualified_name() + "." + name_;
}

StereotypeApplication& Element::apply(const Stereotype& stereotype) {
  for (auto& app : applications_) {
    if (app.stereotype == &stereotype) return app;
  }
  applications_.push_back(StereotypeApplication{&stereotype, {}});
  return applications_.back();
}

StereotypeApplication& Element::apply(const Stereotype& stereotype,
                                      std::map<std::string, std::string> values) {
  auto& app = apply(stereotype);
  for (auto& [k, v] : values) app.tagged_values[k] = v;
  return app;
}

bool Element::has_stereotype(const Stereotype& stereotype) const noexcept {
  for (const auto& app : applications_) {
    if (app.stereotype != nullptr && app.stereotype->is_kind_of(stereotype)) {
      return true;
    }
  }
  return false;
}

bool Element::has_stereotype(const std::string& name) const noexcept {
  return application(name) != nullptr;
}

const StereotypeApplication* Element::application(
    const std::string& name) const noexcept {
  for (const auto& app : applications_) {
    for (const Stereotype* s = app.stereotype; s != nullptr; s = s->general()) {
      if (s->name() == name) return &app;
    }
  }
  return nullptr;
}

StereotypeApplication* Element::application(const std::string& name) noexcept {
  return const_cast<StereotypeApplication*>(
      static_cast<const Element*>(this)->application(name));
}

std::string Element::tagged_value(const std::string& tag) const {
  for (const auto& app : applications_) {
    auto it = app.tagged_values.find(tag);
    if (it != app.tagged_values.end()) return it->second;
  }
  return {};
}

bool Element::has_tagged_value(const std::string& tag) const noexcept {
  for (const auto& app : applications_) {
    if (app.tagged_values.count(tag) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------------

Class* Port::owner_class() const noexcept {
  return owner() != nullptr && owner()->kind() == ElementKind::Class
             ? static_cast<Class*>(owner())
             : nullptr;
}

bool Port::provides(const Signal& s) const noexcept {
  return std::find(provided_.begin(), provided_.end(), &s) != provided_.end();
}

bool Port::requires_signal(const Signal& s) const noexcept {
  return std::find(required_.begin(), required_.end(), &s) != required_.end();
}

Class* Property::owner_class() const noexcept {
  return owner() != nullptr && owner()->kind() == ElementKind::Class
             ? static_cast<Class*>(owner())
             : nullptr;
}

Port* Class::port(const std::string& name) const noexcept {
  for (Port* p : ports_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

Property* Class::part(const std::string& name) const noexcept {
  for (Property* p : parts_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// State machines
// ---------------------------------------------------------------------------

Action Action::send(std::string port, const Signal& s,
                    std::vector<std::string> args) {
  Action a;
  a.kind = Kind::Send;
  a.port = std::move(port);
  a.signal = &s;
  a.args = std::move(args);
  return a;
}

Action Action::assign(std::string var, std::string expr) {
  Action a;
  a.kind = Kind::Assign;
  a.var = std::move(var);
  a.expr = std::move(expr);
  return a;
}

Action Action::compute(std::string cycles_expr) {
  Action a;
  a.kind = Kind::Compute;
  a.expr = std::move(cycles_expr);
  return a;
}

Action Action::set_timer(std::string name, std::string delay_expr) {
  Action a;
  a.kind = Kind::SetTimer;
  a.var = std::move(name);
  a.expr = std::move(delay_expr);
  return a;
}

Action Action::reset_timer(std::string name) {
  Action a;
  a.kind = Kind::ResetTimer;
  a.var = std::move(name);
  return a;
}

State* StateMachine::initial_state() const noexcept {
  for (State* s : states_) {
    if (s->is_initial()) return s;
  }
  return nullptr;
}

State* StateMachine::state(const std::string& name) const noexcept {
  for (State* s : states_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

std::vector<Transition*> StateMachine::outgoing(const State& s) const {
  std::vector<Transition*> out;
  for (Transition* t : transitions_) {
    if (t->source() == &s) out.push_back(t);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Profile
// ---------------------------------------------------------------------------

const char* to_string(TagType type) noexcept {
  switch (type) {
    case TagType::String: return "string";
    case TagType::Integer: return "integer";
    case TagType::Boolean: return "boolean";
    case TagType::Real: return "real";
    case TagType::Enum: return "enum";
  }
  return "?";
}

bool TagDefinition::accepts(const std::string& value) const noexcept {
  switch (type) {
    case TagType::String:
      return true;
    case TagType::Boolean:
      return value == "true" || value == "false";
    case TagType::Integer: {
      if (value.empty()) return false;
      long v = 0;
      const char* first = value.data();
      if (*first == '-' || *first == '+') ++first;
      auto [ptr, ec] = std::from_chars(first, value.data() + value.size(), v);
      return ec == std::errc{} && ptr == value.data() + value.size();
    }
    case TagType::Real: {
      if (value.empty()) return false;
      char* end = nullptr;
      errno = 0;
      (void)std::strtod(value.c_str(), &end);
      return errno == 0 && end == value.c_str() + value.size();
    }
    case TagType::Enum:
      return std::find(enumerators.begin(), enumerators.end(), value) !=
             enumerators.end();
  }
  return false;
}

bool Stereotype::is_kind_of(const Stereotype& other) const noexcept {
  for (const Stereotype* s = this; s != nullptr; s = s->general()) {
    if (s == &other) return true;
  }
  return false;
}

std::vector<const TagDefinition*> Stereotype::all_tags() const {
  std::vector<const TagDefinition*> out;
  if (general_ != nullptr) out = general_->all_tags();
  for (const auto& t : tags_) out.push_back(&t);
  return out;
}

const TagDefinition* Stereotype::tag(const std::string& name) const noexcept {
  for (const auto& t : tags_) {
    if (t.name == name) return &t;
  }
  return general_ != nullptr ? general_->tag(name) : nullptr;
}

Stereotype* Profile::stereotype(const std::string& name) const noexcept {
  for (Stereotype* s : stereotypes_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

Model::Model(std::string name) : Element(ElementKind::Model) {
  set_name(std::move(name));
  id_ = "m0";
}

template <typename T>
T& Model::make(std::string name, Element* owner) {
  auto elem = std::make_unique<T>();
  T& ref = *elem;
  ref.set_name(std::move(name));
  ref.id_ = "e" + std::to_string(next_id_++);
  ref.owner_ = owner != nullptr ? owner : this;
  elements_.push_back(std::move(elem));
  return ref;
}

Package& Model::create_package(std::string name, Package* parent) {
  auto& pkg = make<Package>(std::move(name), parent);
  if (parent != nullptr) parent->members_.push_back(&pkg);
  return pkg;
}

Class& Model::create_class(std::string name, Package* pkg, bool active) {
  auto& cls = make<Class>(std::move(name), pkg);
  cls.is_active_ = active;
  if (pkg != nullptr) pkg->members_.push_back(&cls);
  return cls;
}

Signal& Model::create_signal(std::string name, Package* pkg) {
  auto& sig = make<Signal>(std::move(name), pkg);
  if (pkg != nullptr) pkg->members_.push_back(&sig);
  return sig;
}

Property& Model::add_attribute(Class& owner, std::string name, std::string type) {
  auto& prop = make<Property>(std::move(name), &owner);
  prop.attr_type_ = std::move(type);
  owner.attributes_.push_back(&prop);
  return prop;
}

Property& Model::add_part(Class& owner, std::string name, Class& type) {
  auto& prop = make<Property>(std::move(name), &owner);
  prop.part_type_ = &type;
  owner.parts_.push_back(&prop);
  return prop;
}

Port& Model::add_port(Class& owner, std::string name) {
  auto& port = make<Port>(std::move(name), &owner);
  owner.ports_.push_back(&port);
  return port;
}

namespace {

[[noreturn]] void unknown(const std::string& what, const std::string& name,
                          const Class& context) {
  throw std::invalid_argument("unknown " + what + " '" + name + "' in class '" +
                              context.name() + "'");
}

}  // namespace

Connector& Model::connect(Class& context, const std::string& part_a,
                          const std::string& port_a, const std::string& part_b,
                          const std::string& port_b) {
  Property* pa = context.part(part_a);
  if (pa == nullptr) unknown("part", part_a, context);
  Property* pb = context.part(part_b);
  if (pb == nullptr) unknown("part", part_b, context);
  Port* qa = pa->part_type()->port(port_a);
  if (qa == nullptr) unknown("port", part_a + "." + port_a, context);
  Port* qb = pb->part_type()->port(port_b);
  if (qb == nullptr) unknown("port", part_b + "." + port_b, context);

  auto& conn = make<Connector>(part_a + "_" + part_b, &context);
  conn.ends_[0] = ConnectorEnd{pa, qa};
  conn.ends_[1] = ConnectorEnd{pb, qb};
  context.connectors_.push_back(&conn);
  return conn;
}

Connector& Model::connect_boundary(Class& context,
                                   const std::string& boundary_port,
                                   const std::string& part,
                                   const std::string& port) {
  Port* bp = context.port(boundary_port);
  if (bp == nullptr) unknown("boundary port", boundary_port, context);
  Property* p = context.part(part);
  if (p == nullptr) unknown("part", part, context);
  Port* q = p->part_type()->port(port);
  if (q == nullptr) unknown("port", part + "." + port, context);

  auto& conn = make<Connector>(boundary_port + "_" + part, &context);
  conn.ends_[0] = ConnectorEnd{nullptr, bp};
  conn.ends_[1] = ConnectorEnd{p, q};
  context.connectors_.push_back(&conn);
  return conn;
}

Dependency& Model::create_dependency(std::string name, Element& client,
                                     Element& supplier) {
  auto& dep = make<Dependency>(std::move(name), nullptr);
  dep.client_ = &client;
  dep.supplier_ = &supplier;
  return dep;
}

StateMachine& Model::create_behavior(Class& owner) {
  if (owner.behavior_ != nullptr) return *owner.behavior_;
  auto& sm = make<StateMachine>(owner.name() + "_behavior", &owner);
  sm.context_ = &owner;
  owner.behavior_ = &sm;
  return sm;
}

State& Model::add_state(StateMachine& sm, std::string name, bool initial) {
  auto& st = make<State>(std::move(name), &sm);
  st.initial_ = initial;
  sm.states_.push_back(&st);
  return st;
}

Transition& Model::add_transition(StateMachine& sm, State& from, State& to) {
  auto& tr = make<Transition>(from.name() + "_to_" + to.name(), &sm);
  tr.source_ = &from;
  tr.target_ = &to;
  sm.transitions_.push_back(&tr);
  return tr;
}

Transition& Model::add_transition(StateMachine& sm, State& from, State& to,
                                  const Signal& trigger, std::string port) {
  auto& tr = add_transition(sm, from, to);
  tr.trigger_signal_ = &trigger;
  tr.trigger_port_ = std::move(port);
  return tr;
}

Transition& Model::add_timer_transition(StateMachine& sm, State& from, State& to,
                                        std::string timer) {
  auto& tr = add_transition(sm, from, to);
  tr.trigger_timer_ = std::move(timer);
  return tr;
}

Profile& Model::create_profile(std::string name) {
  return make<Profile>(std::move(name), nullptr);
}

Stereotype& Model::create_stereotype(Profile& profile, std::string name,
                                     ElementKind metaclass,
                                     const Stereotype* general) {
  auto& st = make<Stereotype>(std::move(name), &profile);
  st.extends_ = general != nullptr ? general->extended_metaclass() : metaclass;
  st.general_ = general;
  profile.stereotypes_.push_back(&st);
  return st;
}

Element* Model::find(const std::string& id) const noexcept {
  for (const auto& e : elements_) {
    if (e->id() == id) return e.get();
  }
  return nullptr;
}

Element* Model::find_named(ElementKind kind, const std::string& name) const noexcept {
  for (const auto& e : elements_) {
    if (e->kind() == kind && e->name() == name) return e.get();
  }
  return nullptr;
}

Class* Model::find_class(const std::string& name) const noexcept {
  return static_cast<Class*>(find_named(ElementKind::Class, name));
}

Signal* Model::find_signal(const std::string& name) const noexcept {
  return static_cast<Signal*>(find_named(ElementKind::Signal, name));
}

std::vector<Element*> Model::elements_of_kind(ElementKind kind) const {
  std::vector<Element*> out;
  for (const auto& e : elements_) {
    if (e->kind() == kind) out.push_back(e.get());
  }
  return out;
}

std::vector<Element*> Model::stereotyped(const std::string& stereotype) const {
  std::vector<Element*> out;
  for (const auto& e : elements_) {
    if (e->has_stereotype(stereotype)) out.push_back(e.get());
  }
  return out;
}

}  // namespace tut::uml
