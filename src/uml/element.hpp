// tut::uml — a UML 2.0 metamodel subset sufficient for TUT-Profile.
//
// The paper uses *second-class extensibility*: stereotypes extend existing
// metaclasses without modifying the metamodel. Accordingly this module
// implements (a) the handful of UML 2.0 metaclasses the profile extends or
// relies on — Class, Property (attribute/part), Port, Connector, Signal,
// Dependency, StateMachine — and (b) the profile machinery itself:
// Profile, Stereotype, tag definitions, and stereotype application with
// tagged values.
//
// Ownership model: a Model owns every Element in an arena of unique_ptrs;
// all cross-references between elements are non-owning raw pointers, which
// stay valid for the lifetime of the Model. Elements are never removed
// individually (models are built, validated, serialized and analyzed — the
// tool flow never edits destructively).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tut::uml {

class Stereotype;

/// The UML metaclass of an element. Stereotypes declare which metaclass they
/// extend; stereotype application is checked against this kind.
enum class ElementKind : std::uint8_t {
  Model,
  Package,
  Class,
  Property,     // attribute or part (composite-structure role)
  Port,
  Connector,
  Signal,
  Dependency,
  StateMachine,
  State,
  Transition,
  Profile,
  Stereotype,
};

/// Human-readable metaclass name ("Class", "Dependency", ...).
const char* to_string(ElementKind kind) noexcept;

/// One stereotype applied to an element, together with its tagged values.
/// Tag names must be declared (directly or via generalization) by the
/// stereotype; the validator enforces this.
struct StereotypeApplication {
  const Stereotype* stereotype = nullptr;
  std::map<std::string, std::string> tagged_values;
};

/// Base metaclass. Every model element has a model-unique id, a (possibly
/// qualified) name, an owner, and a list of applied stereotypes.
class Element {
public:
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  ElementKind kind() const noexcept { return kind_; }
  const std::string& id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Element* owner() const noexcept { return owner_; }

  /// Dotted path from the model root, e.g. "Tutmac_Protocol.rca".
  std::string qualified_name() const;

  // -- stereotype application ----------------------------------------------
  /// Applies a stereotype with no tagged values (values may be added later
  /// through the returned application). Multiple distinct stereotypes may be
  /// applied; re-applying the same stereotype returns the existing entry.
  StereotypeApplication& apply(const Stereotype& stereotype);
  /// Applies a stereotype and sets tagged values in one call.
  StereotypeApplication& apply(const Stereotype& stereotype,
                               std::map<std::string, std::string> values);

  bool has_stereotype(const Stereotype& stereotype) const noexcept;
  bool has_stereotype(const std::string& name) const noexcept;
  /// The application entry for `name` (exact or inherited match), or nullptr.
  const StereotypeApplication* application(const std::string& name) const noexcept;
  StereotypeApplication* application(const std::string& name) noexcept;

  /// Tagged value lookup across all applied stereotypes; empty if unset.
  std::string tagged_value(const std::string& tag) const;
  bool has_tagged_value(const std::string& tag) const noexcept;

  const std::vector<StereotypeApplication>& applications() const noexcept {
    return applications_;
  }

protected:
  Element(ElementKind kind) : kind_(kind) {}

private:
  friend class Model;
  friend class ModelIO;

  ElementKind kind_;
  std::string id_;
  std::string name_;
  Element* owner_ = nullptr;
  std::vector<StereotypeApplication> applications_;
};

}  // namespace tut::uml
