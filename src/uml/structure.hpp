// Structural metaclasses: Package, Class, Property, Port, Connector, Signal,
// Dependency. These carry the class-diagram and composite-structure-diagram
// content of a TUT-Profile model (Figures 4-8 of the paper).
#pragma once

#include <string>
#include <vector>

#include "uml/element.hpp"

namespace tut::uml {

class Class;
class Property;
class Port;
class Signal;
class StateMachine;

/// A package groups classes and signals (used for the application and
/// platform libraries).
class Package : public Element {
public:
  Package() : Element(ElementKind::Package) {}

  const std::vector<Element*>& members() const noexcept { return members_; }

private:
  friend class Model;
  friend class ModelIO;
  std::vector<Element*> members_;
};

/// A signal type. Parameters are (name, type-name) pairs; the behavioural
/// layer treats all parameter values as integers (sufficient for the
/// profile's performance modelling; payload bytes are modelled by a size).
class Signal : public Element {
public:
  Signal() : Element(ElementKind::Signal) {}

  struct Parameter {
    std::string name;
    std::string type;
  };

  const std::vector<Parameter>& parameters() const noexcept { return params_; }
  Signal& add_parameter(std::string name, std::string type) {
    params_.push_back({std::move(name), std::move(type)});
    return *this;
  }

  /// Payload size in bytes when transferred over a communication segment.
  /// Defaults to 4 bytes per parameter plus a 4-byte header.
  std::size_t payload_bytes() const noexcept {
    return payload_bytes_ != 0 ? payload_bytes_ : 4 + 4 * params_.size();
  }
  void set_payload_bytes(std::size_t bytes) noexcept { payload_bytes_ = bytes; }

private:
  std::vector<Parameter> params_;
  std::size_t payload_bytes_ = 0;
};

/// A port on a class. Ports are connection points for connectors; signals
/// listed as `required` may be sent out through the port, signals listed as
/// `provided` may be received through it.
class Port : public Element {
public:
  Port() : Element(ElementKind::Port) {}

  Class* owner_class() const noexcept;

  const std::vector<const Signal*>& provided() const noexcept { return provided_; }
  const std::vector<const Signal*>& required() const noexcept { return required_; }
  Port& provide(const Signal& s) {
    provided_.push_back(&s);
    return *this;
  }
  Port& require(const Signal& s) {
    required_.push_back(&s);
    return *this;
  }
  bool provides(const Signal& s) const noexcept;
  bool requires_signal(const Signal& s) const noexcept;

private:
  std::vector<const Signal*> provided_;
  std::vector<const Signal*> required_;
};

/// A structural feature of a class: either a plain attribute (type given by
/// name, no composite role) or a *part* — an instance of another class
/// playing a role inside a composite structure (the paper's class instances
/// such as `rca : RadioChannelAccess`).
class Property : public Element {
public:
  Property() : Element(ElementKind::Property) {}

  /// The classifier this part instantiates; nullptr for plain attributes.
  Class* part_type() const noexcept { return part_type_; }
  bool is_part() const noexcept { return part_type_ != nullptr; }

  /// Type name for plain attributes (e.g. "int", "Buffer").
  const std::string& attr_type() const noexcept { return attr_type_; }
  void set_attr_type(std::string t) { attr_type_ = std::move(t); }

  Class* owner_class() const noexcept;

private:
  friend class Model;
  friend class ModelIO;
  Class* part_type_ = nullptr;
  std::string attr_type_;
};

/// One end of a connector: a port on a part of the structured class, or —
/// when `part == nullptr` — a boundary port of the structured class itself
/// (a delegation connector, e.g. `pphy` in Figure 5).
struct ConnectorEnd {
  const Property* part = nullptr;
  const Port* port = nullptr;
};

/// A connector wires two ends inside a structured class. Connectors carry
/// the signals admissible by the connected ports.
class Connector : public Element {
public:
  Connector() : Element(ElementKind::Connector) {}

  const ConnectorEnd& end0() const noexcept { return ends_[0]; }
  const ConnectorEnd& end1() const noexcept { return ends_[1]; }

private:
  friend class Model;
  friend class ModelIO;
  ConnectorEnd ends_[2];
};

/// A class. `is_active` distinguishes the paper's *functional components*
/// (active classes with behaviour, instantiable as application processes)
/// from *structural components* (passive classes that only define composite
/// structures or data).
class Class : public Element {
public:
  Class() : Element(ElementKind::Class) {}

  bool is_active() const noexcept { return is_active_; }
  void set_active(bool active) noexcept { is_active_ = active; }

  const std::vector<Property*>& attributes() const noexcept { return attributes_; }
  const std::vector<Property*>& parts() const noexcept { return parts_; }
  const std::vector<Port*>& ports() const noexcept { return ports_; }
  const std::vector<Connector*>& connectors() const noexcept { return connectors_; }

  Port* port(const std::string& name) const noexcept;
  Property* part(const std::string& name) const noexcept;

  /// The classifier behaviour (an EFSM); nullptr for structural classes.
  StateMachine* behavior() const noexcept { return behavior_; }

  /// Superclass (single generalization is enough for the profile's library
  /// specializations); nullptr if none.
  Class* general() const noexcept { return general_; }
  void set_general(Class* g) noexcept { general_ = g; }

private:
  friend class Model;
  friend class ModelIO;
  bool is_active_ = false;
  Class* general_ = nullptr;
  std::vector<Property*> attributes_;
  std::vector<Property*> parts_;
  std::vector<Port*> ports_;
  std::vector<Connector*> connectors_;
  StateMachine* behavior_ = nullptr;
};

/// A dependency between two elements. TUT-Profile stereotypes Dependencies
/// as <<ProcessGrouping>> (process → group) and <<Mapping>> (group →
/// platform component instance), and <<CommunicationWrapper>> attachments.
class Dependency : public Element {
public:
  Dependency() : Element(ElementKind::Dependency) {}

  Element* client() const noexcept { return client_; }
  Element* supplier() const noexcept { return supplier_; }

private:
  friend class Model;
  friend class ModelIO;
  Element* client_ = nullptr;
  Element* supplier_ = nullptr;
};

}  // namespace tut::uml
