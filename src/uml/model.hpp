// Model: the arena that owns every element, plus the factory API used to
// build models programmatically (the role Telelogic TAU G2 plays in the
// paper's flow).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "uml/element.hpp"
#include "uml/profile.hpp"
#include "uml/statemachine.hpp"
#include "uml/structure.hpp"

namespace tut::uml {

/// A UML model. Owns all elements; factory methods keep ownership and
/// owner/member links consistent. Raw pointers/references returned by the
/// factories remain valid for the lifetime of the Model.
class Model : public Element {
public:
  explicit Model(std::string name);

  Model(Model&&) = delete;
  Model& operator=(Model&&) = delete;

  // -- packages & classifiers ----------------------------------------------
  /// Creates a package owned by `parent` (or by the model root if null).
  Package& create_package(std::string name, Package* parent = nullptr);
  /// Creates a class in `pkg` (or at model root). Active classes are the
  /// paper's functional components; passive ones are structural components.
  Class& create_class(std::string name, Package* pkg = nullptr,
                      bool active = false);
  Signal& create_signal(std::string name, Package* pkg = nullptr);

  // -- class features --------------------------------------------------------
  Property& add_attribute(Class& owner, std::string name, std::string type);
  /// Adds a composite-structure part `name : type` to `owner`.
  Property& add_part(Class& owner, std::string name, Class& type);
  Port& add_port(Class& owner, std::string name);

  /// Connects `port_a` on part `part_a` to `port_b` on part `part_b`, both
  /// parts of `context`. Throws std::invalid_argument on unknown names.
  Connector& connect(Class& context, const std::string& part_a,
                     const std::string& port_a, const std::string& part_b,
                     const std::string& port_b);
  /// Delegation connector: boundary port of `context` to a port on a part.
  Connector& connect_boundary(Class& context, const std::string& boundary_port,
                              const std::string& part, const std::string& port);

  // -- dependencies -----------------------------------------------------------
  Dependency& create_dependency(std::string name, Element& client,
                                Element& supplier);

  // -- behaviour ---------------------------------------------------------------
  /// Creates (or returns the existing) classifier behaviour of `owner`.
  StateMachine& create_behavior(Class& owner);
  State& add_state(StateMachine& sm, std::string name, bool initial = false);
  Transition& add_transition(StateMachine& sm, State& from, State& to);
  /// Signal-triggered transition; empty `port` matches any providing port.
  Transition& add_transition(StateMachine& sm, State& from, State& to,
                             const Signal& trigger, std::string port = "");
  /// Timer-triggered transition.
  Transition& add_timer_transition(StateMachine& sm, State& from, State& to,
                                   std::string timer);

  // -- profiles -----------------------------------------------------------------
  Profile& create_profile(std::string name);
  /// Creates a stereotype in `profile` extending `metaclass`, optionally
  /// specializing `general` (inherits its metaclass and tags).
  Stereotype& create_stereotype(Profile& profile, std::string name,
                                ElementKind metaclass,
                                const Stereotype* general = nullptr);

  // -- lookup ---------------------------------------------------------------------
  Element* find(const std::string& id) const noexcept;
  /// First element of the given kind with this (unqualified) name.
  Element* find_named(ElementKind kind, const std::string& name) const noexcept;
  Class* find_class(const std::string& name) const noexcept;
  Signal* find_signal(const std::string& name) const noexcept;

  /// All elements in creation order.
  const std::vector<std::unique_ptr<Element>>& elements() const noexcept {
    return elements_;
  }
  std::vector<Element*> elements_of_kind(ElementKind kind) const;
  /// All elements carrying the given stereotype (by name, including
  /// specializations of it).
  std::vector<Element*> stereotyped(const std::string& stereotype) const;

  std::size_t size() const noexcept { return elements_.size(); }

private:
  friend class ModelIO;

  template <typename T>
  T& make(std::string name, Element* owner);

  std::vector<std::unique_ptr<Element>> elements_;
  std::uint64_t next_id_ = 0;
};

}  // namespace tut::uml
