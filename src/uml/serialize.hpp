// XMI-like XML interchange for models.
//
// The paper's profiling tool starts from "the XML presentation of the UML
// 2.0 model". This module defines that presentation: a flat, creation-order
// list of elements under <tut:model>, cross-referenced by element id, with a
// trailing <appliedStereotypes> section. Round-trips losslessly through
// tut::xml (ids are preserved, so external tools can reference elements).
#pragma once

#include <memory>
#include <string>

#include "uml/model.hpp"
#include "xml/xml.hpp"

namespace tut::uml {

/// Serializes a model to the XML interchange dialect.
xml::Document to_xml(const Model& model);
/// Convenience: to_xml + xml::write.
std::string to_xml_string(const Model& model);

/// Reconstructs a model from the XML dialect. Throws std::runtime_error on
/// dangling references or unknown element kinds; throws xml::ParseError via
/// from_xml_string on malformed XML.
std::unique_ptr<Model> from_xml(const xml::Document& doc);
std::unique_ptr<Model> from_xml_string(const std::string& text);

}  // namespace tut::uml
