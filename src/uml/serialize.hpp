// XMI-like XML interchange for models.
//
// The paper's profiling tool starts from "the XML presentation of the UML
// 2.0 model". This module defines that presentation: a flat, creation-order
// list of elements under <tut:model>, cross-referenced by element id, with a
// trailing <appliedStereotypes> section. Round-trips losslessly through
// tut::xml (ids are preserved, so external tools can reference elements).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "uml/model.hpp"
#include "xml/xml.hpp"

namespace tut::uml {

/// Serializes a model to the XML interchange dialect (mutable DOM tree).
xml::Document to_xml(const Model& model);
/// Streams the model straight into one string through xml::Writer — no
/// intermediate tree. Byte-identical to xml::write(to_xml(model)).
std::string to_xml_string(const Model& model);

/// Reconstructs a model from the XML dialect. Throws std::runtime_error on
/// dangling references or unknown element kinds; the text overloads throw
/// xml::ParseError on malformed XML.
std::unique_ptr<Model> from_xml(const xml::Document& doc);
/// Hot path: parses via the zero-copy pull cursor into an arena-backed
/// xml::Tree and reads the model from its string_view nodes. `text` only
/// needs to outlive the call — the Model copies everything it keeps.
/// `arena_limit` caps the parse arena in bytes (0 = unbounded; e.g. a
/// sim::ResourceProfile's arena_bytes for server-ingested models); a
/// document that overflows it throws xml::ArenaLimitError tagged
/// [envelope.arena.exhausted].
std::unique_ptr<Model> from_xml_text(std::string_view text,
                                     std::size_t arena_limit = 0);
std::unique_ptr<Model> from_xml_string(const std::string& text);

}  // namespace tut::uml
