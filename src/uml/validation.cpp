#include "uml/validation.hpp"

#include <sstream>

namespace tut::uml {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  std::string out = ::tut::uml::to_string(severity);
  out += " [" + rule + "] " + element + ": " + message;
  return out;
}

void ValidationResult::add(Severity severity, std::string rule,
                           const Element& element, std::string message) {
  diags_.push_back(Diagnostic{severity, std::move(rule),
                              element.qualified_name(), std::move(message)});
}

std::size_t ValidationResult::error_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

std::size_t ValidationResult::warning_count() const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::Warning) ++n;
  }
  return n;
}

std::string ValidationResult::to_string() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

ValidationResult Validator::run(const Model& model) const {
  ValidationResult result;
  for (const auto& rule : rules_) rule.check(model, result);
  return result;
}

namespace {

void check_applications(const Model& model, ValidationResult& res) {
  for (const auto& elem : model.elements()) {
    for (const auto& app : elem->applications()) {
      const Stereotype* st = app.stereotype;
      if (st == nullptr) continue;
      if (st->extended_metaclass() != elem->kind()) {
        res.add(Severity::Error, "uml.stereotype.metaclass", *elem,
                "stereotype <<" + st->name() + ">> extends metaclass " +
                    std::string(to_string(st->extended_metaclass())) +
                    " but is applied to a " +
                    std::string(to_string(elem->kind())));
      }
      for (const auto& [tag, value] : app.tagged_values) {
        const TagDefinition* def = st->tag(tag);
        if (def == nullptr) {
          res.add(Severity::Error, "uml.tag.undeclared", *elem,
                  "tagged value '" + tag + "' is not declared by <<" +
                      st->name() + ">>");
          continue;
        }
        if (!def->accepts(value)) {
          res.add(Severity::Error, "uml.tag.type", *elem,
                  "tagged value " + tag + "=\"" + value + "\" is not a valid " +
                      std::string(to_string(def->type)));
        }
      }
      for (const TagDefinition* def : st->all_tags()) {
        if (def->required && app.tagged_values.count(def->name) == 0) {
          res.add(Severity::Error, "uml.tag.required", *elem,
                  "required tagged value '" + def->name + "' of <<" +
                      st->name() + ">> is missing");
        }
      }
    }
  }
}

void check_connectors(const Model& model, ValidationResult& res) {
  for (Element* e : model.elements_of_kind(ElementKind::Connector)) {
    const auto* conn = static_cast<const Connector*>(e);
    const auto* context = static_cast<const Class*>(conn->owner());
    const ConnectorEnd ends[2] = {conn->end0(), conn->end1()};
    for (const ConnectorEnd& end : ends) {
      if (end.port == nullptr) {
        res.add(Severity::Error, "uml.connector.ends", *conn,
                "connector end has no port");
        continue;
      }
      if (end.part != nullptr) {
        // The part must belong to the context class and the port to the
        // part's type.
        if (end.part->owner_class() != context) {
          res.add(Severity::Error, "uml.connector.ends", *conn,
                  "part '" + end.part->name() +
                      "' is not a part of the connector's context class");
        }
        const Class* type = end.part->part_type();
        if (type == nullptr || type->port(end.port->name()) != end.port) {
          res.add(Severity::Error, "uml.connector.ends", *conn,
                  "port '" + end.port->name() + "' is not a port of part '" +
                      end.part->name() + "'");
        }
      } else if (context == nullptr ||
                 context->port(end.port->name()) != end.port) {
        res.add(Severity::Error, "uml.connector.ends", *conn,
                "boundary port '" + end.port->name() +
                    "' is not a port of the context class");
      }
    }
  }
}

void check_port_compatibility(const Model& model, ValidationResult& res) {
  for (Element* e : model.elements_of_kind(ElementKind::Connector)) {
    const auto* conn = static_cast<const Connector*>(e);
    const Port* a = conn->end0().port;
    const Port* b = conn->end1().port;
    if (a == nullptr || b == nullptr) continue;
    // For assembly connectors (both ends on parts): everything one side may
    // send, the other side must be able to receive.
    if (conn->end0().part != nullptr && conn->end1().part != nullptr) {
      for (const Signal* s : a->required()) {
        if (!b->provides(*s)) {
          res.add(Severity::Warning, "uml.port.signals", *conn,
                  "signal '" + s->name() + "' required by port '" + a->name() +
                      "' is not provided by port '" + b->name() + "'");
        }
      }
      for (const Signal* s : b->required()) {
        if (!a->provides(*s)) {
          res.add(Severity::Warning, "uml.port.signals", *conn,
                  "signal '" + s->name() + "' required by port '" + b->name() +
                      "' is not provided by port '" + a->name() + "'");
        }
      }
    }
  }
}

void check_state_machines(const Model& model, ValidationResult& res) {
  for (Element* e : model.elements_of_kind(ElementKind::StateMachine)) {
    const auto* sm = static_cast<const StateMachine*>(e);
    std::size_t initial = 0;
    for (const State* s : sm->states()) {
      if (s->is_initial()) ++initial;
    }
    if (initial != 1) {
      res.add(Severity::Error, "uml.sm.wellformed", *sm,
              "state machine must have exactly one initial state (has " +
                  std::to_string(initial) + ")");
    }
    const Class* ctx = sm->context();
    for (const Transition* t : sm->transitions()) {
      if (t->source() == nullptr || t->target() == nullptr) {
        res.add(Severity::Error, "uml.sm.wellformed", *t,
                "transition must have a source and a target state");
        continue;
      }
      for (const Action& a : t->effects()) {
        if (a.kind == Action::Kind::Send && ctx != nullptr &&
            ctx->port(a.port) == nullptr) {
          res.add(Severity::Error, "uml.sm.wellformed", *t,
                  "send action references unknown port '" + a.port + "' on '" +
                      ctx->name() + "'");
        }
      }
      if (t->trigger_signal() != nullptr && !t->trigger_port().empty() &&
          ctx != nullptr && ctx->port(t->trigger_port()) == nullptr) {
        res.add(Severity::Error, "uml.sm.wellformed", *t,
                "trigger references unknown port '" + t->trigger_port() +
                    "' on '" + ctx->name() + "'");
      }
    }
  }
}

}  // namespace

Validator Validator::uml_core() {
  Validator v;
  v.add_rule({"uml.stereotype", "stereotype applications are well-formed",
              check_applications});
  v.add_rule({"uml.connector", "connector ends resolve", check_connectors});
  v.add_rule({"uml.port", "connected ports agree on signals",
              check_port_compatibility});
  v.add_rule({"uml.sm", "state machines are well-formed", check_state_machines});
  return v;
}

}  // namespace tut::uml
