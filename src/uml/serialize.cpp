#include "uml/serialize.hpp"

#include <stdexcept>
#include <unordered_map>

namespace tut::uml {

namespace {

const char* action_kind_name(Action::Kind k) {
  switch (k) {
    case Action::Kind::Send: return "send";
    case Action::Kind::Assign: return "assign";
    case Action::Kind::Compute: return "compute";
    case Action::Kind::SetTimer: return "setTimer";
    case Action::Kind::ResetTimer: return "resetTimer";
  }
  return "?";
}

Action::Kind action_kind_from(const std::string& s) {
  if (s == "send") return Action::Kind::Send;
  if (s == "assign") return Action::Kind::Assign;
  if (s == "compute") return Action::Kind::Compute;
  if (s == "setTimer") return Action::Kind::SetTimer;
  if (s == "resetTimer") return Action::Kind::ResetTimer;
  throw std::runtime_error("unknown action kind '" + s + "'");
}

TagType tag_type_from(const std::string& s) {
  if (s == "string") return TagType::String;
  if (s == "integer") return TagType::Integer;
  if (s == "boolean") return TagType::Boolean;
  if (s == "real") return TagType::Real;
  if (s == "enum") return TagType::Enum;
  throw std::runtime_error("unknown tag type '" + s + "'");
}

ElementKind metaclass_from(const std::string& s) {
  if (s == "Class") return ElementKind::Class;
  if (s == "Property") return ElementKind::Property;
  if (s == "Port") return ElementKind::Port;
  if (s == "Connector") return ElementKind::Connector;
  if (s == "Signal") return ElementKind::Signal;
  if (s == "Dependency") return ElementKind::Dependency;
  if (s == "Package") return ElementKind::Package;
  if (s == "StateMachine") return ElementKind::StateMachine;
  if (s == "State") return ElementKind::State;
  if (s == "Transition") return ElementKind::Transition;
  throw std::runtime_error("unknown metaclass '" + s + "'");
}

void write_actions(xml::Element& parent, const char* wrapper,
                   const std::vector<Action>& actions) {
  if (actions.empty()) return;
  auto& w = parent.add_child(wrapper);
  for (const Action& a : actions) {
    auto& ax = w.add_child("action");
    ax.set_attr("kind", action_kind_name(a.kind));
    if (!a.port.empty()) ax.set_attr("port", a.port);
    if (a.signal != nullptr) ax.set_attr("signal", a.signal->id());
    if (!a.var.empty()) ax.set_attr("var", a.var);
    if (!a.expr.empty()) ax.set_attr("expr", a.expr);
    for (const auto& arg : a.args) ax.add_child("arg").set_text(arg);
  }
}

}  // namespace

// ModelIO is a friend of every metaclass: it performs the raw two-pass
// reconstruction that the public factory API (which validates references at
// call time) cannot express for forward references.
class ModelIO {
public:
  static xml::Document write(const Model& model) {
    xml::Document doc("tut:model");
    doc.root().set_attr("name", model.name());
    for (const auto& elem : model.elements()) write_element(doc.root(), *elem);
    write_applications(doc.root(), model);
    return doc;
  }

  static std::unique_ptr<Model> read(const xml::Document& doc) {
    if (doc.root().name() != "tut:model") {
      throw std::runtime_error("not a tut:model document");
    }
    auto model = std::make_unique<Model>(doc.root().attr_or("name", "model"));
    ModelIO io(*model);
    for (const auto& node : doc.root().children()) io.create(*node);
    for (const auto& node : doc.root().children()) io.resolve(*node);
    return model;
  }

private:
  explicit ModelIO(Model& model) : model_(model) {}

  // -- writing ---------------------------------------------------------------

  static void write_element(xml::Element& root, const Element& e) {
    switch (e.kind()) {
      case ElementKind::Package: {
        auto& x = header(root, "package", e);
        (void)x;
        break;
      }
      case ElementKind::Signal: {
        const auto& s = static_cast<const Signal&>(e);
        auto& x = header(root, "signal", e);
        x.set_attr("payloadBytes", std::to_string(s.payload_bytes()));
        for (const auto& p : s.parameters()) {
          x.add_child("param").set_attr("name", p.name).set_attr("type", p.type);
        }
        break;
      }
      case ElementKind::Class: {
        const auto& c = static_cast<const Class&>(e);
        auto& x = header(root, "class", e);
        x.set_attr("active", c.is_active() ? "true" : "false");
        if (c.general() != nullptr) x.set_attr("general", c.general()->id());
        break;
      }
      case ElementKind::Property: {
        const auto& p = static_cast<const Property&>(e);
        auto& x = header(root, "property", e);
        if (p.is_part()) {
          x.set_attr("partType", p.part_type()->id());
        } else {
          x.set_attr("attrType", p.attr_type());
        }
        break;
      }
      case ElementKind::Port: {
        const auto& p = static_cast<const Port&>(e);
        auto& x = header(root, "port", e);
        for (const Signal* s : p.provided()) {
          x.add_child("provided").set_attr("ref", s->id());
        }
        for (const Signal* s : p.required()) {
          x.add_child("required").set_attr("ref", s->id());
        }
        break;
      }
      case ElementKind::Connector: {
        const auto& c = static_cast<const Connector&>(e);
        auto& x = header(root, "connector", e);
        for (const ConnectorEnd& end : {c.end0(), c.end1()}) {
          auto& ex = x.add_child("end");
          if (end.part != nullptr) ex.set_attr("part", end.part->id());
          if (end.port != nullptr) ex.set_attr("port", end.port->id());
        }
        break;
      }
      case ElementKind::Dependency: {
        const auto& d = static_cast<const Dependency&>(e);
        auto& x = header(root, "dependency", e);
        x.set_attr("client", d.client()->id());
        x.set_attr("supplier", d.supplier()->id());
        break;
      }
      case ElementKind::StateMachine: {
        const auto& sm = static_cast<const StateMachine&>(e);
        auto& x = header(root, "stateMachine", e);
        for (const auto& [name, init] : sm.variables()) {
          x.add_child("variable")
              .set_attr("name", name)
              .set_attr("initial", std::to_string(init));
        }
        break;
      }
      case ElementKind::State: {
        const auto& s = static_cast<const State&>(e);
        auto& x = header(root, "state", e);
        if (s.is_initial()) x.set_attr("initial", "true");
        write_actions(x, "entry", s.entry_actions());
        break;
      }
      case ElementKind::Transition: {
        const auto& t = static_cast<const Transition&>(e);
        auto& x = header(root, "transition", e);
        x.set_attr("source", t.source()->id());
        x.set_attr("target", t.target()->id());
        if (t.trigger_signal() != nullptr) {
          x.set_attr("signal", t.trigger_signal()->id());
        }
        if (!t.trigger_port().empty()) x.set_attr("port", t.trigger_port());
        if (!t.trigger_timer().empty()) x.set_attr("timer", t.trigger_timer());
        if (!t.guard().empty()) x.set_attr("guard", t.guard());
        write_actions(x, "effect", t.effects());
        break;
      }
      case ElementKind::Profile: {
        header(root, "profile", e);
        break;
      }
      case ElementKind::Stereotype: {
        const auto& s = static_cast<const Stereotype&>(e);
        auto& x = header(root, "stereotype", e);
        x.set_attr("extends", to_string(s.extended_metaclass()));
        if (s.general() != nullptr) x.set_attr("general", s.general()->id());
        for (const TagDefinition& t : s.own_tags()) {
          auto& tx = x.add_child("tag");
          tx.set_attr("name", t.name);
          tx.set_attr("type", to_string(t.type));
          if (t.required) tx.set_attr("required", "true");
          if (!t.description.empty()) tx.set_attr("description", t.description);
          for (const auto& en : t.enumerators) {
            tx.add_child("enum").set_attr("value", en);
          }
        }
        break;
      }
      case ElementKind::Model:
        break;
    }
  }

  static xml::Element& header(xml::Element& root, const char* tag,
                              const Element& e) {
    auto& x = root.add_child(tag);
    x.set_attr("id", e.id());
    x.set_attr("name", e.name());
    if (e.owner() != nullptr && e.owner()->kind() != ElementKind::Model) {
      x.set_attr("owner", e.owner()->id());
    }
    return x;
  }

  static void write_applications(xml::Element& root, const Model& model) {
    auto& section = root.add_child("appliedStereotypes");
    for (const auto& elem : model.elements()) {
      for (const auto& app : elem->applications()) {
        auto& ax = section.add_child("apply");
        ax.set_attr("element", elem->id());
        ax.set_attr("stereotype", app.stereotype->id());
        for (const auto& [k, v] : app.tagged_values) {
          ax.add_child("tv").set_attr("name", k).set_attr("value", v);
        }
      }
    }
  }

  // -- reading: pass 1 (creation) ---------------------------------------------

  template <typename T>
  T& create_raw(const xml::Element& node) {
    auto elem = std::make_unique<T>();
    T& ref = *elem;
    ref.name_ = node.attr_or("name", "");
    ref.id_ = node.attr_or("id", "e" + std::to_string(model_.next_id_));
    // Keep the auto-id counter ahead of any numeric id we ingest.
    if (ref.id_.size() > 1 && ref.id_[0] == 'e') {
      try {
        const auto n = std::stoull(ref.id_.substr(1));
        if (n >= model_.next_id_) model_.next_id_ = n + 1;
      } catch (const std::exception&) {
        // Non-numeric id: nothing to advance.
      }
    }
    if (auto owner = node.attr("owner")) {
      ref.owner_ = &lookup(*owner);
    } else {
      ref.owner_ = &model_;
    }
    model_.elements_.push_back(std::move(elem));
    by_id_[ref.id_] = &ref;
    return ref;
  }

  Element& lookup(const std::string& id) const {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) {
      throw std::runtime_error("dangling reference to element id '" + id + "'");
    }
    return *it->second;
  }

  template <typename T>
  T& lookup_as(const std::string& id) const {
    return static_cast<T&>(lookup(id));
  }

  void create(const xml::Element& node) {
    const std::string& tag = node.name();
    if (tag == "appliedStereotypes") return;
    if (tag == "package") {
      auto& pkg = create_raw<Package>(node);
      if (pkg.owner_->kind() == ElementKind::Package) {
        static_cast<Package*>(pkg.owner_)->members_.push_back(&pkg);
      }
    } else if (tag == "signal") {
      auto& sig = create_raw<Signal>(node);
      for (const auto* p : node.children_named("param")) {
        sig.add_parameter(p->attr_or("name", ""), p->attr_or("type", ""));
      }
      if (auto pb = node.attr("payloadBytes")) {
        sig.set_payload_bytes(std::stoull(*pb));
      }
      if (sig.owner_->kind() == ElementKind::Package) {
        static_cast<Package*>(sig.owner_)->members_.push_back(&sig);
      }
    } else if (tag == "class") {
      auto& cls = create_raw<Class>(node);
      cls.is_active_ = node.attr_or("active", "false") == "true";
      if (cls.owner_->kind() == ElementKind::Package) {
        static_cast<Package*>(cls.owner_)->members_.push_back(&cls);
      }
    } else if (tag == "property") {
      auto& prop = create_raw<Property>(node);
      prop.attr_type_ = node.attr_or("attrType", "");
      auto* cls = prop.owner_class();
      if (cls == nullptr) {
        throw std::runtime_error("property '" + prop.name() +
                                 "' must be owned by a class");
      }
      if (node.has_attr("partType")) {
        cls->parts_.push_back(&prop);  // type resolved in pass 2
      } else {
        cls->attributes_.push_back(&prop);
      }
    } else if (tag == "port") {
      auto& port = create_raw<Port>(node);
      auto* cls = port.owner_class();
      if (cls == nullptr) {
        throw std::runtime_error("port '" + port.name() +
                                 "' must be owned by a class");
      }
      cls->ports_.push_back(&port);
    } else if (tag == "connector") {
      auto& conn = create_raw<Connector>(node);
      if (conn.owner_->kind() != ElementKind::Class) {
        throw std::runtime_error("connector '" + conn.name() +
                                 "' must be owned by a class");
      }
      static_cast<Class*>(conn.owner_)->connectors_.push_back(&conn);
    } else if (tag == "dependency") {
      create_raw<Dependency>(node);
    } else if (tag == "stateMachine") {
      auto& sm = create_raw<StateMachine>(node);
      for (const auto* v : node.children_named("variable")) {
        sm.declare_variable(v->attr_or("name", ""),
                            std::stol(v->attr_or("initial", "0")));
      }
      if (sm.owner_->kind() == ElementKind::Class) {
        auto* cls = static_cast<Class*>(sm.owner_);
        sm.context_ = cls;
        cls->behavior_ = &sm;
      }
    } else if (tag == "state") {
      auto& st = create_raw<State>(node);
      st.initial_ = node.attr_or("initial", "false") == "true";
      if (st.owner_->kind() != ElementKind::StateMachine) {
        throw std::runtime_error("state '" + st.name() +
                                 "' must be owned by a state machine");
      }
      static_cast<StateMachine*>(st.owner_)->states_.push_back(&st);
    } else if (tag == "transition") {
      auto& tr = create_raw<Transition>(node);
      tr.trigger_port_ = node.attr_or("port", "");
      tr.trigger_timer_ = node.attr_or("timer", "");
      tr.guard_ = node.attr_or("guard", "");
      if (tr.owner_->kind() != ElementKind::StateMachine) {
        throw std::runtime_error("transition '" + tr.name() +
                                 "' must be owned by a state machine");
      }
      static_cast<StateMachine*>(tr.owner_)->transitions_.push_back(&tr);
    } else if (tag == "profile") {
      create_raw<Profile>(node);
    } else if (tag == "stereotype") {
      auto& st = create_raw<Stereotype>(node);
      st.extends_ = metaclass_from(node.attr_or("extends", "Class"));
      for (const auto* t : node.children_named("tag")) {
        TagDefinition def;
        def.name = t->attr_or("name", "");
        def.type = tag_type_from(t->attr_or("type", "string"));
        def.required = t->attr_or("required", "false") == "true";
        def.description = t->attr_or("description", "");
        for (const auto* en : t->children_named("enum")) {
          def.enumerators.push_back(en->attr_or("value", ""));
        }
        st.define_tag(std::move(def));
      }
      if (st.owner_->kind() != ElementKind::Profile) {
        throw std::runtime_error("stereotype '" + st.name() +
                                 "' must be owned by a profile");
      }
      static_cast<Profile*>(st.owner_)->stereotypes_.push_back(&st);
    } else {
      throw std::runtime_error("unknown model element <" + tag + ">");
    }
  }

  // -- reading: pass 2 (reference resolution) ----------------------------------

  std::vector<Action> read_actions(const xml::Element& wrapper) const {
    std::vector<Action> out;
    for (const auto* ax : wrapper.children_named("action")) {
      Action a;
      a.kind = action_kind_from(ax->attr_or("kind", ""));
      a.port = ax->attr_or("port", "");
      a.var = ax->attr_or("var", "");
      a.expr = ax->attr_or("expr", "");
      if (auto sig = ax->attr("signal")) {
        a.signal = &lookup_as<Signal>(*sig);
      }
      for (const auto* arg : ax->children_named("arg")) {
        a.args.push_back(arg->text());
      }
      out.push_back(std::move(a));
    }
    return out;
  }

  void resolve(const xml::Element& node) {
    const std::string& tag = node.name();
    if (tag == "class") {
      if (auto gen = node.attr("general")) {
        lookup_as<Class>(node.attr_or("id", "")).general_ =
            &lookup_as<Class>(*gen);
      }
    } else if (tag == "property") {
      if (auto pt = node.attr("partType")) {
        lookup_as<Property>(node.attr_or("id", "")).part_type_ =
            &lookup_as<Class>(*pt);
      }
    } else if (tag == "port") {
      auto& port = lookup_as<Port>(node.attr_or("id", ""));
      for (const auto* p : node.children_named("provided")) {
        port.provide(lookup_as<Signal>(p->attr_or("ref", "")));
      }
      for (const auto* r : node.children_named("required")) {
        port.require(lookup_as<Signal>(r->attr_or("ref", "")));
      }
    } else if (tag == "connector") {
      auto& conn = lookup_as<Connector>(node.attr_or("id", ""));
      const auto ends = node.children_named("end");
      for (std::size_t i = 0; i < ends.size() && i < 2; ++i) {
        ConnectorEnd end;
        if (auto part = ends[i]->attr("part")) {
          end.part = &lookup_as<Property>(*part);
        }
        if (auto port = ends[i]->attr("port")) {
          end.port = &lookup_as<Port>(*port);
        }
        conn.ends_[i] = end;
      }
    } else if (tag == "dependency") {
      auto& dep = lookup_as<Dependency>(node.attr_or("id", ""));
      dep.client_ = &lookup(node.attr_or("client", ""));
      dep.supplier_ = &lookup(node.attr_or("supplier", ""));
    } else if (tag == "state") {
      auto& st = lookup_as<State>(node.attr_or("id", ""));
      if (const auto* entry = node.child("entry")) {
        st.entry_ = read_actions(*entry);
      }
    } else if (tag == "transition") {
      auto& tr = lookup_as<Transition>(node.attr_or("id", ""));
      tr.source_ = &lookup_as<State>(node.attr_or("source", ""));
      tr.target_ = &lookup_as<State>(node.attr_or("target", ""));
      if (auto sig = node.attr("signal")) {
        tr.trigger_signal_ = &lookup_as<Signal>(*sig);
      }
      if (const auto* effect = node.child("effect")) {
        tr.effects_ = read_actions(*effect);
      }
    } else if (tag == "stereotype") {
      if (auto gen = node.attr("general")) {
        lookup_as<Stereotype>(node.attr_or("id", "")).general_ =
            &lookup_as<Stereotype>(*gen);
      }
    } else if (tag == "appliedStereotypes") {
      for (const auto* ax : node.children_named("apply")) {
        Element& target = lookup(ax->attr_or("element", ""));
        auto& st = lookup_as<Stereotype>(ax->attr_or("stereotype", ""));
        auto& app = target.apply(st);
        for (const auto* tv : ax->children_named("tv")) {
          app.tagged_values[tv->attr_or("name", "")] = tv->attr_or("value", "");
        }
      }
    }
  }

  Model& model_;
  std::unordered_map<std::string, Element*> by_id_;
};

xml::Document to_xml(const Model& model) { return ModelIO::write(model); }

std::string to_xml_string(const Model& model) {
  return xml::write(to_xml(model));
}

std::unique_ptr<Model> from_xml(const xml::Document& doc) {
  return ModelIO::read(doc);
}

std::unique_ptr<Model> from_xml_string(const std::string& text) {
  return from_xml(xml::parse(text));
}

}  // namespace tut::uml
