#include "uml/serialize.hpp"

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "xml/tree.hpp"

namespace tut::uml {

namespace {

const char* action_kind_name(Action::Kind k) {
  switch (k) {
    case Action::Kind::Send: return "send";
    case Action::Kind::Assign: return "assign";
    case Action::Kind::Compute: return "compute";
    case Action::Kind::SetTimer: return "setTimer";
    case Action::Kind::ResetTimer: return "resetTimer";
  }
  return "?";
}

Action::Kind action_kind_from(std::string_view s) {
  if (s == "send") return Action::Kind::Send;
  if (s == "assign") return Action::Kind::Assign;
  if (s == "compute") return Action::Kind::Compute;
  if (s == "setTimer") return Action::Kind::SetTimer;
  if (s == "resetTimer") return Action::Kind::ResetTimer;
  throw std::runtime_error("unknown action kind '" + std::string(s) + "'");
}

TagType tag_type_from(std::string_view s) {
  if (s == "string") return TagType::String;
  if (s == "integer") return TagType::Integer;
  if (s == "boolean") return TagType::Boolean;
  if (s == "real") return TagType::Real;
  if (s == "enum") return TagType::Enum;
  throw std::runtime_error("unknown tag type '" + std::string(s) + "'");
}

ElementKind metaclass_from(std::string_view s) {
  if (s == "Class") return ElementKind::Class;
  if (s == "Property") return ElementKind::Property;
  if (s == "Port") return ElementKind::Port;
  if (s == "Connector") return ElementKind::Connector;
  if (s == "Signal") return ElementKind::Signal;
  if (s == "Dependency") return ElementKind::Dependency;
  if (s == "Package") return ElementKind::Package;
  if (s == "StateMachine") return ElementKind::StateMachine;
  if (s == "State") return ElementKind::State;
  if (s == "Transition") return ElementKind::Transition;
  throw std::runtime_error("unknown metaclass '" + std::string(s) + "'");
}

std::uint64_t parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p == s.data()) {
    throw std::runtime_error("expected an unsigned integer, got '" +
                             std::string(s) + "'");
  }
  return v;
}

long parse_long(std::string_view s) {
  long v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p == s.data()) {
    throw std::runtime_error("expected an integer, got '" + std::string(s) + "'");
  }
  return v;
}

// -- uniform node access ------------------------------------------------------
// The two load paths — the mutable DOM (xml::Element) and the arena tree
// (xml::Node) — expose the same read API modulo value vs. view returns.
// attr_view() is the common allocation-free lookup; these shims let one
// templated reader drive both, which pins their semantics together.

std::string_view attr_or_sv(const xml::Element& n, std::string_view key,
                            std::string_view fallback) {
  const auto v = n.attr_view(key);
  return v ? *v : fallback;
}

std::string_view attr_or_sv(const xml::Node& n, std::string_view key,
                            std::string_view fallback) {
  const auto v = n.attr_view(key);
  return v ? *v : fallback;
}

const xml::Element& deref(const std::unique_ptr<xml::Element>& p) { return *p; }
const xml::Node& deref(const xml::Node& n) { return n; }

// Allocation-free children_named: visits children with the given tag in
// document order. Both node types' children() ranges work.
template <typename NodeT, typename Fn>
void for_children_named(const NodeT& n, std::string_view name, Fn&& fn) {
  for (const auto& c : n.children()) {
    const auto& child = deref(c);
    if (child.name() == name) fn(child);
  }
}

// Heterogeneous string lookup: ids arrive as views into the input buffer;
// the by-id index must not allocate a key per lookup.
struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

// -- uniform write sinks ------------------------------------------------------
// The write path is templated the same way: DomSink builds an xml::Element
// tree (the reference implementation), StreamSink appends through the
// streaming xml::Writer with no intermediate tree. Both are driven by the
// same write_element/write_applications code, so the outputs are
// byte-identical by construction.

struct DomSink {
  xml::Element* e;

  DomSink add_child(std::string_view name) const {
    return DomSink{&e->add_child(std::string(name))};
  }
  const DomSink& set_attr(std::string_view key, std::string_view value) const {
    e->set_attr(std::string(key), std::string(value));
    return *this;
  }
  const DomSink& set_text(std::string_view t) const {
    e->set_text(std::string(t));
    return *this;
  }
};

struct StreamSink {
  xml::Writer* w;
  std::size_t depth;  // writer depth at which this element sits

  StreamSink add_child(std::string_view name) const {
    w->close_to(depth);  // finish any open descendant of this element
    w->open(name);
    return StreamSink{w, w->depth()};
  }
  const StreamSink& set_attr(std::string_view key, std::string_view value) const {
    w->attr(key, value);
    return *this;
  }
  const StreamSink& set_text(std::string_view t) const {
    w->text(t);
    return *this;
  }
};

template <typename Sink>
void write_actions(const Sink& parent, const char* wrapper,
                   const std::vector<Action>& actions) {
  if (actions.empty()) return;
  const Sink w = parent.add_child(wrapper);
  for (const Action& a : actions) {
    const Sink ax = w.add_child("action");
    ax.set_attr("kind", action_kind_name(a.kind));
    if (!a.port.empty()) ax.set_attr("port", a.port);
    if (a.signal != nullptr) ax.set_attr("signal", a.signal->id());
    if (!a.var.empty()) ax.set_attr("var", a.var);
    if (!a.expr.empty()) ax.set_attr("expr", a.expr);
    for (const auto& arg : a.args) ax.add_child("arg").set_text(arg);
  }
}

}  // namespace

// ModelIO is a friend of every metaclass: it performs the raw two-pass
// reconstruction that the public factory API (which validates references at
// call time) cannot express for forward references. Reading and writing are
// both templated over the interchange representation: DOM Document/Element
// (reference path) and arena-backed Tree/Node + streaming Writer (hot path).
class ModelIO {
public:
  static xml::Document write(const Model& model) {
    xml::Document doc("tut:model");
    doc.root().set_attr("name", model.name());
    const DomSink root{&doc.root()};
    for (const auto& elem : model.elements()) write_element(root, *elem);
    write_applications(root, model);
    return doc;
  }

  static std::string write_string(const Model& model) {
    xml::Writer w(192 * model.size() + 256);
    w.declaration();
    w.open("tut:model");
    w.attr("name", model.name());
    const StreamSink root{&w, w.depth()};
    for (const auto& elem : model.elements()) write_element(root, *elem);
    write_applications(root, model);
    return w.take();
  }

  static std::unique_ptr<Model> read(const xml::Document& doc) {
    return read_root(doc.root());
  }

  static std::unique_ptr<Model> read(const xml::Tree& tree) {
    return read_root(tree.root());
  }

private:
  explicit ModelIO(Model& model) : model_(model) {}

  template <typename RootT>
  static std::unique_ptr<Model> read_root(const RootT& root) {
    if (root.name() != "tut:model") {
      throw std::runtime_error("not a tut:model document");
    }
    auto model = std::make_unique<Model>(std::string(attr_or_sv(root, "name", "model")));
    ModelIO io(*model);
    std::size_t count = 0;
    for (const auto& node : root.children()) {
      (void)node;
      ++count;
    }
    model->elements_.reserve(count);
    io.by_id_.reserve(count);
    for (const auto& node : root.children()) io.create(deref(node));
    for (const auto& node : root.children()) io.resolve(deref(node));
    return model;
  }

  // -- writing ---------------------------------------------------------------

  template <typename Sink>
  static void write_element(const Sink& root, const Element& e) {
    switch (e.kind()) {
      case ElementKind::Package: {
        header(root, "package", e);
        break;
      }
      case ElementKind::Signal: {
        const auto& s = static_cast<const Signal&>(e);
        const Sink x = header(root, "signal", e);
        x.set_attr("payloadBytes", std::to_string(s.payload_bytes()));
        for (const auto& p : s.parameters()) {
          x.add_child("param").set_attr("name", p.name).set_attr("type", p.type);
        }
        break;
      }
      case ElementKind::Class: {
        const auto& c = static_cast<const Class&>(e);
        const Sink x = header(root, "class", e);
        x.set_attr("active", c.is_active() ? "true" : "false");
        if (c.general() != nullptr) x.set_attr("general", c.general()->id());
        break;
      }
      case ElementKind::Property: {
        const auto& p = static_cast<const Property&>(e);
        const Sink x = header(root, "property", e);
        if (p.is_part()) {
          x.set_attr("partType", p.part_type()->id());
        } else {
          x.set_attr("attrType", p.attr_type());
        }
        break;
      }
      case ElementKind::Port: {
        const auto& p = static_cast<const Port&>(e);
        const Sink x = header(root, "port", e);
        for (const Signal* s : p.provided()) {
          x.add_child("provided").set_attr("ref", s->id());
        }
        for (const Signal* s : p.required()) {
          x.add_child("required").set_attr("ref", s->id());
        }
        break;
      }
      case ElementKind::Connector: {
        const auto& c = static_cast<const Connector&>(e);
        const Sink x = header(root, "connector", e);
        for (const ConnectorEnd& end : {c.end0(), c.end1()}) {
          const Sink ex = x.add_child("end");
          if (end.part != nullptr) ex.set_attr("part", end.part->id());
          if (end.port != nullptr) ex.set_attr("port", end.port->id());
        }
        break;
      }
      case ElementKind::Dependency: {
        const auto& d = static_cast<const Dependency&>(e);
        const Sink x = header(root, "dependency", e);
        x.set_attr("client", d.client()->id());
        x.set_attr("supplier", d.supplier()->id());
        break;
      }
      case ElementKind::StateMachine: {
        const auto& sm = static_cast<const StateMachine&>(e);
        const Sink x = header(root, "stateMachine", e);
        for (const auto& [name, init] : sm.variables()) {
          x.add_child("variable")
              .set_attr("name", name)
              .set_attr("initial", std::to_string(init));
        }
        break;
      }
      case ElementKind::State: {
        const auto& s = static_cast<const State&>(e);
        const Sink x = header(root, "state", e);
        if (s.is_initial()) x.set_attr("initial", "true");
        write_actions(x, "entry", s.entry_actions());
        break;
      }
      case ElementKind::Transition: {
        const auto& t = static_cast<const Transition&>(e);
        const Sink x = header(root, "transition", e);
        x.set_attr("source", t.source()->id());
        x.set_attr("target", t.target()->id());
        if (t.trigger_signal() != nullptr) {
          x.set_attr("signal", t.trigger_signal()->id());
        }
        if (!t.trigger_port().empty()) x.set_attr("port", t.trigger_port());
        if (!t.trigger_timer().empty()) x.set_attr("timer", t.trigger_timer());
        if (!t.guard().empty()) x.set_attr("guard", t.guard());
        write_actions(x, "effect", t.effects());
        break;
      }
      case ElementKind::Profile: {
        header(root, "profile", e);
        break;
      }
      case ElementKind::Stereotype: {
        const auto& s = static_cast<const Stereotype&>(e);
        const Sink x = header(root, "stereotype", e);
        x.set_attr("extends", to_string(s.extended_metaclass()));
        if (s.general() != nullptr) x.set_attr("general", s.general()->id());
        for (const TagDefinition& t : s.own_tags()) {
          const Sink tx = x.add_child("tag");
          tx.set_attr("name", t.name);
          tx.set_attr("type", to_string(t.type));
          if (t.required) tx.set_attr("required", "true");
          if (!t.description.empty()) tx.set_attr("description", t.description);
          for (const auto& en : t.enumerators) {
            tx.add_child("enum").set_attr("value", en);
          }
        }
        break;
      }
      case ElementKind::Model:
        break;
    }
  }

  template <typename Sink>
  static Sink header(const Sink& root, const char* tag, const Element& e) {
    const Sink x = root.add_child(tag);
    x.set_attr("id", e.id());
    x.set_attr("name", e.name());
    if (e.owner() != nullptr && e.owner()->kind() != ElementKind::Model) {
      x.set_attr("owner", e.owner()->id());
    }
    return x;
  }

  template <typename Sink>
  static void write_applications(const Sink& root, const Model& model) {
    const Sink section = root.add_child("appliedStereotypes");
    for (const auto& elem : model.elements()) {
      for (const auto& app : elem->applications()) {
        const Sink ax = section.add_child("apply");
        ax.set_attr("element", elem->id());
        ax.set_attr("stereotype", app.stereotype->id());
        for (const auto& [k, v] : app.tagged_values) {
          ax.add_child("tv").set_attr("name", k).set_attr("value", v);
        }
      }
    }
  }

  // -- reading: pass 1 (creation) ---------------------------------------------

  template <typename T, typename NodeT>
  T& create_raw(const NodeT& node) {
    auto elem = std::make_unique<T>();
    T& ref = *elem;
    ref.name_ = attr_or_sv(node, "name", "");
    if (const auto id = node.attr_view("id")) {
      ref.id_ = std::string(*id);
    } else {
      ref.id_ = "e" + std::to_string(model_.next_id_);
    }
    // Keep the auto-id counter ahead of any numeric id we ingest.
    if (ref.id_.size() > 1 && ref.id_[0] == 'e') {
      std::uint64_t n = 0;
      const char* first = ref.id_.data() + 1;
      const char* last = ref.id_.data() + ref.id_.size();
      const auto [p, ec] = std::from_chars(first, last, n);
      if (ec == std::errc() && p != first && n >= model_.next_id_) {
        model_.next_id_ = n + 1;
      }
    }
    if (const auto owner = node.attr_view("owner")) {
      ref.owner_ = &lookup(*owner);
    } else {
      ref.owner_ = &model_;
    }
    model_.elements_.push_back(std::move(elem));
    by_id_[ref.id_] = &ref;
    return ref;
  }

  Element& lookup(std::string_view id) const {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) {
      throw std::runtime_error("dangling reference to element id '" +
                               std::string(id) + "'");
    }
    return *it->second;
  }

  template <typename T>
  T& lookup_as(std::string_view id) const {
    return static_cast<T&>(lookup(id));
  }

  template <typename NodeT>
  void create(const NodeT& node) {
    const std::string_view tag = node.name();
    if (tag == "appliedStereotypes") return;
    if (tag == "package") {
      auto& pkg = create_raw<Package>(node);
      if (pkg.owner_->kind() == ElementKind::Package) {
        static_cast<Package*>(pkg.owner_)->members_.push_back(&pkg);
      }
    } else if (tag == "signal") {
      auto& sig = create_raw<Signal>(node);
      for_children_named(node, "param", [&](const auto& p) {
        sig.add_parameter(std::string(attr_or_sv(p, "name", "")),
                          std::string(attr_or_sv(p, "type", "")));
      });
      if (const auto pb = node.attr_view("payloadBytes")) {
        sig.set_payload_bytes(parse_u64(*pb));
      }
      if (sig.owner_->kind() == ElementKind::Package) {
        static_cast<Package*>(sig.owner_)->members_.push_back(&sig);
      }
    } else if (tag == "class") {
      auto& cls = create_raw<Class>(node);
      cls.is_active_ = attr_or_sv(node, "active", "false") == "true";
      if (cls.owner_->kind() == ElementKind::Package) {
        static_cast<Package*>(cls.owner_)->members_.push_back(&cls);
      }
    } else if (tag == "property") {
      auto& prop = create_raw<Property>(node);
      prop.attr_type_ = attr_or_sv(node, "attrType", "");
      auto* cls = prop.owner_class();
      if (cls == nullptr) {
        throw std::runtime_error("property '" + prop.name() +
                                 "' must be owned by a class");
      }
      if (node.has_attr("partType")) {
        cls->parts_.push_back(&prop);  // type resolved in pass 2
      } else {
        cls->attributes_.push_back(&prop);
      }
    } else if (tag == "port") {
      auto& port = create_raw<Port>(node);
      auto* cls = port.owner_class();
      if (cls == nullptr) {
        throw std::runtime_error("port '" + port.name() +
                                 "' must be owned by a class");
      }
      cls->ports_.push_back(&port);
    } else if (tag == "connector") {
      auto& conn = create_raw<Connector>(node);
      if (conn.owner_->kind() != ElementKind::Class) {
        throw std::runtime_error("connector '" + conn.name() +
                                 "' must be owned by a class");
      }
      static_cast<Class*>(conn.owner_)->connectors_.push_back(&conn);
    } else if (tag == "dependency") {
      create_raw<Dependency>(node);
    } else if (tag == "stateMachine") {
      auto& sm = create_raw<StateMachine>(node);
      for_children_named(node, "variable", [&](const auto& v) {
        sm.declare_variable(std::string(attr_or_sv(v, "name", "")),
                            parse_long(attr_or_sv(v, "initial", "0")));
      });
      if (sm.owner_->kind() == ElementKind::Class) {
        auto* cls = static_cast<Class*>(sm.owner_);
        sm.context_ = cls;
        cls->behavior_ = &sm;
      }
    } else if (tag == "state") {
      auto& st = create_raw<State>(node);
      st.initial_ = attr_or_sv(node, "initial", "false") == "true";
      if (st.owner_->kind() != ElementKind::StateMachine) {
        throw std::runtime_error("state '" + st.name() +
                                 "' must be owned by a state machine");
      }
      static_cast<StateMachine*>(st.owner_)->states_.push_back(&st);
    } else if (tag == "transition") {
      auto& tr = create_raw<Transition>(node);
      tr.trigger_port_ = attr_or_sv(node, "port", "");
      tr.trigger_timer_ = attr_or_sv(node, "timer", "");
      tr.guard_ = attr_or_sv(node, "guard", "");
      if (tr.owner_->kind() != ElementKind::StateMachine) {
        throw std::runtime_error("transition '" + tr.name() +
                                 "' must be owned by a state machine");
      }
      static_cast<StateMachine*>(tr.owner_)->transitions_.push_back(&tr);
    } else if (tag == "profile") {
      create_raw<Profile>(node);
    } else if (tag == "stereotype") {
      auto& st = create_raw<Stereotype>(node);
      st.extends_ = metaclass_from(attr_or_sv(node, "extends", "Class"));
      for_children_named(node, "tag", [&](const auto& t) {
        TagDefinition def;
        def.name = attr_or_sv(t, "name", "");
        def.type = tag_type_from(attr_or_sv(t, "type", "string"));
        def.required = attr_or_sv(t, "required", "false") == "true";
        def.description = attr_or_sv(t, "description", "");
        for_children_named(t, "enum", [&](const auto& en) {
          def.enumerators.emplace_back(attr_or_sv(en, "value", ""));
        });
        st.define_tag(std::move(def));
      });
      if (st.owner_->kind() != ElementKind::Profile) {
        throw std::runtime_error("stereotype '" + st.name() +
                                 "' must be owned by a profile");
      }
      static_cast<Profile*>(st.owner_)->stereotypes_.push_back(&st);
    } else {
      throw std::runtime_error("unknown model element <" + std::string(tag) + ">");
    }
  }

  // -- reading: pass 2 (reference resolution) ----------------------------------

  template <typename NodeT>
  std::vector<Action> read_actions(const NodeT& wrapper) const {
    std::vector<Action> out;
    for_children_named(wrapper, "action", [&](const auto& ax) {
      Action a;
      a.kind = action_kind_from(attr_or_sv(ax, "kind", ""));
      a.port = attr_or_sv(ax, "port", "");
      a.var = attr_or_sv(ax, "var", "");
      a.expr = attr_or_sv(ax, "expr", "");
      if (const auto sig = ax.attr_view("signal")) {
        a.signal = &lookup_as<Signal>(*sig);
      }
      for_children_named(ax, "arg", [&](const auto& arg) {
        a.args.emplace_back(arg.text());
      });
      out.push_back(std::move(a));
    });
    return out;
  }

  template <typename NodeT>
  void resolve(const NodeT& node) {
    const std::string_view tag = node.name();
    if (tag == "class") {
      if (const auto gen = node.attr_view("general")) {
        lookup_as<Class>(attr_or_sv(node, "id", "")).general_ =
            &lookup_as<Class>(*gen);
      }
    } else if (tag == "property") {
      if (const auto pt = node.attr_view("partType")) {
        lookup_as<Property>(attr_or_sv(node, "id", "")).part_type_ =
            &lookup_as<Class>(*pt);
      }
    } else if (tag == "port") {
      auto& port = lookup_as<Port>(attr_or_sv(node, "id", ""));
      for_children_named(node, "provided", [&](const auto& p) {
        port.provide(lookup_as<Signal>(attr_or_sv(p, "ref", "")));
      });
      for_children_named(node, "required", [&](const auto& r) {
        port.require(lookup_as<Signal>(attr_or_sv(r, "ref", "")));
      });
    } else if (tag == "connector") {
      auto& conn = lookup_as<Connector>(attr_or_sv(node, "id", ""));
      std::size_t i = 0;
      for_children_named(node, "end", [&](const auto& ex) {
        if (i >= 2) return;
        ConnectorEnd end;
        if (const auto part = ex.attr_view("part")) {
          end.part = &lookup_as<Property>(*part);
        }
        if (const auto port = ex.attr_view("port")) {
          end.port = &lookup_as<Port>(*port);
        }
        conn.ends_[i++] = end;
      });
    } else if (tag == "dependency") {
      auto& dep = lookup_as<Dependency>(attr_or_sv(node, "id", ""));
      dep.client_ = &lookup(attr_or_sv(node, "client", ""));
      dep.supplier_ = &lookup(attr_or_sv(node, "supplier", ""));
    } else if (tag == "state") {
      auto& st = lookup_as<State>(attr_or_sv(node, "id", ""));
      if (const auto* entry = node.child("entry")) {
        st.entry_ = read_actions(*entry);
      }
    } else if (tag == "transition") {
      auto& tr = lookup_as<Transition>(attr_or_sv(node, "id", ""));
      tr.source_ = &lookup_as<State>(attr_or_sv(node, "source", ""));
      tr.target_ = &lookup_as<State>(attr_or_sv(node, "target", ""));
      if (const auto sig = node.attr_view("signal")) {
        tr.trigger_signal_ = &lookup_as<Signal>(*sig);
      }
      if (const auto* effect = node.child("effect")) {
        tr.effects_ = read_actions(*effect);
      }
    } else if (tag == "stereotype") {
      if (const auto gen = node.attr_view("general")) {
        lookup_as<Stereotype>(attr_or_sv(node, "id", "")).general_ =
            &lookup_as<Stereotype>(*gen);
      }
    } else if (tag == "appliedStereotypes") {
      for_children_named(node, "apply", [&](const auto& ax) {
        Element& target = lookup(attr_or_sv(ax, "element", ""));
        auto& st = lookup_as<Stereotype>(attr_or_sv(ax, "stereotype", ""));
        auto& app = target.apply(st);
        for_children_named(ax, "tv", [&](const auto& tv) {
          app.tagged_values[std::string(attr_or_sv(tv, "name", ""))] =
              attr_or_sv(tv, "value", "");
        });
      });
    }
  }

  Model& model_;
  std::unordered_map<std::string, Element*, SvHash, std::equal_to<>> by_id_;
};

xml::Document to_xml(const Model& model) { return ModelIO::write(model); }

std::string to_xml_string(const Model& model) {
  return ModelIO::write_string(model);
}

std::unique_ptr<Model> from_xml(const xml::Document& doc) {
  return ModelIO::read(doc);
}

std::unique_ptr<Model> from_xml_text(std::string_view text,
                                     std::size_t arena_limit) {
  // The tree's views alias `text`; both stay alive for the whole read, and
  // the Model copies everything it keeps.
  const xml::Tree tree = xml::Tree::parse(text, arena_limit);
  return ModelIO::read(tree);
}

std::unique_ptr<Model> from_xml_string(const std::string& text) {
  return from_xml_text(text);
}

}  // namespace tut::uml
