// Profile machinery: Profile, Stereotype and tag definitions.
//
// This implements UML 2.0 second-class extensibility exactly as the paper
// uses it: a stereotype extends one metaclass, declares typed tag
// definitions (tagged values), and may specialize another stereotype
// (inheriting its extended metaclass and tags — used by the HIBI
// specializations <<HIBIWrapper>> and <<HIBISegment>>).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "uml/element.hpp"

namespace tut::uml {

/// The value space of a tagged value.
enum class TagType : std::uint8_t {
  String,
  Integer,
  Boolean,  ///< "true" / "false"
  Real,
  Enum,     ///< one of `enumerators`
};

const char* to_string(TagType type) noexcept;

/// Declaration of one tagged value on a stereotype.
struct TagDefinition {
  std::string name;
  TagType type = TagType::String;
  std::string description;
  std::vector<std::string> enumerators;  ///< for TagType::Enum
  bool required = false;                 ///< validator flags missing values

  /// Checks a concrete value against this definition's type.
  bool accepts(const std::string& value) const noexcept;
};

/// A stereotype: extends one UML metaclass and declares tag definitions.
class Stereotype : public Element {
public:
  Stereotype() : Element(ElementKind::Stereotype) {}

  /// The metaclass this stereotype extends (e.g. Class, Dependency).
  ElementKind extended_metaclass() const noexcept { return extends_; }

  /// The stereotype this one specializes, or nullptr.
  const Stereotype* general() const noexcept { return general_; }

  /// True if this stereotype is `other` or (transitively) specializes it.
  bool is_kind_of(const Stereotype& other) const noexcept;

  const std::vector<TagDefinition>& own_tags() const noexcept { return tags_; }
  /// Own tags plus all inherited tags (general-first order).
  std::vector<const TagDefinition*> all_tags() const;
  /// Lookup by name across own and inherited tags; nullptr if undeclared.
  const TagDefinition* tag(const std::string& name) const noexcept;

  Stereotype& define_tag(TagDefinition def) {
    tags_.push_back(std::move(def));
    return *this;
  }
  Stereotype& define_tag(std::string name, TagType type, std::string description,
                         std::vector<std::string> enumerators = {},
                         bool required = false) {
    return define_tag(TagDefinition{std::move(name), type, std::move(description),
                                    std::move(enumerators), required});
  }

private:
  friend class Model;
  friend class ModelIO;
  ElementKind extends_ = ElementKind::Class;
  const Stereotype* general_ = nullptr;
  std::vector<TagDefinition> tags_;
};

/// A profile groups stereotypes for one domain (here: TUT-Profile).
class Profile : public Element {
public:
  Profile() : Element(ElementKind::Profile) {}

  const std::vector<Stereotype*>& stereotypes() const noexcept {
    return stereotypes_;
  }
  Stereotype* stereotype(const std::string& name) const noexcept;

private:
  friend class Model;
  friend class ModelIO;
  std::vector<Stereotype*> stereotypes_;
};

}  // namespace tut::uml
