// Behavioural metaclasses: StateMachine, State, Transition.
//
// The paper models behaviour as asynchronous communicating Extended Finite
// State Machines (statecharts plus the UML 2.0 textual action notation).
// TUT-Profile deliberately does NOT extend behavioural modelling, so this is
// plain UML 2.0: states, signal/timer-triggered transitions, guards and
// effect actions. Guards and expressions use a small integer expression
// language evaluated by the tut::efsm runtime (and translated to C by
// tut::codegen).
#pragma once

#include <string>
#include <vector>

#include "uml/element.hpp"

namespace tut::uml {

class Signal;
class Class;
class State;
class Transition;

/// One primitive action in a transition effect. The action set matches what
/// generated embedded C code needs: sending signals, assigning extended-state
/// variables, consuming computation cycles, and arming/cancelling timers.
struct Action {
  enum class Kind {
    Send,        ///< send `signal(args...)` through `port`
    Assign,      ///< var = expr
    Compute,     ///< consume `expr` computation cycles on the executing PE
    SetTimer,    ///< arm timer `var` to fire after `expr` time units
    ResetTimer,  ///< cancel timer `var`
  };

  Kind kind;
  std::string port;               ///< Send: port name on the owning class
  const Signal* signal = nullptr; ///< Send: signal type
  std::vector<std::string> args;  ///< Send: argument expressions
  std::string var;                ///< Assign/SetTimer/ResetTimer: name
  std::string expr;               ///< Assign/Compute/SetTimer: expression

  static Action send(std::string port, const Signal& s,
                     std::vector<std::string> args = {});
  static Action assign(std::string var, std::string expr);
  static Action compute(std::string cycles_expr);
  static Action set_timer(std::string name, std::string delay_expr);
  static Action reset_timer(std::string name);
};

/// A state of an EFSM. Entry/exit action lists are supported; hierarchy is
/// not (the paper's TUTMAC statecharts are flat communicating EFSMs).
class State : public Element {
public:
  State() : Element(ElementKind::State) {}

  bool is_initial() const noexcept { return initial_; }

  const std::vector<Action>& entry_actions() const noexcept { return entry_; }
  State& on_entry(Action a) {
    entry_.push_back(std::move(a));
    return *this;
  }

private:
  friend class Model;
  friend class ModelIO;
  friend class StateMachine;
  bool initial_ = false;
  std::vector<Action> entry_;
};

/// A transition. Triggered by a signal arriving on a port, by a named timer
/// firing, or — when both trigger fields are empty — taken spontaneously as
/// a completion transition. An empty guard is "true".
class Transition : public Element {
public:
  Transition() : Element(ElementKind::Transition) {}

  State* source() const noexcept { return source_; }
  State* target() const noexcept { return target_; }

  /// Trigger: a signal received through `trigger_port` (empty port matches
  /// any port providing the signal).
  const Signal* trigger_signal() const noexcept { return trigger_signal_; }
  const std::string& trigger_port() const noexcept { return trigger_port_; }
  /// Trigger: expiry of the named timer.
  const std::string& trigger_timer() const noexcept { return trigger_timer_; }
  bool is_completion() const noexcept {
    return trigger_signal_ == nullptr && trigger_timer_.empty();
  }

  const std::string& guard() const noexcept { return guard_; }
  Transition& set_guard(std::string g) {
    guard_ = std::move(g);
    return *this;
  }

  const std::vector<Action>& effects() const noexcept { return effects_; }
  Transition& add_effect(Action a) {
    effects_.push_back(std::move(a));
    return *this;
  }

private:
  friend class Model;
  friend class ModelIO;
  State* source_ = nullptr;
  State* target_ = nullptr;
  const Signal* trigger_signal_ = nullptr;
  std::string trigger_port_;
  std::string trigger_timer_;
  std::string guard_;
  std::vector<Action> effects_;
};

/// The classifier behaviour of an active class: a flat EFSM with extended
/// state variables (integers, with declared initial values).
class StateMachine : public Element {
public:
  StateMachine() : Element(ElementKind::StateMachine) {}

  Class* context() const noexcept { return context_; }

  const std::vector<State*>& states() const noexcept { return states_; }
  const std::vector<Transition*>& transitions() const noexcept {
    return transitions_;
  }
  State* initial_state() const noexcept;
  State* state(const std::string& name) const noexcept;

  /// Extended state variables and their initial values.
  const std::vector<std::pair<std::string, long>>& variables() const noexcept {
    return variables_;
  }
  StateMachine& declare_variable(std::string name, long initial = 0) {
    variables_.emplace_back(std::move(name), initial);
    return *this;
  }

  /// Transitions leaving `s`, in declaration order (declaration order is the
  /// deterministic priority order used by the runtime and code generator).
  std::vector<Transition*> outgoing(const State& s) const;

private:
  friend class Model;
  friend class ModelIO;
  Class* context_ = nullptr;
  std::vector<State*> states_;
  std::vector<Transition*> transitions_;
  std::vector<std::pair<std::string, long>> variables_;
};

}  // namespace tut::uml
