// Model validation framework: diagnostics plus the generic well-formedness
// rules of the profile mechanism itself (metaclass compatibility, declared
// tags, tag value types, required tags). Domain rules — the "strict rules
// how to use them" that TUT-Profile defines for its stereotypes — are
// registered by tut::profile on top of this framework.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "uml/model.hpp"

namespace tut::uml {

enum class Severity : std::uint8_t { Info, Warning, Error };

const char* to_string(Severity s) noexcept;

/// One validation finding.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;     ///< stable rule identifier, e.g. "uml.tag.undeclared"
  std::string element;  ///< qualified name of the offending element
  std::string message;

  std::string to_string() const;
};

/// Result of a validation run.
class ValidationResult {
public:
  void add(Severity severity, std::string rule, const Element& element,
           std::string message);

  const std::vector<Diagnostic>& diagnostics() const noexcept { return diags_; }
  std::size_t error_count() const noexcept;
  std::size_t warning_count() const noexcept;
  bool ok() const noexcept { return error_count() == 0; }

  /// All diagnostics, one per line.
  std::string to_string() const;

private:
  std::vector<Diagnostic> diags_;
};

/// A named validation rule over a whole model.
struct Rule {
  std::string id;
  std::string description;
  std::function<void(const Model&, ValidationResult&)> check;
};

/// A validator is an ordered set of rules. `Validator::uml_core()` returns
/// the generic profile-mechanism rules; tut::profile extends a validator
/// with the TUT-Profile design rules.
class Validator {
public:
  void add_rule(Rule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<Rule>& rules() const noexcept { return rules_; }

  ValidationResult run(const Model& model) const;

  /// Generic rules:
  ///  - uml.stereotype.metaclass : stereotype applied to compatible metaclass
  ///  - uml.tag.undeclared       : tagged value name declared by stereotype
  ///  - uml.tag.type             : tagged value parses as its declared type
  ///  - uml.tag.required         : required tags are present
  ///  - uml.connector.ends      : connector ends resolve within the context
  ///  - uml.port.signals        : connected ports agree on carried signals
  ///  - uml.sm.wellformed       : exactly one initial state, transitions
  ///                              reference owned states, send ports exist
  static Validator uml_core();

private:
  std::vector<Rule> rules_;
};

}  // namespace tut::uml
