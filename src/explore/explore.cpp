#include "explore/explore.hpp"

#include <algorithm>
#include <stdexcept>

#include "profile/tut_profile.hpp"

namespace tut::explore {

std::uint64_t ProcessStats::between(const std::string& a,
                                    const std::string& b) const {
  std::uint64_t n = 0;
  auto it = signals.find({a, b});
  if (it != signals.end()) n += it->second;
  it = signals.find({b, a});
  if (it != signals.end()) n += it->second;
  return n;
}

ProcessStats ProcessStats::from_report(const profiler::ProfilingReport& report) {
  ProcessStats stats;
  std::set<std::string> names;
  for (const auto& [process, cycles] : report.process_cycles) {
    if (process == sim::kEnvironment) continue;
    names.insert(process);
    stats.cycles[process] = cycles;
  }
  for (const auto& [pair, count] : report.process_signals) {
    const auto& [from, to] = pair;
    if (from == sim::kEnvironment || to == sim::kEnvironment) continue;
    names.insert(from);
    names.insert(to);
    stats.signals[pair] += count;
  }
  stats.processes.assign(names.begin(), names.end());
  for (const std::string& p : stats.processes) {
    stats.cycles.emplace(p, 0);  // processes seen only in signals
  }
  return stats;
}

std::uint64_t inter_group_signals(const Grouping& grouping,
                                  const ProcessStats& stats) {
  std::map<std::string, std::size_t> group_of;
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    for (const std::string& p : grouping[g]) group_of[p] = g;
  }
  std::uint64_t crossing = 0;
  for (const auto& [pair, count] : stats.signals) {
    const auto a = group_of.find(pair.first);
    const auto b = group_of.find(pair.second);
    if (a == group_of.end() || b == group_of.end()) continue;
    if (a->second != b->second) crossing += count;
  }
  return crossing;
}

Grouping propose_grouping(const ProcessStats& stats,
                          const std::map<std::string, std::string>& process_type,
                          std::size_t target_groups,
                          const std::set<std::string>& fixed) {
  // One group per process to start.
  Grouping groups;
  for (const std::string& p : stats.processes) groups.push_back({p});
  if (target_groups == 0) target_groups = 1;

  auto type_of = [&](const std::vector<std::string>& group) -> std::string {
    auto it = process_type.find(group.front());
    return it != process_type.end() ? it->second : "general";
  };
  auto is_fixed = [&](const std::vector<std::string>& group) {
    return group.size() == 1 && fixed.count(group.front()) != 0;
  };
  auto comm = [&](const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
    std::uint64_t n = 0;
    for (const auto& pa : a) {
      for (const auto& pb : b) n += stats.between(pa, pb);
    }
    return n;
  };

  while (groups.size() > target_groups) {
    // Find the mergeable pair with maximal mutual communication (ties: the
    // earliest pair, keeping the result deterministic).
    std::size_t best_a = 0, best_b = 0;
    std::uint64_t best_comm = 0;
    bool found = false;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (is_fixed(groups[i])) continue;
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        if (is_fixed(groups[j])) continue;
        if (type_of(groups[i]) != type_of(groups[j])) continue;
        const std::uint64_t c = comm(groups[i], groups[j]);
        if (!found || c > best_comm) {
          found = true;
          best_comm = c;
          best_a = i;
          best_b = j;
        }
      }
    }
    if (!found) break;  // nothing mergeable (types/fixed constraints)
    auto& a = groups[best_a];
    auto& b = groups[best_b];
    a.insert(a.end(), b.begin(), b.end());
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(best_b));
  }
  return groups;
}

namespace {

int default_hops(const std::string& a, const std::string& b) {
  return a == b ? 0 : 1;
}

}  // namespace

CostEstimate estimate_cost(const Grouping& grouping,
                           const std::vector<std::string>& target,
                           const ProcessStats& stats,
                           const std::vector<PeDesc>& pes,
                           const CostModel& model) {
  if (target.size() != grouping.size()) {
    throw std::invalid_argument("target size must match grouping size");
  }
  std::map<std::string, long> freq;
  for (const PeDesc& pe : pes) freq[pe.name] = pe.freq_mhz;

  CostEstimate est;
  for (const PeDesc& pe : pes) est.pe_load[pe.name] = 0.0;

  std::map<std::string, std::string> pe_of_process;
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    auto it = freq.find(target[g]);
    if (it == freq.end()) {
      throw std::invalid_argument("unknown PE '" + target[g] + "'");
    }
    long group_cycles = 0;
    for (const std::string& p : grouping[g]) {
      auto c = stats.cycles.find(p);
      if (c != stats.cycles.end()) group_cycles += c->second;
      pe_of_process[p] = target[g];
    }
    est.pe_load[target[g]] +=
        static_cast<double>(group_cycles) * 1000.0 /
        static_cast<double>(it->second > 0 ? it->second : 50);
  }

  const auto hops = model.hops ? model.hops : default_hops;
  for (const auto& [pair, count] : stats.signals) {
    const auto a = pe_of_process.find(pair.first);
    const auto b = pe_of_process.find(pair.second);
    if (a == pe_of_process.end() || b == pe_of_process.end()) continue;
    if (a->second == b->second) continue;
    est.comm_cost += static_cast<double>(count) * model.hop_cost *
                     hops(a->second, b->second);
  }

  double max_load = 0.0;
  for (const auto& [pe, load] : est.pe_load) max_load = std::max(max_load, load);
  est.makespan = max_load + est.comm_cost;
  return est;
}

MappingProposal propose_mapping(const Grouping& grouping,
                                const std::vector<std::string>& group_type,
                                const ProcessStats& stats,
                                const std::vector<PeDesc>& pes,
                                const CostModel& model) {
  if (group_type.size() != grouping.size()) {
    throw std::invalid_argument("group_type size must match grouping size");
  }
  auto compatible = [&](std::size_t g, const PeDesc& pe) {
    const bool hw_group = group_type[g] == profile::tags::ProcessHardware;
    const bool hw_pe = pe.type == profile::tags::ComponentHwAccelerator;
    return hw_group == hw_pe;
  };

  // Greedy LPT: heaviest group first onto the compatible PE with the least
  // load (in estimated time).
  std::vector<std::size_t> order(grouping.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto group_cycles = [&](std::size_t g) {
    long n = 0;
    for (const std::string& p : grouping[g]) {
      auto it = stats.cycles.find(p);
      if (it != stats.cycles.end()) n += it->second;
    }
    return n;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const long ca = group_cycles(a), cb = group_cycles(b);
    return ca != cb ? ca > cb : a < b;
  });

  std::map<std::string, double> load;
  for (const PeDesc& pe : pes) load[pe.name] = 0.0;
  std::vector<std::string> target(grouping.size());
  for (std::size_t g : order) {
    const PeDesc* best = nullptr;
    for (const PeDesc& pe : pes) {
      if (!compatible(g, pe)) continue;
      if (best == nullptr || load[pe.name] < load[best->name]) best = &pe;
    }
    if (best == nullptr) {
      throw std::runtime_error("no compatible PE for group of type '" +
                               group_type[g] + "'");
    }
    target[g] = best->name;
    load[best->name] += static_cast<double>(group_cycles(g)) * 1000.0 /
                        static_cast<double>(best->freq_mhz > 0 ? best->freq_mhz
                                                               : 50);
  }

  // Local search from a starting assignment: move each group to every
  // compatible PE while the estimated makespan improves.
  auto local_search = [&](std::vector<std::string> start) {
    CostEstimate best = estimate_cost(grouping, start, stats, pes, model);
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t g = 0; g < grouping.size(); ++g) {
        for (const PeDesc& pe : pes) {
          if (!compatible(g, pe) || pe.name == start[g]) continue;
          std::vector<std::string> candidate = start;
          candidate[g] = pe.name;
          const CostEstimate cost =
              estimate_cost(grouping, candidate, stats, pes, model);
          if (cost.makespan + 1e-9 < best.makespan) {
            start = std::move(candidate);
            best = cost;
            improved = true;
          }
        }
      }
    }
    return MappingProposal{std::move(start), std::move(best)};
  };

  MappingProposal best = local_search(target);

  // Second start: co-locate every group on its fastest compatible PE. This
  // escapes the comm-dominated local minimum single moves cannot leave.
  std::vector<std::string> colocated(grouping.size());
  bool colocated_ok = true;
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    const PeDesc* fastest = nullptr;
    for (const PeDesc& pe : pes) {
      if (!compatible(g, pe)) continue;
      if (fastest == nullptr || pe.freq_mhz > fastest->freq_mhz) fastest = &pe;
    }
    if (fastest == nullptr) {
      colocated_ok = false;
      break;
    }
    colocated[g] = fastest->name;
  }
  if (colocated_ok) {
    MappingProposal alt = local_search(std::move(colocated));
    if (alt.cost.makespan < best.cost.makespan) best = std::move(alt);
  }
  return best;
}

}  // namespace tut::explore
