#include "explore/explore.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "mapping/mapping.hpp"
#include "profile/tut_profile.hpp"

namespace tut::explore {

std::uint64_t ProcessStats::between(const std::string& a,
                                    const std::string& b) const {
  std::uint64_t n = 0;
  auto it = signals.find({a, b});
  if (it != signals.end()) n += it->second;
  it = signals.find({b, a});
  if (it != signals.end()) n += it->second;
  return n;
}

ProcessStats ProcessStats::from_report(const profiler::ProfilingReport& report) {
  ProcessStats stats;
  std::set<std::string> names;
  for (const auto& [process, cycles] : report.process_cycles) {
    if (process == sim::kEnvironment) continue;
    names.insert(process);
    stats.cycles[process] = cycles;
  }
  for (const auto& [pair, count] : report.process_signals) {
    const auto& [from, to] = pair;
    if (from == sim::kEnvironment || to == sim::kEnvironment) continue;
    names.insert(from);
    names.insert(to);
    stats.signals[pair] += count;
  }
  stats.processes.assign(names.begin(), names.end());
  for (const std::string& p : stats.processes) {
    stats.cycles.emplace(p, 0);  // processes seen only in signals
  }
  return stats;
}

std::uint64_t inter_group_signals(const Grouping& grouping,
                                  const ProcessStats& stats) {
  std::map<std::string, std::size_t> group_of;
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    for (const std::string& p : grouping[g]) group_of[p] = g;
  }
  std::uint64_t crossing = 0;
  for (const auto& [pair, count] : stats.signals) {
    const auto a = group_of.find(pair.first);
    const auto b = group_of.find(pair.second);
    if (a == group_of.end() || b == group_of.end()) continue;
    if (a->second != b->second) crossing += count;
  }
  return crossing;
}

CrossingCounter::CrossingCounter(const Grouping& grouping,
                                 const ProcessStats& stats) {
  std::unordered_map<std::string_view, std::size_t> group_of;
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    for (const std::string& p : grouping[g]) group_of[p] = g;
  }
  comm_.assign(grouping.size(),
               std::vector<std::uint64_t>(grouping.size(), 0));
  for (const auto& [pair, count] : stats.signals) {
    const auto a = group_of.find(pair.first);
    const auto b = group_of.find(pair.second);
    if (a == group_of.end() || b == group_of.end()) continue;
    if (a->second == b->second) continue;
    comm_[a->second][b->second] += count;
    comm_[b->second][a->second] += count;
    crossing_ += count;
  }
}

void CrossingCounter::merge(std::size_t a, std::size_t b) {
  if (a == b || a >= comm_.size() || b >= comm_.size()) {
    throw std::invalid_argument("merge requires two distinct group indices");
  }
  // Signals between a and b become internal; everything else that touched b
  // now touches a instead and still crosses.
  crossing_ -= comm_[a][b];
  for (std::size_t k = 0; k < comm_.size(); ++k) {
    if (k == a || k == b) continue;
    comm_[a][k] += comm_[b][k];
    comm_[k][a] = comm_[a][k];
  }
  comm_[a][b] = 0;
  comm_[b][a] = 0;
  comm_.erase(comm_.begin() + static_cast<std::ptrdiff_t>(b));
  for (auto& row : comm_) {
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(b));
  }
}

namespace {

/// A mergeable pair of groups, listed in (i, j) scan order.
struct MergeCand {
  std::uint64_t comm = 0;
  std::uint32_t i = 0;
  std::uint32_t j = 0;
};

/// Shared agglomerative loop: singleton groups, then repeated merges of a
/// candidate chosen by `pick` (index into the candidate list) until
/// `target_groups` remain or nothing is mergeable. Group-pair communication
/// is maintained incrementally by CrossingCounter instead of recounted from
/// the raw signal table on every comparison.
template <typename Pick>
Grouping agglomerate(const ProcessStats& stats,
                     const std::map<std::string, std::string>& process_type,
                     std::size_t target_groups,
                     const std::set<std::string>& fixed, Pick&& pick) {
  // One group per process to start.
  Grouping groups;
  groups.reserve(stats.processes.size());
  for (const std::string& p : stats.processes) groups.push_back({p});
  if (target_groups == 0) target_groups = 1;

  // Merges keep the lower group's front process, so each group's type is the
  // type of its original seed singleton; fixed processes never merge at all.
  // Both attributes can therefore be tracked positionally.
  std::vector<std::string> types;
  std::vector<char> pinned;
  types.reserve(groups.size());
  pinned.reserve(groups.size());
  for (const std::string& p : stats.processes) {
    auto it = process_type.find(p);
    types.push_back(it != process_type.end() ? it->second : "general");
    pinned.push_back(fixed.count(p) != 0 ? 1 : 0);
  }

  CrossingCounter comm(groups, stats);
  std::vector<MergeCand> cands;
  while (groups.size() > target_groups) {
    cands.clear();
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (pinned[i]) continue;
      for (std::size_t j = i + 1; j < groups.size(); ++j) {
        if (pinned[j]) continue;
        if (types[i] != types[j]) continue;
        cands.push_back({comm.between(i, j), static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j)});
      }
    }
    if (cands.empty()) break;  // nothing mergeable (types/fixed constraints)
    const MergeCand c = cands[pick(cands)];
    auto& a = groups[c.i];
    auto& b = groups[c.j];
    a.insert(a.end(), b.begin(), b.end());
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(c.j));
    types.erase(types.begin() + static_cast<std::ptrdiff_t>(c.j));
    pinned.erase(pinned.begin() + static_cast<std::ptrdiff_t>(c.j));
    comm.merge(c.i, c.j);
  }
  return groups;
}

}  // namespace

Grouping propose_grouping(const ProcessStats& stats,
                          const std::map<std::string, std::string>& process_type,
                          std::size_t target_groups,
                          const std::set<std::string>& fixed) {
  // Greedy: the pair with maximal mutual communication, ties broken by the
  // earliest pair in scan order, keeping the result deterministic.
  return agglomerate(stats, process_type, target_groups, fixed,
                     [](const std::vector<MergeCand>& cands) {
                       std::size_t best = 0;
                       for (std::size_t k = 1; k < cands.size(); ++k) {
                         if (cands[k].comm > cands[best].comm) best = k;
                       }
                       return best;
                     });
}

Grouping propose_grouping_randomized(
    const ProcessStats& stats,
    const std::map<std::string, std::string>& process_type,
    std::size_t target_groups, std::uint64_t seed, std::size_t breadth,
    const std::set<std::string>& fixed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint32_t> idx;
  return agglomerate(
      stats, process_type, target_groups, fixed,
      [&](const std::vector<MergeCand>& cands) {
        const std::size_t k =
            std::min(breadth == 0 ? std::size_t{1} : breadth, cands.size());
        idx.resize(cands.size());
        for (std::uint32_t n = 0; n < idx.size(); ++n) idx[n] = n;
        // Stable sort keeps (i, j) scan order among equal volumes, so the
        // top-k window is deterministic and the k = 1 case degenerates to
        // the greedy pick.
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::uint32_t x, std::uint32_t y) {
                           return cands[x].comm > cands[y].comm;
                         });
        return static_cast<std::size_t>(idx[rng() % k]);
      });
}

namespace {

int default_hops(const std::string& a, const std::string& b) {
  return a == b ? 0 : 1;
}

}  // namespace

std::size_t CostEvaluator::VecHash::operator()(
    const std::vector<std::uint32_t>& v) const noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (std::uint32_t x : v) {
    h ^= x;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

CostEvaluator::CostEvaluator(const Grouping& grouping,
                             const ProcessStats& stats,
                             const std::vector<PeDesc>& pes,
                             const CostModel& model) {
  // Per-group cycle totals and the process -> group table.
  std::unordered_map<std::string_view, std::uint32_t> group_of;
  group_cycles_.assign(grouping.size(), 0);
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    for (const std::string& p : grouping[g]) {
      auto c = stats.cycles.find(p);
      if (c != stats.cycles.end()) group_cycles_[g] += c->second;
      group_of[p] = static_cast<std::uint32_t>(g);
    }
  }

  // Aggregate the signal table into directed group-pair edges once; signals
  // inside one group can never cross PEs. The std::map intermediate keeps
  // the edge order deterministic across platforms.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> agg;
  for (const auto& [pair, count] : stats.signals) {
    const auto a = group_of.find(pair.first);
    const auto b = group_of.find(pair.second);
    if (a == group_of.end() || b == group_of.end()) continue;
    if (a->second == b->second) continue;
    agg[{a->second, b->second}] += count;
  }
  edges_.reserve(agg.size());
  for (const auto& [key, count] : agg) {
    edges_.push_back({key.first, key.second, count});
  }

  // PE tables and the pairwise hop-cost matrix.
  pe_names_.reserve(pes.size());
  pe_freq_.reserve(pes.size());
  for (std::uint32_t p = 0; p < pes.size(); ++p) {
    pe_names_.push_back(pes[p].name);
    pe_freq_.push_back(
        static_cast<double>(pes[p].freq_mhz > 0 ? pes[p].freq_mhz : 50));
    pe_by_name_[pes[p].name] = p;
  }
  const auto hops = model.hops ? model.hops : default_hops;
  hop_ticks_.assign(pes.size(), std::vector<double>(pes.size(), 0.0));
  for (std::size_t i = 0; i < pes.size(); ++i) {
    for (std::size_t j = 0; j < pes.size(); ++j) {
      if (i == j) continue;
      hop_ticks_[i][j] = model.hop_cost * hops(pe_names_[i], pe_names_[j]);
    }
  }

  // Resolve fault scenarios to PE-index masks once.
  scenarios_.reserve(model.fault_scenarios.size());
  for (const CostModel::FaultScenario& fs : model.fault_scenarios) {
    Scenario sc;
    sc.weight = fs.weight;
    sc.failed.assign(pes.size(), 0);
    for (const std::string& name : fs.failed_pes) {
      auto it = pe_by_name_.find(name);
      if (it == pe_by_name_.end()) {
        throw std::invalid_argument("fault scenario names unknown PE '" +
                                    name + "'");
      }
      sc.failed[it->second] = 1;
    }
    if (std::find(sc.failed.begin(), sc.failed.end(), 0) ==
        sc.failed.end()) {
      throw std::invalid_argument("fault scenario leaves no surviving PE");
    }
    scenarios_.push_back(std::move(sc));
  }
}

std::vector<std::uint32_t> CostEvaluator::to_ids(
    const std::vector<std::string>& target) const {
  std::vector<std::uint32_t> ids;
  ids.reserve(target.size());
  for (const std::string& name : target) {
    auto it = pe_by_name_.find(name);
    if (it == pe_by_name_.end()) {
      throw std::invalid_argument("unknown PE '" + name + "'");
    }
    ids.push_back(it->second);
  }
  return ids;
}

const CostEstimate& CostEvaluator::evaluate(
    const std::vector<std::string>& target) {
  if (target.size() != group_cycles_.size()) {
    throw std::invalid_argument("target size must match grouping size");
  }
  return evaluate_ids(to_ids(target));
}

const CostEstimate& CostEvaluator::evaluate_ids(
    const std::vector<std::uint32_t>& target_pe) {
  if (target_pe.size() != group_cycles_.size()) {
    throw std::invalid_argument("target size must match grouping size");
  }
  for (std::uint32_t p : target_pe) {
    if (p >= pe_names_.size()) {
      throw std::invalid_argument("PE index out of range");
    }
  }
  ++lookups_;
  auto it = memo_.find(target_pe);
  if (it != memo_.end()) return it->second;
  ++misses_;

  CostEstimate est;
  std::vector<double> load(pe_names_.size(), 0.0);
  for (std::size_t g = 0; g < target_pe.size(); ++g) {
    load[target_pe[g]] += static_cast<double>(group_cycles_[g]) * 1000.0 /
                          pe_freq_[target_pe[g]];
  }
  for (std::uint32_t p = 0; p < pe_names_.size(); ++p) {
    est.pe_load[pe_names_[p]] += load[p];
  }
  for (const Edge& e : edges_) {
    const std::uint32_t pa = target_pe[e.from];
    const std::uint32_t pb = target_pe[e.to];
    if (pa == pb) continue;
    est.comm_cost += static_cast<double>(e.count) * hop_ticks_[pa][pb];
  }
  double max_load = 0.0;
  for (double l : load) max_load = std::max(max_load, l);
  est.makespan = max_load + est.comm_cost;

  // Degraded-makespan term: replay each fault scenario's failover remap.
  for (const Scenario& sc : scenarios_) {
    const auto group_ticks = [this](std::size_t g, std::uint32_t p) {
      return static_cast<double>(group_cycles_[g]) * 1000.0 / pe_freq_[p];
    };
    std::vector<double> dload(pe_names_.size(), 0.0);
    std::vector<std::uint32_t> degraded = target_pe;
    for (std::size_t g = 0; g < degraded.size(); ++g) {
      if (!sc.failed[degraded[g]]) dload[degraded[g]] += group_ticks(g, degraded[g]);
    }
    // Groups on failed PEs move in index order, each to the PE the runtime
    // FailoverPolicy would pick given the loads accumulated so far.
    for (std::size_t g = 0; g < degraded.size(); ++g) {
      if (!sc.failed[degraded[g]]) continue;
      std::vector<mapping::FailoverPolicy::Candidate> cands;
      std::vector<std::uint32_t> cand_pe;
      for (std::uint32_t p = 0; p < pe_names_.size(); ++p) {
        if (sc.failed[p]) continue;
        cands.push_back({pe_names_[p], dload[p]});
        cand_pe.push_back(p);
      }
      const std::uint32_t dest =
          cand_pe[mapping::FailoverPolicy::least_loaded(cands)];
      degraded[g] = dest;
      dload[dest] += group_ticks(g, dest);
    }
    double comm = 0.0;
    for (const Edge& e : edges_) {
      const std::uint32_t pa = degraded[e.from];
      const std::uint32_t pb = degraded[e.to];
      if (pa != pb) comm += static_cast<double>(e.count) * hop_ticks_[pa][pb];
    }
    double dmax = 0.0;
    for (double l : dload) dmax = std::max(dmax, l);
    est.fault_cost += sc.weight * (dmax + comm);
  }

  return memo_.emplace(target_pe, std::move(est)).first->second;
}

CostEstimate estimate_cost(const Grouping& grouping,
                           const std::vector<std::string>& target,
                           const ProcessStats& stats,
                           const std::vector<PeDesc>& pes,
                           const CostModel& model) {
  CostEvaluator eval(grouping, stats, pes, model);
  return eval.evaluate(target);
}

MappingProposal propose_mapping(const Grouping& grouping,
                                const std::vector<std::string>& group_type,
                                const ProcessStats& stats,
                                const std::vector<PeDesc>& pes,
                                const CostModel& model) {
  if (group_type.size() != grouping.size()) {
    throw std::invalid_argument("group_type size must match grouping size");
  }
  auto compatible = [&](std::size_t g, const PeDesc& pe) {
    const bool hw_group = group_type[g] == profile::tags::ProcessHardware;
    const bool hw_pe = pe.type == profile::tags::ComponentHwAccelerator;
    return hw_group == hw_pe;
  };

  // Greedy LPT: heaviest group first onto the compatible PE with the least
  // load (in estimated time). Group cycles are summed once up front.
  std::vector<long> cycles(grouping.size(), 0);
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    for (const std::string& p : grouping[g]) {
      auto it = stats.cycles.find(p);
      if (it != stats.cycles.end()) cycles[g] += it->second;
    }
  }
  std::vector<std::size_t> order(grouping.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cycles[a] != cycles[b] ? cycles[a] > cycles[b] : a < b;
  });

  std::map<std::string, double> load;
  for (const PeDesc& pe : pes) load[pe.name] = 0.0;
  std::vector<std::string> target(grouping.size());
  for (std::size_t g : order) {
    const PeDesc* best = nullptr;
    for (const PeDesc& pe : pes) {
      if (!compatible(g, pe)) continue;
      if (best == nullptr || load[pe.name] < load[best->name]) best = &pe;
    }
    if (best == nullptr) {
      throw std::runtime_error("no compatible PE for group of type '" +
                               group_type[g] + "'");
    }
    target[g] = best->name;
    load[best->name] += static_cast<double>(cycles[g]) * 1000.0 /
                        static_cast<double>(best->freq_mhz > 0 ? best->freq_mhz
                                                               : 50);
  }

  // Local search from a starting assignment: move each group to every
  // compatible PE while the estimated makespan improves. All candidates run
  // through one memoizing evaluator, so assignments revisited across passes
  // (and across the two starts) cost a hash lookup instead of a recount.
  CostEvaluator eval(grouping, stats, pes, model);
  std::vector<std::vector<char>> compat(
      grouping.size(), std::vector<char>(pes.size(), 0));
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    for (std::size_t p = 0; p < pes.size(); ++p) {
      compat[g][p] = compatible(g, pes[p]) ? 1 : 0;
    }
  }

  auto local_search = [&](std::vector<std::uint32_t> cur) {
    CostEstimate best = eval.evaluate_ids(cur);
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t g = 0; g < cur.size(); ++g) {
        for (std::uint32_t p = 0; p < pes.size(); ++p) {
          if (!compat[g][p] || p == cur[g]) continue;
          std::vector<std::uint32_t> candidate = cur;
          candidate[g] = p;
          const CostEstimate& cost = eval.evaluate_ids(candidate);
          if (cost.total() + 1e-9 < best.total()) {
            cur = std::move(candidate);
            best = cost;
            improved = true;
          }
        }
      }
    }
    return std::pair<std::vector<std::uint32_t>, CostEstimate>{
        std::move(cur), std::move(best)};
  };

  auto best = local_search(eval.to_ids(target));

  // Second start: co-locate every group on its fastest compatible PE. This
  // escapes the comm-dominated local minimum single moves cannot leave.
  std::vector<std::uint32_t> colocated(grouping.size());
  bool colocated_ok = true;
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    const PeDesc* fastest = nullptr;
    std::uint32_t fastest_idx = 0;
    for (std::uint32_t p = 0; p < pes.size(); ++p) {
      if (!compat[g][p]) continue;
      if (fastest == nullptr || pes[p].freq_mhz > fastest->freq_mhz) {
        fastest = &pes[p];
        fastest_idx = p;
      }
    }
    if (fastest == nullptr) {
      colocated_ok = false;
      break;
    }
    colocated[g] = fastest_idx;
  }
  if (colocated_ok) {
    auto alt = local_search(std::move(colocated));
    if (alt.second.total() < best.second.total()) best = std::move(alt);
  }

  MappingProposal out;
  out.target.reserve(best.first.size());
  for (std::uint32_t p : best.first) out.target.push_back(eval.pe_name(p));
  out.cost = std::move(best.second);
  return out;
}

}  // namespace tut::explore
