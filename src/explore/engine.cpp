#include "explore/engine.hpp"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

namespace tut::explore {

namespace {

/// splitmix64 — cheap, well-mixed per-candidate seeds from the base seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ExploreEngine::ExploreEngine(ProcessStats stats, std::vector<PeDesc> pes,
                             CostModel model, EngineOptions options)
    : stats_(std::move(stats)),
      pes_(std::move(pes)),
      model_(std::move(model)),
      options_(options) {
  threads_ = options_.threads != 0
                 ? options_.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ExploreEngine::candidate_count() const noexcept {
  const std::size_t sizes = std::max<std::size_t>(stats_.processes.size(), 1);
  return sizes * (1 + options_.restarts_per_size);
}

std::vector<ExploreEngine::Candidate> ExploreEngine::make_candidates() const {
  // Generated serially and identically for every thread count: the sweep
  // covers every target group count, each with the deterministic greedy
  // grouping (variant 0) and seeded-random restarts (variants 1..R).
  std::vector<Candidate> candidates;
  const std::size_t sizes = std::max<std::size_t>(stats_.processes.size(), 1);
  candidates.reserve(sizes * (1 + options_.restarts_per_size));
  for (std::size_t size = 1; size <= sizes; ++size) {
    for (std::uint32_t variant = 0; variant <= options_.restarts_per_size;
         ++variant) {
      Candidate c;
      c.target_groups = size;
      c.variant = variant;
      c.seed = mix(mix(options_.seed ^ size) ^ variant);
      candidates.push_back(c);
    }
  }
  return candidates;
}

CandidateResult ExploreEngine::evaluate(
    std::size_t index, const Candidate& candidate,
    const std::map<std::string, std::string>& process_type,
    const std::set<std::string>& fixed) const {
  CandidateResult r;
  r.index = index;
  r.target_groups = candidate.target_groups;
  r.variant = candidate.variant;
  try {
    r.grouping =
        candidate.variant == 0
            ? propose_grouping(stats_, process_type, candidate.target_groups,
                               fixed)
            : propose_grouping_randomized(stats_, process_type,
                                          candidate.target_groups,
                                          candidate.seed, options_.breadth,
                                          fixed);
    r.group_type.reserve(r.grouping.size());
    for (const auto& group : r.grouping) {
      // Groups are type-homogeneous by construction, so the front member's
      // type is the group's type.
      auto it = process_type.find(group.front());
      r.group_type.push_back(it != process_type.end() ? it->second
                                                      : "general");
    }
    r.inter_group = CrossingCounter(r.grouping, stats_).crossing();
    r.mapping = propose_mapping(r.grouping, r.group_type, stats_, pes_, model_);
    r.feasible = true;
  } catch (const std::exception&) {
    r.feasible = false;  // e.g. no compatible PE for a hardware group
  }
  return r;
}

ExplorationResult ExploreEngine::explore(
    const std::map<std::string, std::string>& process_type,
    const std::set<std::string>& fixed) const {
  const std::vector<Candidate> candidates = make_candidates();
  std::vector<CandidateResult> results(candidates.size());

  if (threads_ <= 1 || candidates.size() <= 1) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      results[i] = evaluate(i, candidates[i], process_type, fixed);
    }
  } else {
    // Work-stealing by atomic index: workers claim candidates in order and
    // write only their own results slot, so the populated vector is
    // independent of scheduling.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < candidates.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        results[i] = evaluate(i, candidates[i], process_type, fixed);
      }
    };
    std::vector<std::thread> pool;
    const std::size_t spawned = std::min(threads_, candidates.size());
    pool.reserve(spawned - 1);
    for (std::size_t t = 1; t < spawned; ++t) pool.emplace_back(worker);
    worker();  // the calling thread participates
    for (std::thread& t : pool) t.join();
  }

  // Serial reduce in index order: lowest total cost (makespan plus any
  // fault-scenario term), ties to the lowest index.
  ExplorationResult out;
  out.candidates = std::move(results);
  bool found = false;
  for (std::size_t i = 0; i < out.candidates.size(); ++i) {
    const CandidateResult& r = out.candidates[i];
    if (!r.feasible) continue;
    if (!found || r.mapping.cost.total() <
                      out.candidates[out.best].mapping.cost.total()) {
      out.best = i;
      found = true;
    }
  }
  if (!found) {
    throw std::runtime_error("exploration found no feasible mapping");
  }
  return out;
}

}  // namespace tut::explore
