// tut::explore — architecture exploration on profiling feedback.
//
// Section 3.1: "The grouping can be performed according to different
// criteria, such as ... workload distribution, communication between process
// groups ... The grouping is used for the analysis and architecture
// exploration" and "tools for automatic grouping according to the profiling
// information and process types will be implemented". Section 4.4: "The
// process groups and mapping are modified to improve performance including
// amount of communication and the division of workload".
//
// This module implements that loop as pure data-level optimization:
// extract per-process load and communication from a profiling report,
// propose a grouping that minimizes inter-group communication (respecting
// process types), propose a mapping that balances load and communication
// cost, and estimate the cost of any candidate. Model rebuilding with the
// chosen alternative is left to the caller (models are append-only).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "profiler/profiler.hpp"

namespace tut::explore {

/// Per-process load and communication extracted from a profiling run.
struct ProcessStats {
  std::vector<std::string> processes;  ///< sorted, unique
  std::map<std::string, long> cycles;
  /// Directed signal counts between processes (environment excluded).
  std::map<std::pair<std::string, std::string>, std::uint64_t> signals;

  /// Undirected communication volume between two processes.
  std::uint64_t between(const std::string& a, const std::string& b) const;

  /// Extracts stats from a profiling report (process-level detail tables).
  static ProcessStats from_report(const profiler::ProfilingReport& report);
};

/// A candidate grouping: each inner vector is one process group.
using Grouping = std::vector<std::vector<std::string>>;

/// Signals crossing group boundaries under a candidate grouping — the
/// objective the paper's grouping minimizes.
std::uint64_t inter_group_signals(const Grouping& grouping,
                                  const ProcessStats& stats);

/// Greedy agglomerative grouping: start with one group per process and
/// repeatedly merge the pair of groups with the highest mutual communication
/// until `target_groups` remain. Only groups whose processes share the same
/// `process_type` entry are merged (the profile's group homogeneity rule);
/// processes listed in `fixed` stay in singleton groups.
Grouping propose_grouping(const ProcessStats& stats,
                          const std::map<std::string, std::string>& process_type,
                          std::size_t target_groups,
                          const std::set<std::string>& fixed = {});

/// A processing element available to the mapper.
struct PeDesc {
  std::string name;
  long freq_mhz = 50;
  /// Component Type tag: "general", "dsp" or "hw_accelerator".
  std::string type = "general";
};

/// Cost model for mapping estimation. Time unit: ticks (ns).
struct CostModel {
  /// Cost of one signal crossing one segment hop.
  double hop_cost = 40.0;
  /// Segment-hop distance between two PEs (default: 1 for distinct PEs).
  std::function<int(const std::string&, const std::string&)> hops;
};

/// Estimated execution cost of a grouping+mapping candidate.
struct CostEstimate {
  std::map<std::string, double> pe_load;  ///< per-PE compute time (ticks)
  double comm_cost = 0.0;                 ///< total communication time
  double makespan = 0.0;                  ///< max PE load + comm cost
};

/// Estimates cost: per-PE load is the summed group cycles over the PE's
/// frequency; communication cost is signal volume between different PEs
/// weighted by hop distance.
CostEstimate estimate_cost(const Grouping& grouping,
                           const std::vector<std::string>& target,
                           const ProcessStats& stats,
                           const std::vector<PeDesc>& pes,
                           const CostModel& model = {});

/// A mapping proposal: target[i] is the PE name for grouping[i].
struct MappingProposal {
  std::vector<std::string> target;
  CostEstimate cost;
};

/// Greedy longest-processing-time mapping with pairwise-improvement local
/// search. Hardware groups (type "hardware" in `group_type`, indexed like
/// `grouping`) only map to hw_accelerator PEs and vice versa. Throws
/// std::runtime_error when no compatible PE exists for a group.
MappingProposal propose_mapping(const Grouping& grouping,
                                const std::vector<std::string>& group_type,
                                const ProcessStats& stats,
                                const std::vector<PeDesc>& pes,
                                const CostModel& model = {});

}  // namespace tut::explore
