// tut::explore — architecture exploration on profiling feedback.
//
// Section 3.1: "The grouping can be performed according to different
// criteria, such as ... workload distribution, communication between process
// groups ... The grouping is used for the analysis and architecture
// exploration" and "tools for automatic grouping according to the profiling
// information and process types will be implemented". Section 4.4: "The
// process groups and mapping are modified to improve performance including
// amount of communication and the division of workload".
//
// This module implements that loop as pure data-level optimization:
// extract per-process load and communication from a profiling report,
// propose a grouping that minimizes inter-group communication (respecting
// process types), propose a mapping that balances load and communication
// cost, and estimate the cost of any candidate. Model rebuilding with the
// chosen alternative is left to the caller (models are append-only).
//
// The candidate evaluations run on incremental data structures:
// CrossingCounter maintains per-group-pair crossing volumes and applies
// merge deltas instead of recounting every signal, and CostEvaluator
// memoizes cost estimates per (grouping, target) so local searches pay for
// each candidate assignment once. propose_grouping / propose_mapping /
// estimate_cost keep their original signatures and results on top of them;
// engine.hpp adds the parallel design-space exploration driver.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "profiler/profiler.hpp"

namespace tut::explore {

/// Per-process load and communication extracted from a profiling run.
struct ProcessStats {
  std::vector<std::string> processes;  ///< sorted, unique
  std::map<std::string, long> cycles;
  /// Directed signal counts between processes (environment excluded).
  std::map<std::pair<std::string, std::string>, std::uint64_t> signals;

  /// Undirected communication volume between two processes.
  std::uint64_t between(const std::string& a, const std::string& b) const;

  /// Extracts stats from a profiling report (process-level detail tables).
  static ProcessStats from_report(const profiler::ProfilingReport& report);
};

/// A candidate grouping: each inner vector is one process group.
using Grouping = std::vector<std::vector<std::string>>;

/// Signals crossing group boundaries under a candidate grouping — the
/// objective the paper's grouping minimizes. Full recount; the reference
/// implementation CrossingCounter is delta-checked against.
std::uint64_t inter_group_signals(const Grouping& grouping,
                                  const ProcessStats& stats);

/// Incremental evaluator of the inter-group-signals objective. Builds the
/// per-group-pair crossing volumes once, then applies merge deltas in
/// O(groups) instead of recounting every signal entry per candidate move.
class CrossingCounter {
 public:
  CrossingCounter(const Grouping& grouping, const ProcessStats& stats);

  /// Number of (remaining) groups.
  std::size_t groups() const noexcept { return comm_.size(); }
  /// Current total of signals crossing group boundaries — always equal to
  /// inter_group_signals() on the equivalently merged grouping.
  std::uint64_t crossing() const noexcept { return crossing_; }
  /// Undirected signal volume between two distinct groups.
  std::uint64_t between(std::size_t a, std::size_t b) const {
    return comm_[a][b];
  }
  /// Merges group `b` into group `a` and erases index `b` (groups past `b`
  /// shift down by one, mirroring vector::erase on the Grouping itself).
  /// crossing() drops by exactly between(a, b).
  void merge(std::size_t a, std::size_t b);

 private:
  std::vector<std::vector<std::uint64_t>> comm_;  ///< symmetric, zero diagonal
  std::uint64_t crossing_ = 0;
};

/// Greedy agglomerative grouping: start with one group per process and
/// repeatedly merge the pair of groups with the highest mutual communication
/// until `target_groups` remain. Only groups whose processes share the same
/// `process_type` entry are merged (the profile's group homogeneity rule);
/// processes listed in `fixed` stay in singleton groups.
Grouping propose_grouping(const ProcessStats& stats,
                          const std::map<std::string, std::string>& process_type,
                          std::size_t target_groups,
                          const std::set<std::string>& fixed = {});

/// As propose_grouping, but each step merges a seeded-random pick among the
/// `breadth` best mergeable pairs instead of always the best one. Used by
/// the exploration engine to generate diverse restart candidates; fully
/// deterministic for a given (seed, breadth).
Grouping propose_grouping_randomized(
    const ProcessStats& stats,
    const std::map<std::string, std::string>& process_type,
    std::size_t target_groups, std::uint64_t seed, std::size_t breadth = 3,
    const std::set<std::string>& fixed = {});

/// A processing element available to the mapper.
struct PeDesc {
  std::string name;
  long freq_mhz = 50;
  /// Component Type tag: "general", "dsp" or "hw_accelerator".
  std::string type = "general";
};

/// Cost model for mapping estimation. Time unit: ticks (ns).
struct CostModel {
  /// Cost of one signal crossing one segment hop.
  double hop_cost = 40.0;
  /// Segment-hop distance between two PEs (default: 1 for distinct PEs).
  std::function<int(const std::string&, const std::string&)> hops;

  /// A what-if PE-failure set for reliability-aware mapping. Each scenario
  /// adds weight * degraded-makespan to a candidate's cost, where the
  /// degraded makespan remaps the groups of failed PEs onto survivors with
  /// the same least-loaded rule mapping::FailoverPolicy applies at runtime.
  /// With no scenarios (the default) the estimate is unchanged.
  struct FaultScenario {
    std::vector<std::string> failed_pes;
    double weight = 1.0;
  };
  std::vector<FaultScenario> fault_scenarios;
};

/// Estimated execution cost of a grouping+mapping candidate.
struct CostEstimate {
  std::map<std::string, double> pe_load;  ///< per-PE compute time (ticks)
  double comm_cost = 0.0;                 ///< total communication time
  double makespan = 0.0;                  ///< max PE load + comm cost
  /// Weighted degraded-makespan sum over CostModel::fault_scenarios
  /// (0 when the model declares none).
  double fault_cost = 0.0;
  /// The objective searches minimize: makespan plus the fault term.
  double total() const noexcept { return makespan + fault_cost; }
};

/// Memoizing cost evaluator for one grouping over a fixed PE set. The
/// grouping's per-group cycles, aggregated inter-group signal volumes and
/// the PE hop matrix are precomputed once; each distinct target assignment
/// is then evaluated in O(groups + edges) and cached, so local searches
/// revisiting assignments pay a hash lookup. PE names must be distinct.
class CostEvaluator {
 public:
  /// Throws std::invalid_argument when a fault scenario names an unknown PE
  /// or leaves no survivor.
  CostEvaluator(const Grouping& grouping, const ProcessStats& stats,
                const std::vector<PeDesc>& pes, const CostModel& model = {});

  /// Same result as estimate_cost(grouping, target, stats, pes, model).
  /// Throws std::invalid_argument on size mismatch or unknown PE name.
  const CostEstimate& evaluate(const std::vector<std::string>& target);
  /// Index-based variant for hot loops: target_pe[g] indexes the PeDesc
  /// list given at construction.
  const CostEstimate& evaluate_ids(const std::vector<std::uint32_t>& target_pe);

  /// Translates PE names to indices (throws std::invalid_argument).
  std::vector<std::uint32_t> to_ids(const std::vector<std::string>& target) const;
  const std::string& pe_name(std::uint32_t index) const {
    return pe_names_[index];
  }
  std::size_t pe_count() const noexcept { return pe_names_.size(); }
  std::size_t group_count() const noexcept { return group_cycles_.size(); }

  /// Memo statistics (for tests and tuning).
  std::size_t lookups() const noexcept { return lookups_; }
  std::size_t misses() const noexcept { return misses_; }

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<std::uint32_t>& v) const noexcept;
  };

  struct Edge {
    std::uint32_t from = 0;  ///< group index
    std::uint32_t to = 0;    ///< group index
    std::uint64_t count = 0;
  };

  /// A fault scenario with PE names resolved to indices.
  struct Scenario {
    std::vector<char> failed;  ///< indexed like the PeDesc list
    double weight = 1.0;
  };

  std::vector<long> group_cycles_;
  std::vector<Scenario> scenarios_;
  std::vector<Edge> edges_;  ///< directed, aggregated, deterministic order
  std::vector<std::string> pe_names_;
  std::vector<double> pe_freq_;                 ///< divisor, defaulted to 50
  std::vector<std::vector<double>> hop_ticks_;  ///< hop_cost * hops(i, j)
  std::unordered_map<std::string, std::uint32_t> pe_by_name_;
  std::unordered_map<std::vector<std::uint32_t>, CostEstimate, VecHash> memo_;
  std::size_t lookups_ = 0;
  std::size_t misses_ = 0;
};

/// Estimates cost: per-PE load is the summed group cycles over the PE's
/// frequency; communication cost is signal volume between different PEs
/// weighted by hop distance.
CostEstimate estimate_cost(const Grouping& grouping,
                           const std::vector<std::string>& target,
                           const ProcessStats& stats,
                           const std::vector<PeDesc>& pes,
                           const CostModel& model = {});

/// A mapping proposal: target[i] is the PE name for grouping[i].
struct MappingProposal {
  std::vector<std::string> target;
  CostEstimate cost;
};

/// Greedy longest-processing-time mapping with pairwise-improvement local
/// search. Hardware groups (type "hardware" in `group_type`, indexed like
/// `grouping`) only map to hw_accelerator PEs and vice versa. Throws
/// std::runtime_error when no compatible PE exists for a group.
MappingProposal propose_mapping(const Grouping& grouping,
                                const std::vector<std::string>& group_type,
                                const ProcessStats& stats,
                                const std::vector<PeDesc>& pes,
                                const CostModel& model = {});

}  // namespace tut::explore
