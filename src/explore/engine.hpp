// tut::explore — parallel design-space exploration engine.
//
// Section 4.4 describes exploration as iterating grouping and mapping
// alternatives against the profiled workload until performance goals are
// met. ExploreEngine drives that loop over a whole candidate family at
// once: for every target group count it derives one deterministic greedy
// grouping plus a configurable number of seeded-random restarts, maps each
// candidate with propose_mapping, and reports the full ranked field.
//
// Candidate evaluations are independent, so the engine fans them out over a
// std::thread pool. Determinism across thread counts is by construction:
// the candidate list is generated serially from the options seed, each
// evaluation is a pure function of its candidate descriptor, every worker
// writes only results[i] for the candidate indices it claims, and the
// winner reduction runs serially in index order after the barrier. The
// result for a given (stats, pes, model, options) is therefore
// byte-identical whether threads = 1 or 64.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "explore/explore.hpp"

namespace tut::explore {

/// Tuning knobs for ExploreEngine.
struct EngineOptions {
  /// Worker threads; 0 resolves to std::thread::hardware_concurrency()
  /// (minimum 1). 1 evaluates inline without spawning.
  std::size_t threads = 0;
  /// Randomized grouping restarts per target group count, in addition to
  /// the deterministic greedy candidate.
  std::size_t restarts_per_size = 8;
  /// Top-k merge window for the randomized restarts.
  std::size_t breadth = 3;
  /// Base seed for the randomized candidates.
  std::uint64_t seed = 0x7075742d64736521ull;
};

/// One evaluated point of the design space.
struct CandidateResult {
  std::size_t index = 0;          ///< position in the generated candidate list
  std::size_t target_groups = 0;  ///< requested group count
  std::uint32_t variant = 0;      ///< 0 = greedy, >0 = randomized restart
  Grouping grouping;
  std::vector<std::string> group_type;  ///< per group, for propose_mapping
  std::uint64_t inter_group = 0;        ///< signals crossing group borders
  bool feasible = false;                ///< mapping succeeded
  MappingProposal mapping;              ///< valid only when feasible
};

/// The evaluated field plus the winning candidate index.
struct ExplorationResult {
  std::vector<CandidateResult> candidates;  ///< in candidate-list order
  std::size_t best = 0;                     ///< index of the winner

  const CandidateResult& winner() const { return candidates[best]; }
};

/// Evaluates grouping/mapping candidates for one profiled workload over a
/// fixed platform. Construction captures the inputs; explore() runs the
/// candidate sweep (concurrently when options.threads != 1) and is safe to
/// call repeatedly with identical results.
class ExploreEngine {
 public:
  ExploreEngine(ProcessStats stats, std::vector<PeDesc> pes,
                CostModel model = {}, EngineOptions options = {});

  /// Resolved worker count (options.threads with 0 mapped to the hardware).
  std::size_t threads() const noexcept { return threads_; }
  /// Number of candidates one explore() call evaluates.
  std::size_t candidate_count() const noexcept;

  /// Runs the sweep. `process_type` and `fixed` are forwarded to the
  /// grouping proposals (type-homogeneous groups, pinned singletons).
  /// Throws std::runtime_error when no candidate could be mapped.
  ExplorationResult explore(
      const std::map<std::string, std::string>& process_type = {},
      const std::set<std::string>& fixed = {}) const;

 private:
  /// Candidate descriptor: everything needed to evaluate independently.
  struct Candidate {
    std::size_t target_groups = 0;
    std::uint32_t variant = 0;   ///< 0 = greedy
    std::uint64_t seed = 0;      ///< rng seed for variant > 0
  };

  std::vector<Candidate> make_candidates() const;
  CandidateResult evaluate(std::size_t index, const Candidate& candidate,
                           const std::map<std::string, std::string>& process_type,
                           const std::set<std::string>& fixed) const;

  ProcessStats stats_;
  std::vector<PeDesc> pes_;
  CostModel model_;
  EngineOptions options_;
  std::size_t threads_ = 1;
};

}  // namespace tut::explore
