// explore::measure — closing the loop between the analytic cost model and
// the co-simulator.
//
// CostModel::fault_scenarios weight what-if PE failures analytically (group
// cycles remapped by the failover rule). measure_fault_scenarios runs the
// same scenarios through the real co-simulator instead: each scenario
// becomes a fault plan failing its PEs at t=0 with no recovery, all
// scenarios share one sim::CompiledModel image, and a sim::BatchRunner fans
// them out over worker threads. calibrate_fault_weights then scales the
// analytic weights by the measured degraded/baseline makespan ratio, so the
// exploration objective reflects simulated degraded behaviour instead of a
// hand-picked weight.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "explore/explore.hpp"
#include "mapping/mapping.hpp"
#include "sim/simulator.hpp"

namespace tut::explore {

/// Measured outcome of one fault scenario (index 0 is always the fault-free
/// baseline; scenario i of the cost model is at index i + 1).
struct ScenarioMeasurement {
  std::string name;            ///< "baseline" or the joined failed-PE list
  double makespan = 0.0;       ///< max per-PE busy time (ticks)
  double busy_total = 0.0;     ///< summed PE busy time (ticks)
  std::uint64_t events = 0;    ///< kernel events dispatched
  std::uint64_t log_hash = 0;  ///< for determinism checks across sweeps
  std::string error;           ///< non-empty when the scenario failed to run
};

/// Simulates the fault-free baseline plus every scenario under the given
/// workload up to `horizon`, sharing one compiled model image across all
/// runs (threads = 0 resolves to the hardware concurrency). Results are
/// deterministic and independent of the thread count.
std::vector<ScenarioMeasurement> measure_fault_scenarios(
    const mapping::SystemView& view,
    const std::vector<CostModel::FaultScenario>& scenarios,
    const std::function<void(sim::Simulation&)>& workload, sim::Time horizon,
    std::size_t threads = 0);

/// Returns `model` with each fault scenario's weight scaled by its measured
/// degraded/baseline makespan ratio (`measurements` as returned by
/// measure_fault_scenarios for the same scenario list). Scenarios whose
/// measurement errored, or a zero baseline, keep their analytic weight.
/// Throws std::invalid_argument on a size mismatch.
CostModel calibrate_fault_weights(
    CostModel model, const std::vector<ScenarioMeasurement>& measurements);

}  // namespace tut::explore
