#include "explore/measure.hpp"

#include <stdexcept>

#include "sim/batch.hpp"
#include "sim/compiled.hpp"

namespace tut::explore {

namespace {

std::string scenario_name(const CostModel::FaultScenario& fs) {
  if (fs.failed_pes.empty()) return "baseline";
  std::string name = "fail:";
  for (std::size_t i = 0; i < fs.failed_pes.size(); ++i) {
    if (i != 0) name += '+';
    name += fs.failed_pes[i];
  }
  return name;
}

}  // namespace

std::vector<ScenarioMeasurement> measure_fault_scenarios(
    const mapping::SystemView& view,
    const std::vector<CostModel::FaultScenario>& scenarios,
    const std::function<void(sim::Simulation&)>& workload, sim::Time horizon,
    std::size_t threads) {
  const auto model = sim::CompiledModel::build(view);

  std::vector<sim::BatchScenario> batch;
  batch.reserve(scenarios.size() + 1);
  sim::BatchScenario baseline;
  baseline.name = "baseline";
  baseline.config.horizon = horizon;
  baseline.setup = workload;
  batch.push_back(std::move(baseline));
  for (const CostModel::FaultScenario& fs : scenarios) {
    sim::BatchScenario s;
    s.name = scenario_name(fs);
    s.config.horizon = horizon;
    for (const std::string& pe : fs.failed_pes) {
      // Fail at t=0 with no recovery: the scenario measures steady degraded
      // operation, matching the analytic degraded-makespan term.
      s.config.faults.pe_faults.push_back({pe, 0, 0});
    }
    s.setup = workload;
    batch.push_back(std::move(s));
  }

  sim::BatchOptions options;
  options.threads = threads;
  const auto results = sim::BatchRunner(model, options).run(batch);

  std::vector<ScenarioMeasurement> measurements;
  measurements.reserve(results.size());
  for (const sim::BatchResult& r : results) {
    ScenarioMeasurement m;
    m.name = r.name;
    m.events = r.events;
    m.log_hash = r.log_hash;
    m.error = r.error;
    for (const auto& [pe, stats] : r.pe_stats) {
      const auto busy = static_cast<double>(stats.busy_time);
      m.busy_total += busy;
      m.makespan = std::max(m.makespan, busy);
    }
    measurements.push_back(std::move(m));
  }
  return measurements;
}

CostModel calibrate_fault_weights(
    CostModel model, const std::vector<ScenarioMeasurement>& measurements) {
  if (measurements.size() != model.fault_scenarios.size() + 1) {
    throw std::invalid_argument(
        "calibrate_fault_weights: expected " +
        std::to_string(model.fault_scenarios.size() + 1) +
        " measurements (baseline + scenarios), got " +
        std::to_string(measurements.size()));
  }
  const ScenarioMeasurement& baseline = measurements.front();
  if (!baseline.error.empty() || baseline.makespan <= 0.0) return model;
  for (std::size_t i = 0; i < model.fault_scenarios.size(); ++i) {
    const ScenarioMeasurement& m = measurements[i + 1];
    if (!m.error.empty() || m.makespan <= 0.0) continue;
    model.fault_scenarios[i].weight *= m.makespan / baseline.makespan;
  }
  return model;
}

}  // namespace tut::explore
