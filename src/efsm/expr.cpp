#include "efsm/expr.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace tut::efsm {

long Expr::Node::eval(const Env& env) const {
  switch (op) {
    case Op::Const: return value;
    case Op::Var: {
      auto it = env.find(name);
      if (it == env.end()) {
        throw EvalError("unknown identifier '" + name + "'");
      }
      return it->second;
    }
    case Op::Neg: return -a->eval(env);
    case Op::Not: return a->eval(env) == 0 ? 1 : 0;
    case Op::Add: return a->eval(env) + b->eval(env);
    case Op::Sub: return a->eval(env) - b->eval(env);
    case Op::Mul: return a->eval(env) * b->eval(env);
    case Op::Div: {
      const long d = b->eval(env);
      if (d == 0) throw EvalError("division by zero");
      return a->eval(env) / d;
    }
    case Op::Mod: {
      const long d = b->eval(env);
      if (d == 0) throw EvalError("modulo by zero");
      return a->eval(env) % d;
    }
    case Op::Eq: return a->eval(env) == b->eval(env) ? 1 : 0;
    case Op::Ne: return a->eval(env) != b->eval(env) ? 1 : 0;
    case Op::Lt: return a->eval(env) < b->eval(env) ? 1 : 0;
    case Op::Le: return a->eval(env) <= b->eval(env) ? 1 : 0;
    case Op::Gt: return a->eval(env) > b->eval(env) ? 1 : 0;
    case Op::Ge: return a->eval(env) >= b->eval(env) ? 1 : 0;
    case Op::And: return (a->eval(env) != 0 && b->eval(env) != 0) ? 1 : 0;
    case Op::Or: return (a->eval(env) != 0 || b->eval(env) != 0) ? 1 : 0;
    case Op::Ternary: return a->eval(env) != 0 ? b->eval(env) : c->eval(env);
  }
  throw EvalError("corrupt expression node");
}

namespace {

void collect_vars(const Expr::Node& n, std::set<std::string>& out) {
  if (n.op == Expr::Node::Op::Var) out.insert(n.name);
  if (n.a) collect_vars(*n.a, out);
  if (n.b) collect_vars(*n.b, out);
  if (n.c) collect_vars(*n.c, out);
}

using Node = Expr::Node;
using NodePtr = std::shared_ptr<const Node>;

NodePtr make(Node::Op op, NodePtr a = nullptr, NodePtr b = nullptr,
             NodePtr c = nullptr) {
  auto n = std::make_shared<Node>();
  n->op = op;
  n->a = std::move(a);
  n->b = std::move(b);
  n->c = std::move(c);
  return n;
}

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  NodePtr run() {
    NodePtr e = ternary();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input '" + std::string(text_.substr(pos_)) + "'");
    }
    return e;
  }

private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ExprError("expression error in \"" + std::string(text_) + "\": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(const char* token) {
    skip_ws();
    const std::size_t len = std::char_traits<char>::length(token);
    if (text_.compare(pos_, len, token) != 0) return false;
    // Avoid matching '<' as prefix of '<=' etc.: handled by ordering calls.
    pos_ += len;
    return true;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  NodePtr ternary() {
    NodePtr cond = logical_or();
    if (eat("?")) {
      NodePtr then = ternary();
      if (!eat(":")) fail("expected ':' in ternary");
      NodePtr otherwise = ternary();
      return make(Node::Op::Ternary, cond, then, otherwise);
    }
    return cond;
  }

  NodePtr logical_or() {
    NodePtr lhs = logical_and();
    while (eat("||")) lhs = make(Node::Op::Or, lhs, logical_and());
    return lhs;
  }

  NodePtr logical_and() {
    NodePtr lhs = comparison();
    while (eat("&&")) lhs = make(Node::Op::And, lhs, comparison());
    return lhs;
  }

  NodePtr comparison() {
    NodePtr lhs = additive();
    if (eat("==")) return make(Node::Op::Eq, lhs, additive());
    if (eat("!=")) return make(Node::Op::Ne, lhs, additive());
    if (eat("<=")) return make(Node::Op::Le, lhs, additive());
    if (eat(">=")) return make(Node::Op::Ge, lhs, additive());
    // Must come after <= / >=.
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '<') {
      ++pos_;
      return make(Node::Op::Lt, lhs, additive());
    }
    if (pos_ < text_.size() && text_[pos_] == '>') {
      ++pos_;
      return make(Node::Op::Gt, lhs, additive());
    }
    return lhs;
  }

  NodePtr additive() {
    NodePtr lhs = multiplicative();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '+') {
        ++pos_;
        lhs = make(Node::Op::Add, lhs, multiplicative());
      } else if (pos_ < text_.size() && text_[pos_] == '-') {
        ++pos_;
        lhs = make(Node::Op::Sub, lhs, multiplicative());
      } else {
        return lhs;
      }
    }
  }

  NodePtr multiplicative() {
    NodePtr lhs = unary();
    for (;;) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        lhs = make(Node::Op::Mul, lhs, unary());
      } else if (pos_ < text_.size() && text_[pos_] == '/') {
        ++pos_;
        lhs = make(Node::Op::Div, lhs, unary());
      } else if (pos_ < text_.size() && text_[pos_] == '%') {
        ++pos_;
        lhs = make(Node::Op::Mod, lhs, unary());
      } else {
        return lhs;
      }
    }
  }

  NodePtr unary() {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
      return make(Node::Op::Neg, unary());
    }
    if (pos_ < text_.size() && text_[pos_] == '!' &&
        (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '=')) {
      ++pos_;
      return make(Node::Op::Not, unary());
    }
    return primary();
  }

  NodePtr primary() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of expression");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      NodePtr e = ternary();
      if (!eat(")")) fail("expected ')'");
      return e;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      long value = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + (text_[pos_] - '0');
        ++pos_;
      }
      auto n = std::make_shared<Node>();
      n->op = Node::Op::Const;
      n->value = value;
      return n;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        name += text_[pos_++];
      }
      auto n = std::make_shared<Node>();
      n->op = Node::Op::Var;
      n->name = std::move(name);
      return n;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  const std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expr Expr::compile(std::string_view text) {
  Expr e;
  e.text_ = std::string(text);
  e.root_ = Parser(e.text_).run();
  return e;
}

long Expr::eval(const Env& env) const { return root_->eval(env); }

std::vector<std::string> Expr::identifiers() const {
  std::set<std::string> set;
  collect_vars(*root_, set);
  return {set.begin(), set.end()};
}

const Expr& ExprCache::get(std::string_view text) {
  auto it = cache_.find(text);
  if (it == cache_.end()) {
    it = cache_.emplace(std::string(text), Expr::compile(text)).first;
  }
  return it->second;
}

}  // namespace tut::efsm
