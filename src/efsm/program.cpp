#include "efsm/program.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "uml/structure.hpp"

namespace tut::efsm {

// ---------------------------------------------------------------------------
// Program: bytecode compiler
// ---------------------------------------------------------------------------

/// Walks an Expr AST emitting instructions. Register allocation is the
/// operand-stack depth: a node's result lands in `dst`, its second operand
/// (if any) in `dst + 1`. Short-circuit forms become forward jumps patched
/// once the skipped code is emitted, so operand evaluation order — and which
/// EvalError surfaces first — is exactly the AST interpreter's.
class ProgramCompiler {
 public:
  ProgramCompiler(Program& p, const Program::SlotMap& slots)
      : p_(p), slots_(slots) {}

  void compile(const Expr::Node& n, std::uint16_t dst) {
    using Op = Expr::Node::Op;
    using P = Program::Op;
    touch(dst);
    switch (n.op) {
      case Op::Const: {
        const std::uint16_t idx = intern_const(n.value);
        emit({P::Const, dst, idx, 0});
        return;
      }
      case Op::Var: {
        auto it = slots_.find(n.name);
        if (it == slots_.end()) {
          const auto idx = static_cast<std::uint16_t>(p_.missing_.size());
          p_.missing_.push_back(n.name);
          emit({P::Missing, dst, idx, 0});
        } else {
          emit({P::Slot, dst, it->second, 0});
        }
        return;
      }
      case Op::Neg:
        compile(*n.a, dst);
        emit({P::Neg, dst, dst, 0});
        return;
      case Op::Not:
        compile(*n.a, dst);
        emit({P::Not, dst, dst, 0});
        return;
      case Op::Add: return binary(n, P::Add, dst);
      case Op::Sub: return binary(n, P::Sub, dst);
      case Op::Mul: return binary(n, P::Mul, dst);
      case Op::Div: return division(n, P::Div, P::ChkDiv, dst);
      case Op::Mod: return division(n, P::Mod, P::ChkMod, dst);
      case Op::Eq: return binary(n, P::Eq, dst);
      case Op::Ne: return binary(n, P::Ne, dst);
      case Op::Lt: return binary(n, P::Lt, dst);
      case Op::Le: return binary(n, P::Le, dst);
      case Op::Gt: return binary(n, P::Gt, dst);
      case Op::Ge: return binary(n, P::Ge, dst);
      case Op::And: {
        // a == 0 skips b with the result already 0 in dst.
        compile(*n.a, dst);
        const std::size_t jz = emit({P::Jz, 0, dst, 0});
        compile(*n.b, dst);
        emit({P::Bool, dst, dst, 0});
        patch(jz, here());
        return;
      }
      case Op::Or: {
        compile(*n.a, dst);
        const std::size_t jz = emit({P::Jz, 0, dst, 0});
        emit({P::LoadOne, dst, 0, 0});
        const std::size_t jend = emit({P::Jmp, 0, 0, 0});
        patch(jz, here());
        compile(*n.b, dst);
        emit({P::Bool, dst, dst, 0});
        patch(jend, here());
        return;
      }
      case Op::Ternary: {
        compile(*n.a, dst);
        const std::size_t jz = emit({P::Jz, 0, dst, 0});
        compile(*n.b, dst);
        const std::size_t jend = emit({P::Jmp, 0, 0, 0});
        patch(jz, here());
        compile(*n.c, dst);
        patch(jend, here());
        return;
      }
    }
    throw ExprError("corrupt expression node");
  }

 private:
  void binary(const Expr::Node& n, Program::Op op, std::uint16_t dst) {
    compile(*n.a, dst);
    compile(*n.b, static_cast<std::uint16_t>(dst + 1));
    emit({op, dst, dst, static_cast<std::uint16_t>(dst + 1)});
  }

  // The AST interpreter evaluates the divisor first and throws on zero
  // before ever touching the dividend; compile in the same order.
  void division(const Expr::Node& n, Program::Op op, Program::Op chk,
                std::uint16_t dst) {
    compile(*n.b, dst);
    emit({chk, 0, dst, 0});
    compile(*n.a, static_cast<std::uint16_t>(dst + 1));
    emit({op, dst, static_cast<std::uint16_t>(dst + 1), dst});
  }

  std::uint16_t intern_const(long v) {
    for (std::size_t i = 0; i < p_.consts_.size(); ++i) {
      if (p_.consts_[i] == v) return static_cast<std::uint16_t>(i);
    }
    p_.consts_.push_back(v);
    return static_cast<std::uint16_t>(p_.consts_.size() - 1);
  }

  std::size_t emit(Program::Instr i) {
    p_.code_.push_back(i);
    return p_.code_.size() - 1;
  }

  std::uint16_t here() const {
    return static_cast<std::uint16_t>(p_.code_.size());
  }

  void patch(std::size_t at, std::uint16_t target) {
    p_.code_[at].b = target;
  }

  void touch(std::uint16_t dst) {
    // division() uses dst + 1 as scratch even though binary() owns the
    // "+ 1 per operand" growth, so reserve one past the deepest dst seen.
    if (static_cast<std::uint16_t>(dst + 2) > p_.reg_count_) {
      p_.reg_count_ = static_cast<std::uint16_t>(dst + 2);
    }
  }

  Program& p_;
  const Program::SlotMap& slots_;
};

Program Program::compile(const Expr& expr, const SlotMap& slots) {
  Program p;
  ProgramCompiler(p, slots).compile(expr.root(), 0);
  return p;
}

long Program::run(const Slots& slots, long* r) const {
  const Instr* code = code_.data();
  const std::size_t n = code_.size();
  std::size_t pc = 0;
  while (pc < n) {
    const Instr& i = code[pc];
    switch (i.op) {
      case Op::Const: r[i.dst] = consts_[i.a]; break;
      case Op::Slot:
        if (!slots.defined[i.a]) {
          throw EvalError("unknown identifier '" + (*slots.names)[i.a] + "'");
        }
        r[i.dst] = slots.values[i.a];
        break;
      case Op::Missing:
        throw EvalError("unknown identifier '" + missing_[i.a] + "'");
      case Op::Neg: r[i.dst] = -r[i.a]; break;
      case Op::Not: r[i.dst] = r[i.a] == 0 ? 1 : 0; break;
      case Op::Add: r[i.dst] = r[i.a] + r[i.b]; break;
      case Op::Sub: r[i.dst] = r[i.a] - r[i.b]; break;
      case Op::Mul: r[i.dst] = r[i.a] * r[i.b]; break;
      case Op::Div: r[i.dst] = r[i.a] / r[i.b]; break;
      case Op::Mod: r[i.dst] = r[i.a] % r[i.b]; break;
      case Op::ChkDiv:
        if (r[i.a] == 0) throw EvalError("division by zero");
        break;
      case Op::ChkMod:
        if (r[i.a] == 0) throw EvalError("modulo by zero");
        break;
      case Op::Eq: r[i.dst] = r[i.a] == r[i.b] ? 1 : 0; break;
      case Op::Ne: r[i.dst] = r[i.a] != r[i.b] ? 1 : 0; break;
      case Op::Lt: r[i.dst] = r[i.a] < r[i.b] ? 1 : 0; break;
      case Op::Le: r[i.dst] = r[i.a] <= r[i.b] ? 1 : 0; break;
      case Op::Gt: r[i.dst] = r[i.a] > r[i.b] ? 1 : 0; break;
      case Op::Ge: r[i.dst] = r[i.a] >= r[i.b] ? 1 : 0; break;
      case Op::Bool: r[i.dst] = r[i.a] != 0 ? 1 : 0; break;
      case Op::LoadOne: r[i.dst] = 1; break;
      case Op::Jz:
        if (r[i.a] == 0) {
          pc = i.b;
          continue;
        }
        break;
      case Op::Jmp:
        pc = i.b;
        continue;
    }
    ++pc;
  }
  return r[0];
}

// ---------------------------------------------------------------------------
// CompiledMachine
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kCompletionBound = 1000;

}  // namespace

std::uint16_t CompiledMachine::intern_slot(const std::string& name) {
  auto it = slot_index_.find(name);
  if (it != slot_index_.end()) return it->second;
  const auto idx = static_cast<std::uint16_t>(slot_names_.size());
  slot_names_.push_back(name);
  slot_index_.emplace(name, idx);
  return idx;
}

Program CompiledMachine::lower(const std::string& text) {
  const Expr expr = Expr::compile(text);
  // Intern every referenced identifier so reads hit the slot file and the
  // per-slot defined bit reproduces the AST path's lazy unknown-identifier
  // errors (dynamic variables created by Assign later become defined).
  Program::SlotMap map;
  for (const std::string& id : expr.identifiers()) {
    map.emplace(id, intern_slot(id));
  }
  Program p = Program::compile(expr, map);
  if (p.reg_count() > max_regs_) max_regs_ = p.reg_count();
  return p;
}

CompiledMachine::Action CompiledMachine::lower_action(const uml::Action& a) {
  Action out;
  out.kind = a.kind;
  switch (a.kind) {
    case uml::Action::Kind::Assign:
      out.slot = intern_slot(a.var);
      out.name = a.var;
      out.expr = lower(a.expr);
      break;
    case uml::Action::Kind::Compute:
      out.expr = lower(a.expr);
      break;
    case uml::Action::Kind::Send:
      out.port = a.port;
      out.signal = a.signal;
      out.args.reserve(a.args.size());
      for (const std::string& arg : a.args) out.args.push_back(lower(arg));
      break;
    case uml::Action::Kind::SetTimer:
      out.name = a.var;
      out.expr = lower(a.expr);
      break;
    case uml::Action::Kind::ResetTimer:
      out.name = a.var;
      break;
  }
  return out;
}

CompiledMachine::CompiledMachine(const uml::StateMachine& sm) : sm_(&sm) {
  // Declared variables first: initials are applied in declaration order
  // (later duplicates win, matching the AST path's map assignment).
  for (const auto& [var, initial] : sm.variables()) {
    initials_.emplace_back(intern_slot(var), initial);
  }

  std::unordered_map<const uml::State*, std::uint32_t> state_index;
  states_.reserve(sm.states().size());
  for (const uml::State* s : sm.states()) {
    state_index.emplace(s, static_cast<std::uint32_t>(states_.size()));
    State st;
    st.name = s->name();
    for (const uml::Action& a : s->entry_actions()) {
      st.entry.push_back(lower_action(a));
    }
    states_.push_back(std::move(st));
  }
  if (const uml::State* initial = sm.initial_state()) {
    initial_ = state_index.at(initial);
  }

  std::unordered_map<const uml::Transition*, std::uint32_t> transition_index;
  transitions_.reserve(sm.transitions().size());
  for (const uml::Transition* t : sm.transitions()) {
    transition_index.emplace(t, static_cast<std::uint32_t>(transitions_.size()));
    Transition tr;
    tr.trigger_signal = t->trigger_signal();
    tr.trigger_port = t->trigger_port();
    tr.trigger_timer = t->trigger_timer();
    tr.completion = t->is_completion();
    if (!t->guard().empty()) {
      tr.has_guard = true;
      tr.guard = lower(t->guard());
    }
    for (const uml::Action& a : t->effects()) {
      tr.effects.push_back(lower_action(a));
    }
    tr.target = state_index.at(t->target());
    transitions_.push_back(std::move(tr));

    // Every parameter of a trigger signal gets a slot: deliveries overlay
    // them so guards and effects see the event's arguments.
    if (const uml::Signal* sig = t->trigger_signal();
        sig != nullptr && !params_.count(sig)) {
      std::vector<std::uint16_t> slots;
      slots.reserve(sig->parameters().size());
      for (const auto& param : sig->parameters()) {
        slots.push_back(intern_slot(param.name));
      }
      params_.emplace(sig, std::move(slots));
    }
  }

  // Outgoing dispatch tables in the declaration-priority order the AST
  // runtime uses (uml::StateMachine::outgoing).
  for (const uml::State* s : sm.states()) {
    std::vector<std::uint32_t>& out = states_[state_index.at(s)].outgoing;
    for (const uml::Transition* t : sm.outgoing(*s)) {
      out.push_back(transition_index.at(t));
    }
  }
}

std::uint16_t CompiledMachine::slot_of(std::string_view name) const {
  // slot_index_ is keyed by std::string; the map is tiny and this lookup is
  // off the hot path (introspection only).
  auto it = slot_index_.find(std::string(name));
  return it == slot_index_.end() ? kNoSlot : it->second;
}

const std::vector<std::uint16_t>* CompiledMachine::param_slots(
    const uml::Signal* s) const {
  auto it = params_.find(s);
  return it == params_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// CompiledInstance
// ---------------------------------------------------------------------------

CompiledInstance::CompiledInstance(const CompiledMachine& machine,
                                   std::string name)
    : machine_(&machine),
      name_(std::move(name)),
      slots_(machine.slot_count(), 0),
      defined_(machine.slot_count(), 0),
      regs_(machine.max_regs(), 0),
      slot_stamp_(machine.slot_count(), 0) {
  init_slots();
}

void CompiledInstance::init_slots() {
  std::fill(slots_.begin(), slots_.end(), 0);
  std::fill(defined_.begin(), defined_.end(), 0);
  for (const auto& [slot, initial] : machine_->initial_values()) {
    slots_[slot] = initial;
    defined_[slot] = 1;
  }
}

long CompiledInstance::eval(const Program& p) {
  Program::Slots ctx;
  ctx.values = slots_.data();
  ctx.defined = defined_.data();
  ctx.names = &machine_->slot_names();
  return p.run(ctx, regs_.data());
}

StepResult CompiledInstance::start() {
  StepResult result;
  if (machine_->initial_state() == CompiledMachine::kNoState) {
    throw std::logic_error("state machine '" + machine_->source().name() +
                           "' has no initial state");
  }
  enter(machine_->initial_state(), result);
  run_completions(result);
  return result;
}

StepResult CompiledInstance::reset() {
  state_ = CompiledMachine::kNoState;
  init_slots();
  return start();
}

void CompiledInstance::rewind() {
  state_ = CompiledMachine::kNoState;
  init_slots();
  overlay_.clear();
  std::fill(slot_stamp_.begin(), slot_stamp_.end(), 0);
  step_ = 0;
}

const CompiledMachine::Transition* CompiledInstance::find_transition(
    const Event* event, const std::string& timer) {
  const auto& transitions = machine_->transitions();
  for (std::uint32_t ti : machine_->states()[state_].outgoing) {
    const CompiledMachine::Transition& t = transitions[ti];
    if (event != nullptr) {
      if (t.trigger_signal != event->signal) continue;
      if (!t.trigger_port.empty() && t.trigger_port != event->port) continue;
    } else if (!timer.empty()) {
      if (t.trigger_timer != timer) continue;
    } else {
      if (!t.completion) continue;
    }
    if (t.has_guard && eval(t.guard) == 0) continue;
    return &t;
  }
  return nullptr;
}

void CompiledInstance::execute_actions(
    const std::vector<CompiledMachine::Action>& actions, StepResult& result) {
  for (const CompiledMachine::Action& a : actions) {
    switch (a.kind) {
      case uml::Action::Kind::Assign: {
        const long v = eval(a.expr);
        slots_[a.slot] = v;
        defined_[a.slot] = 1;
        slot_stamp_[a.slot] = step_;
        break;
      }
      case uml::Action::Kind::Compute:
        result.compute_cycles += eval(a.expr);
        break;
      case uml::Action::Kind::Send: {
        Send send;
        send.port = a.port;
        send.signal = a.signal;
        send.args.reserve(a.args.size());
        for (const Program& arg : a.args) send.args.push_back(eval(arg));
        result.sends.push_back(std::move(send));
        break;
      }
      case uml::Action::Kind::SetTimer:
        result.timers.push_back({TimerOp::Kind::Set, a.name, eval(a.expr)});
        break;
      case uml::Action::Kind::ResetTimer:
        result.timers.push_back({TimerOp::Kind::Reset, a.name, 0});
        break;
    }
  }
}

void CompiledInstance::enter(std::uint32_t state, StepResult& result) {
  state_ = state;
  execute_actions(machine_->states()[state].entry, result);
}

void CompiledInstance::run_completions(StepResult& result) {
  for (std::size_t i = 0; i < kCompletionBound; ++i) {
    const CompiledMachine::Transition* t = find_transition(nullptr, "");
    if (t == nullptr) return;
    execute_actions(t->effects, result);
    ++result.transitions_taken;
    enter(t->target, result);
  }
  throw LivelockError("instance '" + name_ + "' chained more than " +
                      std::to_string(kCompletionBound) +
                      " completion transitions in state '" +
                      machine_->states()[state_].name + "'");
}

void CompiledInstance::restore_overlay() {
  // Reverse order so a parameter name listed twice restores the original
  // value; slots assigned during this step keep their assigned value (the
  // AST path writes assignments through to the persistent variables while
  // parameters live only in the per-step working environment).
  for (auto it = overlay_.rbegin(); it != overlay_.rend(); ++it) {
    if (slot_stamp_[it->slot] == step_) continue;
    slots_[it->slot] = it->value;
    defined_[it->slot] = it->defined;
  }
  overlay_.clear();
}

StepResult CompiledInstance::deliver(const Event& event) {
  StepResult result;
  if (state_ == CompiledMachine::kNoState) {
    throw std::logic_error("instance '" + name_ + "' not started");
  }
  ++step_;
  overlay_.clear();
  if (event.signal != nullptr) {
    if (const auto* slots = machine_->param_slots(event.signal)) {
      for (std::size_t i = 0; i < slots->size(); ++i) {
        const std::uint16_t slot = (*slots)[i];
        overlay_.push_back({slot, slots_[slot], defined_[slot]});
        slots_[slot] = i < event.args.size() ? event.args[i] : 0;
        defined_[slot] = 1;
      }
    }
  }
  try {
    const CompiledMachine::Transition* t = find_transition(&event, "");
    if (t == nullptr) {
      restore_overlay();
      return result;  // unhandled signals are discarded
    }
    result.fired = true;
    execute_actions(t->effects, result);
    // Entry actions and completions see persistent variables only.
    restore_overlay();
    ++result.transitions_taken;
    enter(t->target, result);
    run_completions(result);
  } catch (...) {
    restore_overlay();  // no-op when already restored
    throw;
  }
  return result;
}

StepResult CompiledInstance::timer_fired(const std::string& timer) {
  StepResult result;
  if (state_ == CompiledMachine::kNoState) {
    throw std::logic_error("instance '" + name_ + "' not started");
  }
  const CompiledMachine::Transition* t = find_transition(nullptr, timer);
  if (t == nullptr) return result;  // stale timer: discard
  result.fired = true;
  execute_actions(t->effects, result);
  ++result.transitions_taken;
  enter(t->target, result);
  run_completions(result);
  return result;
}

const std::string& CompiledInstance::state_name() const {
  static const std::string kEmpty;
  if (state_ == CompiledMachine::kNoState) return kEmpty;
  return machine_->states()[state_].name;
}

long CompiledInstance::variable(const std::string& name) const {
  const std::uint16_t slot = machine_->slot_of(name);
  if (slot == kNoSlot || !defined_[slot]) {
    throw std::out_of_range("instance '" + name_ + "' has no variable '" +
                            name + "'");
  }
  return slots_[slot];
}

}  // namespace tut::efsm
