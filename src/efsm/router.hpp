// Signal routing over a (possibly hierarchical) composite structure.
//
// The parts of a structured class (the paper's Figure 5) communicate by
// signals through ports wired by connectors. Structural components are
// "hierarchically modeled using class diagrams and composite structure
// diagrams, until the behavior of the functional components can be
// expressed" (Section 4.1): a connector may end at a passive part whose own
// composite structure forwards the signal further, and delegation
// connectors hand signals up through boundary ports.
//
// The Router flattens this hierarchy. A signal sent by an active part
// travels through any number of passive-part boundaries and arrives at
// another active part, or leaves through the root class's boundary (the
// environment). The flattening identifies a passive class's boundary port
// with the (unique) part of that class, so every passive classifier may be
// instantiated at most once in the tree — the Router throws otherwise.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "uml/structure.hpp"

namespace tut::efsm {

/// Destination of a send: a (part, port) pair, or the environment when
/// `part == nullptr` (`port` then names the root boundary port if any).
struct Endpoint {
  const uml::Property* part = nullptr;
  const uml::Port* port = nullptr;

  bool is_environment() const noexcept { return part == nullptr; }
};

/// Routing table for a structured class and its nested passive parts.
class Router {
public:
  /// Builds the flattened table. Throws std::runtime_error when a passive
  /// classifier with internal structure is instantiated more than once.
  explicit Router(const uml::Class& root);

  /// Where a signal sent by active part `part` (at any nesting depth)
  /// through its class's port `port_name` arrives. Unconnected ports and
  /// root-boundary delegations route to the environment.
  Endpoint destination(const uml::Property& part,
                       const std::string& port_name) const;

  /// Where a signal injected from the environment through the root class's
  /// boundary port `port_name` arrives (Endpoint{} if unconnected).
  Endpoint boundary_destination(const std::string& port_name) const;

  /// All active parts reachable in the tree (the executable processes),
  /// in depth-first declaration order.
  const std::vector<const uml::Property*>& active_parts() const noexcept {
    return active_parts_;
  }

  const uml::Class& context() const noexcept { return *root_; }

private:
  // A node is a (part, port) attachment point; part == nullptr means a
  // boundary port of the root class.
  using Node = std::pair<const uml::Property*, const uml::Port*>;

  void collect(const uml::Class& cls, const uml::Property* as_part);
  Endpoint walk(Node from) const;

  const uml::Class* root_;
  std::vector<const uml::Property*> active_parts_;
  // part-of-passive-class for boundary identification: class -> its part.
  std::map<const uml::Class*, const uml::Property*> embodiment_;
  // Each node has up to two incident connector edges (outer and inner).
  std::map<Node, std::vector<Node>> edges_;
};

}  // namespace tut::efsm
