// tut::efsm — integer expression language for guards and actions.
//
// The paper models behaviour with "statechart diagrams combined with the UML
// 2.0 textual notation". This is our textual notation: a small, total,
// side-effect-free integer expression language used in transition guards,
// Assign/Compute/SetTimer actions and send arguments. It is interpreted by
// the EFSM runtime and translated one-to-one to C by the code generator.
//
// Grammar (C precedence):
//   expr   := or ('?' expr ':' expr)?
//   or     := and ('||' and)*
//   and    := cmp ('&&' cmp)*
//   cmp    := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//   add    := mul (('+'|'-') mul)*
//   mul    := unary (('*'|'/'|'%') unary)*
//   unary  := ('-'|'!')* primary
//   primary:= integer | identifier | '(' expr ')'
//
// Boolean results are 0/1. Division and modulo by zero throw EvalError, as
// does an identifier missing from the environment.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tut::efsm {

class ExprError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class EvalError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Variable bindings for evaluation.
using Env = std::map<std::string, long>;

/// A compiled expression (immutable AST). Compile once, evaluate many times.
class Expr {
public:
  /// Parses `text`. Throws ExprError on syntax errors.
  static Expr compile(std::string_view text);

  /// Evaluates under `env`. Throws EvalError on unknown identifiers or
  /// division/modulo by zero.
  long eval(const Env& env) const;

  /// Identifiers referenced by the expression (sorted, unique).
  std::vector<std::string> identifiers() const;

  /// The original source text.
  const std::string& text() const noexcept { return text_; }

  struct Node;

  /// The AST root, for translators (efsm::Program's bytecode compiler).
  const Node& root() const noexcept { return *root_; }

private:
  Expr() = default;
  std::string text_;
  std::shared_ptr<const Node> root_;
};

/// AST node. Exposed so translators (the bytecode compiler, potentially the
/// code generator) can walk the tree without re-parsing the text.
struct Expr::Node {
  enum class Op {
    Const,
    Var,
    Neg,
    Not,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Ternary,
  };

  Op op;
  long value = 0;    // Const
  std::string name;  // Var
  std::shared_ptr<const Node> a, b, c;

  long eval(const Env& env) const;
};

/// A compile-on-first-use cache, used by the runtime so each guard/action
/// string is parsed once per process. Lookups are heterogeneous: a hit costs
/// one hash of the string_view, never a temporary std::string.
class ExprCache {
public:
  const Expr& get(std::string_view text);

private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, Expr, Hash, std::equal_to<>> cache_;
};

}  // namespace tut::efsm
