// EFSM runtime: executes uml::StateMachine behaviours as asynchronous
// communicating extended finite state machines.
//
// An Instance holds the extended state (current state + integer variables)
// of one application process. Delivery of a signal or timer event fires the
// first eligible transition (declaration order, guard satisfied), executes
// its effect actions plus the target state's entry actions, then chains any
// eligible completion transitions. The instance does not own time or
// communication: computation cycles, outgoing sends and timer requests are
// returned in a StepResult for the caller (the co-simulator, or the simple
// Executor below) to realize.
#pragma once

#include <string>
#include <vector>

#include "efsm/expr.hpp"
#include "uml/statemachine.hpp"
#include "uml/structure.hpp"

namespace tut::efsm {

/// An incoming signal occurrence.
struct Event {
  const uml::Signal* signal = nullptr;
  std::string port;        ///< receiving port on the process's class
  std::vector<long> args;  ///< one value per signal parameter
};

/// An outgoing signal occurrence produced by a Send action.
struct Send {
  std::string port;  ///< sending port
  const uml::Signal* signal = nullptr;
  std::vector<long> args;
};

/// A timer request produced by SetTimer / ResetTimer actions.
struct TimerOp {
  enum class Kind { Set, Reset };
  Kind kind;
  std::string name;
  long delay = 0;  ///< Set only
};

/// Everything one event delivery produced.
struct StepResult {
  bool fired = false;             ///< an eligible transition was found
  long compute_cycles = 0;        ///< total cycles from Compute actions
  std::vector<Send> sends;        ///< in action order
  std::vector<TimerOp> timers;    ///< in action order
  std::size_t transitions_taken = 0;  ///< incl. chained completions
};

/// Thrown when completion transitions chain beyond a sane bound (a modelling
/// error: a guard-true completion cycle).
class LivelockError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// One executable state machine instance.
class Instance {
public:
  /// Binds to a behaviour. `name` identifies the instance in diagnostics
  /// (normally the application process name). Call start() before use.
  Instance(const uml::StateMachine& sm, std::string name);

  /// Enters the initial state (running entry actions and completion
  /// transitions). Returns what that produced.
  StepResult start();

  /// Forgets all extended state (current state and variables) and re-enters
  /// the initial state, as if the instance were freshly constructed. Used by
  /// the co-simulator's watchdog recovery to restart a hung process.
  StepResult reset();

  /// Rewinds to the freshly-constructed state — not started, declared
  /// variables at their initial values — without entering the initial state
  /// (unlike reset()). The parsed-expression cache is kept; it is keyed on
  /// immutable behaviour text, so reuse cannot change results.
  void rewind();

  /// Delivers a signal event. If no transition matches, the event is
  /// discarded (UML semantics for unhandled signal triggers) and
  /// `fired == false`.
  StepResult deliver(const Event& event);

  /// Delivers a timer expiry.
  StepResult timer_fired(const std::string& timer);

  // -- introspection ----------------------------------------------------------
  const std::string& name() const noexcept { return name_; }
  const uml::StateMachine& behavior() const noexcept { return *sm_; }
  const uml::State* state() const noexcept { return state_; }
  long variable(const std::string& name) const;
  const Env& variables() const noexcept { return vars_; }
  bool started() const noexcept { return state_ != nullptr; }

private:
  const uml::Transition* find_transition(const Event* event,
                                         const std::string& timer,
                                         const Env& env) const;
  void execute_actions(const std::vector<uml::Action>& actions, const Env& env,
                       StepResult& result);
  void enter(const uml::State& state, StepResult& result);
  void run_completions(StepResult& result);
  Env make_env(const Event* event) const;

  const uml::StateMachine* sm_;
  std::string name_;
  const uml::State* state_ = nullptr;
  Env vars_;
  ExprCache exprs_;
};

}  // namespace tut::efsm
