#include "efsm/machine.hpp"

namespace tut::efsm {

namespace {

constexpr std::size_t kCompletionBound = 1000;

}  // namespace

Instance::Instance(const uml::StateMachine& sm, std::string name)
    : sm_(&sm), name_(std::move(name)) {
  for (const auto& [var, initial] : sm.variables()) vars_[var] = initial;
}

StepResult Instance::start() {
  StepResult result;
  const uml::State* initial = sm_->initial_state();
  if (initial == nullptr) {
    throw std::logic_error("state machine '" + sm_->name() +
                           "' has no initial state");
  }
  enter(*initial, result);
  run_completions(result);
  return result;
}

StepResult Instance::reset() {
  state_ = nullptr;
  vars_.clear();
  for (const auto& [var, initial] : sm_->variables()) vars_[var] = initial;
  return start();
}

void Instance::rewind() {
  state_ = nullptr;
  vars_.clear();
  for (const auto& [var, initial] : sm_->variables()) vars_[var] = initial;
}

Env Instance::make_env(const Event* event) const {
  Env env = vars_;
  if (event != nullptr && event->signal != nullptr) {
    const auto& params = event->signal->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      env[params[i].name] = i < event->args.size() ? event->args[i] : 0;
    }
  }
  return env;
}

const uml::Transition* Instance::find_transition(const Event* event,
                                                 const std::string& timer,
                                                 const Env& env) const {
  for (const uml::Transition* t : sm_->outgoing(*state_)) {
    if (event != nullptr) {
      if (t->trigger_signal() != event->signal) continue;
      if (!t->trigger_port().empty() && t->trigger_port() != event->port) {
        continue;
      }
    } else if (!timer.empty()) {
      if (t->trigger_timer() != timer) continue;
    } else {
      if (!t->is_completion()) continue;
    }
    if (!t->guard().empty()) {
      // Guards are evaluated against variables plus event parameters; a
      // throwing guard is a modelling error and propagates.
      if (const_cast<ExprCache&>(exprs_).get(t->guard()).eval(env) == 0) {
        continue;
      }
    }
    return t;
  }
  return nullptr;
}

void Instance::execute_actions(const std::vector<uml::Action>& actions,
                               const Env& env, StepResult& result) {
  // Assignments become visible to subsequent actions: keep a working env.
  Env work = env;
  for (const uml::Action& a : actions) {
    switch (a.kind) {
      case uml::Action::Kind::Assign: {
        const long v = exprs_.get(a.expr).eval(work);
        work[a.var] = v;
        vars_[a.var] = v;
        break;
      }
      case uml::Action::Kind::Compute:
        result.compute_cycles += exprs_.get(a.expr).eval(work);
        break;
      case uml::Action::Kind::Send: {
        Send send;
        send.port = a.port;
        send.signal = a.signal;
        for (const std::string& arg : a.args) {
          send.args.push_back(exprs_.get(arg).eval(work));
        }
        result.sends.push_back(std::move(send));
        break;
      }
      case uml::Action::Kind::SetTimer:
        result.timers.push_back(
            {TimerOp::Kind::Set, a.var, exprs_.get(a.expr).eval(work)});
        break;
      case uml::Action::Kind::ResetTimer:
        result.timers.push_back({TimerOp::Kind::Reset, a.var, 0});
        break;
    }
  }
}

void Instance::enter(const uml::State& state, StepResult& result) {
  state_ = &state;
  execute_actions(state.entry_actions(), make_env(nullptr), result);
}

void Instance::run_completions(StepResult& result) {
  for (std::size_t i = 0; i < kCompletionBound; ++i) {
    const Env env = make_env(nullptr);
    const uml::Transition* t = find_transition(nullptr, "", env);
    if (t == nullptr) return;
    execute_actions(t->effects(), env, result);
    ++result.transitions_taken;
    enter(*t->target(), result);
  }
  throw LivelockError("instance '" + name_ + "' chained more than " +
                      std::to_string(kCompletionBound) +
                      " completion transitions in state '" + state_->name() +
                      "'");
}

StepResult Instance::deliver(const Event& event) {
  StepResult result;
  if (state_ == nullptr) {
    throw std::logic_error("instance '" + name_ + "' not started");
  }
  const Env env = make_env(&event);
  const uml::Transition* t = find_transition(&event, "", env);
  if (t == nullptr) return result;  // unhandled signals are discarded
  result.fired = true;
  execute_actions(t->effects(), env, result);
  ++result.transitions_taken;
  enter(*t->target(), result);
  run_completions(result);
  return result;
}

StepResult Instance::timer_fired(const std::string& timer) {
  StepResult result;
  if (state_ == nullptr) {
    throw std::logic_error("instance '" + name_ + "' not started");
  }
  const Env env = make_env(nullptr);
  const uml::Transition* t = find_transition(nullptr, timer, env);
  if (t == nullptr) return result;  // stale timer: discard
  result.fired = true;
  execute_actions(t->effects(), env, result);
  ++result.transitions_taken;
  enter(*t->target(), result);
  run_completions(result);
  return result;
}

long Instance::variable(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end()) {
    throw std::out_of_range("instance '" + name_ + "' has no variable '" +
                            name + "'");
  }
  return it->second;
}

}  // namespace tut::efsm
