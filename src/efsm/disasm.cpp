// Readable renderings of efsm::Program bytecode and whole CompiledMachine
// images. One format serves three consumers: `tut efsm dump` for humans,
// codegen::native debugging (diff the emitted C++ against the listing), and
// the tests, which pin a handful of listings so instruction selection
// changes are visible in review.

#include <cstdio>
#include <string>
#include <vector>

#include "efsm/program.hpp"
#include "uml/statemachine.hpp"

namespace tut::efsm {
namespace {

const char* op_name(Program::Op op) {
  switch (op) {
    case Program::Op::Const:   return "Const";
    case Program::Op::Slot:    return "Slot";
    case Program::Op::Missing: return "Missing";
    case Program::Op::Neg:     return "Neg";
    case Program::Op::Not:     return "Not";
    case Program::Op::Add:     return "Add";
    case Program::Op::Sub:     return "Sub";
    case Program::Op::Mul:     return "Mul";
    case Program::Op::Div:     return "Div";
    case Program::Op::Mod:     return "Mod";
    case Program::Op::ChkDiv:  return "ChkDiv";
    case Program::Op::ChkMod:  return "ChkMod";
    case Program::Op::Eq:      return "Eq";
    case Program::Op::Ne:      return "Ne";
    case Program::Op::Lt:      return "Lt";
    case Program::Op::Le:      return "Le";
    case Program::Op::Gt:      return "Gt";
    case Program::Op::Ge:      return "Ge";
    case Program::Op::Bool:    return "Bool";
    case Program::Op::LoadOne: return "LoadOne";
    case Program::Op::Jz:      return "Jz";
    case Program::Op::Jmp:     return "Jmp";
  }
  return "?";
}

void append_line(std::string& out, std::size_t pc, const char* op,
                 const std::string& operands, const std::string& comment) {
  char head[32];
  std::snprintf(head, sizeof head, "%04zu  ", pc);
  out += head;
  out += op;
  for (std::size_t n = std::char_traits<char>::length(op); n < 8; ++n)
    out += ' ';
  out += operands;
  if (!comment.empty()) {
    for (std::size_t n = operands.size(); n < 16; ++n) out += ' ';
    out += "; ";
    out += comment;
  }
  out += '\n';
}

std::string slot_comment(std::uint16_t slot,
                         const std::vector<std::string>* names) {
  if (names && slot < names->size()) return (*names)[slot];
  return {};
}

// Indents every line of a disassembly listing by `pad` spaces.
void append_indented(std::string& out, const std::string& text,
                     std::size_t pad) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    out.append(pad, ' ');
    out.append(text, pos, eol - pos);
    out += '\n';
    pos = eol + 1;
  }
}

void append_program(std::string& out, const char* label, const Program& p,
                    const std::vector<std::string>* slot_names,
                    std::size_t pad) {
  out.append(pad, ' ');
  out += label;
  out += '\n';
  append_indented(out, disassemble(p, slot_names), pad + 2);
}

void append_actions(std::string& out,
                    const std::vector<CompiledMachine::Action>& actions,
                    const std::vector<std::string>& slot_names,
                    std::size_t pad) {
  for (const auto& a : actions) {
    std::string label;
    switch (a.kind) {
      case uml::Action::Kind::Assign:
        label = "assign " + a.name + " :=";
        break;
      case uml::Action::Kind::Compute:
        label = "compute";
        break;
      case uml::Action::Kind::Send:
        label = "send " + (a.signal ? a.signal->name() : std::string("?")) +
                " via " + a.port;
        break;
      case uml::Action::Kind::SetTimer:
        label = "set_timer " + a.name + " after";
        break;
      case uml::Action::Kind::ResetTimer:
        label = "reset_timer " + a.name;
        break;
    }
    if (a.kind == uml::Action::Kind::ResetTimer) {
      out.append(pad, ' ');
      out += label;
      out += '\n';
      continue;
    }
    if (a.kind == uml::Action::Kind::Send) {
      out.append(pad, ' ');
      out += label;
      out += '\n';
      for (std::size_t i = 0; i < a.args.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "arg[%zu]:", i);
        append_program(out, buf, a.args[i], &slot_names, pad + 2);
      }
      continue;
    }
    append_program(out, label.c_str(), a.expr, &slot_names, pad);
  }
}

}  // namespace

std::string disassemble(const Program& program,
                        const std::vector<std::string>* slot_names) {
  std::string out;
  const auto& code = program.code();
  const auto& consts = program.consts();
  const auto& missing = program.missing_names();
  char buf[64];
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const auto& in = code[pc];
    std::string operands;
    std::string comment;
    switch (in.op) {
      case Program::Op::Const:
        std::snprintf(buf, sizeof buf, "r%u, #%u", in.dst, in.a);
        operands = buf;
        if (in.a < consts.size())
          comment = "= " + std::to_string(consts[in.a]);
        break;
      case Program::Op::Slot:
        std::snprintf(buf, sizeof buf, "r%u, [%u]", in.dst, in.a);
        operands = buf;
        comment = slot_comment(in.a, slot_names);
        break;
      case Program::Op::Missing:
        std::snprintf(buf, sizeof buf, "#%u", in.a);
        operands = buf;
        if (in.a < missing.size()) comment = "'" + missing[in.a] + "'";
        break;
      case Program::Op::Neg:
      case Program::Op::Not:
      case Program::Op::Bool:
        std::snprintf(buf, sizeof buf, "r%u, r%u", in.dst, in.a);
        operands = buf;
        break;
      case Program::Op::Add:
      case Program::Op::Sub:
      case Program::Op::Mul:
      case Program::Op::Div:
      case Program::Op::Mod:
      case Program::Op::Eq:
      case Program::Op::Ne:
      case Program::Op::Lt:
      case Program::Op::Le:
      case Program::Op::Gt:
      case Program::Op::Ge:
        std::snprintf(buf, sizeof buf, "r%u, r%u, r%u", in.dst, in.a, in.b);
        operands = buf;
        break;
      case Program::Op::ChkDiv:
      case Program::Op::ChkMod:
        std::snprintf(buf, sizeof buf, "r%u", in.a);
        operands = buf;
        break;
      case Program::Op::LoadOne:
        std::snprintf(buf, sizeof buf, "r%u", in.dst);
        operands = buf;
        break;
      case Program::Op::Jz:
        std::snprintf(buf, sizeof buf, "r%u, @%04u", in.a, in.b);
        operands = buf;
        break;
      case Program::Op::Jmp:
        std::snprintf(buf, sizeof buf, "@%04u", in.b);
        operands = buf;
        break;
    }
    append_line(out, pc, op_name(in.op), operands, comment);
  }
  if (code.empty()) out = "(empty)\n";
  return out;
}

std::string disassemble(const CompiledMachine& machine) {
  std::string out;
  out += "machine " + machine.source().name() + "\n";
  char buf[96];
  std::snprintf(buf, sizeof buf, "  slots: %u  max_regs: %u  states: %zu"
                "  transitions: %zu\n",
                machine.slot_count(), machine.max_regs(),
                machine.states().size(), machine.transitions().size());
  out += buf;
  const auto& names = machine.slot_names();
  for (const auto& [slot, value] : machine.initial_values()) {
    std::snprintf(buf, sizeof buf, "  var [%u] %s = %ld\n", slot,
                  names[slot].c_str(), value);
    out += buf;
  }
  const auto& states = machine.states();
  const auto& transitions = machine.transitions();
  for (std::size_t s = 0; s < states.size(); ++s) {
    const auto& st = states[s];
    out += "  state [" + std::to_string(s) + "] " + st.name;
    if (machine.initial_state() == s) out += " (initial)";
    out += "\n";
    if (!st.entry.empty()) {
      out += "    entry:\n";
      append_actions(out, st.entry, names, 6);
    }
    for (std::uint32_t ti : st.outgoing) {
      const auto& t = transitions[ti];
      out += "    transition [" + std::to_string(ti) + "] -> [" +
             std::to_string(t.target) + "] " + states[t.target].name;
      if (t.trigger_signal) {
        out += "  on " + t.trigger_signal->name();
        if (!t.trigger_port.empty()) out += "@" + t.trigger_port;
      } else if (!t.trigger_timer.empty()) {
        out += "  on timer " + t.trigger_timer;
      } else if (t.completion) {
        out += "  on completion";
      }
      out += "\n";
      if (t.has_guard) append_program(out, "guard:", t.guard, &names, 6);
      if (!t.effects.empty()) {
        out += "      effects:\n";
        append_actions(out, t.effects, names, 8);
      }
    }
  }
  return out;
}

}  // namespace tut::efsm
