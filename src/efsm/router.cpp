#include "efsm/router.hpp"

#include <set>
#include <stdexcept>

namespace tut::efsm {

namespace {

bool has_structure(const uml::Class& cls) {
  return !cls.parts().empty() || !cls.connectors().empty();
}

}  // namespace

Router::Router(const uml::Class& root) : root_(&root) {
  collect(root, nullptr);
}

void Router::collect(const uml::Class& cls, const uml::Property* as_part) {
  for (const uml::Connector* conn : cls.connectors()) {
    Node nodes[2];
    const uml::ConnectorEnd ends[2] = {conn->end0(), conn->end1()};
    for (int i = 0; i < 2; ++i) {
      if (ends[i].part != nullptr) {
        nodes[i] = {ends[i].part, ends[i].port};
      } else {
        // Boundary port of `cls`: identified with the part embodying `cls`
        // in its parent (nullptr for the root class itself).
        nodes[i] = {as_part, ends[i].port};
      }
    }
    edges_[nodes[0]].push_back(nodes[1]);
    edges_[nodes[1]].push_back(nodes[0]);
  }
  for (const uml::Property* part : cls.parts()) {
    const uml::Class* type = part->part_type();
    if (type == nullptr) continue;
    if (type->is_active()) {
      active_parts_.push_back(part);
      continue;
    }
    if (!has_structure(*type)) continue;
    auto [it, inserted] = embodiment_.emplace(type, part);
    if (!inserted) {
      throw std::runtime_error(
          "structural class '" + type->name() +
          "' is instantiated more than once ('" + it->second->name() +
          "' and '" + part->name() +
          "'); the flattening router requires unique instantiation");
    }
    collect(*type, part);
  }
}

Endpoint Router::walk(Node from) const {
  auto it = edges_.find(from);
  if (it == edges_.end() || it->second.empty()) return {};  // unconnected

  std::set<Node> visited{from};
  Node prev = from;
  Node current = it->second.front();
  for (;;) {
    // Root boundary: the environment (report through which port we left).
    if (current.first == nullptr) return Endpoint{nullptr, current.second};

    const uml::Class* type = current.first->part_type();
    if (type != nullptr && type->is_active()) {
      return Endpoint{current.first, current.second};
    }

    // Passive part boundary: continue through the other incident edge.
    auto next_it = edges_.find(current);
    const Node* next = nullptr;
    if (next_it != edges_.end()) {
      for (const Node& cand : next_it->second) {
        if (cand != prev) {
          next = &cand;
          break;
        }
      }
    }
    if (next == nullptr) return {};  // dead end inside a structural component
    if (!visited.insert(current).second) return {};  // connector cycle
    prev = current;
    current = *next;
  }
}

Endpoint Router::destination(const uml::Property& part,
                             const std::string& port_name) const {
  const uml::Class* type = part.part_type();
  if (type == nullptr) return {};
  const uml::Port* port = type->port(port_name);
  if (port == nullptr) return {};
  return walk({&part, port});
}

Endpoint Router::boundary_destination(const std::string& port_name) const {
  const uml::Port* port = root_->port(port_name);
  if (port == nullptr) return {};
  return walk({nullptr, port});
}

}  // namespace tut::efsm
