// tut::efsm — compiled EFSM execution: expression bytecode and machine
// images.
//
// The paper's flow generates C code from the UML model before simulation;
// this module is the analogous lowering step inside the co-simulator. An
// efsm::Program compiles one Expr AST into a flat register bytecode run by a
// tight switch interpreter — no pointer chasing, no std::map environment. A
// CompiledMachine lowers a whole uml::StateMachine once: identifiers become
// dense variable slots, guards/assignments/timer delays/send arguments
// become Programs, and states carry their outgoing-transition dispatch
// tables. CompiledInstance is the per-process mutable state (slot file +
// current state) stepping over a shared read-only CompiledMachine — one
// machine image serves every process and every scenario of a batch run.
//
// Semantics are pinned to the AST interpreter (efsm::Instance): identical
// StepResults, identical laziness (short-circuit &&/||/?: skip evaluation,
// so an unknown identifier or division by zero only throws when the AST
// path would), identical error messages. The only divergence is *when*
// malformed expression text surfaces: the AST path throws ExprError at
// first evaluation, the compiled path at CompiledMachine construction.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "efsm/expr.hpp"
#include "efsm/machine.hpp"
#include "uml/statemachine.hpp"

namespace tut::efsm {

/// Invalid slot index.
inline constexpr std::uint16_t kNoSlot =
    std::numeric_limits<std::uint16_t>::max();

/// One Expr lowered to flat register bytecode. Registers are allocated in a
/// stack discipline (operand depth = register index), the result lands in
/// register 0. Jumps implement the short-circuit operators, and division /
/// modulo compile divisor-first with an explicit zero check, so evaluation
/// order, laziness and which-error-wins match Expr::eval exactly.
class Program {
 public:
  enum class Op : std::uint8_t {
    Const,    ///< r[dst] = consts[a]
    Slot,     ///< r[dst] = slots[a]; throws EvalError when slot undefined
    Missing,  ///< throws EvalError("unknown identifier 'names[a]'")
    Neg,      ///< r[dst] = -r[a]
    Not,      ///< r[dst] = r[a] == 0
    Add,      ///< r[dst] = r[a] + r[b]   (Sub/Mul analogous)
    Sub,
    Mul,
    Div,      ///< r[dst] = r[a] / r[b]; r[b] pre-checked by ChkDiv
    Mod,
    ChkDiv,   ///< throws EvalError("division by zero") when r[a] == 0
    ChkMod,   ///< throws EvalError("modulo by zero") when r[a] == 0
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Bool,     ///< r[dst] = r[a] != 0
    LoadOne,  ///< r[dst] = 1
    Jz,       ///< if r[a] == 0 jump to code[b]
    Jmp,      ///< jump to code[b]
  };

  struct Instr {
    Op op;
    std::uint16_t dst = 0;
    std::uint16_t a = 0;
    std::uint16_t b = 0;
  };

  /// Identifier-to-slot layout used at compile time. Identifiers absent
  /// from the map compile to Missing (they throw if and when evaluated,
  /// mirroring the AST interpreter's lazy unknown-identifier errors).
  using SlotMap = std::unordered_map<std::string, std::uint16_t>;

  /// Lowers `expr` against `slots`.
  static Program compile(const Expr& expr, const SlotMap& slots);

  /// Evaluation context: the slot file plus per-slot defined bits (an
  /// undefined slot reads as an unknown identifier) and the slot names for
  /// error messages.
  struct Slots {
    const long* values = nullptr;
    const std::uint8_t* defined = nullptr;
    const std::vector<std::string>* names = nullptr;
  };

  /// Runs the program. `regs` must hold at least reg_count() longs.
  long run(const Slots& slots, long* regs) const;

  std::uint16_t reg_count() const noexcept { return reg_count_; }
  std::size_t size() const noexcept { return code_.size(); }
  const std::vector<Instr>& code() const noexcept { return code_; }
  /// Constant pool (indexed by Const's `a`), for disassembly and native
  /// code generation.
  const std::vector<long>& consts() const noexcept { return consts_; }
  /// Identifier names behind Missing instructions (indexed by `a`), for
  /// static analyzers that want to report the unknown name without running.
  const std::vector<std::string>& missing_names() const noexcept {
    return missing_;
  }

 private:
  std::vector<Instr> code_;
  std::vector<long> consts_;
  std::vector<std::string> missing_;  ///< names for Missing instructions
  std::uint16_t reg_count_ = 1;
  friend class ProgramCompiler;
};

/// A uml::StateMachine lowered once into a flat, shared, read-only image.
/// Thread-safe after construction: any number of CompiledInstances (across
/// batch scenarios and threads) step over one CompiledMachine.
class CompiledMachine {
 public:
  /// Lowers `sm`. Throws ExprError on malformed expression text anywhere in
  /// the machine (the AST path would defer that to first evaluation).
  explicit CompiledMachine(const uml::StateMachine& sm);

  struct Action {
    uml::Action::Kind kind = uml::Action::Kind::Compute;
    std::uint16_t slot = kNoSlot;   ///< Assign target
    std::string name;               ///< Assign var / SetTimer/ResetTimer name
    std::string port;               ///< Send port
    const uml::Signal* signal = nullptr;  ///< Send signal
    Program expr;                   ///< Assign/Compute/SetTimer expression
    std::vector<Program> args;      ///< Send argument expressions
  };

  struct Transition {
    const uml::Signal* trigger_signal = nullptr;
    std::string trigger_port;  ///< empty matches any port
    std::string trigger_timer;
    bool completion = false;
    bool has_guard = false;
    Program guard;
    std::vector<Action> effects;
    std::uint32_t target = 0;  ///< state index
  };

  struct State {
    std::string name;
    std::vector<Action> entry;
    std::vector<std::uint32_t> outgoing;  ///< transition indices, decl order
  };

  const uml::StateMachine& source() const noexcept { return *sm_; }
  const std::vector<State>& states() const noexcept { return states_; }
  const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  /// Initial state index; kNoState when the machine has none (start() then
  /// throws, exactly like the AST path).
  static constexpr std::uint32_t kNoState = 0xffffffffu;
  std::uint32_t initial_state() const noexcept { return initial_; }

  std::uint16_t slot_count() const noexcept {
    return static_cast<std::uint16_t>(slot_names_.size());
  }
  const std::vector<std::string>& slot_names() const noexcept {
    return slot_names_;
  }
  std::uint16_t slot_of(std::string_view name) const;
  /// Declared variables as (slot, initial value).
  const std::vector<std::pair<std::uint16_t, long>>& initial_values()
      const noexcept {
    return initials_;
  }
  /// Per-parameter slots for a trigger signal (one slot per declared signal
  /// parameter); nullptr for signals that trigger no transition of this
  /// machine (their deliveries cannot reach a guard, so no overlay is
  /// needed).
  const std::vector<std::uint16_t>* param_slots(const uml::Signal* s) const;

  /// Scratch register file size any Program of this machine may need.
  std::uint16_t max_regs() const noexcept { return max_regs_; }

 private:
  std::uint16_t intern_slot(const std::string& name);
  Program lower(const std::string& text);
  Action lower_action(const uml::Action& a);

  const uml::StateMachine* sm_;
  std::vector<State> states_;
  std::vector<Transition> transitions_;
  std::uint32_t initial_ = kNoState;
  std::vector<std::string> slot_names_;
  std::unordered_map<std::string, std::uint16_t> slot_index_;
  std::vector<std::pair<std::uint16_t, long>> initials_;
  std::unordered_map<const uml::Signal*, std::vector<std::uint16_t>> params_;
  std::uint16_t max_regs_ = 1;
};

/// Mutable execution state of one process over a shared CompiledMachine.
/// The API mirrors efsm::Instance; StepResults are identical for identical
/// event sequences.
class CompiledInstance {
 public:
  CompiledInstance(const CompiledMachine& machine, std::string name);

  StepResult start();
  StepResult reset();
  StepResult deliver(const Event& event);
  StepResult timer_fired(const std::string& timer);

  /// Rewinds to the freshly-constructed state — not started, slots at their
  /// declared initial values — without executing entry actions (unlike
  /// reset(), which restarts the machine). Step-for-step behaviour after
  /// rewind() is identical to a new instance; scenario batches use it to
  /// reuse one instance's allocations across runs.
  void rewind();

  const std::string& name() const noexcept { return name_; }
  const CompiledMachine& machine() const noexcept { return *machine_; }
  bool started() const noexcept {
    return state_ != CompiledMachine::kNoState;
  }
  /// Current state name (empty before start()).
  const std::string& state_name() const;
  /// Value of a persistent variable (declared, or created by an Assign).
  /// Throws std::out_of_range like Instance::variable.
  long variable(const std::string& name) const;

 private:
  const CompiledMachine::Transition* find_transition(const Event* event,
                                                     const std::string& timer);
  void execute_actions(const std::vector<CompiledMachine::Action>& actions,
                       StepResult& result);
  void enter(std::uint32_t state, StepResult& result);
  void run_completions(StepResult& result);
  void restore_overlay();
  long eval(const Program& p);
  void init_slots();

  const CompiledMachine* machine_;
  std::string name_;
  std::uint32_t state_ = CompiledMachine::kNoState;
  std::vector<long> slots_;
  std::vector<std::uint8_t> defined_;
  std::vector<long> regs_;  ///< scratch register file

  // Parameter-overlay bookkeeping for the current delivery: saved (slot,
  // value, defined) triples restored after the triggered transition's
  // effects unless the slot was assigned during the step.
  struct Saved {
    std::uint16_t slot;
    long value;
    std::uint8_t defined;
  };
  std::vector<Saved> overlay_;
  std::vector<std::uint64_t> slot_stamp_;  ///< last step that wrote the slot
  std::uint64_t step_ = 0;
};

/// Renders one program as readable bytecode, one instruction per line
/// (`%04zu  Op      dst, a, b   ; comment`). `slot_names`, when given,
/// resolves Slot operands to identifiers in the comment column. Shared by
/// codegen debugging, `tut efsm dump` and the tests.
std::string disassemble(const Program& program,
                        const std::vector<std::string>* slot_names = nullptr);

/// Renders a whole machine: slots with initial values, then every state with
/// its entry actions and outgoing transitions, each embedded Program
/// disassembled inline.
std::string disassemble(const CompiledMachine& machine);

}  // namespace tut::efsm
