// Regenerates Tables 1-3 and Figure 3 of the paper: the TUT-Profile
// stereotype summary, the tagged values of the application and platform
// stereotypes, and the profile hierarchy. Then benchmarks profile
// installation and design-rule validation.
#include "bench_util.hpp"
#include "diagram/diagram.hpp"
#include "profile/tut_profile.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

void print_tables() {
  uml::Model model("profile_tables");
  const profile::TutProfile prof = profile::install(model);

  bench::banner("Figure 3 + Table 1: TUT-Profile stereotype summary");
  std::cout << diagram::profile_hierarchy_text(prof);

  bench::banner("Table 2: tagged values of application stereotypes");
  for (const uml::Stereotype* s :
       {prof.application, prof.application_component, prof.application_process,
        prof.process_group, prof.process_grouping}) {
    std::cout << diagram::stereotype_table_text(*s);
  }

  bench::banner("Table 3: tagged values of platform stereotypes");
  for (const uml::Stereotype* s :
       {prof.component, prof.component_instance, prof.communication_segment,
        prof.communication_wrapper, prof.hibi_segment, prof.hibi_wrapper}) {
    std::cout << diagram::stereotype_table_text(*s);
  }
}

void BM_InstallProfile(benchmark::State& state) {
  for (auto _ : state) {
    uml::Model model("m");
    benchmark::DoNotOptimize(profile::install(model));
  }
}
BENCHMARK(BM_InstallProfile)->Unit(benchmark::kMicrosecond);

void BM_ValidateTutmacModel(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  const uml::Validator validator = profile::make_validator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator.run(*sys.model));
  }
}
BENCHMARK(BM_ValidateTutmacModel)->Unit(benchmark::kMicrosecond);

void BM_StereotypeLookup(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.model->stereotyped("ApplicationProcess"));
  }
}
BENCHMARK(BM_StereotypeLookup)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_tables);
}
