// A4 (part 1): microbenchmarks of the execution substrates — event kernel
// throughput, EFSM dispatch, expression evaluation, log append/parse.
#include "bench_util.hpp"
#include "efsm/machine.hpp"
#include "efsm/program.hpp"
#include "sim/event.hpp"
#include "sim/kernel.hpp"
#include "sim/log.hpp"
#include "uml/model.hpp"

using namespace tut;

namespace {

void print_header() {
  bench::banner("A4: kernel / EFSM / log microbenchmarks");
  std::cout << "(tool-scalability substrate: events, transitions, log lines)\n";
}

void BM_KernelScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      kernel.schedule_at(i * 7 % 1000, [&fired] { ++fired; });
    }
    kernel.run(1000);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelScheduleAndRun)->Arg(1000)->Arg(100000)->Unit(benchmark::kMicrosecond);

// Run-to-completion steps show up as zero-delay self-schedules; this is the
// bucket fast path (no heap sift at all).
void BM_KernelZeroDelayCascade(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    std::size_t fired = 0;
    std::function<void()> step = [&] {
      if (++fired < n) kernel.schedule_at(kernel.now(), step);
    };
    kernel.schedule_at(0, step);
    kernel.run(10);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelZeroDelayCascade)->Arg(10000)->Unit(benchmark::kMicrosecond);

// POD counterpart of the cascade above: the EventQueue hands back 16-byte
// records instead of closures, so the whole loop is schedule/poll with no
// allocation. Registered adjacent to its closure twin — run with
// --benchmark_repetitions=N --benchmark_enable_random_interleaving for an
// interleaved A/B comparison (medians go into BENCH_sim.json).
void BM_EventQueueZeroDelayCascade(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    std::size_t fired = 0;
    q.schedule_at(0, {sim::EventRec::Kind::StepDone, 0, 0, 0});
    sim::EventRec ev;
    while (q.poll(10, ev)) {
      if (++fired < n) {
        q.schedule_at(q.now(), {sim::EventRec::Kind::StepDone, 0, 0, 0});
      }
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueZeroDelayCascade)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// Many events on few distinct timestamps: dispatch cost is dominated by
// moving the handlers out of the heap, not by sift depth.
void BM_KernelSameTimeBurst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Kernel kernel;
    kernel.reserve(n);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      kernel.schedule_at(1 + i % 4, [&fired] { ++fired; });
    }
    kernel.run(10);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KernelSameTimeBurst)->Arg(10000)->Unit(benchmark::kMicrosecond);

// POD counterpart of the burst: same four timestamps, heap of flat Entry
// records instead of heap-allocated std::function handlers.
void BM_EventQueueSameTimeBurst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    q.reserve(n);
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule_at(1 + i % 4, {sim::EventRec::Kind::StepDone,
                                static_cast<std::uint32_t>(i), 0, 0});
    }
    sim::EventRec ev;
    while (q.poll(10, ev)) ++fired;
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueSameTimeBurst)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_ExprCompile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        efsm::Expr::compile("pending > 0 && slotcnt % 8 == 0 || len * 4 > 64"));
  }
}
BENCHMARK(BM_ExprCompile)->Unit(benchmark::kMicrosecond);

void BM_ExprEval(benchmark::State& state) {
  const auto expr =
      efsm::Expr::compile("pending > 0 && slotcnt % 8 == 0 || len * 4 > 64");
  const efsm::Env env{{"pending", 3}, {"slotcnt", 16}, {"len", 12}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.eval(env));
  }
}
BENCHMARK(BM_ExprEval);

// Bytecode counterpart of BM_ExprEval: the same expression lowered once to
// an efsm::Program and run over a flat slot file.
void BM_ProgramEval(benchmark::State& state) {
  const auto expr =
      efsm::Expr::compile("pending > 0 && slotcnt % 8 == 0 || len * 4 > 64");
  const efsm::Program::SlotMap slot_map{
      {"pending", 0}, {"slotcnt", 1}, {"len", 2}};
  const auto program = efsm::Program::compile(expr, slot_map);
  const std::vector<std::string> names{"pending", "slotcnt", "len"};
  const long values[] = {3, 16, 12};
  const std::uint8_t defined[] = {1, 1, 1};
  const efsm::Program::Slots slots{values, defined, &names};
  std::vector<long> regs(program.reg_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(program.run(slots, regs.data()));
  }
}
BENCHMARK(BM_ProgramEval);

void BM_EfsmDispatch(benchmark::State& state) {
  uml::Model model("m");
  auto& sig = model.create_signal("S");
  sig.add_parameter("x", "int");
  auto& cls = model.create_class("C", nullptr, true);
  model.add_port(cls, "in").provide(sig);
  auto& sm = model.create_behavior(cls);
  sm.declare_variable("n", 0);
  auto& idle = model.add_state(sm, "Idle", true);
  model.add_transition(sm, idle, idle, sig, "in")
      .set_guard("x > 0")
      .add_effect(uml::Action::assign("n", "n + x"))
      .add_effect(uml::Action::compute("10"));
  efsm::Instance inst(sm, "i");
  inst.start();
  const efsm::Event ev{&sig, "in", {5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.deliver(ev));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EfsmDispatch);

// Bytecode counterpart of BM_EfsmDispatch: the identical machine lowered to
// a CompiledMachine, the step driven through a CompiledInstance.
void BM_EfsmDispatchCompiled(benchmark::State& state) {
  uml::Model model("m");
  auto& sig = model.create_signal("S");
  sig.add_parameter("x", "int");
  auto& cls = model.create_class("C", nullptr, true);
  model.add_port(cls, "in").provide(sig);
  auto& sm = model.create_behavior(cls);
  sm.declare_variable("n", 0);
  auto& idle = model.add_state(sm, "Idle", true);
  model.add_transition(sm, idle, idle, sig, "in")
      .set_guard("x > 0")
      .add_effect(uml::Action::assign("n", "n + x"))
      .add_effect(uml::Action::compute("10"));
  const efsm::CompiledMachine machine(sm);
  efsm::CompiledInstance inst(machine, "i");
  inst.start();
  const efsm::Event ev{&sig, "in", {5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.deliver(ev));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EfsmDispatchCompiled);

void BM_LogAppend(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimulationLog log;
    for (int i = 0; i < 1000; ++i) {
      log.run(static_cast<sim::Time>(i), "proc", 100, 2000);
    }
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_LogAppend)->Unit(benchmark::kMicrosecond);

void BM_LogParse(benchmark::State& state) {
  sim::SimulationLog log;
  for (int i = 0; i < 1000; ++i) {
    log.run(static_cast<sim::Time>(i), "proc", 100, 2000);
    log.send(static_cast<sim::Time>(i), "a", "b", "Sig", 64);
  }
  const std::string text = log.to_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::SimulationLog::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_LogParse)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
