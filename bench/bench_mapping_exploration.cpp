// Ablation A3: mapping alternatives (Section 4.3). Simulates the paper's
// Figure 8 mapping against load-balanced and single-PE mappings, and lets
// the exploration tool propose a mapping from profiling data, comparing its
// estimate with the measured result.
#include "bench_util.hpp"
#include "explore/explore.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

struct Result {
  std::string name;
  sim::Time busiest_pe = 0;
  sim::Time total_busy = 0;
  std::uint64_t bus_transfers = 0;
};

Result run_mapping(const std::string& name, tutmac::MappingChoice choice) {
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  opt.mapping = choice;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);

  Result r;
  r.name = name;
  for (const auto& [pe, stats] : simulation->pe_stats()) {
    r.busiest_pe = std::max(r.busiest_pe, stats.busy_time);
    r.total_busy += stats.busy_time;
  }
  for (const auto& [seg, stats] : simulation->segment_stats()) {
    r.bus_transfers += stats.transfers;
  }
  return r;
}

void print_ablation() {
  bench::banner("A3: mapping alternatives (10 ms TUTMAC workload)");
  std::printf("%-26s %16s %14s %14s\n", "mapping", "busiest PE", "total busy",
              "bus transfers");
  for (const Result& r :
       {run_mapping("paper (figure 8)", tutmac::MappingChoice::Paper),
        run_mapping("load-balanced", tutmac::MappingChoice::LoadBalanced),
        run_mapping("single PE", tutmac::MappingChoice::SinglePe)}) {
    std::printf("%-26s %16llu %14llu %14llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.busiest_pe),
                static_cast<unsigned long long>(r.total_busy),
                static_cast<unsigned long long>(r.bus_transfers));
  }

  // Exploration: propose a mapping from profiling data and report its
  // estimate (the feedback loop of Section 4.4).
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  const auto stats = explore::ProcessStats::from_report(report);

  explore::Grouping grouping = {{"rca", "rmng"}, {"msduRec", "msduDel"},
                                {"mng", "frag"}, {"crc"}};
  const std::vector<std::string> group_type = {"general", "general", "general",
                                               "hardware"};
  const std::vector<explore::PeDesc> pes = {
      {"processor1", 50, "general"},
      {"processor2", 50, "general"},
      {"processor3", 50, "general"},
      {"accelerator1", 100, "hw_accelerator"}};
  const auto proposal = explore::propose_mapping(grouping, group_type, stats, pes);
  std::printf("\nautomatic proposal for the paper's groups:\n");
  const char* names[] = {"group1", "group2", "group3", "group4"};
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    std::printf("  %s -> %s\n", names[g], proposal.target[g].c_str());
  }
  std::printf("  estimated makespan %lld ticks (comm %lld)\n",
              static_cast<long long>(proposal.cost.makespan),
              static_cast<long long>(proposal.cost.comm_cost));
}

void BM_ProposeMapping(benchmark::State& state) {
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  const auto stats = explore::ProcessStats::from_report(report);
  const explore::Grouping grouping = {{"rca", "rmng"}, {"msduRec", "msduDel"},
                                      {"mng", "frag"}, {"crc"}};
  const std::vector<std::string> group_type = {"general", "general", "general",
                                               "hardware"};
  const std::vector<explore::PeDesc> pes = {
      {"processor1", 50, "general"},
      {"processor2", 50, "general"},
      {"processor3", 50, "general"},
      {"accelerator1", 100, "hw_accelerator"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explore::propose_mapping(grouping, group_type, stats, pes));
  }
}
BENCHMARK(BM_ProposeMapping)->Unit(benchmark::kMicrosecond);

void BM_SimulateMappingVariant(benchmark::State& state) {
  const auto choice = static_cast<tutmac::MappingChoice>(state.range(0));
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  opt.mapping = choice;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.simulate(view));
  }
}
BENCHMARK(BM_SimulateMappingVariant)
    ->Arg(static_cast<int>(tutmac::MappingChoice::Paper))
    ->Arg(static_cast<int>(tutmac::MappingChoice::LoadBalanced))
    ->Arg(static_cast<int>(tutmac::MappingChoice::SinglePe))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_ablation);
}
