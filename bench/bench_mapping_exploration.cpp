// Ablation A3: mapping alternatives (Section 4.3). Simulates the paper's
// Figure 8 mapping against load-balanced and single-PE mappings, and lets
// the exploration tool propose a mapping from profiling data, comparing its
// estimate with the measured result.
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "explore/engine.hpp"
#include "explore/explore.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

/// --threads N for the engine ablation (0 = hardware concurrency).
std::size_t g_threads = 0;

/// Synthetic workload big enough that one candidate evaluation is heavy:
/// `n` processes on a ring with chords, deterministic LCG loads/volumes.
explore::ProcessStats synthetic_stats(std::size_t n) {
  explore::ProcessStats s;
  for (std::size_t i = 0; i < n; ++i) {
    s.processes.push_back("p" + std::to_string(i));
  }
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  for (std::size_t i = 0; i < n; ++i) {
    s.cycles[s.processes[i]] = static_cast<long>(500 + next() % 8000);
    s.signals[{s.processes[i], s.processes[(i + 1) % n]}] = 20 + next() % 400;
    s.signals[{s.processes[i], s.processes[(i + 5) % n]}] = next() % 60;
  }
  return s;
}

std::vector<explore::PeDesc> synthetic_platform() {
  return {{"cpu0", 100, "general"},    {"cpu1", 100, "general"},
          {"cpu2", 50, "general"},     {"dsp0", 50, "general"},
          {"acc0", 200, "hw_accelerator"}};
}

explore::ExploreEngine make_engine(std::size_t threads) {
  explore::EngineOptions eopt;
  eopt.threads = threads;
  eopt.restarts_per_size = 4;
  return explore::ExploreEngine(synthetic_stats(48), synthetic_platform(), {},
                                eopt);
}

struct Result {
  std::string name;
  sim::Time busiest_pe = 0;
  sim::Time total_busy = 0;
  std::uint64_t bus_transfers = 0;
};

Result run_mapping(const std::string& name, tutmac::MappingChoice choice) {
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  opt.mapping = choice;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);

  Result r;
  r.name = name;
  for (const auto& [pe, stats] : simulation->pe_stats()) {
    r.busiest_pe = std::max(r.busiest_pe, stats.busy_time);
    r.total_busy += stats.busy_time;
  }
  for (const auto& [seg, stats] : simulation->segment_stats()) {
    r.bus_transfers += stats.transfers;
  }
  return r;
}

void print_ablation() {
  bench::banner("A3: mapping alternatives (10 ms TUTMAC workload)");
  std::printf("%-26s %16s %14s %14s\n", "mapping", "busiest PE", "total busy",
              "bus transfers");
  for (const Result& r :
       {run_mapping("paper (figure 8)", tutmac::MappingChoice::Paper),
        run_mapping("load-balanced", tutmac::MappingChoice::LoadBalanced),
        run_mapping("single PE", tutmac::MappingChoice::SinglePe)}) {
    std::printf("%-26s %16llu %14llu %14llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.busiest_pe),
                static_cast<unsigned long long>(r.total_busy),
                static_cast<unsigned long long>(r.bus_transfers));
  }

  // Exploration: propose a mapping from profiling data and report its
  // estimate (the feedback loop of Section 4.4).
  tutmac::Options opt;
  opt.horizon = 10'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  const auto stats = explore::ProcessStats::from_report(report);

  explore::Grouping grouping = {{"rca", "rmng"}, {"msduRec", "msduDel"},
                                {"mng", "frag"}, {"crc"}};
  const std::vector<std::string> group_type = {"general", "general", "general",
                                               "hardware"};
  const std::vector<explore::PeDesc> pes = {
      {"processor1", 50, "general"},
      {"processor2", 50, "general"},
      {"processor3", 50, "general"},
      {"accelerator1", 100, "hw_accelerator"}};
  const auto proposal = explore::propose_mapping(grouping, group_type, stats, pes);
  std::printf("\nautomatic proposal for the paper's groups:\n");
  const char* names[] = {"group1", "group2", "group3", "group4"};
  for (std::size_t g = 0; g < grouping.size(); ++g) {
    std::printf("  %s -> %s\n", names[g], proposal.target[g].c_str());
  }
  std::printf("  estimated makespan %lld ticks (comm %lld)\n",
              static_cast<long long>(proposal.cost.makespan),
              static_cast<long long>(proposal.cost.comm_cost));

  // Parallel design-space exploration over a 48-process synthetic workload:
  // every target group count times (1 greedy + 4 randomized) candidates,
  // serial vs --threads N, with identical results by construction.
  bench::banner("parallel exploration engine (48 processes)");
  const auto wall = [](const explore::ExploreEngine& engine) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = engine.explore();
    const auto t1 = std::chrono::steady_clock::now();
    return std::pair{
        std::chrono::duration<double, std::milli>(t1 - t0).count(), result};
  };
  const auto serial_engine = make_engine(1);
  const auto [serial_ms, serial_result] = wall(serial_engine);
  const auto parallel_engine = make_engine(g_threads);
  const auto [parallel_ms, parallel_result] = wall(parallel_engine);
  std::printf("candidates evaluated:      %zu\n",
              serial_result.candidates.size());
  std::printf("winner: %zu groups, makespan %lld ticks (crossing %llu)\n",
              serial_result.winner().grouping.size(),
              static_cast<long long>(
                  serial_result.winner().mapping.cost.makespan),
              static_cast<unsigned long long>(serial_result.winner().inter_group));
  std::printf("threads=1:                 %8.2f ms\n", serial_ms);
  std::printf("threads=%-2zu                %8.2f ms (speedup %.2fx)\n",
              parallel_engine.threads(), parallel_ms,
              parallel_ms > 0 ? serial_ms / parallel_ms : 0.0);
  std::printf("identical winner across thread counts: %s\n",
              serial_result.best == parallel_result.best ? "yes" : "NO");
}

void BM_ExploreEngine(benchmark::State& state) {
  const auto engine = make_engine(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.explore());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(engine.candidate_count()));
}
BENCHMARK(BM_ExploreEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ProposeMapping(benchmark::State& state) {
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());
  const auto stats = explore::ProcessStats::from_report(report);
  const explore::Grouping grouping = {{"rca", "rmng"}, {"msduRec", "msduDel"},
                                      {"mng", "frag"}, {"crc"}};
  const std::vector<std::string> group_type = {"general", "general", "general",
                                               "hardware"};
  const std::vector<explore::PeDesc> pes = {
      {"processor1", 50, "general"},
      {"processor2", 50, "general"},
      {"processor3", 50, "general"},
      {"accelerator1", 100, "hw_accelerator"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        explore::propose_mapping(grouping, group_type, stats, pes));
  }
}
BENCHMARK(BM_ProposeMapping)->Unit(benchmark::kMicrosecond);

void BM_SimulateMappingVariant(benchmark::State& state) {
  const auto choice = static_cast<tutmac::MappingChoice>(state.range(0));
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  opt.mapping = choice;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.simulate(view));
  }
}
BENCHMARK(BM_SimulateMappingVariant)
    ->Arg(static_cast<int>(tutmac::MappingChoice::Paper))
    ->Arg(static_cast<int>(tutmac::MappingChoice::LoadBalanced))
    ->Arg(static_cast<int>(tutmac::MappingChoice::SinglePe))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --threads N before handing argv to the benchmark library.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return bench::run(argc, argv, print_ablation);
}
