// Resource-envelope benchmarks: what the semantic lock costs.
//
// The envelope check rides every log append and event schedule, so its
// overhead must be a compare-and-branch, not a feature tax: the
// unbounded-vs-enveloped append pair pins that. The spill path trades
// resident memory for rendered-file I/O at the cap; its absolute cost is
// recorded but carries a wide tolerance (disk speed varies). The campaign
// pair pins the end-to-end story — a constrained profile whose caps the
// sweep fits inside must not change throughput measurably.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "mapping/mapping.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/log.hpp"
#include "sim/resource.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

constexpr sim::Time kHorizon = 2'000'000;  // 2 ms of modelled time

void print_header() {
  bench::banner("A9: resource envelopes — the cost of the semantic lock");
  std::cout << "(enveloped vs unbounded log appends; constrained campaign)\n";
}

tutmac::System& shared_system() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = kHorizon;
    return tutmac::build(opt);
  }();
  return sys;
}

std::shared_ptr<const sim::CompiledModel> shared_image() {
  static std::shared_ptr<const sim::CompiledModel> image = [] {
    const mapping::SystemView view(*shared_system().model);
    return sim::CompiledModel::build(view);
  }();
  return image;
}

void setup_scenario(sim::Simulation& simulation, const sim::Scenario& sc) {
  const tutmac::System& sys = shared_system();
  tutmac::Options o = sys.options;
  o.horizon = simulation.config().horizon;
  o.slot_period = static_cast<sim::Time>(
      sc.param("slotPeriod", static_cast<long>(o.slot_period)));
  sys.inject_workload(simulation, o);
}

constexpr int kAppends = 4096;

/// Appends a representative record mix (run / send / drop) via the interned
/// hot path, the way the simulator itself logs.
void append_records(sim::SimulationLog& log) {
  const intern::Id proc = log.intern_name("processor1");
  const intern::Id peer = log.intern_name("processor2");
  const intern::Id sig = log.intern_name("macData");
  for (int i = 0; i < kAppends; ++i) {
    const sim::Time t = static_cast<sim::Time>(10 * i);
    log.run_id(t, proc, i, 3);
    log.send_id(t + 1, proc, peer, sig, 64);
    if (i % 16 == 0) log.drop_id(t + 2, peer, sig);
  }
}

// Baseline: unbounded appends (capacity_ == 0 short-circuits the check).
void BM_LogAppendUnbounded(benchmark::State& state) {
  sim::SimulationLog log;
  for (auto _ : state) {
    log.clear();
    append_records(log);
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kAppends);
}
BENCHMARK(BM_LogAppendUnbounded)->Unit(benchmark::kMicrosecond);

// Enveloped appends that never hit the cap: the pure cost of the per-append
// ceiling check. The smoke pair asserts this stays within a few percent of
// the unbounded baseline.
void BM_LogAppendEnveloped(benchmark::State& state) {
  sim::SimulationLog log;
  log.set_envelope(1u << 20);  // armed, never reached; survives clear()
  for (auto _ : state) {
    log.clear();
    append_records(log);
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kAppends);
}
BENCHMARK(BM_LogAppendEnveloped)->Unit(benchmark::kMicrosecond);

// Ring-with-spill: the cap is crossed repeatedly, so resident records are
// rendered and flushed to disk. Absolute numbers depend on the filesystem;
// the baseline carries a wide tolerance.
void BM_LogAppendSpill(benchmark::State& state) {
  const std::string spill =
      (std::filesystem::temp_directory_path() / "tut_bench_profile.spill")
          .string();
  sim::SimulationLog log;
  for (auto _ : state) {
    log.clear();  // also removes the previous iteration's spill file
    log.set_envelope(512, spill);
    append_records(log);
    benchmark::DoNotOptimize(log.spilled());
  }
  log.clear();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kAppends);
}
BENCHMARK(BM_LogAppendSpill)->Unit(benchmark::kMicrosecond);

sim::CampaignSpec bench_spec() {
  sim::CampaignSpec spec;
  spec.name = "bench-envelope";
  spec.base.horizon = kHorizon;
  spec.axes.push_back({"seed", {}});
  for (long i = 0; i < 64; ++i) spec.axes.back().values.push_back(i);
  spec.axes.push_back({"slotPeriod", {50'000, 100'000}});
  return spec;
}

// Campaign throughput with and without the constrained profile: the
// scenarios fit the envelope, so the only difference is the stamped caps
// and the per-append/per-schedule checks. range(0) selects the profile.
void BM_CampaignSweep(benchmark::State& state) {
  const sim::CampaignSpec spec = bench_spec();  // 64 seeds x 2 = 128 runs
  const sim::CampaignRunner runner({shared_image()}, setup_scenario);
  sim::CampaignOptions options;
  options.threads = 1;
  if (state.range(0) != 0) {
    options.profile = sim::ResourceProfile::constrained();
  }
  for (auto _ : state) {
    const sim::CampaignResult result = runner.run(spec, options);
    benchmark::DoNotOptimize(result.aggregate.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.total()));
}
BENCHMARK(BM_CampaignSweep)
    ->Arg(0)   // unbounded
    ->Arg(1)   // constrained profile
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
