// End-to-end co-simulation benchmarks for the compiled core: the TUTMAC
// case study run through the AST interpreter path and the bytecode path
// (same engine, different EFSM backend), plus BatchRunner thread scaling
// over one shared CompiledModel image. On a single-core container the
// scaling shows up as CPU-per-scenario, not wall clock.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "mapping/mapping.hpp"
#include "sim/batch.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

constexpr sim::Time kHorizon = 100'000'000;  // 100 ms of modelled time

void print_header() {
  bench::banner("A7: compiled simulation core — TUTMAC end-to-end + batch");
  std::cout << "(AST vs bytecode EFSM backend; batch over one shared image)\n";
}

tutmac::System& shared_system() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = kHorizon;
    return tutmac::build(opt);
  }();
  return sys;
}

// Baseline path: SystemView constructor, AST efsm::Instance per process.
void BM_TutmacEndToEndAst(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  const mapping::SystemView view(*sys.model);
  sim::Config config;
  config.horizon = kHorizon;
  for (auto _ : state) {
    sim::Simulation simulation(view, config);
    sys.inject_workload(simulation);
    simulation.run();
    benchmark::DoNotOptimize(simulation.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TutmacEndToEndAst)->Unit(benchmark::kMillisecond);

// Compiled path: one shared CompiledModel, bytecode CompiledInstance per
// process. Registered adjacent to the AST twin for interleaved A/B runs.
void BM_TutmacEndToEndCompiled(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  const mapping::SystemView view(*sys.model);
  const auto compiled = sim::CompiledModel::build(view);
  sim::Config config;
  config.horizon = kHorizon;
  for (auto _ : state) {
    sim::Simulation simulation(compiled, config);
    sys.inject_workload(simulation);
    simulation.run();
    benchmark::DoNotOptimize(simulation.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TutmacEndToEndCompiled)->Unit(benchmark::kMillisecond);

// Model lowering cost: what batch mode amortizes across scenarios.
void BM_CompiledModelBuild(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  const mapping::SystemView view(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::CompiledModel::build(view));
  }
}
BENCHMARK(BM_CompiledModelBuild)->Unit(benchmark::kMicrosecond);

// N scenarios over one shared image; range(0) is the worker-thread count.
void BM_BatchScenarios(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  const mapping::SystemView view(*sys.model);
  const auto compiled = sim::CompiledModel::build(view);
  constexpr std::size_t kScenarios = 8;
  std::vector<sim::BatchScenario> scenarios(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    scenarios[i].name = "s" + std::to_string(i);
    scenarios[i].config.horizon = kHorizon;
    scenarios[i].config.faults.seed = i;
    scenarios[i].setup = [&sys](sim::Simulation& s) {
      sys.inject_workload(s);
    };
  }
  sim::BatchOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  const sim::BatchRunner runner(compiled, options);
  for (auto _ : state) {
    const auto results = runner.run(scenarios);
    benchmark::DoNotOptimize(results.front().log_hash);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kScenarios));
}
BENCHMARK(BM_BatchScenarios)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
