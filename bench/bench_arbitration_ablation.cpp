// Ablation A1: HIBI segment arbitration — priority vs round-robin (the
// Arbitration tagged value of Table 3).
//
// A contended scenario built with the public builders: three producers on
// three processors, with descending priorities, all streaming large bursts
// across one shared segment to a consumer processor at ~130% offered bus
// load, so a backlog persists and the arbiter decides who waits. Under
// priority arbitration the high-priority producer sees low latency while the
// low-priority one starves; under round-robin the latencies equalize. The
// bench prints mean delivery latency per producer for both schemes, then
// times the simulations.
#include <numeric>

#include "bench_util.hpp"
#include "appmodel/appmodel.hpp"
#include "mapping/mapping.hpp"
#include "platform/platform.hpp"
#include "profile/tut_profile.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

struct Contended {
  std::unique_ptr<uml::Model> model;

  explicit Contended(const std::string& arbitration) {
    model = std::make_unique<uml::Model>("contended");
    auto prof = profile::install(*model);

    auto& burst = model->create_signal("Burst");
    burst.add_parameter("seq", "int");
    burst.set_payload_bytes(4096);  // ~1024 words per transfer

    appmodel::ApplicationBuilder ab(*model, prof);
    auto& app = ab.application("Contention");

    auto& producer = ab.component("Producer");
    model->add_port(producer, "out").require(burst);
    {
      auto& sm = *producer.behavior();
      sm.declare_variable("seq", 0);
      auto& run = model->add_state(sm, "Run", true);
      run.on_entry(uml::Action::set_timer("tick", "24000"));
      model->add_timer_transition(sm, run, run, "tick")
          .add_effect(uml::Action::compute("10"))
          .add_effect(uml::Action::assign("seq", "seq + 1"))
          .add_effect(uml::Action::send("out", burst, {"seq"}));
    }
    auto& consumer = ab.component("Consumer");
    model->add_port(consumer, "in").provide(burst);
    {
      auto& sm = *consumer.behavior();
      auto& run = model->add_state(sm, "Run", true);
      model->add_transition(sm, run, run, burst, "in")
          .add_effect(uml::Action::compute("5"));
    }

    std::vector<uml::Property*> producers;
    for (int i = 0; i < 3; ++i) {
      const std::string name = "prod" + std::string(1, static_cast<char>('A' + i));
      producers.push_back(&ab.process(
          name, producer,
          {{"Priority", std::to_string(3 - i)}, {"ProcessType", "general"}}));
    }
    auto& cons = ab.process("cons", consumer, {{"ProcessType", "general"}});
    // One consumer port per producer (a connector binds one (part, port)
    // pair on each side).
    for (int i = 0; i < 3; ++i) {
      model->add_port(consumer, "in" + std::to_string(i)).provide(burst);
    }
    model->connect(app, "prodA", "out", "cons", "in0");
    model->connect(app, "prodB", "out", "cons", "in1");
    model->connect(app, "prodC", "out", "cons", "in2");
    // Consumer handles Burst on any port (trigger port unrestricted).
    {
      auto& sm = *consumer.behavior();
      auto& run = *sm.state("Run");
      // The existing transition is port-restricted to "in"; add an
      // unrestricted one for the extra ports.
      model->add_transition(sm, run, run, burst)
          .add_effect(uml::Action::compute("5"));
    }

    platform::PlatformBuilder pb(*model, prof);
    pb.platform("ContentionBoard");
    auto& cpu = pb.component_type("Cpu",
                                  {{"Type", "general"}, {"Frequency", "100"}});
    auto& shared = pb.segment("shared", {{"DataWidth", "32"},
                                         {"Frequency", "100"},
                                         {"Arbitration", arbitration}});
    mapping::MappingBuilder mb(*model, prof);
    for (int i = 0; i < 3; ++i) {
      auto& pe = pb.instance("cpu" + std::to_string(i), cpu);
      pb.wrapper(pe, shared);
      auto& group = ab.group("g" + std::to_string(i),
                             {{"ProcessType", "general"}});
      ab.assign(*producers[static_cast<std::size_t>(i)], group);
      mb.map(group, pe);
    }
    auto& pe_cons = pb.instance("cpuC", cpu);
    pb.wrapper(pe_cons, shared);
    auto& group_cons = ab.group("gc", {{"ProcessType", "general"}});
    ab.assign(cons, group_cons);
    mb.map(group_cons, pe_cons);
  }
};

/// Mean send->receive latency per producer, matched FIFO per pair.
std::map<std::string, double> mean_latency(const sim::SimulationLog& log) {
  std::map<std::string, std::vector<sim::Time>> sends;
  std::map<std::string, std::vector<sim::Time>> recvs;
  for (const auto& r : log.records()) {
    if (r.kind == sim::LogRecord::Kind::Send && r.peer == "cons") {
      sends[r.process].push_back(r.time);
    }
    if (r.kind == sim::LogRecord::Kind::Receive && r.process == "cons") {
      recvs[r.peer].push_back(r.time);
    }
  }
  std::map<std::string, double> out;
  for (const auto& [producer, s] : sends) {
    const auto& v = recvs[producer];
    const std::size_t n = std::min(s.size(), v.size());
    if (n == 0) continue;
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += static_cast<double>(v[i] - s[i]);
    }
    out[producer] = total / static_cast<double>(n);
  }
  return out;
}

std::map<std::string, double> run_scheme(const std::string& arbitration) {
  Contended system(arbitration);
  mapping::SystemView view(*system.model);
  sim::Simulation simulation(view, {.horizon = 3'000'000});
  simulation.run();
  return mean_latency(simulation.log());
}

void print_ablation() {
  bench::banner("A1: HIBI arbitration ablation (priority vs round-robin)");
  const auto pri = run_scheme(profile::tags::ArbitrationPriority);
  const auto rr = run_scheme(profile::tags::ArbitrationRoundRobin);
  std::printf("%-10s %10s %22s %22s\n", "producer", "priority",
              "mean latency (pri)", "mean latency (rr)");
  const char* prio[] = {"3 (high)", "2", "1 (low)"};
  int i = 0;
  for (const char* name : {"prodA", "prodB", "prodC"}) {
    std::printf("%-10s %10s %19.0f ns %19.0f ns\n", name, prio[i++],
                pri.count(name) ? pri.at(name) : 0.0,
                rr.count(name) ? rr.at(name) : 0.0);
  }
  std::printf("(priority arbitration protects prodA at prodC's expense;\n"
              " round-robin equalizes the three streams)\n");
}

void BM_ContendedPriority(benchmark::State& state) {
  Contended system(profile::tags::ArbitrationPriority);
  mapping::SystemView view(*system.model);
  for (auto _ : state) {
    sim::Simulation simulation(view, {.horizon = 1'000'000});
    simulation.run();
    benchmark::DoNotOptimize(simulation.log().size());
  }
}
BENCHMARK(BM_ContendedPriority)->Unit(benchmark::kMillisecond);

void BM_ContendedRoundRobin(benchmark::State& state) {
  Contended system(profile::tags::ArbitrationRoundRobin);
  mapping::SystemView view(*system.model);
  for (auto _ : state) {
    sim::Simulation simulation(view, {.horizon = 1'000'000});
    simulation.run();
    benchmark::DoNotOptimize(simulation.log().size());
  }
}
BENCHMARK(BM_ContendedRoundRobin)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_ablation);
}
