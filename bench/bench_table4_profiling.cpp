// Regenerates Table 4 of the paper: the TUTMAC profiling report (per-group
// execution times and the inter-group signal matrix), side by side with the
// paper's numbers. Then benchmarks the stages that produce it: model build,
// co-simulation, log round trip and analysis.
#include "bench_util.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

void print_table4() {
  tutmac::Options opt;
  opt.horizon = 50'000'000;
  tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  const auto report = profiler::analyze(info, simulation->log());

  bench::banner("Table 4: profiling report of the TUTMAC simulations");
  std::cout << report.to_text();

  bench::banner("paper vs measured, Table 4(a) proportions");
  struct Row {
    const char* group;
    double paper;
  };
  const Row rows[] = {{"group1", 92.1},
                      {"group2", 5.2},
                      {"group3", 2.5},
                      {"group4", 0.2},
                      {"Environment", 0.0}};
  std::cout << "group         paper    measured\n";
  for (std::size_t i = 0; i < 5; ++i) {
    std::printf("%-12s %6.1f %%  %6.1f %%\n", rows[i].group, rows[i].paper,
                report.execution[i].proportion);
  }
}

tutmac::System& shared_system() {
  static tutmac::System sys = tutmac::build();
  return sys;
}

void BM_BuildTutmacModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(tutmac::build());
  }
}
BENCHMARK(BM_BuildTutmacModel)->Unit(benchmark::kMillisecond);

void BM_SimulateTutmac(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  mapping::SystemView view(*sys.model);
  const auto horizon = static_cast<sim::Time>(state.range(0)) * 1'000'000;
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Config cfg;
    cfg.horizon = horizon;
    sim::Simulation simulation(view, cfg);
    sys.inject_workload(simulation);
    simulation.run_until(horizon);
    events += simulation.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_ms"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SimulateTutmac)->Arg(5)->Arg(20)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_LogTextRoundTrip(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  mapping::SystemView view(*sys.model);
  sim::Config cfg;
  cfg.horizon = 10'000'000;
  sim::Simulation simulation(view, cfg);
  sys.inject_workload(simulation);
  simulation.run();
  const std::string text = simulation.log().to_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::SimulationLog::parse(text));
  }
  state.counters["log_bytes"] = static_cast<double>(text.size());
}
BENCHMARK(BM_LogTextRoundTrip)->Unit(benchmark::kMillisecond);

void BM_AnalyzeReport(benchmark::State& state) {
  tutmac::System& sys = shared_system();
  mapping::SystemView view(*sys.model);
  sim::Config cfg;
  cfg.horizon = 10'000'000;
  sim::Simulation simulation(view, cfg);
  sys.inject_workload(simulation);
  simulation.run();
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(profiler::analyze(info, simulation.log()));
  }
}
BENCHMARK(BM_AnalyzeReport)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_table4);
}
