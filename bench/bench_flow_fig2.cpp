// Regenerates the design-and-profiling flow of Figure 2 end to end and
// benchmarks every stage: UML model -> code generation -> (simulated)
// execution with logging -> model parsing -> profiling report.
#include <chrono>

#include "bench_util.hpp"
#include "codegen/codegen.hpp"
#include "profiler/profiler.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"

using namespace tut;

namespace {

void print_flow() {
  using clock = std::chrono::steady_clock;
  const auto ms = [](clock::duration d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count() /
           1000.0;
  };

  bench::banner("Figure 2: design and profiling flow (stage timings)");

  auto t0 = clock::now();
  tutmac::Options opt;
  opt.horizon = 20'000'000;
  tutmac::System sys = tutmac::build(opt);
  auto t1 = clock::now();
  std::printf("  UML 2.0 model (TUT-Profile)      : %8.2f ms, %zu elements\n",
              ms(t1 - t0), sys.model->size());

  const auto bundle = codegen::generate(*sys.model);
  auto t2 = clock::now();
  std::printf("  code generation (application C)  : %8.2f ms, %zu files, %zu lines\n",
              ms(t2 - t1), bundle.files.size(), bundle.total_lines());

  const std::string xml = uml::to_xml_string(*sys.model);
  auto t3 = clock::now();
  std::printf("  model XML export                 : %8.2f ms, %zu bytes\n",
              ms(t3 - t2), xml.size());

  mapping::SystemView view(*sys.model);
  const auto simulation = sys.simulate(view);
  auto t4 = clock::now();
  std::printf("  simulation (20 ms, instrumented) : %8.2f ms, %llu events\n",
              ms(t4 - t3),
              static_cast<unsigned long long>(simulation->events_dispatched()));

  const std::string log_text = simulation->log().to_text();
  const auto info = profiler::ProcessGroupInfo::from_xml(xml);
  const auto log = sim::SimulationLog::parse(log_text);
  const auto report = profiler::analyze(info, log);
  auto t5 = clock::now();
  std::printf("  profiling (parse + combine)      : %8.2f ms, %llu signals\n",
              ms(t5 - t4),
              static_cast<unsigned long long>(report.total_signals()));
  std::printf("  total                            : %8.2f ms\n", ms(t5 - t0));
}

void BM_Stage_BuildModel(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(tutmac::build());
}
BENCHMARK(BM_Stage_BuildModel)->Unit(benchmark::kMillisecond);

void BM_Stage_Codegen(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  for (auto _ : state) benchmark::DoNotOptimize(codegen::generate(*sys.model));
}
BENCHMARK(BM_Stage_Codegen)->Unit(benchmark::kMillisecond);

void BM_Stage_XmlExport(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  for (auto _ : state) benchmark::DoNotOptimize(uml::to_xml_string(*sys.model));
}
BENCHMARK(BM_Stage_XmlExport)->Unit(benchmark::kMillisecond);

void BM_Stage_SimulateAndProfile(benchmark::State& state) {
  tutmac::Options opt;
  opt.horizon = 5'000'000;
  const tutmac::System sys = tutmac::build(opt);
  mapping::SystemView view(*sys.model);
  const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
  for (auto _ : state) {
    const auto simulation = sys.simulate(view);
    benchmark::DoNotOptimize(profiler::analyze(info, simulation->log()));
  }
}
BENCHMARK(BM_Stage_SimulateAndProfile)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_flow);
}
