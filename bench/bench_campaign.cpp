// Campaign engine benchmarks: scenario-sweep throughput over one shared
// TUTMAC image (1/2/4 worker threads), context reuse (Simulation::reset) vs
// per-run construction, and the cost of lazy scenario materialization.
// On a single-core container thread scaling shows up as CPU-per-scenario,
// not wall clock — see BENCH_campaign.json for the measured story.
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "mapping/mapping.hpp"
#include "sim/campaign.hpp"
#include "sim/compiled.hpp"
#include "sim/simulator.hpp"
#include "tutmac/tutmac.hpp"

using namespace tut;

namespace {

// Short horizon: campaign sweeps trade per-run depth for run count, so the
// interesting regime is many small runs (reset/claim/reduce overhead
// dominates the simulation itself).
constexpr sim::Time kHorizon = 2'000'000;  // 2 ms of modelled time

void print_header() {
  bench::banner("A8: campaign engine — sweep throughput over one image");
  std::cout << "(reusable contexts, streaming reduction; 2 ms scenarios)\n";
}

tutmac::System& shared_system() {
  static tutmac::System sys = [] {
    tutmac::Options opt;
    opt.horizon = kHorizon;
    return tutmac::build(opt);
  }();
  return sys;
}

std::shared_ptr<const sim::CompiledModel> shared_image() {
  static std::shared_ptr<const sim::CompiledModel> image = [] {
    const mapping::SystemView view(*shared_system().model);
    return sim::CompiledModel::build(view);
  }();
  return image;
}

void setup_scenario(sim::Simulation& simulation, const sim::Scenario& sc) {
  const tutmac::System& sys = shared_system();
  tutmac::Options o = sys.options;
  o.horizon = simulation.config().horizon;
  o.slot_period = static_cast<sim::Time>(
      sc.param("slotPeriod", static_cast<long>(o.slot_period)));
  sys.inject_workload(simulation, o);
}

sim::CampaignSpec bench_spec(std::uint64_t seeds) {
  sim::CampaignSpec spec;
  spec.name = "bench";
  spec.base.horizon = kHorizon;
  spec.axes.push_back({"seed", {}});
  for (std::uint64_t i = 0; i < seeds; ++i) {
    spec.axes.back().values.push_back(static_cast<long>(i));
  }
  spec.axes.push_back({"slotPeriod", {50'000, 100'000}});
  return spec;
}

// Campaign throughput; range(0) is the worker-thread count. 512 scenarios
// per iteration keeps one iteration ~40 ms so the claim/reduce machinery is
// exercised hard relative to the tiny runs.
void BM_CampaignScenarios(benchmark::State& state) {
  const sim::CampaignSpec spec = bench_spec(256);  // x2 slotPeriod = 512
  const sim::CampaignRunner runner({shared_image()}, setup_scenario);
  sim::CampaignOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const sim::CampaignResult result = runner.run(spec, options);
    benchmark::DoNotOptimize(result.aggregate.digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spec.total()));
}
BENCHMARK(BM_CampaignScenarios)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// The pair the campaign's per-run cost rides on: constructing a Simulation
// over the image for every run vs rewinding one reusable context.
void BM_ScenarioFreshConstruct(benchmark::State& state) {
  sim::Config config;
  config.horizon = kHorizon;
  for (auto _ : state) {
    sim::Simulation simulation(shared_image(), config);
    setup_scenario(simulation, sim::Scenario{});
    simulation.run();
    benchmark::DoNotOptimize(simulation.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScenarioFreshConstruct)->Unit(benchmark::kMicrosecond);

void BM_ScenarioContextReuse(benchmark::State& state) {
  sim::Config config;
  config.horizon = kHorizon;
  sim::Simulation simulation(shared_image(), config);
  for (auto _ : state) {
    simulation.reset(config);
    setup_scenario(simulation, sim::Scenario{});
    simulation.run();
    benchmark::DoNotOptimize(simulation.events_dispatched());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScenarioContextReuse)->Unit(benchmark::kMicrosecond);

// Lazy expansion: materializing scenario(i) from its index across a 1e6
// sweep — the cost sharding and resume pay instead of storing a list.
void BM_ScenarioMaterialize(benchmark::State& state) {
  sim::CampaignSpec spec = bench_spec(250'000);  // x2x2 below = 1e6
  spec.plans.emplace_back("none2", sim::FaultPlan{});
  spec.axes.push_back({"plan", {0, 1}});
  const std::uint64_t total = spec.total();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const sim::Scenario sc = spec.scenario(i);
    benchmark::DoNotOptimize(sc.config.faults.seed);
    i = (i + 977) % total;  // stride to defeat any accidental locality
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScenarioMaterialize);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
