// Ablation A7: multiprocessor SoC scalability (the paper's outlook: "The
// profile will also be evaluated for multiprocessor System-on-Chip co-design
// environment"). Sweeps synthetic systems from 8 to 128 processes over up to
// 16 PEs and reports model size, validation, simulation and profiling cost.
#include <chrono>

#include "bench_util.hpp"
#include "profiler/profiler.hpp"
#include "synth/synth.hpp"
#include "uml/serialize.hpp"

using namespace tut;

namespace {

void print_sweep() {
  using clock = std::chrono::steady_clock;
  const auto ms = [](clock::duration d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count() /
           1000.0;
  };

  bench::banner("A7: SoC scalability sweep (random DAG, 1000 messages)");
  std::printf("%10s %5s %9s %10s %10s %10s %10s %12s\n", "processes", "pes",
              "elements", "build(ms)", "valid(ms)", "sim(ms)", "prof(ms)",
              "sim events");
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    synth::SynthOptions opt;
    opt.topology = synth::Topology::RandomDag;
    opt.processes = n;
    opt.pes = std::min<std::size_t>(16, n / 4 + 1);
    opt.segments = opt.pes > 4 ? 4 : 1;
    opt.seed = 12345;

    auto t0 = clock::now();
    const synth::SynthSystem sys = synth::build(opt);
    auto t1 = clock::now();
    const auto validation = profile::make_validator().run(*sys.model);
    auto t2 = clock::now();
    mapping::SystemView view(*sys.model);
    sim::Simulation simulation(view, {.horizon = 100'000'000});
    sys.inject_workload(simulation, 1'000, 20'000, 1000);
    simulation.run();
    auto t3 = clock::now();
    const auto info = profiler::ProcessGroupInfo::from_model(*sys.model);
    const auto report = profiler::analyze(info, simulation.log());
    auto t4 = clock::now();

    std::printf("%10zu %5zu %9zu %10.2f %10.2f %10.2f %10.2f %12llu\n", n,
                opt.pes, sys.model->size(), ms(t1 - t0), ms(t2 - t1),
                ms(t3 - t2), ms(t4 - t3),
                static_cast<unsigned long long>(simulation.events_dispatched()));
    if (!validation.ok()) std::printf("  VALIDATION FAILED\n");
  }
}

void BM_BuildSynth(benchmark::State& state) {
  synth::SynthOptions opt;
  opt.topology = synth::Topology::RandomDag;
  opt.processes = static_cast<std::size_t>(state.range(0));
  opt.pes = opt.processes / 4 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::build(opt));
  }
}
BENCHMARK(BM_BuildSynth)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SimulateSynth(benchmark::State& state) {
  synth::SynthOptions opt;
  opt.topology = synth::Topology::RandomDag;
  opt.processes = static_cast<std::size_t>(state.range(0));
  opt.pes = opt.processes / 4 + 1;
  opt.segments = 2;
  const synth::SynthSystem sys = synth::build(opt);
  mapping::SystemView view(*sys.model);
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::Simulation simulation(view, {.horizon = 50'000'000});
    sys.inject_workload(simulation, 1'000, 50'000, 500);
    simulation.run();
    events += simulation.events_dispatched();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateSynth)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_SynthXmlRoundTrip(benchmark::State& state) {
  synth::SynthOptions opt;
  opt.processes = static_cast<std::size_t>(state.range(0));
  const synth::SynthSystem sys = synth::build(opt);
  const std::string xml = uml::to_xml_string(*sys.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::from_xml_string(xml));
  }
  state.counters["xml_bytes"] = static_cast<double>(xml.size());
}
BENCHMARK(BM_SynthXmlRoundTrip)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_sweep);
}
