// A4 (part 2): XML interchange microbenchmarks — serialization and parsing
// of the full TUTMAC model (the profiler's stage-1 input path).
#include "bench_util.hpp"
#include "tutmac/tutmac.hpp"
#include "uml/serialize.hpp"
#include "xml/xml.hpp"

using namespace tut;

namespace {

void print_header() {
  bench::banner("A4: XML interchange microbenchmarks");
  const tutmac::System sys = tutmac::build();
  const std::string xml = uml::to_xml_string(*sys.model);
  std::cout << "TUTMAC model: " << sys.model->size() << " elements, "
            << xml.size() << " bytes of XML\n";
}

const std::string& tutmac_xml() {
  static const std::string xml = [] {
    const tutmac::System sys = tutmac::build();
    return uml::to_xml_string(*sys.model);
  }();
  return xml;
}

void BM_ModelToXml(benchmark::State& state) {
  const tutmac::System sys = tutmac::build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::to_xml_string(*sys.model));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tutmac_xml().size()));
}
BENCHMARK(BM_ModelToXml)->Unit(benchmark::kMicrosecond);

void BM_XmlParseOnly(benchmark::State& state) {
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::parse(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParseOnly)->Unit(benchmark::kMicrosecond);

void BM_ModelFromXml(benchmark::State& state) {
  const std::string& xml = tutmac_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(uml::from_xml_string(xml));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xml.size()));
}
BENCHMARK(BM_ModelFromXml)->Unit(benchmark::kMillisecond);

void BM_XmlEscape(benchmark::State& state) {
  const std::string raw(1000, '<');
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::escape(raw));
  }
}
BENCHMARK(BM_XmlEscape)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return bench::run(argc, argv, print_header);
}
